//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *exact API subset it uses* as a local path dependency with
//! the same crate name. The implementation is a seeded xoshiro256++
//! generator (public-domain algorithm by Blackman & Vigna) behind the
//! familiar `rand 0.8` trait names. Streams differ from upstream `rand`,
//! which is fine: every consumer in this workspace treats seeds as opaque
//! reproducibility handles, never as cross-crate fixtures.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (`low..high` or `low..=high`).
    ///
    /// Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Standard-distribution sampling for primitive types.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types uniform ranges can be drawn over.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high]` (inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low <= high);
                // Two's-complement wrapping difference equals the true
                // span for every integer type up to 64 bits.
                let span = (high as u64).wrapping_sub(low as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                // Modulo draw: the bias is < span / 2^64, immaterial for
                // simulation seeds.
                let draw = rng.next_u64() % (span + 1);
                (low as u64).wrapping_add(draw) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + One + core::ops::Sub<Output = T>> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_inclusive(rng, self.start, self.end - T::one())
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample from an empty range");
        T::sample_inclusive(rng, low, high)
    }
}

/// Unit value per integer type (internal helper for half-open ranges).
pub trait One {
    /// The value `1`.
    fn one() -> Self;
}
macro_rules! impl_one {
    ($($t:ty),*) => {$(impl One for $t { fn one() -> Self { 1 } })*};
}
impl_one!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (xoshiro256++ behind `rand`'s
    /// `StdRng` name). Not cryptographic; statistically solid for
    /// simulation workloads.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of
            // state, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::RngCore;
    use super::SampleUniform;

    /// Shuffling and sampling on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Draws `amount` distinct elements (fewer if the slice is
        /// shorter), in random order.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_inclusive(rng, 0, i);
                self.swap(i, j);
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            // Partial Fisher–Yates: the first `amount` positions end up
            // uniformly sampled without replacement.
            for i in 0..amount {
                let j = usize::sample_inclusive(rng, i, indices.len() - 1);
                indices.swap(i, j);
            }
            indices[..amount].iter().map(|&i| &self[i]).collect::<Vec<&T>>().into_iter()
        }
    }
}

pub mod distributions {
    //! Distribution trait, matching `rand::distributions::Distribution`.

    use super::Rng;

    /// A sampling distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draws one value from `rng`.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1u64..=5);
            assert!((1..=5).contains(&y));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_draws_cover_the_support() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes_and_choose_multiple_is_distinct() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "a 50-element shuffle virtually never fixes");

        let picked: Vec<u32> = v.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10, "sampling without replacement");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.1)).count();
        assert!((8_000..12_000).contains(&hits), "~10%: {hits}");
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
    }
}
