//! Offline stand-in for the `crossbeam-channel` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the channel surface the threaded backend uses: an unbounded
//! mpmc channel with cloneable senders, blocking/timeout/non-blocking
//! receives and crossbeam's disconnect semantics (a send to a channel
//! with no receivers fails; a receive on an empty channel with no
//! senders fails). Built on `std::sync::{Mutex, Condvar}` — slower than
//! real crossbeam, identical in behaviour for this workspace's patterns.

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error of a send on a disconnected channel; returns the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error of a blocking receive on an empty, disconnected channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

/// Error of a receive with a timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message.
    Timeout,
    /// The channel is empty and all senders dropped.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on receive operation"),
            RecvTimeoutError::Disconnected => f.write_str("channel is empty and disconnected"),
        }
    }
}

/// Error of a non-blocking receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message was ready.
    Empty,
    /// The channel is empty and all senders dropped.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => f.write_str("channel is empty and disconnected"),
        }
    }
}

struct Chan<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// The sending half; cloneable, shareable across threads.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half; cloneable (mpmc), shareable across threads.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Creates an unbounded mpmc channel.
#[must_use]
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
}

impl<T> Sender<T> {
    /// Enqueues `msg`, failing only if every receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        if self.chan.receivers.load(Ordering::SeqCst) == 0 {
            return Err(SendError(msg));
        }
        {
            let mut queue = self.chan.queue.lock().expect("channel mutex healthy");
            // Re-check under the lock so a racing receiver drop cannot
            // strand the message unobserved.
            if self.chan.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(msg));
            }
            queue.push_back(msg);
        }
        self.chan.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.senders.fetch_add(1, Ordering::SeqCst);
        Sender { chan: Arc::clone(&self.chan) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.chan.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender gone: wake blocked receivers so they observe
            // the disconnect.
            self.chan.ready.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.chan.queue.lock().expect("channel mutex healthy");
        loop {
            if let Some(msg) = queue.pop_front() {
                return Ok(msg);
            }
            if self.chan.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvError);
            }
            queue = self.chan.ready.wait(queue).expect("channel mutex healthy");
        }
    }

    /// Blocks up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.chan.queue.lock().expect("channel mutex healthy");
        loop {
            if let Some(msg) = queue.pop_front() {
                return Ok(msg);
            }
            if self.chan.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) =
                self.chan.ready.wait_timeout(queue, deadline - now).expect("channel mutex healthy");
            queue = guard;
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.chan.queue.lock().expect("channel mutex healthy");
        if let Some(msg) = queue.pop_front() {
            return Ok(msg);
        }
        if self.chan.senders.load(Ordering::SeqCst) == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Number of messages currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chan.queue.lock().expect("channel mutex healthy").len()
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver { chan: Arc::clone(&self.chan) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.chan.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last receiver gone: queued messages are dropped, matching
            // crossbeam (subsequent sends fail fast).
            if let Ok(mut queue) = self.chan.queue.lock() {
                queue.clear();
            }
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_flow_in_order() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).expect("send");
        }
        for i in 0..100 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn cross_thread_handoff() {
        let (tx, rx) = unbounded();
        let producer = std::thread::spawn(move || {
            for i in 0..1000u64 {
                tx.send(i).expect("send");
            }
        });
        let mut sum = 0u64;
        for _ in 0..1000 {
            sum += rx.recv().expect("recv");
        }
        producer.join().expect("join");
        assert_eq!(sum, 999 * 1000 / 2);
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn clone_counts_keep_the_channel_alive() {
        let (tx, rx) = unbounded::<u8>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(1).expect("still connected");
        assert_eq!(rx.recv(), Ok(1));
        drop(tx2);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn recv_timeout_times_out_and_delivers() {
        let (tx, rx) = unbounded::<u8>();
        let err = rx.recv_timeout(Duration::from_millis(20)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
        tx.send(9).expect("send");
        assert_eq!(rx.recv_timeout(Duration::from_millis(20)), Ok(9));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(20)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn blocked_receiver_wakes_on_late_send() {
        let (tx, rx) = unbounded::<u8>();
        let waiter = std::thread::spawn(move || rx.recv());
        std::thread::sleep(Duration::from_millis(10));
        tx.send(42).expect("send");
        assert_eq!(waiter.join().expect("join"), Ok(42));
    }
}
