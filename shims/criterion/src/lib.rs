//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the bench-harness surface its benches use: [`Criterion`],
//! benchmark groups, [`BenchmarkId`], `Bencher::iter` and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Measurement is a
//! simple wall-clock median over `sample_size` samples — enough to spot
//! order-of-magnitude regressions in CI without the statistics engine.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported from `std`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id (`function_name/parameter`).
    pub fn new<F: Display, P: Display>(function_name: F, parameter: P) -> Self {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, keeping its return value alive via a black box.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples.push(start.elapsed() / u32::try_from(self.iters_per_sample).unwrap_or(1));
    }
}

/// A named collection of benchmarks sharing a sample count.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples each benchmark records (min 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<I: Display, R: FnMut(&mut Bencher)>(&mut self, id: I, mut routine: R) {
        let mut bencher = Bencher { iters_per_sample: 1, samples: Vec::new() };
        // One warmup sample, then the measured ones.
        for _ in 0..=self.sample_size {
            bencher.samples.clear();
            routine(&mut bencher);
        }
        let mut samples = std::mem::take(&mut bencher.samples);
        samples.sort_unstable();
        let median = samples.get(samples.len() / 2).copied().unwrap_or_default();
        println!("bench {}/{id}: median {median:?} over {} sample(s)", self.name, samples.len());
        let _ = &self.criterion;
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: Display, T: ?Sized, R: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut routine: R,
    ) {
        self.bench_function(id, |b| routine(b, input));
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// The bench harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10 }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<I: Display, R: FnMut(&mut Bencher)>(&mut self, id: I, routine: R) {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, routine);
        group.finish();
    }
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` over group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("unit");
        group.sample_size(3);
        group.bench_function(BenchmarkId::new("sum", 100), |b| b.iter(|| (0u64..100).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum-input", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, quick_bench);

    #[test]
    fn harness_runs_groups() {
        benches();
    }

    #[test]
    fn ids_render_both_parts() {
        assert_eq!(BenchmarkId::new("algo", 81).to_string(), "algo/81");
    }
}
