//! The cooperative scheduler behind [`crate::model`].
//!
//! One execution = one set of real OS threads coordinated through a
//! single token: exactly one managed thread is `active` at a time, and
//! control moves only inside [`switch`] — the scheduling points the
//! instrumented primitives insert. Each point records a
//! [`Decision`] `(chosen, alternatives)`; replaying a prefix of choices
//! and bumping the deepest unexhausted decision is the whole
//! depth-first exploration.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// One scheduling decision: which of `alts` enabled continuations ran.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Decision {
    pub(crate) chosen: usize,
    pub(crate) alts: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    Finished,
}

pub(crate) struct Exec {
    st: Mutex<ExecSt>,
    cv: Condvar,
    bound: Option<usize>,
    step_cap: u64,
}

struct ExecSt {
    status: Vec<Status>,
    active: usize,
    /// Choices to replay, then first-alternative from there on.
    prefix: Vec<usize>,
    decisions: Vec<Decision>,
    preemptions: usize,
    steps: u64,
    failure: Option<String>,
    abort: bool,
    live: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// Sentinel payload for panics that merely unwind a managed thread out
/// of an aborted execution (not a real failure of the model body).
const ABORTED: &str = "loom-shim: execution aborted";

#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<Exec>,
    pub(crate) id: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// The calling thread's managed context, if it belongs to a model run.
pub(crate) fn current() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

/// An instrumented access from whatever thread we are on: a scheduling
/// point under a model, nothing otherwise.
pub(crate) fn access() {
    if let Some(ctx) = current() {
        switch(&ctx.exec, ctx.id, false);
    }
}

impl Exec {
    fn lock_st(&self) -> MutexGuard<'_, ExecSt> {
        // The scheduler mutex gets poisoned whenever a managed thread
        // panics at a scheduling point; state stays consistent because
        // every mutation completes before any panic.
        self.st.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl ExecSt {
    fn fail(&mut self, msg: String) {
        if self.failure.is_none() {
            self.failure = Some(msg);
        }
        self.abort = true;
    }
}

/// The scheduling point. `force` marks an involuntary switch (yield,
/// spin hint, contended lock, join wait): the current thread does not
/// continue by default and no preemption budget is charged.
///
/// # Panics
///
/// Unwinds the calling thread when the execution is aborted (another
/// thread failed, step cap, deadlock, replay divergence).
pub(crate) fn switch(exec: &Arc<Exec>, me: usize, force: bool) {
    let mut st = exec.lock_st();
    if st.abort {
        drop(st);
        panic!("{ABORTED}");
    }
    st.steps += 1;
    if st.steps > exec.step_cap {
        st.fail(format!("step cap {} exceeded: possible livelock or lock cycle", exec.step_cap));
        drop(st);
        exec.cv.notify_all();
        panic!("{ABORTED}");
    }

    // Enabled continuations, round-robin from the caller: the caller
    // itself first (unless forced away), then every other runnable
    // thread in index order.
    let n = st.status.len();
    let mut cands: Vec<usize> = Vec::new();
    if !force && st.status[me] == Status::Runnable {
        cands.push(me);
    }
    for off in 1..n {
        let t = (me + off) % n;
        if st.status[t] == Status::Runnable {
            cands.push(t);
        }
    }
    if cands.is_empty() {
        if force && st.status[me] == Status::Runnable {
            // Sole runnable thread yielding: it continues (a genuinely
            // stuck spin then trips the step cap above).
            cands.push(me);
        } else {
            st.fail("deadlock: no runnable thread".into());
            drop(st);
            exec.cv.notify_all();
            panic!("{ABORTED}");
        }
    }
    // Preemption bounding: alternatives to "continue the caller" at an
    // ordinary access point each cost one unit; with the budget spent,
    // the caller just continues.
    if !force && cands.first() == Some(&me) {
        if let Some(bound) = exec.bound {
            if st.preemptions >= bound {
                cands.truncate(1);
            }
        }
    }

    let di = st.decisions.len();
    let chosen = if di < st.prefix.len() { st.prefix[di] } else { 0 };
    if chosen >= cands.len() {
        st.fail(format!(
            "schedule replay diverged at decision {di} ({chosen} of {} choices): \
             the model body must be deterministic",
            cands.len()
        ));
        drop(st);
        exec.cv.notify_all();
        panic!("{ABORTED}");
    }
    st.decisions.push(Decision { chosen, alts: cands.len() });
    let next = cands[chosen];
    if !force && next != me {
        st.preemptions += 1;
    }
    st.active = next;
    exec.cv.notify_all();
    while st.active != me && !st.abort {
        st = exec.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
    }
    if st.abort {
        drop(st);
        panic!("{ABORTED}");
    }
}

/// Best-effort rendering of a panic payload.
pub(crate) fn payload_to_string(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

/// Registers and starts one managed thread running `body`.
pub(crate) fn spawn_managed(exec: &Arc<Exec>, body: impl FnOnce() + Send + 'static) {
    let id = {
        let mut st = exec.lock_st();
        st.status.push(Status::Runnable);
        st.live += 1;
        st.status.len() - 1
    };
    let exec2 = Arc::clone(exec);
    let handle = std::thread::Builder::new()
        .name(format!("loom-shim-{id}"))
        .spawn(move || run_thread(&exec2, id, body))
        .expect("loom-shim: OS thread spawn");
    exec.lock_st().handles.push(handle);
}

fn run_thread(exec: &Arc<Exec>, id: usize, body: impl FnOnce() + Send) {
    CTX.with(|c| *c.borrow_mut() = Some(Ctx { exec: Arc::clone(exec), id }));
    // Wait to be scheduled for the first time.
    let skip_body = {
        let mut st = exec.lock_st();
        while st.active != id && !st.abort {
            st = exec.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.abort
    };
    if !skip_body {
        if let Err(p) = catch_unwind(AssertUnwindSafe(body)) {
            let msg = payload_to_string(&*p);
            let mut st = exec.lock_st();
            if msg != ABORTED {
                st.fail(msg);
            }
            drop(st);
        }
    }
    // Finish bookkeeping: mark done and hand the token to a successor
    // (itself a recorded decision — who runs after a thread exits is a
    // real scheduling choice).
    let mut st = exec.lock_st();
    st.status[id] = Status::Finished;
    st.live -= 1;
    if st.live > 0 && !st.abort {
        let n = st.status.len();
        let cands: Vec<usize> = (1..n)
            .map(|off| (id + off) % n)
            .filter(|&t| st.status[t] == Status::Runnable)
            .collect();
        if cands.is_empty() {
            // Every other live thread is mid-switch waiting to be
            // chosen; impossible here because non-finished threads are
            // always Runnable.
            st.fail("deadlock: a thread exited with no runnable successor".into());
        } else {
            let di = st.decisions.len();
            let chosen = if di < st.prefix.len() { st.prefix[di] } else { 0 };
            if chosen >= cands.len() {
                st.fail("schedule replay diverged at thread exit".into());
            } else {
                st.decisions.push(Decision { chosen, alts: cands.len() });
                st.active = cands[chosen];
            }
        }
    }
    drop(st);
    exec.cv.notify_all();
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Runs one execution replaying `prefix`; returns the decisions taken
/// and the failure, if any.
pub(crate) fn run_one<F>(
    f: Arc<F>,
    bound: Option<usize>,
    step_cap: u64,
    prefix: Vec<usize>,
) -> (Vec<Decision>, Option<String>)
where
    F: Fn() + Send + Sync + 'static,
{
    let exec = Arc::new(Exec {
        st: Mutex::new(ExecSt {
            status: Vec::new(),
            active: 0,
            prefix,
            decisions: Vec::new(),
            preemptions: 0,
            steps: 0,
            failure: None,
            abort: false,
            live: 0,
            handles: Vec::new(),
        }),
        cv: Condvar::new(),
        bound,
        step_cap,
    });
    spawn_managed(&exec, move || f());
    let (handles, decisions, failure) = {
        let mut st = exec.lock_st();
        while st.live > 0 {
            st = exec.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        (std::mem::take(&mut st.handles), std::mem::take(&mut st.decisions), st.failure.take())
    };
    for h in handles {
        let _ = h.join();
    }
    (decisions, failure)
}

/// The next depth-first prefix: bump the deepest decision that still
/// has an untried alternative, or `None` when the tree is exhausted.
pub(crate) fn next_prefix(decisions: &[Decision]) -> Option<Vec<usize>> {
    for i in (0..decisions.len()).rev() {
        if decisions[i].chosen + 1 < decisions[i].alts {
            let mut p: Vec<usize> = decisions[..i].iter().map(|d| d.chosen).collect();
            p.push(decisions[i].chosen + 1);
            return Some(p);
        }
    }
    None
}
