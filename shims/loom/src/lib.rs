//! Offline stand-in for the `loom` model checker.
//!
//! Provides the subset of loom's API that `distctr-shm` uses —
//! [`model`], [`thread`], [`sync::atomic`], [`sync::Mutex`],
//! [`hint::spin_loop`] — implemented as a **bounded-preemption
//! cooperative scheduler** over real OS threads:
//!
//! * Exactly one managed thread runs at a time; every atomic access,
//!   mutex acquisition, spawn and join is a *scheduling point* where the
//!   scheduler may hand the token to another runnable thread.
//! * [`model`] explores the schedule tree depth-first: each execution
//!   replays a recorded prefix of scheduling choices, takes the first
//!   untried alternative at the deepest branch, and reruns until the
//!   tree (bounded by the preemption budget) is exhausted.
//! * A voluntary switch at an ordinary access point costs one unit of
//!   the preemption budget ([`model::Builder::preemption_bound`]);
//!   forced switches (yields, spin hints, contended locks, joins) are
//!   free, exactly like CHESS-style bounded model checking.
//! * A panic in any managed thread aborts the execution and is
//!   re-raised by [`model`] together with the schedule that produced
//!   it.
//!
//! Caveats vs. the real crate (see also `shims/README.md`):
//!
//! * Only **sequential consistency** is modeled: every memory ordering
//!   is strengthened to `SeqCst`. Relaxed-ordering bugs are invisible
//!   here (the nightly ThreadSanitizer CI job is the complementary
//!   check).
//! * Mutex blocking is modeled as forced-switch spinning, so a true
//!   lock cycle surfaces as the per-execution step cap ("possible
//!   livelock/deadlock"), not as a deadlock state dump.
//! * No `Condvar`, `RwLock`, `UnsafeCell` instrumentation, or
//!   checkpoint files; no spurious-wakeup modeling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod rt;

/// Explore all schedules of `f` under the default [`model::Builder`].
///
/// # Panics
///
/// Re-raises (with the offending schedule) any panic a managed thread
/// hit in any explored execution.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    model::Builder::new().check(f);
}

/// Model configuration, mirroring `loom::model::Builder`.
pub mod model {
    use std::sync::Arc;

    use crate::rt;

    /// Configures and runs an exploration; mirrors the fields of
    /// `loom::model::Builder` this workspace uses.
    #[derive(Debug, Clone)]
    pub struct Builder {
        /// Maximum number of *voluntary* preemptions per execution
        /// (`None` = unbounded, full exploration). Overridable with the
        /// `LOOM_MAX_PREEMPTIONS` environment variable.
        pub preemption_bound: Option<usize>,
        /// Hard cap on explored executions; exceeding it panics so an
        /// oversized model is noticed rather than silently truncated.
        /// Overridable with `LOOM_MAX_ITERATIONS`.
        pub max_iterations: u64,
        /// Per-execution scheduling-point cap; exceeding it is reported
        /// as a livelock/deadlock.
        pub max_steps: u64,
    }
    impl Default for Builder {
        fn default() -> Self {
            Self::new()
        }
    }

    fn env_u64(name: &str) -> Option<u64> {
        std::env::var(name).ok().and_then(|v| v.parse().ok())
    }

    impl Builder {
        /// A fresh builder: unbounded preemptions, 500k executions,
        /// 200k scheduling points per execution.
        #[must_use]
        pub fn new() -> Self {
            Builder {
                preemption_bound: env_u64("LOOM_MAX_PREEMPTIONS").map(|b| b as usize),
                max_iterations: env_u64("LOOM_MAX_ITERATIONS").unwrap_or(500_000),
                max_steps: 200_000,
            }
        }

        /// Runs `f` once per schedule until the tree is exhausted.
        ///
        /// # Panics
        ///
        /// On the first failing execution (re-raising the managed
        /// thread's panic message plus the schedule), or if
        /// `max_iterations` is exceeded.
        pub fn check<F>(&self, f: F)
        where
            F: Fn() + Send + Sync + 'static,
        {
            let f = Arc::new(f);
            let mut prefix: Vec<usize> = Vec::new();
            let mut iterations: u64 = 0;
            loop {
                iterations += 1;
                assert!(
                    iterations <= self.max_iterations,
                    "loom-shim: exceeded {} executions; shrink the model or raise \
                     LOOM_MAX_ITERATIONS",
                    self.max_iterations
                );
                let (decisions, failure) =
                    rt::run_one(Arc::clone(&f), self.preemption_bound, self.max_steps, prefix);
                if std::env::var_os("LOOM_LOG").is_some() {
                    let d: Vec<(usize, usize)> =
                        decisions.iter().map(|d| (d.chosen, d.alts)).collect();
                    eprintln!("loom-shim exec {iterations}: {d:?} failure={failure:?}");
                }
                if let Some(msg) = failure {
                    let schedule: Vec<usize> = decisions.iter().map(|d| d.chosen).collect();
                    panic!(
                        "loom-shim: execution {iterations} failed\nschedule: {schedule:?}\n{msg}"
                    );
                }
                match rt::next_prefix(&decisions) {
                    Some(p) => prefix = p,
                    None => break,
                }
            }
        }
    }
}

/// Managed threads, mirroring `std::thread` / `loom::thread`.
pub mod thread {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};

    use crate::rt;

    struct JoinCell<T> {
        done: AtomicBool,
        val: Mutex<Option<T>>,
    }

    enum Inner<T> {
        Std(std::thread::JoinHandle<T>),
        Managed(Arc<JoinCell<T>>),
    }

    /// Handle to a spawned thread; mirrors `std::thread::JoinHandle`.
    pub struct JoinHandle<T>(Inner<T>);

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish and returns its result.
        ///
        /// # Errors
        ///
        /// Outside a model, propagates the thread's panic payload like
        /// `std`. Inside a model a managed panic aborts the whole
        /// execution before `join` can observe it, so the managed arm
        /// only ever returns `Ok`.
        ///
        /// # Panics
        ///
        /// Inside a model, panics if the execution was aborted.
        pub fn join(self) -> std::thread::Result<T> {
            match self.0 {
                Inner::Std(h) => h.join(),
                Inner::Managed(cell) => {
                    loop {
                        if cell.done.load(Ordering::SeqCst) {
                            let v = cell
                                .val
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .take()
                                .expect("loom-shim: join cell filled exactly once");
                            return Ok(v);
                        }
                        match rt::current() {
                            // Forced switch: waiting on a join never
                            // charges the preemption budget.
                            Some(ctx) => rt::switch(&ctx.exec, ctx.id, true),
                            None => std::thread::yield_now(),
                        }
                    }
                }
            }
        }
    }

    /// Spawns a thread: managed inside a model, plain `std` outside.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match rt::current() {
            None => JoinHandle(Inner::Std(std::thread::spawn(f))),
            Some(ctx) => {
                let cell =
                    Arc::new(JoinCell { done: AtomicBool::new(false), val: Mutex::new(None) });
                let c2 = Arc::clone(&cell);
                rt::spawn_managed(&ctx.exec, move || {
                    let v = f();
                    *c2.val.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(v);
                    c2.done.store(true, Ordering::SeqCst);
                });
                // A scheduling point right after the spawn lets the
                // child run first as an explored alternative.
                rt::switch(&ctx.exec, ctx.id, false);
                JoinHandle(Inner::Managed(cell))
            }
        }
    }

    /// Yields: a forced (budget-free) scheduling point under a model.
    pub fn yield_now() {
        match rt::current() {
            Some(ctx) => rt::switch(&ctx.exec, ctx.id, true),
            None => std::thread::yield_now(),
        }
    }
}

/// Spin hints, mirroring `std::hint` / `loom::hint`.
pub mod hint {
    use crate::rt;

    /// A spin-wait hint: a forced scheduling point under a model, so
    /// spin loops make progress instead of monopolizing the token.
    pub fn spin_loop() {
        match rt::current() {
            Some(ctx) => rt::switch(&ctx.exec, ctx.id, true),
            None => std::hint::spin_loop(),
        }
    }
}

/// Synchronization primitives, mirroring `std::sync` / `loom::sync`.
pub mod sync {
    pub use std::sync::Arc;

    /// Instrumented atomics; every access is a scheduling point.
    pub mod atomic {
        pub use std::sync::atomic::{fence as std_fence, Ordering};

        use crate::rt;

        /// An atomic fence: a scheduling point plus a `SeqCst` fence.
        pub fn fence(_order: Ordering) {
            rt::access();
            std_fence(Ordering::SeqCst);
        }

        macro_rules! int_atomic {
            ($(#[$doc:meta])* $name:ident, $std:ident, $ty:ty) => {
                $(#[$doc])*
                #[derive(Debug, Default)]
                pub struct $name {
                    inner: std::sync::atomic::$std,
                }

                impl $name {
                    /// Creates the atomic with an initial value.
                    #[must_use]
                    pub const fn new(v: $ty) -> Self {
                        Self { inner: std::sync::atomic::$std::new(v) }
                    }

                    /// Loads the value (scheduling point; `SeqCst`).
                    #[must_use]
                    pub fn load(&self, _o: Ordering) -> $ty {
                        rt::access();
                        self.inner.load(Ordering::SeqCst)
                    }

                    /// Stores a value (scheduling point; `SeqCst`).
                    pub fn store(&self, v: $ty, _o: Ordering) {
                        rt::access();
                        self.inner.store(v, Ordering::SeqCst);
                    }

                    /// Swaps the value, returning the previous one.
                    pub fn swap(&self, v: $ty, _o: Ordering) -> $ty {
                        rt::access();
                        self.inner.swap(v, Ordering::SeqCst)
                    }

                    /// Adds, returning the previous value.
                    pub fn fetch_add(&self, v: $ty, _o: Ordering) -> $ty {
                        rt::access();
                        self.inner.fetch_add(v, Ordering::SeqCst)
                    }

                    /// Subtracts, returning the previous value.
                    pub fn fetch_sub(&self, v: $ty, _o: Ordering) -> $ty {
                        rt::access();
                        self.inner.fetch_sub(v, Ordering::SeqCst)
                    }

                    /// Bitwise-ANDs, returning the previous value.
                    pub fn fetch_and(&self, v: $ty, _o: Ordering) -> $ty {
                        rt::access();
                        self.inner.fetch_and(v, Ordering::SeqCst)
                    }

                    /// Bitwise-ORs, returning the previous value.
                    pub fn fetch_or(&self, v: $ty, _o: Ordering) -> $ty {
                        rt::access();
                        self.inner.fetch_or(v, Ordering::SeqCst)
                    }

                    /// Bitwise-XORs, returning the previous value.
                    pub fn fetch_xor(&self, v: $ty, _o: Ordering) -> $ty {
                        rt::access();
                        self.inner.fetch_xor(v, Ordering::SeqCst)
                    }

                    /// Compare-and-exchange.
                    ///
                    /// # Errors
                    ///
                    /// The current value, if it differed from `cur`.
                    pub fn compare_exchange(
                        &self,
                        cur: $ty,
                        new: $ty,
                        _s: Ordering,
                        _f: Ordering,
                    ) -> Result<$ty, $ty> {
                        rt::access();
                        self.inner.compare_exchange(
                            cur,
                            new,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                    }

                    /// Weak compare-and-exchange (never fails
                    /// spuriously here).
                    ///
                    /// # Errors
                    ///
                    /// The current value, if it differed from `cur`.
                    pub fn compare_exchange_weak(
                        &self,
                        cur: $ty,
                        new: $ty,
                        s: Ordering,
                        f: Ordering,
                    ) -> Result<$ty, $ty> {
                        self.compare_exchange(cur, new, s, f)
                    }
                }
            };
        }

        int_atomic!(
            /// Instrumented `AtomicUsize`.
            AtomicUsize,
            AtomicUsize,
            usize
        );
        int_atomic!(
            /// Instrumented `AtomicU32`.
            AtomicU32,
            AtomicU32,
            u32
        );
        int_atomic!(
            /// Instrumented `AtomicU64`.
            AtomicU64,
            AtomicU64,
            u64
        );
        int_atomic!(
            /// Instrumented `AtomicI64`.
            AtomicI64,
            AtomicI64,
            i64
        );

        /// Instrumented `AtomicBool`.
        #[derive(Debug, Default)]
        pub struct AtomicBool {
            inner: std::sync::atomic::AtomicBool,
        }

        impl AtomicBool {
            /// Creates the atomic with an initial value.
            #[must_use]
            pub const fn new(v: bool) -> Self {
                Self { inner: std::sync::atomic::AtomicBool::new(v) }
            }

            /// Loads the value (scheduling point; `SeqCst`).
            #[must_use]
            pub fn load(&self, _o: Ordering) -> bool {
                rt::access();
                self.inner.load(Ordering::SeqCst)
            }

            /// Stores a value (scheduling point; `SeqCst`).
            pub fn store(&self, v: bool, _o: Ordering) {
                rt::access();
                self.inner.store(v, Ordering::SeqCst);
            }

            /// Swaps the value, returning the previous one.
            pub fn swap(&self, v: bool, _o: Ordering) -> bool {
                rt::access();
                self.inner.swap(v, Ordering::SeqCst)
            }

            /// Compare-and-exchange.
            ///
            /// # Errors
            ///
            /// The current value, if it differed from `cur`.
            pub fn compare_exchange(
                &self,
                cur: bool,
                new: bool,
                _s: Ordering,
                _f: Ordering,
            ) -> Result<bool, bool> {
                rt::access();
                self.inner.compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
            }

            /// Weak compare-and-exchange (never fails spuriously here).
            ///
            /// # Errors
            ///
            /// The current value, if it differed from `cur`.
            pub fn compare_exchange_weak(
                &self,
                cur: bool,
                new: bool,
                s: Ordering,
                f: Ordering,
            ) -> Result<bool, bool> {
                self.compare_exchange(cur, new, s, f)
            }
        }
    }

    use std::sync::{LockResult, PoisonError, TryLockError};

    use crate::rt;

    /// An instrumented mutex: acquisition is a scheduling point, and
    /// contention is modeled as forced-switch spinning (so every
    /// acquisition order is explored, but a true lock cycle surfaces as
    /// the step cap rather than a deadlock dump).
    #[derive(Debug, Default)]
    pub struct Mutex<T> {
        inner: std::sync::Mutex<T>,
    }

    /// Guard returned by [`Mutex::lock`].
    #[derive(Debug)]
    pub struct MutexGuard<'a, T> {
        inner: std::sync::MutexGuard<'a, T>,
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T> Mutex<T> {
        /// Creates a mutex holding `t`.
        #[must_use]
        pub const fn new(t: T) -> Self {
            Mutex { inner: std::sync::Mutex::new(t) }
        }

        /// Acquires the mutex.
        ///
        /// # Errors
        ///
        /// Poisoned if a holder panicked (outside a model; inside one,
        /// a managed panic aborts the execution first).
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            match rt::current() {
                None => match self.inner.lock() {
                    Ok(g) => Ok(MutexGuard { inner: g }),
                    Err(p) => Err(PoisonError::new(MutexGuard { inner: p.into_inner() })),
                },
                Some(ctx) => {
                    // One budget-charged point decides who attempts
                    // first; contention retries are free forced
                    // switches (the holder must run to release).
                    rt::switch(&ctx.exec, ctx.id, false);
                    loop {
                        match self.inner.try_lock() {
                            Ok(g) => return Ok(MutexGuard { inner: g }),
                            Err(TryLockError::Poisoned(p)) => {
                                return Err(PoisonError::new(MutexGuard { inner: p.into_inner() }))
                            }
                            Err(TryLockError::WouldBlock) => rt::switch(&ctx.exec, ctx.id, true),
                        }
                    }
                }
            }
        }

        /// Consumes the mutex, returning the inner value.
        ///
        /// # Errors
        ///
        /// Poisoned if a holder panicked.
        pub fn into_inner(self) -> LockResult<T> {
            self.inner.into_inner()
        }
    }
}

#[cfg(test)]
mod tests {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicU64 as StdU64, Ordering as StdOrd};
    use std::sync::Arc as StdArc;

    use super::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use super::sync::{Arc, Mutex};

    #[test]
    fn sequential_model_runs_exactly_once() {
        let runs = StdArc::new(StdU64::new(0));
        let r = StdArc::clone(&runs);
        // No managed concurrency -> a single schedule.
        super::model(move || {
            r.fetch_add(1, StdOrd::SeqCst);
            let a = AtomicU64::new(1);
            assert_eq!(a.fetch_add(2, Ordering::SeqCst), 1);
            assert_eq!(a.load(Ordering::SeqCst), 3);
        });
        assert_eq!(runs.load(StdOrd::SeqCst), 1);
    }

    #[test]
    fn fetch_add_from_two_threads_always_sums() {
        super::model(|| {
            let a = Arc::new(AtomicU64::new(0));
            let a2 = Arc::clone(&a);
            let h = super::thread::spawn(move || {
                a2.fetch_add(1, Ordering::SeqCst);
            });
            a.fetch_add(1, Ordering::SeqCst);
            h.join().expect("join");
            assert_eq!(a.load(Ordering::SeqCst), 2);
        });
    }

    #[test]
    fn exploration_finds_the_load_store_race() {
        // Non-atomic read-modify-write: some interleaving loses an
        // increment, and the checker must find it (the whole point).
        let result = catch_unwind(AssertUnwindSafe(|| {
            super::model(|| {
                let a = Arc::new(AtomicU64::new(0));
                let a2 = Arc::clone(&a);
                let h = super::thread::spawn(move || {
                    let v = a2.load(Ordering::SeqCst);
                    a2.store(v + 1, Ordering::SeqCst);
                });
                let v = a.load(Ordering::SeqCst);
                a.store(v + 1, Ordering::SeqCst);
                h.join().expect("join");
                assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
            });
        }));
        let msg = match result {
            Ok(()) => panic!("the lost-update interleaving was not found"),
            Err(p) => crate::rt::payload_to_string(&*p),
        };
        assert!(msg.contains("lost update"), "re-raised with the model's message: {msg}");
        assert!(msg.contains("schedule:"), "schedule attached for replay: {msg}");
    }

    #[test]
    fn zero_preemption_budget_misses_the_race_by_design() {
        // With no voluntary preemptions, threads serialize and the
        // racy counter above always reads 2: the bound is real.
        let mut b = super::model::Builder::new();
        b.preemption_bound = Some(0);
        b.check(|| {
            let a = Arc::new(AtomicU64::new(0));
            let a2 = Arc::clone(&a);
            let h = super::thread::spawn(move || {
                let v = a2.load(Ordering::SeqCst);
                a2.store(v + 1, Ordering::SeqCst);
            });
            let v = a.load(Ordering::SeqCst);
            a.store(v + 1, Ordering::SeqCst);
            h.join().expect("join");
            assert_eq!(a.load(Ordering::SeqCst), 2);
        });
    }

    #[test]
    fn mutex_preserves_mutual_exclusion() {
        super::model(|| {
            let m = Arc::new(Mutex::new(0u64));
            let m2 = Arc::clone(&m);
            let h = super::thread::spawn(move || {
                let mut g = m2.lock().expect("lock");
                let v = *g;
                *g = v + 1;
            });
            {
                let mut g = m.lock().expect("lock");
                let v = *g;
                *g = v + 1;
            }
            h.join().expect("join");
            assert_eq!(*m.lock().expect("lock"), 2, "mutex serializes the RMW");
        });
    }

    #[test]
    fn spin_waiting_on_a_flag_terminates() {
        super::model(|| {
            let flag = Arc::new(AtomicBool::new(false));
            let f2 = Arc::clone(&flag);
            let h = super::thread::spawn(move || {
                f2.store(true, Ordering::SeqCst);
            });
            while !flag.load(Ordering::SeqCst) {
                super::hint::spin_loop();
            }
            h.join().expect("join");
        });
    }

    #[test]
    fn types_fall_back_to_plain_std_outside_a_model() {
        let a = AtomicU64::new(5);
        assert_eq!(a.fetch_add(1, Ordering::Relaxed), 5);
        let m = Mutex::new(7u64);
        assert_eq!(*m.lock().expect("lock"), 7);
        let h = super::thread::spawn(|| 42u64);
        assert_eq!(h.join().expect("join"), 42);
    }
}
