//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API subset its property tests use: the [`proptest!`]
//! macro, [`Strategy`] with `prop_map`/`prop_shuffle`/`boxed`, integer
//! ranges, [`Just`], [`any`], `prop::collection::vec`, [`prop_oneof!`]
//! and the `prop_assert*` macros. Inputs are sampled from a seeded
//! generator (deterministic per test name), so runs are reproducible.
//! There is no shrinking: a failing case panics with the case number so
//! it can be replayed under a debugger.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;

/// Per-test configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` sampled inputs.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Samples one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Shuffles generated collections.
        fn prop_shuffle(self) -> Shuffle<Self>
        where
            Self: Sized,
            Self::Value: Shuffleable,
        {
            Shuffle { inner: self }
        }

        /// Type-erases the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Collections whose element order can be randomized.
    pub trait Shuffleable {
        /// Shuffles in place.
        fn shuffle_with(&mut self, rng: &mut StdRng);
    }

    impl<T> Shuffleable for Vec<T> {
        fn shuffle_with(&mut self, rng: &mut StdRng) {
            use rand::seq::SliceRandom;
            self.as_mut_slice().shuffle(rng);
        }
    }

    /// See [`Strategy::prop_shuffle`].
    pub struct Shuffle<S> {
        inner: S,
    }

    impl<S> Strategy for Shuffle<S>
    where
        S: Strategy,
        S::Value: Shuffleable,
    {
        type Value = S::Value;
        fn sample(&self, rng: &mut StdRng) -> S::Value {
            let mut v = self.inner.sample(rng);
            v.shuffle_with(rng);
            v
        }
    }

    /// Uniform choice between type-erased alternatives.
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union of the given arms (at least one).
        #[must_use]
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            let arm = rng.gen_range(0..self.arms.len());
            self.arms[arm].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Samples one arbitrary value.
        fn arbitrary_value(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut StdRng) -> Self {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut StdRng) -> Self {
            rng.gen::<bool>()
        }
    }

    /// Strategy over the full domain of `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T` (`any::<u64>()` etc.).
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// Strategy for vectors with sampled length.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// A vector of `element`-generated values with a length drawn from
    /// `len` (half-open, as in `proptest`).
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic per-test seeding.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds the RNG for one sampled case (macro plumbing).
    #[must_use]
    pub fn new_rng(base: u64, case: u32) -> StdRng {
        StdRng::seed_from_u64(
            base.wrapping_add(u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        )
    }

    /// FNV-1a hash of the test path, used as the base RNG seed so each
    /// test gets a stable, distinct input stream.
    #[must_use]
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Samples a strategy once (macro plumbing; public for the macros).
pub fn sample_one<S: strategy::Strategy>(strat: &S, rng: &mut StdRng) -> S::Value {
    strat.sample(rng)
}

/// The `proptest!` test-block macro: expands each contained `fn` into a
/// `#[test]` that runs `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (@with_config ($cfg:expr)
        $(
            #[test]
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let base = $crate::test_runner::seed_for(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    let mut prop_rng = $crate::test_runner::new_rng(base, case);
                    $(let $arg = $crate::sample_one(&($strat), &mut prop_rng);)+
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a condition inside a property (panics on failure — no
/// shrinking in this offline stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    // The `prop::collection::vec(..)` path used by callers.
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn ranges_and_maps_sample_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let strat = (10u64..20).prop_map(|x| x * 2);
        for _ in 0..200 {
            let v = crate::sample_one(&strat, &mut rng);
            assert!((20..40).contains(&v) && v % 2 == 0);
        }
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut rng = StdRng::seed_from_u64(2);
        let strat = Just((0..20).collect::<Vec<usize>>()).prop_shuffle();
        let v = crate::sample_one(&strat, &mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<usize>>());
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = StdRng::seed_from_u64(3);
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[crate::sample_one(&strat, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn vec_lengths_respect_the_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let strat = prop::collection::vec(0u32..5, 2..7);
        for _ in 0..100 {
            let v = crate::sample_one(&strat, &mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn the_macro_itself_works(x in 0u64..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            prop_assert_eq!(flip as u64 * 2 % 2, 0);
        }
    }
}
