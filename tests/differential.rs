//! Differential testing: under the paper's sequential model, every
//! counter implementation must produce the *identical* observable
//! behaviour — values 0, 1, 2, ... in operation order — regardless of
//! algorithm, delivery policy, seed or initiator permutation. Any
//! divergence between two implementations is a bug in one of them.

use distctr::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn all_counters(n: usize, policy: DeliveryPolicy) -> Vec<Box<dyn Counter>> {
    let width = ((n as f64).sqrt() as usize).next_power_of_two().max(2);
    vec![
        Box::new(
            TreeCounter::builder(n)
                .expect("builder")
                .trace(TraceMode::Off)
                .delivery(policy.clone())
                .build()
                .expect("tree"),
        ),
        Box::new(
            StaticTreeCounter::with_policy(n, TraceMode::Off, policy.clone()).expect("static"),
        ),
        Box::new(CentralCounter::with_policy(n, TraceMode::Off, policy.clone()).expect("central")),
        Box::new(
            CombiningTreeCounter::with_policy(n, TraceMode::Off, policy.clone())
                .expect("combining"),
        ),
        Box::new(
            CountingNetworkCounter::with_policy(n, width, TraceMode::Off, policy.clone())
                .expect("counting"),
        ),
        Box::new(
            DiffractingTreeCounter::with_policy(n, width.trailing_zeros(), TraceMode::Off, policy)
                .expect("diffracting"),
        ),
    ]
}

#[test]
fn every_pair_of_implementations_agrees_on_every_schedule() {
    let n = 16usize;
    for seed in 0..5u64 {
        // One shared initiator order per seed (trees round n up, so draw
        // the order per counter from its own size with the same seed).
        for policy in DeliveryPolicy::test_suite() {
            let mut value_sequences: Vec<(String, Vec<u64>)> = Vec::new();
            for mut counter in all_counters(n, policy.clone()) {
                let mut order: Vec<ProcessorId> =
                    (0..counter.processors()).map(ProcessorId::new).collect();
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                order.shuffle(&mut rng);
                order.truncate(n); // same op count everywhere
                let mut values = Vec::with_capacity(n);
                for &p in &order {
                    values.push(counter.inc(p).expect("inc runs").value);
                }
                value_sequences.push((counter.name().to_string(), values));
            }
            let (ref_name, ref_values) = &value_sequences[0];
            for (name, values) in &value_sequences[1..] {
                assert_eq!(
                    values,
                    ref_values,
                    "{name} diverges from {ref_name} (seed {seed}, policy {})",
                    policy.name()
                );
            }
        }
    }
}

#[test]
fn observable_state_is_delay_independent_per_implementation() {
    // For each implementation: the same op order under FIFO vs LIFO vs
    // random delays yields the same value sequence (sequential ops hide
    // all asynchrony).
    let n = 16usize;
    for idx in 0..6usize {
        let mut sequences = Vec::new();
        for policy in DeliveryPolicy::test_suite() {
            let mut counter = all_counters(n, policy).remove(idx);
            let mut values = Vec::new();
            for i in 0..n {
                values.push(
                    counter
                        .inc(ProcessorId::new(i % counter.processors()))
                        .expect("inc runs")
                        .value,
                );
            }
            sequences.push((counter.name().to_string(), values));
        }
        let (name, first) = &sequences[0];
        for (_, other) in &sequences[1..] {
            assert_eq!(other, first, "{name} must be delay-independent");
        }
    }
}

#[test]
#[ignore = "slow: k = 6 means n = 279,936 processors; run with --ignored --release"]
fn tree_counter_at_quarter_million_processors() {
    // The largest exact tree order that fits comfortably: k = 6,
    // n = 279,936. The Bottleneck Theorem holds with the same constant.
    let n = 279_936usize;
    let mut counter =
        TreeCounter::builder(n).expect("builder").trace(TraceMode::Off).build().expect("tree");
    let out = SequentialDriver::run_shuffled(&mut counter, 6).expect("sequence runs");
    assert!(out.values_are_sequential());
    let bottleneck = counter.loads().max_load();
    assert!(bottleneck >= 6, "lower bound k = 6");
    assert!(bottleneck <= 20 * 6, "O(k) bound: {bottleneck}");
    let audit = counter.audit();
    assert!(audit.grow_old_lemma_holds());
    assert!(audit.retirement_lemma_holds());
    assert!(audit.retirement_counts_within_pools(counter.topology()));
    assert!(counter.loads().gini() < 0.8, "load is spread, not concentrated");
}
