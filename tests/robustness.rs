//! Robustness sweep: the upper-bound guarantees hold across a wide grid
//! of seeds × delivery policies × workload shapes — not just the
//! report's canonical configuration.

use distctr::prelude::*;
use distctr::sim::Workload;

#[test]
fn lemmas_hold_across_a_seed_and_policy_grid() {
    let n = 81usize;
    for seed in (0..50u64).step_by(7) {
        for policy in DeliveryPolicy::test_suite() {
            let mut counter = TreeCounter::builder(n)
                .expect("builder")
                .trace(TraceMode::Off)
                .delivery(policy.clone())
                .build()
                .expect("tree");
            let out = SequentialDriver::run_shuffled(&mut counter, seed).expect("runs");
            assert!(out.values_are_sequential(), "seed {seed} policy {}", policy.name());
            let audit = counter.audit();
            assert!(audit.grow_old_lemma_holds(), "seed {seed} policy {}", policy.name());
            assert!(audit.retirement_lemma_holds(), "seed {seed} policy {}", policy.name());
            assert!(
                audit.retirement_counts_within_pools(counter.topology()),
                "seed {seed} policy {}",
                policy.name()
            );
            assert!(
                counter.loads().max_load() <= 20 * 3,
                "seed {seed} policy {}: {}",
                policy.name(),
                counter.loads().max_load()
            );
        }
    }
}

#[test]
fn correctness_across_workload_shapes() {
    let n = 81usize;
    let workloads = [
        Workload::Identity,
        Workload::Canonical { seed: 3 },
        Workload::MultiRound { rounds: 2, seed: 4 },
        Workload::Zipf { ops: 120, s: 1.2, seed: 5 },
        Workload::SingleInitiator { initiator: 40, ops: 30 },
    ];
    for workload in &workloads {
        // Multi-round and heavy-skew workloads outlive one-shot pools;
        // use recycling so the comparison is about correctness, not pool
        // sizing (E12/E15 study the load side).
        let mut counter = TreeCounter::builder(n)
            .expect("builder")
            .trace(TraceMode::Off)
            .pool(distctr::core::PoolPolicy::Recycling)
            .build()
            .expect("tree");
        let out = SequentialDriver::run_workload(&mut counter, workload).expect("runs");
        assert!(out.values_are_sequential(), "workload {}", workload.name());
        assert!(counter.audit().retirement_lemma_holds(), "workload {}", workload.name());
    }
}

#[test]
fn every_baseline_survives_the_grid_at_small_n() {
    let n = 16usize;
    for seed in [1u64, 9, 27] {
        for policy in DeliveryPolicy::test_suite() {
            let counters: Vec<Box<dyn Counter>> = vec![
                Box::new(
                    CentralCounter::with_policy(n, TraceMode::Off, policy.clone())
                        .expect("central"),
                ),
                Box::new(
                    CombiningTreeCounter::with_policy(n, TraceMode::Off, policy.clone())
                        .expect("combining"),
                ),
                Box::new(
                    CountingNetworkCounter::with_policy(n, 4, TraceMode::Off, policy.clone())
                        .expect("counting"),
                ),
                Box::new(
                    DiffractingTreeCounter::with_policy(n, 2, TraceMode::Off, policy.clone())
                        .expect("diffracting"),
                ),
            ];
            for mut counter in counters {
                let out = SequentialDriver::run_shuffled(counter.as_mut(), seed).expect("runs");
                assert!(
                    out.values_are_sequential(),
                    "{} seed {seed} policy {}",
                    counter.name(),
                    policy.name()
                );
            }
        }
    }
}
