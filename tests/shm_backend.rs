//! Smoke: the shared-memory backends served over real TCP.
//!
//! The same serving stack the loadgen binary uses (`CounterServer` +
//! `run_load`), hosting each `distctr-shm` structure behind the
//! `CounterBackend` trait. Tree and central are linearizable, so the
//! values observed across connections must be exactly `0..ops`; the
//! counting network is quiescently consistent, so the check is the
//! gap-free multiset (the same split E26 gates on).

use distctr::server::{run_load, CounterServer, LoadConfig};
use distctr::shm::{AtomicBitonicCounter, CentralCounter, ShmTreeCounter};

const CONNS: usize = 4;
const OPS: usize = 200;

fn sorted_values(report: &distctr::server::LoadReport) -> Vec<u64> {
    let mut v = report.values.clone();
    v.sort_unstable();
    v
}

#[test]
fn shm_tree_serves_sequential_values_over_tcp() {
    let backend = ShmTreeCounter::new(8).expect("arena");
    let mut server = CounterServer::serve(backend).expect("serve");
    let report = run_load(server.local_addr(), &LoadConfig::closed(CONNS, OPS)).expect("load");
    assert!(report.values_are_sequential_from(0), "tree over TCP is exact");
    let stats = server.stats();
    assert_eq!(stats.ops, OPS as u64);
    assert!(stats.bottleneck > 0, "arena load accounting flows through server stats");
    server.shutdown().expect("shutdown");
}

#[test]
fn shm_central_serves_sequential_values_over_tcp() {
    let backend = CentralCounter::new(4);
    let mut server = CounterServer::serve(backend).expect("serve");
    let report = run_load(server.local_addr(), &LoadConfig::closed(CONNS, OPS)).expect("load");
    assert!(report.values_are_sequential_from(0), "one fetch_add cell over TCP is exact");
    server.shutdown().expect("shutdown");
}

#[test]
fn shm_network_serves_a_gap_free_multiset_over_tcp() {
    let backend = AtomicBitonicCounter::new(4);
    let mut server = CounterServer::serve(backend).expect("serve");
    let report = run_load(server.local_addr(), &LoadConfig::closed(CONNS, OPS)).expect("load");
    // The server serializes ops per accept loop anyway, but the promise
    // we hold the network to is the quiescent one: every value exactly
    // once.
    assert_eq!(sorted_values(&report), (0..OPS as u64).collect::<Vec<_>>());
    server.shutdown().expect("shutdown");
}
