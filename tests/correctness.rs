//! Cross-crate integration: every implementation counts correctly under
//! every delivery policy, and the Hot Spot Lemma holds on all recorded
//! traces.

use distctr::prelude::*;
use distctr::sim::ContactSet;

fn all_counters(n: usize, trace: TraceMode, policy: DeliveryPolicy) -> Vec<Box<dyn Counter>> {
    let width = ((n as f64).sqrt() as usize).next_power_of_two().max(2);
    vec![
        Box::new(
            TreeCounter::builder(n)
                .expect("builder")
                .trace(trace)
                .delivery(policy.clone())
                .build()
                .expect("tree"),
        ),
        Box::new(StaticTreeCounter::with_policy(n, trace, policy.clone()).expect("static")),
        Box::new(CentralCounter::with_policy(n, trace, policy.clone()).expect("central")),
        Box::new(CombiningTreeCounter::with_policy(n, trace, policy.clone()).expect("combining")),
        Box::new(
            CountingNetworkCounter::with_policy(n, width, trace, policy.clone()).expect("counting"),
        ),
        Box::new(
            DiffractingTreeCounter::with_policy(n, width.trailing_zeros(), trace, policy)
                .expect("diffracting"),
        ),
    ]
}

#[test]
fn every_implementation_counts_sequentially_under_every_policy() {
    for n in [8usize, 27] {
        for policy in DeliveryPolicy::test_suite() {
            for mut counter in all_counters(n, TraceMode::Off, policy.clone()) {
                let outcome =
                    SequentialDriver::run_shuffled(counter.as_mut(), 42).expect("sequence runs");
                assert!(
                    outcome.values_are_sequential(),
                    "{} under {} at n={n}",
                    counter.name(),
                    policy.name()
                );
            }
        }
    }
}

#[test]
fn hot_spot_lemma_on_every_implementation_and_policy() {
    for policy in DeliveryPolicy::test_suite() {
        for mut counter in all_counters(16, TraceMode::Contacts, policy.clone()) {
            let outcome =
                SequentialDriver::run_shuffled(counter.as_mut(), 7).expect("sequence runs");
            let contacts: Vec<&ContactSet> = outcome
                .results
                .iter()
                .map(|r| &r.trace.as_ref().expect("contacts recorded").contacts)
                .collect();
            for (i, pair) in contacts.windows(2).enumerate() {
                assert!(
                    pair[0].intersects(pair[1]),
                    "Hot Spot Lemma violated by {} under {} between ops {i} and {}",
                    counter.name(),
                    policy.name(),
                    i + 1
                );
            }
        }
    }
}

#[test]
fn identity_and_reverse_permutations_work() {
    for mut counter in all_counters(16, TraceMode::Off, DeliveryPolicy::Fifo) {
        let out = SequentialDriver::run_identity(counter.as_mut()).expect("identity runs");
        assert!(out.values_are_sequential(), "{} identity", counter.name());
    }
    for mut counter in all_counters(16, TraceMode::Off, DeliveryPolicy::Fifo) {
        // Trees round n up to k^(k+1); build the permutation over the
        // counter's actual processor count.
        let order: Vec<ProcessorId> =
            (0..counter.processors()).rev().map(ProcessorId::new).collect();
        let out =
            SequentialDriver::run_permutation(counter.as_mut(), &order).expect("reverse runs");
        assert!(out.values_are_sequential(), "{} reverse", counter.name());
    }
}

#[test]
fn loads_are_policy_independent_for_deterministic_protocols() {
    // FIFO and LIFO are both deterministic schedules; the *total* message
    // count of the tree counter may differ (retirement cascades can
    // interleave differently), but correctness and the O(k) bottleneck
    // ceiling hold under both.
    for policy in [DeliveryPolicy::Fifo, DeliveryPolicy::Lifo] {
        let mut counter =
            TreeCounter::builder(81).expect("builder").delivery(policy).build().expect("tree");
        let out = SequentialDriver::run_identity(&mut counter).expect("runs");
        assert!(out.values_are_sequential());
        assert!(counter.loads().max_load() <= 20 * 3);
    }
}

#[test]
fn concurrent_implementations_are_gap_free_under_every_policy() {
    let n = 16usize;
    for policy in DeliveryPolicy::test_suite() {
        let mut counters: Vec<Box<dyn ConcurrentCounter>> = vec![
            Box::new(CentralCounter::with_policy(n, TraceMode::Off, policy.clone()).expect("c")),
            Box::new(
                CombiningTreeCounter::with_policy(n, TraceMode::Off, policy.clone()).expect("c"),
            ),
            Box::new(
                CountingNetworkCounter::with_policy(n, 4, TraceMode::Off, policy.clone())
                    .expect("c"),
            ),
            Box::new(
                DiffractingTreeCounter::with_policy(n, 2, TraceMode::Off, policy.clone())
                    .expect("c"),
            ),
        ];
        for counter in &mut counters {
            let values =
                ConcurrentDriver::run_batches(counter.as_mut(), 5, 13).expect("batches run");
            assert!(
                ConcurrentDriver::values_are_gap_free(&values),
                "{} under {}",
                counter.name(),
                policy.name()
            );
        }
    }
}
