//! The paper's claims as executable integration tests: the lower bound,
//! the matching upper bound, and the separation between them.

use distctr::bound::theory;
use distctr::prelude::*;

#[test]
fn theorem_sandwich_tree_counter_between_k_and_20k() {
    for k in 2..=4u32 {
        let n = distctr::core::kmath::leaves_of_order(k) as usize;
        let mut counter = TreeCounter::new(n).expect("tree");
        let out = SequentialDriver::run_shuffled(&mut counter, k as u64).expect("runs");
        assert!(out.values_are_sequential());
        let b = counter.loads().max_load();
        assert!(b >= u64::from(k), "lower bound: {b} >= k = {k}");
        assert!(b <= 20 * u64::from(k), "upper bound: {b} <= 20k = {}", 20 * k);
    }
}

#[test]
fn centralized_counter_is_theta_n_bottlenecked() {
    for n in [8usize, 81, 1024] {
        let mut counter = CentralCounter::new(n).expect("central");
        SequentialDriver::run_identity(&mut counter).expect("runs");
        let b = counter.loads().max_load();
        assert!(b >= 2 * n as u64, "n={n}: coordinator load {b} >= 2n");
    }
}

#[test]
fn retirement_beats_every_theta_n_baseline_at_scale() {
    // At n = 1024 (k = 4) the separation is decisive.
    let n = 1024usize;
    let tree = {
        let mut c = TreeCounter::new(n).expect("tree");
        SequentialDriver::run_shuffled(&mut c, 1).expect("runs");
        c.loads().max_load()
    };
    for (name, bottleneck) in [
        ("central", {
            let mut c = CentralCounter::new(n).expect("central");
            SequentialDriver::run_shuffled(&mut c, 1).expect("runs");
            c.loads().max_load()
        }),
        ("static-tree", {
            let mut c = StaticTreeCounter::new(n).expect("static");
            SequentialDriver::run_shuffled(&mut c, 1).expect("runs");
            c.loads().max_load()
        }),
        ("combining-tree", {
            let mut c = CombiningTreeCounter::new(n).expect("combining");
            SequentialDriver::run_shuffled(&mut c, 1).expect("runs");
            c.loads().max_load()
        }),
        ("diffracting-tree", {
            let mut c = DiffractingTreeCounter::new(n, 5).expect("diffracting");
            SequentialDriver::run_shuffled(&mut c, 1).expect("runs");
            c.loads().max_load()
        }),
    ] {
        assert!(
            10 * tree < bottleneck,
            "retirement tree ({tree}) must beat {name} ({bottleneck}) by >10x at n={n}"
        );
    }
}

#[test]
fn retirement_is_the_load_spreading_mechanism() {
    // Ablation: identical topology and routing; only retirement differs.
    let n = 1024usize;
    let with = {
        let mut c = TreeCounter::new(n).expect("tree");
        SequentialDriver::run_identity(&mut c).expect("runs");
        c.loads().max_load()
    };
    let without = {
        let mut c = StaticTreeCounter::new(n).expect("static");
        SequentialDriver::run_identity(&mut c).expect("runs");
        c.loads().max_load()
    };
    assert!(
        20 * with < without,
        "retirement cuts the bottleneck by >20x at n={n}: {with} vs {without}"
    );
}

#[test]
fn adversary_cannot_push_tree_counter_above_big_o_k() {
    // Even the proof's own adversary cannot hurt the matching upper
    // bound: the tree's bottleneck stays within its O(k) ceiling.
    let mut counter = TreeCounter::new(81).expect("tree");
    let outcome = Adversary::sampled(8, 5).run(&mut counter).expect("adversary runs");
    assert!(outcome.bottleneck.1 >= 3);
    assert!(outcome.bottleneck.1 <= 20 * 3, "O(k) under adversarial order too");
}

#[test]
fn bound_grows_like_log_over_loglog() {
    // k(n) is very slowly growing: the paper's point that even huge
    // networks only force a tiny per-processor load.
    assert_eq!(theory::lower_bound_k(8), 2);
    assert_eq!(theory::lower_bound_k(81), 3);
    assert_eq!(theory::lower_bound_k(1024), 4);
    assert_eq!(theory::lower_bound_k(15_625), 5);
    assert_eq!(theory::lower_bound_k(279_936), 6);
    // Continuous overlay agrees within 1 on exact points.
    for k in 2..=6u32 {
        let n = distctr::core::kmath::leaves_of_order(k) as f64;
        assert!((theory::lower_bound_continuous(n) - f64::from(k)).abs() < 1e-6);
    }
}

#[test]
fn counter_value_survives_root_retirements() {
    // The root retires k^k - 1 times at most; the counter value must ride
    // along in the handoff. After n ops the value is exactly n.
    let mut counter = TreeCounter::new(81).expect("tree");
    SequentialDriver::run_identity(&mut counter).expect("runs");
    assert_eq!(counter.value(), 81);
    let root_retirements = counter.audit().retirements_by_level()[0];
    assert!(root_retirements > 0, "the root did retire during the run");
}
