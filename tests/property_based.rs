//! Property-based tests (proptest) over the core invariants: counting
//! correctness for arbitrary permutations and seeds, Hot Spot chains,
//! DAG/list modelling, lemma audits, and bound arithmetic.

use distctr::bound::theory;
use distctr::prelude::*;
use distctr::sim::{CommList, ContactSet};
use proptest::prelude::*;

fn arbitrary_permutation(n: usize) -> impl Strategy<Value = Vec<ProcessorId>> {
    Just((0..n).collect::<Vec<usize>>())
        .prop_shuffle()
        .prop_map(|v| v.into_iter().map(ProcessorId::new).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tree_counter_counts_any_permutation(order in arbitrary_permutation(27)) {
        let mut counter = TreeCounter::new(27).expect("tree");
        // n = 27 rounds up to 81; restrict ops to the requested 27
        // initiators — a prefix workload is also legal (ops need not
        // come from all processors).
        for (i, &p) in order.iter().enumerate() {
            let r = counter.inc(p).expect("inc runs");
            prop_assert_eq!(r.value, i as u64);
        }
    }

    #[test]
    fn tree_counter_lemmas_hold_for_any_seed(seed in any::<u64>()) {
        let mut counter = TreeCounter::new(81).expect("tree");
        let out = SequentialDriver::run_shuffled(&mut counter, seed).expect("runs");
        prop_assert!(out.values_are_sequential());
        prop_assert!(counter.audit().grow_old_lemma_holds());
        prop_assert!(counter.audit().retirement_lemma_holds());
        prop_assert!(counter.audit().retirement_counts_within_pools(counter.topology()));
        prop_assert!(counter.loads().max_load() <= 20 * 3);
        prop_assert!(counter.loads().max_load() >= 3);
    }

    #[test]
    fn tree_counter_correct_under_random_delays(seed in any::<u64>(), max_delay in 1u64..16) {
        let mut counter = TreeCounter::builder(27)
            .expect("builder")
            .delivery(DeliveryPolicy::random_delay(seed, max_delay))
            .build()
            .expect("tree");
        let out = SequentialDriver::run_shuffled(&mut counter, seed ^ 0xABCD).expect("runs");
        prop_assert!(out.values_are_sequential());
        prop_assert!(counter.audit().retirement_lemma_holds());
    }

    #[test]
    fn hot_spot_chain_for_random_workloads(seed in any::<u64>()) {
        let mut counter = TreeCounter::new(27).expect("tree");
        let out = SequentialDriver::run_shuffled(&mut counter, seed).expect("runs");
        let contacts: Vec<&ContactSet> = out
            .results
            .iter()
            .map(|r| &r.trace.as_ref().expect("contacts").contacts)
            .collect();
        let verdict = distctr::quorum::check_chain(&contacts);
        prop_assert!(verdict.holds(), "verdict: {verdict:?}");
    }

    #[test]
    fn comm_lists_model_their_dags(seed in any::<u64>(), initiator in 0usize..27) {
        let mut counter = TreeCounter::builder(27)
            .expect("builder")
            .trace(TraceMode::Full)
            .build()
            .expect("tree");
        // A few warmup ops so traces include retirement traffic.
        SequentialDriver::run_shuffled(&mut counter, seed).expect("warmup");
        let r = counter.inc(ProcessorId::new(initiator)).expect("inc");
        let trace = r.trace.expect("full trace");
        let dag = trace.dag.expect("dag");
        let list = CommList::from_dag(&dag);
        prop_assert!(list.models(&dag));
        prop_assert_eq!(list.len_arcs(), dag.arc_count() as u64 - (dag.sources().len() as u64 - 1),
            "every arc corresponds to one list step up to extra sources");
    }

    #[test]
    fn bound_arithmetic_is_consistent(n in 1u64..3_000_000) {
        let k = theory::lower_bound_k(n);
        prop_assert!(distctr::core::kmath::leaves_of_order(k) <= n || k == 1);
        if k < distctr::core::kmath::MAX_ORDER {
            prop_assert!(distctr::core::kmath::leaves_of_order(k + 1) > n);
        }
        let x = theory::lower_bound_continuous(n as f64);
        prop_assert!(x >= f64::from(k) - 1e-9, "continuous >= discrete: {x} vs {k}");
        prop_assert!(x < f64::from(k + 1) + 1e-9, "continuous < k+1: {x} vs {}", k + 1);
    }

    #[test]
    fn amgm_inequality_for_any_lengths(lens in prop::collection::vec(0u64..40, 1..64)) {
        prop_assert!(theory::amgm_holds(&lens));
    }

    #[test]
    fn gap_freedom_for_random_batch_splits(batch in 1usize..17, seed in any::<u64>()) {
        let mut counter = CombiningTreeCounter::new(16).expect("combining");
        let values = ConcurrentDriver::run_batches(&mut counter, batch, seed).expect("runs");
        prop_assert!(ConcurrentDriver::values_are_gap_free(&values));
    }

    #[test]
    fn counting_network_gap_free_for_any_batching(batch in 1usize..17, seed in any::<u64>()) {
        let mut counter = CountingNetworkCounter::new(16, 8).expect("counting");
        let values = ConcurrentDriver::run_batches(&mut counter, batch, seed).expect("runs");
        prop_assert!(ConcurrentDriver::values_are_gap_free(&values));
        prop_assert!(distctr::baselines::has_step_property(&counter.exit_counts_by_rank()));
    }

    #[test]
    fn diffracting_tree_gap_free_for_any_batching(batch in 1usize..17, seed in any::<u64>()) {
        let mut counter = DiffractingTreeCounter::new(16, 3).expect("diffracting");
        let values = ConcurrentDriver::run_batches(&mut counter, batch, seed).expect("runs");
        prop_assert!(ConcurrentDriver::values_are_gap_free(&values));
    }
}
