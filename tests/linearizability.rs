//! Overlapping-operation semantics: centralized counters are
//! linearizable; counting networks are only quiescently consistent.
//! (Herlihy-Shavit-Waarts, *Linearizable Counting Networks* — cited by
//! the paper — formalizes exactly this distinction.)

use distctr::prelude::*;
use distctr::sim::{
    counter_history_linearizable, LinearizabilityVerdict, OverlappedCounter, SimTime,
};

/// The classic non-linearizable execution on a width-2 counting network:
/// a token stalls between the balancer and its exit counter; a later
/// token completes with a larger value; a third token, started after the
/// second finished, slips into the stalled token's exit slot and returns
/// the *smaller* value 0.
fn stalled_token_schedule<C: OverlappedCounter>(counter: &mut C) -> Vec<distctr::sim::OpRecord> {
    let t = SimTime::from_ticks;
    counter.start_inc(ProcessorId::new(0)).expect("T1 starts");
    counter.advance_until(t(50)).expect("T1 stalls in the network");
    counter.start_inc(ProcessorId::new(1)).expect("T2 starts");
    counter.advance_until(t(70)).expect("T2 completes");
    counter.start_inc(ProcessorId::new(2)).expect("T3 starts");
    let completed = counter.finish_all().expect("drain");
    completed.into_iter().map(|c| c.to_record()).collect()
}

#[test]
fn counting_network_violates_linearizability_under_a_stall() {
    // Script: T1's injection (send #0) takes 1 tick; its balancer->exit
    // hop (send #1) takes 100 ticks; everything else is prompt.
    let mut counter = CountingNetworkCounter::with_policy(
        4,
        2,
        TraceMode::Contacts,
        DeliveryPolicy::scripted([1, 100]),
    )
    .expect("counting network");
    let records = stalled_token_schedule(&mut counter);
    assert_eq!(records.len(), 3);

    // Quiescent consistency still holds: the values are exactly {0,1,2}.
    let mut values: Vec<u64> = records.iter().map(|r| r.value).collect();
    values.sort_unstable();
    assert_eq!(values, vec![0, 1, 2], "gap-free after quiescence");

    // But the history is not linearizable: T2 (value 1) completed before
    // T3 (value 0) started.
    match counter_history_linearizable(&records) {
        LinearizabilityVerdict::Violation { earlier, later } => {
            assert!(earlier.value > later.value);
            assert!(earlier.completed_at < later.started_at);
        }
        LinearizabilityVerdict::Linearizable => {
            panic!("the stalled-token schedule must violate linearizability: {records:?}")
        }
    }
}

#[test]
fn central_counter_is_linearizable_under_the_same_stall() {
    // The same adversarial delays cannot break the centralized counter:
    // the coordinator assigns values in processing order, which respects
    // real time.
    let mut counter =
        CentralCounter::with_policy(4, TraceMode::Contacts, DeliveryPolicy::scripted([1, 100]))
            .expect("central");
    let records = stalled_token_schedule(&mut counter);
    assert!(
        counter_history_linearizable(&records).is_linearizable(),
        "central counter must stay linearizable: {records:?}"
    );
}

#[test]
fn central_counter_linearizable_under_random_staggered_schedules() {
    for seed in 0..20u64 {
        let mut counter = CentralCounter::with_policy(
            8,
            TraceMode::Contacts,
            DeliveryPolicy::random_delay(seed, 16),
        )
        .expect("central");
        // Stagger starts pseudo-randomly.
        let mut at = 0u64;
        for i in 0..8usize {
            at += (seed.wrapping_mul(31).wrapping_add(i as u64)) % 7;
            counter.advance_until(SimTime::from_ticks(at)).expect("advance");
            counter.start_inc(ProcessorId::new(i)).expect("start");
        }
        let records: Vec<_> =
            counter.finish_all().expect("drain").into_iter().map(|c| c.to_record()).collect();
        assert!(
            counter_history_linearizable(&records).is_linearizable(),
            "seed {seed}: {records:?}"
        );
    }
}

#[test]
fn counting_network_stays_quiescently_consistent_under_random_staggering() {
    for seed in 0..20u64 {
        let mut counter = CountingNetworkCounter::with_policy(
            8,
            4,
            TraceMode::Contacts,
            DeliveryPolicy::random_delay(seed, 16),
        )
        .expect("counting network");
        let mut at = 0u64;
        for i in 0..8usize {
            at += seed % 5;
            counter.advance_until(SimTime::from_ticks(at)).expect("advance");
            counter.start_inc(ProcessorId::new(i)).expect("start");
        }
        let completed = counter.finish_all().expect("drain");
        let mut values: Vec<u64> = completed.iter().map(|c| c.value).collect();
        values.sort_unstable();
        assert_eq!(values, (0..8).collect::<Vec<u64>>(), "seed {seed}: gap-free");
    }
}

#[test]
fn overlapped_timing_fields_are_consistent() {
    let mut counter = CentralCounter::new(4).expect("central");
    counter.start_inc(ProcessorId::new(1)).expect("start");
    counter.advance_until(SimTime::from_ticks(5)).expect("advance");
    counter.start_inc(ProcessorId::new(2)).expect("start");
    let completed = counter.finish_all().expect("drain");
    assert_eq!(completed.len(), 2);
    for c in &completed {
        assert!(c.started_at <= c.completed_at);
    }
    assert_eq!(completed[0].started_at, SimTime::ZERO);
    assert_eq!(completed[1].started_at, SimTime::from_ticks(5));
}
