//! `loadgen` — put real clients in front of the retirement tree.
//!
//! By default this starts an in-process [`CounterServer`] hosting the
//! real-threads `ThreadedTreeCounter` on a loopback port, drives it with
//! `--conns` concurrent TCP connections, verifies that the values handed
//! out across *all* connections are exactly sequential, and prints the
//! throughput/latency report. Point it at an already-running server with
//! `--addr HOST:PORT` instead.
//!
//! ```text
//! cargo run --release --bin loadgen -- --n 81 --conns 16 --ops 2000
//! cargo run --release --bin loadgen -- --n 81 --conns 8 --ops 2000 --open 4000
//! cargo run --release --bin loadgen -- --n 8 --conns 32 --ops 3200 --combine
//! cargo run --release --bin loadgen -- --n 8 --reactor --mux --conns 5000 \
//!     --ops 50000 --open 20000 --ramp 2500 --combine
//! ```
//!
//! `--reactor` serves the hosted backend through the readiness-based
//! async core (one reactor thread for every connection) instead of a
//! thread per connection. `--mux` drives the load through the
//! multiplexed open-loop client (one thread, one poller, per-connection
//! buffers reused across operations) — the C10k shape on both sides of
//! the socket; `--ramp MS` spreads the connection storm over a window.

#![forbid(unsafe_code)]

use std::net::SocketAddr;
use std::process::ExitCode;

use distctr::analysis::Table;
use distctr::keyspace::KeyspaceConfig;
use distctr::net::ThreadedTreeCounter;
use distctr::server::{run_load, run_mux, CounterServer, LoadConfig, LoadReport, MuxConfig};

struct Args {
    /// Processors in the hosted tree (ignored with `--addr`).
    n: usize,
    /// Concurrent client connections.
    conns: usize,
    /// Total operations across all connections.
    ops: usize,
    /// Open-loop injection rate in total ops/s; closed loop when absent.
    open: Option<f64>,
    /// Drive an external server instead of hosting one in-process.
    addr: Option<SocketAddr>,
    /// Root reply-cache capacity for the hosted backend.
    cache: usize,
    /// Backend for the hosted server: `net` (real-threads tree,
    /// default), `sim` (discrete-event simulator tree), or one of the
    /// shared-memory structures `shm-tree` / `shm-network` /
    /// `shm-central`.
    backend: String,
    /// Serve the hosted backend through the flat-combining hot path
    /// instead of the sequential ticketed one.
    combine: bool,
    /// Number of counter keys to spread operations over (0 = unkeyed,
    /// the single default counter). Hosts an adaptive `Keyspace` when
    /// set.
    keys: usize,
    /// Zipf skew exponent for the key mix.
    zipf: f64,
    /// Serve the hosted backend through the readiness (async) core.
    reactor: bool,
    /// Drive with the multiplexed one-thread client instead of a
    /// thread per connection. Requires `--open` (the mux driver is
    /// open-loop only) and is incompatible with `--keys`.
    mux: bool,
    /// Connection ramp window for `--mux`, in milliseconds.
    ramp_ms: Option<u64>,
}

const USAGE: &str = "usage: loadgen [--n N] [--conns C] [--ops OPS] [--open RATE] \
                     [--addr HOST:PORT] [--cache CAP] [--combine] [--reactor] \
                     [--mux] [--ramp MS] \
                     [--backend net|sim|shm-tree|shm-network|shm-central] [--sim] \
                     [--keys N] [--zipf S]";

/// Seed for the keyed traffic mix — fixed so two invocations with the
/// same flags drive the same per-connection key streams.
const KEY_SEED: u64 = 0x6b65_7973;

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        n: 81,
        conns: 16,
        ops: 2000,
        open: None,
        addr: None,
        cache: distctr::net::DEFAULT_REPLY_CACHE,
        backend: "net".to_string(),
        combine: false,
        keys: 0,
        zipf: 1.2,
        reactor: false,
        mux: false,
        ramp_ms: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--n" => args.n = value("--n")?.parse().map_err(|e| format!("--n: {e}"))?,
            "--conns" => {
                args.conns = value("--conns")?.parse().map_err(|e| format!("--conns: {e}"))?;
            }
            "--ops" => args.ops = value("--ops")?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--open" => {
                args.open = Some(value("--open")?.parse().map_err(|e| format!("--open: {e}"))?);
            }
            "--addr" => {
                args.addr = Some(value("--addr")?.parse().map_err(|e| format!("--addr: {e}"))?);
            }
            "--cache" => {
                args.cache = value("--cache")?.parse().map_err(|e| format!("--cache: {e}"))?;
            }
            "--backend" => args.backend = value("--backend")?,
            // Back-compat alias for `--backend sim`.
            "--sim" => args.backend = "sim".to_string(),
            "--combine" => args.combine = true,
            "--reactor" => args.reactor = true,
            "--mux" => args.mux = true,
            "--ramp" => {
                args.ramp_ms = Some(value("--ramp")?.parse().map_err(|e| format!("--ramp: {e}"))?);
            }
            "--keys" => {
                args.keys = value("--keys")?.parse().map_err(|e| format!("--keys: {e}"))?;
            }
            "--zipf" => {
                args.zipf = value("--zipf")?.parse().map_err(|e| format!("--zipf: {e}"))?;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if args.conns == 0 || args.ops == 0 {
        return Err("--conns and --ops must be positive".into());
    }
    if args.mux && args.open.is_none() {
        return Err(format!("--mux is open-loop only; give it a rate with --open\n{USAGE}"));
    }
    if args.mux && args.keys > 0 {
        return Err(format!("--mux drives the unkeyed default counter only\n{USAGE}"));
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(ok) => {
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Runs the load, prints the report; `Ok(false)` if the sequential-values
/// check failed against an in-process server.
fn run(args: &Args) -> Result<bool, Box<dyn std::error::Error>> {
    let mut cfg = match args.open {
        Some(rate) => LoadConfig::open(args.conns, args.ops, rate),
        None => LoadConfig::closed(args.conns, args.ops),
    };
    if args.keys > 0 {
        cfg = cfg.with_keys(args.keys, args.zipf, KEY_SEED);
    }
    // Host a server in-process unless pointed at an external one.
    if let Some(addr) = args.addr {
        banner(args, "external", addr);
        let report = drive(addr, args, &cfg)?;
        println!("\n{}", report.render());
        Ok(true)
    } else if args.keys > 0 {
        // Keyed traffic needs a keyed backend: the adaptive keyspace
        // over simulator trees, every key born centralized.
        let backend = distctr::keyspace::Keyspace::sim(KeyspaceConfig::new(args.n));
        hosted_run(backend, args, &cfg, "Keyspace<TreeCounter>")
    } else {
        match args.backend.as_str() {
            "net" => {
                let backend = ThreadedTreeCounter::with_reply_cache(args.n, args.cache)?;
                hosted_run(backend, args, &cfg, "ThreadedTreeCounter")
            }
            "sim" => {
                let backend = distctr::core::TreeCounter::new(args.n)?;
                hosted_run(backend, args, &cfg, "sim TreeCounter")
            }
            "shm-tree" => {
                let backend = distctr::shm::ShmTreeCounter::new(args.n)?;
                hosted_run(backend, args, &cfg, "ShmTreeCounter")
            }
            "shm-network" => {
                // The network needs a power-of-two width; round the
                // requested processor count up.
                let width = args.n.next_power_of_two().max(2);
                let backend = distctr::shm::AtomicBitonicCounter::new(width);
                hosted_run(backend, args, &cfg, "AtomicBitonicCounter")
            }
            "shm-central" => {
                let backend = distctr::shm::CentralCounter::new(args.n);
                hosted_run(backend, args, &cfg, "CentralCounter")
            }
            other => Err(format!("unknown --backend {other}\n{USAGE}").into()),
        }
    }
}

/// Drives the configured load — the thread-per-connection harness, or
/// the multiplexed one-thread driver under `--mux`.
fn drive(
    addr: SocketAddr,
    args: &Args,
    cfg: &LoadConfig,
) -> Result<LoadReport, Box<dyn std::error::Error>> {
    if args.mux {
        let rate = args.open.expect("--mux requires --open (validated at parse)");
        let mut mux = MuxConfig::open(args.conns, args.ops, rate);
        if let Some(ms) = args.ramp_ms {
            mux = mux.with_ramp(std::time::Duration::from_millis(ms));
        }
        Ok(run_mux(addr, &mux)?)
    } else {
        Ok(run_load(addr, cfg)?)
    }
}

fn banner(args: &Args, backend_name: &str, addr: SocketAddr) {
    let mut mode = match args.open {
        Some(rate) => format!("open loop @ {rate:.0} ops/s"),
        None => "closed loop".to_string(),
    };
    if args.combine {
        mode.push_str(", combining");
    }
    if args.reactor {
        mode.push_str(", reactor-served");
    }
    if args.mux {
        mode.push_str(", mux-driven");
    }
    if args.keys > 0 {
        mode.push_str(&format!(", {} keys zipf {:.2}", args.keys, args.zipf));
    }
    println!(
        "loadgen: {mode}, {} conns x {} ops against {backend_name} at {addr}",
        args.conns, args.ops
    );
}

fn hosted_run<B>(
    backend: B,
    args: &Args,
    cfg: &LoadConfig,
    backend_name: &str,
) -> Result<bool, Box<dyn std::error::Error>>
where
    B: distctr::core::CounterBackend + Send + 'static,
{
    let mut server = match (args.reactor, args.combine) {
        (true, true) => CounterServer::serve_async_combining(backend)?,
        (true, false) => CounterServer::serve_async(backend)?,
        (false, true) => CounterServer::serve_combining(backend)?,
        (false, false) => CounterServer::serve(backend)?,
    };
    banner(args, backend_name, server.local_addr());

    let report = drive(server.local_addr(), args, cfg)?;
    println!("\n{}", report.render());

    // Fresh server, so the values must be exactly sequential — per key
    // for a keyed run, globally otherwise: the paper's correctness
    // condition observed over real TCP.
    let ok = if cfg.key_mix.is_some() {
        let ok = report.values_are_sequential_per_key();
        println!(
            "sequential values per key ({} keys touched): {}",
            report.per_key.len(),
            if ok { "OK" } else { "VIOLATED" }
        );
        ok
    } else {
        let ok = report.values_are_sequential_from(0);
        println!("sequential values 0..{}: {}", args.ops, if ok { "OK" } else { "VIOLATED" });
        ok
    };

    let stats = server.stats();
    let mut t = Table::new(vec!["server metric", "value"]);
    t.row(vec!["processors".into(), stats.processors.to_string()]);
    t.row(vec!["connections".into(), stats.connections.to_string()]);
    t.row(vec!["sessions".into(), stats.sessions.to_string()]);
    t.row(vec!["ops served".into(), stats.ops.to_string()]);
    t.row(vec!["retries deduped".into(), stats.deduped.to_string()]);
    t.row(vec!["wire errors".into(), stats.wire_errors.to_string()]);
    t.row(vec!["combined traversals".into(), stats.combined_traversals.to_string()]);
    t.row(vec!["accept errors".into(), stats.accept_errors.to_string()]);
    t.row(vec!["bottleneck (max msg load)".into(), stats.bottleneck.to_string()]);
    t.row(vec!["retirements".into(), stats.retirements.to_string()]);
    t.row(vec!["keys hosted".into(), stats.keys_hosted.to_string()]);
    t.row(vec!["promotions".into(), stats.promotions.to_string()]);
    t.row(vec!["demotions".into(), stats.demotions.to_string()]);
    t.row(vec!["migrations in flight".into(), stats.migrations_inflight.to_string()]);
    println!("\n{}", t.render());
    server.shutdown()?;
    Ok(ok)
}
