//! # distctr
//!
//! A from-scratch Rust reproduction of **Wattenhofer & Widmayer, *An
//! Inherent Bottleneck in Distributed Counting* (ETH Zürich / PODC 1997)**:
//! the Ω(k) lower bound on some processor's message load (where
//! `k^(k+1) = n`), and the matching retirement-based communication-tree
//! counter whose bottleneck is O(k).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `distctr-sim` | asynchronous message-passing network simulator, load accounting, traces |
//! | [`core`] | `distctr-core` | the paper's retirement-tree counter and lemma audits |
//! | [`baselines`] | `distctr-baselines` | central, static-tree, combining-tree, counting-network, diffracting-tree counters |
//! | [`quorum`] | `distctr-quorum` | quorum systems and the Hot Spot Lemma checker |
//! | [`bound`] | `distctr-bound` | the executable lower bound: adversary + weight audit |
//! | [`net`] | `distctr-net` | real-threads backend: the tree counter over OS threads + channels |
//! | [`server`] | `distctr-server` | TCP service layer: wire codec, counter server, remote client, load generator |
//! | [`chaos`] | `distctr-chaos` | fault-injecting TCP proxy: seeded latency/throttle/reset/blackhole/slice/corrupt toxics |
//! | [`keyspace`] | `distctr-keyspace` | sharded multi-counter keyspace with adaptive per-key backend promotion |
//! | [`shm`] | `distctr-shm` | shared-memory backends: the tree on a mailbox arena, flat combining, atomic counting network, central cell |
//! | [`analysis`] | `distctr-analysis` | statistics and report rendering |
//!
//! ## Quickstart
//!
//! ```
//! use distctr::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // n = 81 = 3^4 processors; tree order k = 3.
//! let mut counter = TreeCounter::new(81)?;
//! let outcome = SequentialDriver::run_shuffled(&mut counter, 42)?;
//! assert!(outcome.values_are_sequential());
//!
//! // The headline result: the bottleneck is O(k), not O(n)...
//! let bottleneck = counter.loads().max_load();
//! assert!(bottleneck <= 20 * 3);
//!
//! // ...and it cannot drop below k, for *any* implementation.
//! assert!(bottleneck >= distctr::bound::theory::lower_bound_k(81) as u64);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use distctr_analysis as analysis;
pub use distctr_baselines as baselines;
pub use distctr_bound as bound;
pub use distctr_chaos as chaos;
pub use distctr_check as check;
pub use distctr_core as core;
pub use distctr_keyspace as keyspace;
pub use distctr_net as net;
pub use distctr_quorum as quorum;
pub use distctr_server as server;
pub use distctr_shm as shm;
pub use distctr_sim as sim;

/// The most common imports for working with the reproduction.
pub mod prelude {
    pub use distctr_baselines::{
        CentralCounter, CombiningTreeCounter, CountingNetworkCounter, DiffractingTreeCounter,
        StaticTreeCounter,
    };
    pub use distctr_bound::{audit_weights, Adversary};
    // `CounterBackend` is deliberately NOT here: its `inc` would collide
    // with `Counter::inc` on `TreeCounter` for every prelude user. Reach
    // it as `distctr::core::CounterBackend`.
    pub use distctr_chaos::{ChaosPlan, ChaosProxy};
    pub use distctr_core::{
        DistributedFlipBit, DistributedPriorityQueue, RetirementPolicy, TreeClient, TreeCounter,
    };
    pub use distctr_keyspace::{Keyspace, KeyspaceConfig, PromotionPolicy};
    pub use distctr_net::ThreadedTreeCounter;
    pub use distctr_quorum::QuorumSystem;
    pub use distctr_server::{
        run_load, ClientConfig, CounterServer, LoadConfig, RemoteCounter, RetryPolicy, ServerConfig,
    };
    pub use distctr_sim::{
        ConcurrentCounter, ConcurrentDriver, Counter, DeliveryPolicy, FaultPlan, ProcessorId,
        SequentialDriver, TraceMode,
    };
}
