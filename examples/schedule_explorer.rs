//! Model-checking an operation: exhaustively explore every delivery
//! order the asynchronous network admits for one inc, and verify the
//! outcome is schedule-independent.
//!
//! Run with: `cargo run --release --example schedule_explorer`

use distctr::core::{CounterObject, Msg, RetirementPolicy, Topology, TreeProtocol};
use distctr::sim::{explore, Injection, OpId, ProcessorId};

type Proto = TreeProtocol<CounterObject>;

fn main() {
    let topo = Topology::new(2).expect("k = 2 tree");
    let mut proto = TreeProtocol::new(topo, RetirementPolicy::PaperDefault, CounterObject::new());

    println!("model-checking inc operations on the k=2 retirement tree\n");
    for i in 0..8usize {
        let origin = ProcessorId::new(i);
        let leaf_parent = proto.topology().leaf_parent(i as u64);
        let injection = Injection {
            op: OpId::new(i),
            from: origin,
            to: proto.worker_of(leaf_parent),
            msg: Msg::Apply { node: leaf_parent, origin, op_seq: i as u64, req: () },
        };
        let expected = i as u64;
        let outcome =
            explore(&proto, std::slice::from_ref(&injection), 100_000, &|p: &Proto| match p
                .peek_response()
            {
                Some(&v) if v == expected => Ok(()),
                other => Err(format!("op {i}: expected {expected}, got {other:?}")),
            });
        println!(
            "op {i} (P{i}): {} delivery schedule(s) explored{}, all returned value {expected}",
            outcome.schedules,
            if outcome.truncated { " (budget-truncated)" } else { "" },
        );
        assert!(outcome.holds(), "{:?}", outcome.violation);

        // Advance the mainline along one schedule for the next op.
        let next = std::cell::RefCell::new(None);
        explore(&proto, std::slice::from_ref(&injection), 1, &|p: &Proto| {
            *next.borrow_mut() = Some(p.clone());
            Ok(())
        });
        proto = next.into_inner().expect("one schedule");
    }
    println!("\nvalue returned is independent of message delivery order — on every");
    println!("schedule the asynchronous model admits, not just the sampled policies.");
}
