//! Model-checking the counter: exhaustively explore every delivery
//! order the asynchronous network admits — first with the thin
//! whole-protocol DFS adapter (`distctr::sim::explore`), then with the
//! engine-level model checker (`distctr::check`), which adds sleep-set
//! partial-order reduction, crash injection at branch points, and
//! minimized replayable counterexamples.
//!
//! Run with: `cargo run --release --example schedule_explorer`

use distctr::check::{Budget, CheckConfig, Checker, Mutation};
use distctr::core::{CounterObject, Msg, RetirementPolicy, Topology, TreeProtocol};
use distctr::sim::{explore, Injection, OpId, ProcessorId};

type Proto = TreeProtocol<CounterObject>;

fn sim_adapter_demo() {
    let topo = Topology::new(2).expect("k = 2 tree");
    let mut proto = TreeProtocol::new(topo, RetirementPolicy::PaperDefault, CounterObject::new());

    println!("-- thin adapter: whole-protocol DFS, one op at a time --\n");
    for i in 0..8usize {
        let origin = ProcessorId::new(i);
        let leaf_parent = proto.topology().leaf_parent(i as u64);
        let injection = Injection {
            op: OpId::new(i),
            from: origin,
            to: proto.worker_of(leaf_parent),
            msg: Msg::Apply { node: leaf_parent, origin, op_seq: i as u64, req: () },
        };
        let expected = i as u64;
        let outcome =
            explore(&proto, std::slice::from_ref(&injection), 100_000, &|p: &Proto| match p
                .peek_response()
            {
                Some(&v) if v == expected => Ok(()),
                other => Err(format!("op {i}: expected {expected}, got {other:?}")),
            });
        println!(
            "op {i} (P{i}): {} delivery schedule(s) explored{}, all returned value {expected}",
            outcome.schedules,
            if outcome.truncated { " (budget-truncated)" } else { "" },
        );
        assert!(outcome.holds(), "{:?}", outcome.violation);

        // Advance the mainline along one schedule for the next op.
        let next = std::cell::RefCell::new(None);
        explore(&proto, std::slice::from_ref(&injection), 1, &|p: &Proto| {
            *next.borrow_mut() = Some(p.clone());
            Ok(())
        });
        proto = next.into_inner().expect("one schedule");
    }
    println!();
}

fn checker_demo() {
    println!("-- engine-level checker: DPOR + crashes + counterexamples --\n");

    // Cross-op concurrency across the root's retirement window, every
    // order, full invariant set at every quiescent state.
    let cfg = CheckConfig::new(8).warmup(&[0, 2, 4]).concurrent_ops(&[1, 6]);
    let outcome =
        Checker::new(cfg).budget(Budget { max_transitions: 60_000, ..Budget::default() }).run();
    let s = &outcome.stats;
    println!(
        "concurrent cascade: {} transitions, {} leaves, {} distinct quiescent states,",
        s.transitions, s.quiescent_leaves, s.distinct_quiescent
    );
    println!("                    {} redundant interleavings pruned by sleep sets", s.sleep_skips);
    assert!(outcome.holds(), "{:?}", outcome.violation);

    // Crash exploration: the checker may kill the root's worker at any
    // branch point; the watchdog must still deliver sequential values.
    let cfg = CheckConfig::new(8).sequential_ops(&[0, 4]).fault_tolerant().explore_crashes(&[0], 1);
    let outcome =
        Checker::new(cfg).budget(Budget { max_transitions: 30_000, ..Budget::default() }).run();
    println!(
        "crash exploration:  {} transitions, {} leaves — recovery correct on every order",
        outcome.stats.transitions, outcome.stats.quiescent_leaves
    );
    assert!(outcome.holds(), "{:?}", outcome.violation);

    // Seeded bug: a botched handoff that re-installs retiring nodes.
    // The checker finds it and delta-debugs the schedule to a minimal,
    // replayable counterexample.
    let cfg = CheckConfig::new(8)
        .concurrent_ops(&[0, 1])
        .engine(distctr::core::engine::EngineConfig {
            threshold: Some(2),
            pool_policy: distctr::core::protocol::PoolPolicy::OneShot,
            reply_cache_cap: usize::MAX,
            dedupe: false,
            persist: false,
        })
        .mutation(Mutation::ResurrectRetired);
    let outcome = Checker::new(cfg).run();
    let v = outcome.violation.expect("the seeded bug is found");
    println!("\nseeded double-retirement bug:");
    println!("  violated:  {} ({})", v.invariant, v.detail);
    println!("  schedule:  {} choices", v.schedule.choices.len());
    println!("  minimized: {} choices: \"{}\"", v.minimized.choices.len(), v.minimized.serialize());
}

fn main() {
    sim_adapter_demo();
    checker_demo();
    println!("\nvalue returned is independent of message delivery order — on every");
    println!("schedule the asynchronous model admits, with or without a crash.");
}
