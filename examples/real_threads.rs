//! The retirement tree on real OS threads: one thread per processor,
//! channels as the network, node state migrating between threads inside
//! handoff messages. The simulator measures; this demonstrates the
//! protocol survives genuine asynchrony.
//!
//! Run with: `cargo run --release --example real_threads`

use distctr::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 81usize; // k = 3 -> 81 threads
    println!("spawning {n} worker threads (tree order k = 3)...");
    let mut threaded = ThreadedTreeCounter::new(n)?;

    let started = Instant::now();
    for i in 0..n {
        let value = threaded.inc(ProcessorId::new(i))?;
        assert_eq!(value, i as u64);
    }
    let elapsed = started.elapsed();

    let loads = threaded.loads();
    let bottleneck = threaded.bottleneck();
    println!("ran {n} incs across {n} threads in {elapsed:?}");
    println!("retirements (state migrations between threads): {}", threaded.retirements());
    println!("bottleneck load: {bottleneck} (<= 20k = 60)");
    assert!(bottleneck <= 60);

    // Compare with the simulator on the same workload.
    let mut sim = TreeCounter::new(n)?;
    for i in 0..n {
        sim.inc(ProcessorId::new(i))?;
    }
    println!("simulator bottleneck: {} (same protocol, measured exactly)", sim.loads().max_load());
    println!(
        "load agreement: threads vs sim differ by at most {} messages per processor",
        loads.iter().zip(sim.loads().to_vec()).map(|(&a, b)| a.abs_diff(b)).max().unwrap_or(0)
    );

    threaded.shutdown()?;
    println!("all threads joined cleanly.");
    Ok(())
}
