//! The counter as a network service: a [`CounterServer`] hosts the
//! real-threads retirement tree on a loopback port, real TCP clients
//! drive it concurrently through the load generator, and a
//! [`RemoteCounter`] — a counter whose "network" is a socket — reads the
//! server's statistics over the same wire protocol.
//!
//! Run with: `cargo run --release --example serve`

use distctr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 81usize; // k = 3 -> 81 worker threads behind the socket
    println!("serving a {n}-processor ThreadedTreeCounter on loopback...");
    let mut server = CounterServer::serve(ThreadedTreeCounter::new(n)?)?;
    let addr = server.local_addr();
    println!("listening on {addr}");

    // Closed loop: 8 real TCP connections, one op in flight each.
    let cfg = LoadConfig::closed(8, 400);
    println!("driving {} connections x {} total ops (closed loop)...", cfg.conns, cfg.ops);
    let report = run_load(addr, &cfg)?;
    println!("\n{}", report.render());

    // The counter's correctness condition, observed from *outside* the
    // service boundary: across all connections, the values handed out
    // are exactly 0..400 with no gap and no duplicate.
    assert!(report.values_are_sequential_from(0), "sequential values violated");
    println!("sequential values 0..{}: OK", cfg.ops);

    // A remote client is still just a counter: same interface, and the
    // server's stats travel over the same wire protocol.
    let mut client = RemoteCounter::connect(addr)?;
    let value = client.inc()?;
    assert_eq!(value, cfg.ops as u64);
    let stats = client.stats()?;
    println!(
        "over the wire: inc() -> {value}, {} sessions, {} ops served, bottleneck {}",
        stats.sessions, stats.ops, stats.bottleneck
    );

    server.shutdown()?;
    println!("server shut down cleanly.");
    Ok(())
}
