//! Domain scenario: a cluster-wide unique ticket service.
//!
//! "Counting is an essential ingredient in virtually any computation" —
//! the intro's motivation in miniature: 64 worker processors each need a
//! globally unique, gap-free ticket number (order ids, log sequence
//! numbers, lock tickets). This example serves the same workload from a
//! centralized allocator, a combining tree, and a counting network, and
//! shows where the traffic lands.
//!
//! Run with: `cargo run --release --example ticket_service`

use distctr::analysis::{fmt_f64, Table};
use distctr::prelude::*;

fn serve<C: ConcurrentCounter>(
    counter: &mut C,
    batch: usize,
) -> Result<(u64, f64, bool), Box<dyn std::error::Error>> {
    let tickets = ConcurrentDriver::run_batches(counter, batch, 99)?;
    let gap_free = ConcurrentDriver::values_are_gap_free(&tickets);
    let loads = counter.loads();
    Ok((loads.max_load(), loads.average_load(), gap_free))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 64usize;
    println!("Ticket service: {n} workers each claim one unique ticket.\n");
    let mut table =
        Table::new(vec!["allocator", "concurrency", "hottest host", "avg load", "gap-free"]);
    for batch in [1usize, n] {
        let label = if batch == 1 { "one at a time" } else { "all at once" };
        {
            let mut c = CentralCounter::new(n)?;
            let (max, avg, ok) = serve(&mut c, batch)?;
            table.row(vec![
                "central".into(),
                label.into(),
                max.to_string(),
                fmt_f64(avg),
                ok.to_string(),
            ]);
        }
        {
            let mut c = CombiningTreeCounter::new(n)?;
            let (max, avg, ok) = serve(&mut c, batch)?;
            table.row(vec![
                "combining-tree".into(),
                label.into(),
                max.to_string(),
                fmt_f64(avg),
                ok.to_string(),
            ]);
        }
        {
            let mut c = CountingNetworkCounter::new(n, 8)?;
            let (max, avg, ok) = serve(&mut c, batch)?;
            table.row(vec![
                "counting-net[w=8]".into(),
                label.into(),
                max.to_string(),
                fmt_f64(avg),
                ok.to_string(),
            ]);
        }
    }
    println!("{table}");
    println!("Reading the table:");
    println!("  * the central allocator's hottest host does ~2 messages per ticket, always;");
    println!("  * the combining tree's hot spot melts away once requests overlap;");
    println!("  * the counting network spreads traffic regardless of concurrency,");
    println!("    at a higher per-ticket message cost.");
    println!("\nFor strictly sequential clients, the paper's retirement tree is the only");
    println!("structure that provably keeps every host at O(k) messages — see the");
    println!("bottleneck_comparison example.");
    Ok(())
}
