//! Chaos tour (experiment E18): fault injection and crash recovery on
//! both backends.
//!
//! The simulator runs a seeded storm — dropped messages, duplicated
//! deliveries, scheduled worker crashes — while the fault-tolerant
//! counter keeps handing out exactly sequential values, rebuilding every
//! dead worker's nodes from its retirement pool. The threaded backend
//! then loses a real OS thread and degrades to a bounded timeout on the
//! dead subtree while the rest keeps counting.
//!
//! Run with: `cargo run --release --example chaos`

use distctr::net::NetError;
use distctr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 81usize; // k = 3
    let ops = 40u64;

    // ---- Simulator: a seeded storm, fully replayable -----------------
    // Crash the root's initial worker (P0) and two level-2 workers, on
    // top of 8% drops and 3% duplication. Everything below is a pure
    // function of this plan plus its seed.
    let plan = FaultPlan::new(0xE18)
        .drop_prob(0.08)
        .dup_prob(0.03)
        .crash(ProcessorId::new(0), 12)
        .crash(ProcessorId::new(30), 60)
        .crash(ProcessorId::new(45), 120);
    println!("fault plan: 8% drops, 3% dups, 3 scheduled worker crashes (seed 0xE18)\n");

    let mut c = TreeCounter::builder(n)?.faults(plan.clone()).build()?;
    for i in 0..ops {
        let initiator = ProcessorId::new(54 + ((i * 7) % 27) as usize);
        let r = c.inc_fault_tolerant(initiator)?;
        assert_eq!(r.value, i, "values stay exactly sequential under fire");
    }

    let stats = c.fault_stats();
    println!("simulator survived {ops} ops:");
    println!("  dropped sends        : {}", stats.drops);
    println!("  duplicated deliveries: {}", stats.dups);
    println!("  dead letters         : {}", stats.dead_letters);
    println!("  crashes fired        : {:?}", c.crashed_processors());
    println!(
        "  node recoveries      : {} (by level {:?})",
        c.audit().recoveries(),
        c.audit().recoveries_by_level()
    );
    println!("  watchdog retries     : {}", c.watchdog_retries());
    let bound = 20 * 3 + c.audit().fault_slack() + stats.dups + c.watchdog_retries() * 2 * 5;
    println!(
        "  bottleneck load      : {} <= 20k + recovery slack = {}",
        c.loads().max_load(),
        bound
    );
    assert!(c.loads().max_load() <= bound);

    // Replay: the same (seed, plan) reproduces the same fault log.
    let mut replay = TreeCounter::builder(n)?.faults(plan).build()?;
    for i in 0..ops {
        let initiator = ProcessorId::new(54 + ((i * 7) % 27) as usize);
        replay.inc_fault_tolerant(initiator)?;
    }
    assert_eq!(replay.fault_log(), c.fault_log());
    assert_eq!(replay.loads().to_vec(), c.loads().to_vec());
    println!("  replay               : identical fault log and loads, bit for bit\n");

    // ---- Threads: kill a real worker thread, keep serving ------------
    let mut threaded = ThreadedTreeCounter::new(n)?;
    // Processor 80 works for the last level-3 node (a singleton pool):
    // its subtree cannot be recovered, so it must degrade — and nothing
    // else may notice.
    threaded.crash_worker(ProcessorId::new(80))?;
    println!("threaded backend: killed worker thread P80 (leaves 78..81 now orphaned)");
    match threaded.inc(ProcessorId::new(79)) {
        Err(NetError::Timeout { attempts, waited_ms }) => println!(
            "  orphaned initiator   : bounded timeout after {attempts} attempts / {waited_ms} ms"
        ),
        other => panic!("expected a timeout from the dead subtree, got {other:?}"),
    }
    for i in 0..40u64 {
        let v = threaded.inc(ProcessorId::new(i as usize))?;
        assert_eq!(v, i, "the live subtrees keep exact sequence");
    }
    println!("  live subtrees        : 40 more incs, still exactly sequential");
    println!("  dead letters         : {}", threaded.dead_letters());
    threaded.shutdown()?;
    println!("\nboth backends degrade and recover; nobody ever double-counts.");
    Ok(())
}
