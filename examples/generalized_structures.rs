//! The paper's generalization, live: "the argument in the Hot Spot Lemma
//! can be made for the family of all distributed data structures in
//! which an operation depends on the operation that immediately precedes
//! it. Examples are a bit that can be accessed and flipped, and a
//! priority queue."
//!
//! Both structures ride the same retirement tree as the counter and
//! inherit its O(k) bottleneck.
//!
//! Run with: `cargo run --release --example generalized_structures`

use distctr::core::{DistributedFlipBit, DistributedPriorityQueue};
use distctr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 81usize; // k = 3

    // A distributed test-and-flip bit: a 1-bit counter mod 2.
    let mut bit = DistributedFlipBit::new(n)?;
    for i in 0..bit.processors() {
        let old = bit.test_and_flip(ProcessorId::new(i))?;
        assert_eq!(old, i % 2 == 1);
    }
    println!(
        "flip-bit: {} test&flip ops, final bit = {}, bottleneck = {} (<= 20k = {})",
        bit.processors(),
        bit.bit(),
        bit.loads().max_load(),
        20 * 3
    );
    assert!(bit.loads().max_load() <= 20 * 3);
    assert!(bit.audit().grow_old_lemma_holds());

    // A distributed min-priority queue: a tiny cluster job scheduler.
    let mut pq = DistributedPriorityQueue::new(n)?;
    println!("\npriority queue: scheduling jobs by deadline");
    let jobs = [(3u64, "compact level 0"), (1, "serve query"), (7, "rebalance"), (2, "flush wal")];
    for (i, (deadline, name)) in jobs.iter().enumerate() {
        pq.insert(ProcessorId::new(i), *deadline)?;
        println!("  worker P{i} enqueued '{name}' (deadline {deadline})");
    }
    print!("  execution order by deadline:");
    while let Some(deadline) = pq.extract_min(ProcessorId::new(40))? {
        print!(" {deadline}");
    }
    println!();
    println!("priority queue bottleneck = {} (<= 20k = {})", pq.loads().max_load(), 20 * 3);
    assert!(pq.loads().max_load() <= 20 * 3);

    println!("\nSame tree, same retirement, same O(k) guarantee — for any");
    println!("object whose operations depend on their immediate predecessor.");
    Ok(())
}
