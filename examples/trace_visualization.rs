//! Figures 1 and 2 of the paper, regenerated from a live run: the
//! communication DAG of one inc operation and its topologically sorted
//! communication list.
//!
//! Run with: `cargo run --release --example trace_visualization`

use distctr::prelude::*;
use distctr::sim::CommList;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut counter = TreeCounter::builder(81)?.trace(TraceMode::Full).build()?;

    // Warm up so retirement traffic can appear in traces.
    for p in 0..40 {
        counter.inc(ProcessorId::new(p))?;
    }

    // Trace an op whose process includes a retirement cascade if one is
    // due; print the richest of the next few.
    let mut best: Option<distctr::sim::OpTrace> = None;
    for p in 40..48 {
        let result = counter.inc(ProcessorId::new(p))?;
        let trace = result.trace.expect("full tracing enabled");
        if best.as_ref().is_none_or(|b| trace.messages > b.messages) {
            best = Some(trace);
        }
    }
    let trace = best.expect("at least one op traced");
    let dag = trace.dag.as_ref().expect("full mode records the DAG");

    println!(
        "Figure 1 — communication DAG of {} (initiator {}, {} messages, {} processors contacted):\n",
        trace.op,
        trace.initiator,
        trace.messages,
        trace.contacts.len()
    );
    println!("{}", dag.render_ascii());

    let list = CommList::from_dag(dag);
    println!("Figure 2 — the same process as a communication list ({} arcs):\n", list.len_arcs());
    println!("  {}\n", list.render_ascii());
    println!(
        "modelling property (list in-arcs <= DAG in-arcs per processor): {}",
        if list.models(dag) { "holds" } else { "VIOLATED" }
    );
    assert!(list.models(dag));

    println!("\nGraphviz export (render with `dot -Tsvg`):\n");
    println!("{}", dag.to_dot("inc_process"));
    Ok(())
}
