//! Quickstart: build the paper's retirement-tree counter, run the
//! canonical workload, and check the headline O(k) bottleneck claim.
//!
//! Run with: `cargo run --release --example quickstart`

use distctr::bound::theory;
use distctr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 81 = 3^4 processors -> tree order k = 3.
    let n = 81usize;
    let mut counter = TreeCounter::new(n)?;
    println!("{}", counter.topology().render_ascii());

    // The paper's workload: every processor increments exactly once.
    let outcome = SequentialDriver::run_shuffled(&mut counter, 42)?;
    assert!(outcome.values_are_sequential(), "counter returned 0,1,2,... in op order");

    let k = counter.order() as u64;
    let (bottleneck_proc, bottleneck) = counter.loads().bottleneck().expect("nonempty");
    println!("n = {n}, k = {k}");
    println!("total messages      : {}", outcome.total_messages);
    println!("messages per op     : {:.2}", outcome.messages_per_op());
    println!("bottleneck processor: {bottleneck_proc} with load {bottleneck}");
    println!("lower bound (k)     : {}", theory::lower_bound_k(n as u64));
    println!("upper bound (20k)   : {}", 20 * k);
    assert!(bottleneck >= u64::from(theory::lower_bound_k(n as u64)));
    assert!(bottleneck <= 20 * k);

    // Every lemma of the paper, checked on this very run.
    let audit = counter.audit();
    println!("\nlemma audit:");
    println!("  Grow Old Lemma        : {}", audit.grow_old_lemma_holds());
    println!("  Retirement Lemma      : {}", audit.retirement_lemma_holds());
    println!(
        "  Retirement counts     : {} (per level: {:?})",
        audit.retirement_counts_within_pools(counter.topology()),
        audit.retirements_by_level()
    );
    println!(
        "  Inner Node Work Lemma : {} (max stint {} <= 8k+8 = {})",
        audit.stint_work_within(8 * k + 8),
        audit.max_stint_msgs(),
        8 * k + 8
    );
    Ok(())
}
