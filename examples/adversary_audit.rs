//! The lower bound, executed: run the proof's greedy longest-list
//! adversary against two implementations and replay the weight-function
//! argument on the resulting schedule.
//!
//! Run with: `cargo run --release --example adversary_audit`

use distctr::bound::theory;
use distctr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 8usize; // k = 2
    println!(
        "Lower Bound Theorem, executable edition (n = {n}, k = {}).\n",
        theory::lower_bound_k(n as u64)
    );

    // 1. The adversary: always schedule the pending initiator whose
    //    operation would have the longest communication list.
    for build in ["retirement-tree", "central"] {
        let outcome = match build {
            "retirement-tree" => {
                let mut c = TreeCounter::new(n)?;
                Adversary::exhaustive().run(&mut c)?
            }
            _ => {
                let mut c = CentralCounter::new(n)?;
                Adversary::exhaustive().run(&mut c)?
            }
        };
        println!("{build}:");
        println!(
            "  adversarial order : {:?}",
            outcome.order.iter().map(|p| p.index()).collect::<Vec<_>>()
        );
        println!("  list lengths L_i  : {:?}", outcome.list_lens);
        println!("  average list len  : {:.2}", outcome.avg_list_len);
        println!("  pigeonhole bound  : {}", outcome.pigeonhole);
        println!(
            "  bottleneck        : {} at {} (k = {})",
            outcome.bottleneck.1, outcome.bottleneck.0, outcome.lower_bound_k
        );
        println!("  consistent        : {}\n", outcome.consistent_with_theorem());
        assert!(outcome.consistent_with_theorem());
    }

    // 2. The weight-function audit: q's hypothetical list before every
    //    op, the hot-spot premise, and the proof's AM-GM quantities.
    let mut counter = TreeCounter::builder(n)?.trace(TraceMode::Full).build()?;
    let order: Vec<ProcessorId> = (0..n).map(ProcessorId::new).collect();
    let audit = audit_weights(&mut counter, &order)?;
    println!("weight audit on retirement-tree (q = {}):", audit.q);
    println!("  hot-spot premise  : {}/{} steps", audit.hot_spot_hits, audit.steps);
    println!("  q's list lengths  : {:?}", audit.q_list_lens);
    println!(
        "  weight trajectory : {:?}",
        audit.weights.iter().map(|w| (w * 100.0).round() / 100.0).collect::<Vec<_>>()
    );
    println!("  Σ 2^-l_i          : {:.4}", audit.inverse_exp_sum);
    println!("  AM-GM bound       : {:.4}", audit.amgm_bound());
    println!("  q load / bottleneck: {} / {}", audit.q_load, audit.bottleneck);
    assert!(audit.hot_spot_premise_holds());
    assert!(audit.conclusion_holds(n as u64));
    println!("\nAll premises and conclusions of the proof verified on real executions.");
    Ok(())
}
