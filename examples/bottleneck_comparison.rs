//! The headline comparison: bottleneck load of every counter
//! implementation across network sizes — centralized counters scale as
//! Θ(n), the paper's retirement tree as O(k) = O(log n / log log n).
//!
//! Run with: `cargo run --release --example bottleneck_comparison`

use distctr::analysis::{fmt_f64, Table};
use distctr::bound::theory;
use distctr::prelude::*;

fn run<C: Counter>(
    mut counter: C,
    seed: u64,
) -> Result<(String, usize, u64, f64), Box<dyn std::error::Error>> {
    let outcome = SequentialDriver::run_shuffled(&mut counter, seed)?;
    assert!(outcome.values_are_sequential(), "{} must count correctly", counter.name());
    Ok((
        counter.name().to_string(),
        counter.processors(),
        counter.loads().max_load(),
        outcome.messages_per_op(),
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut table = Table::new(vec!["algorithm", "n", "k(n)", "bottleneck", "msgs/op"]);
    for n in [8usize, 81, 1024] {
        let k = theory::lower_bound_k(n as u64);
        let width = ((n as f64).sqrt() as usize).next_power_of_two();
        let rows = vec![
            run(CentralCounter::new(n)?, 7)?,
            run(StaticTreeCounter::new(n)?, 7)?,
            run(CombiningTreeCounter::new(n)?, 7)?,
            run(CountingNetworkCounter::new(n, width)?, 7)?,
            run(DiffractingTreeCounter::new(n, width.trailing_zeros())?, 7)?,
            run(TreeCounter::new(n)?, 7)?,
        ];
        for (name, actual_n, bottleneck, mpo) in rows {
            table.row(vec![
                name,
                actual_n.to_string(),
                k.to_string(),
                bottleneck.to_string(),
                fmt_f64(mpo),
            ]);
        }
    }
    println!("Bottleneck load over the canonical workload (1 inc per processor):\n");
    println!("{table}");
    println!("Shapes to observe:");
    println!("  * central / static-tree / combining / diffracting grow ~linearly with n");
    println!("  * retirement-tree stays near its 20k ceiling (k = 2, 3, 4)");
    println!("  * nothing ever drops below k — the paper's lower bound");
    Ok(())
}
