//! Tour of the quorum-system substrate, ending at the paper's framing of
//! the counter as a *dynamic quorum system*: the contact sets of
//! consecutive operations always intersect (Hot Spot Lemma).
//!
//! Run with: `cargo run --release --example quorum_tour`

use distctr::analysis::{fmt_f64, Table};
use distctr::prelude::*;
use distctr::quorum::{dynamic_view, Grid, Majority, TreeQuorum, Wall};
use distctr::sim::ContactSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Static quorum systems over comparable universes.
    let mut table = Table::new(vec!["system", "universe", "quorums", "min size", "uniform load"]);
    let majority = Majority::new(16).map_err(std::io::Error::other)?;
    let grid = Grid::new(4).map_err(std::io::Error::other)?;
    let tree = TreeQuorum::new(3).map_err(std::io::Error::other)?;
    let wall = Wall::triangular(5).map_err(std::io::Error::other)?;
    let systems: [&dyn QuorumSystem; 4] = [&majority, &grid, &tree, &wall];
    for s in systems {
        assert!(s.verify_intersection(2000), "{} must intersect", s.name());
        table.row(vec![
            s.name().to_string(),
            s.universe().to_string(),
            s.quorum_count().to_string(),
            s.min_quorum_size(usize::MAX).to_string(),
            fmt_f64(s.uniform_load()),
        ]);
    }
    println!("Static quorum systems (all verified intersecting):\n\n{table}");

    // The dynamic view: a real counter execution's contact sets.
    let mut counter = TreeCounter::new(81)?;
    let outcome = SequentialDriver::run_shuffled(&mut counter, 21)?;
    let contacts: Vec<&ContactSet> = outcome
        .results
        .iter()
        .map(|r| &r.trace.as_ref().expect("contacts recorded").contacts)
        .collect();
    let view = dynamic_view(&contacts, counter.processors());
    println!("Dynamic quorum view of a retirement-tree run (n = 81):");
    println!("  operations        : {}", view.operations);
    println!(
        "  contact-set sizes : min {} / mean {:.2} / max {}",
        view.min_size, view.mean_size, view.max_size
    );
    if let Some((p, c)) = view.busiest {
        println!("  busiest processor : {p} in {c} contact sets (dynamic load {:.3})", view.load);
    }
    println!("  Hot Spot Lemma    : {}", if view.verdict.holds() { "holds" } else { "VIOLATED" });
    assert!(view.verdict.holds());
    Ok(())
}
