//! Exhaustive worst-case search over *all* operation orders, for tiny
//! networks.
//!
//! The greedy longest-list adversary is a heuristic realization of the
//! proof's adversary. For small `n` we can afford ground truth: try every
//! permutation of initiators and report the order that maximizes the
//! bottleneck load. Tests use this to confirm (a) the theorem's bound is
//! respected by the *best possible* schedule too, and (b) the greedy
//! adversary is close to the true worst case.

use distctr_sim::{Counter, ProcessorId, SimError};

/// Result of an exhaustive schedule search.
#[derive(Debug, Clone)]
pub struct ExhaustiveOutcome {
    /// The order achieving the worst (largest) bottleneck.
    pub worst_order: Vec<ProcessorId>,
    /// The bottleneck load of that order.
    pub worst_bottleneck: u64,
    /// The order achieving the best (smallest) bottleneck.
    pub best_order: Vec<ProcessorId>,
    /// The bottleneck load of that order.
    pub best_bottleneck: u64,
    /// Number of permutations evaluated.
    pub permutations: u64,
}

/// Enumeration bound: 8! = 40320 permutations, each a full simulated
/// sequence; beyond that the search explodes.
pub const MAX_EXHAUSTIVE_N: usize = 8;

/// Evaluates every permutation of initiators on clones of `counter`.
///
/// # Errors
///
/// Propagates errors from the counter's `inc`; returns an error string
/// if `n` exceeds [`MAX_EXHAUSTIVE_N`].
pub fn exhaustive_search<C: Counter + Clone>(counter: &C) -> Result<ExhaustiveOutcome, SimError> {
    let n = counter.processors();
    assert!(
        n <= MAX_EXHAUSTIVE_N,
        "exhaustive search is bounded at n <= {MAX_EXHAUSTIVE_N}, got {n}"
    );
    let mut order: Vec<ProcessorId> = (0..n).map(ProcessorId::new).collect();
    let mut worst: Option<(Vec<ProcessorId>, u64)> = None;
    let mut best: Option<(Vec<ProcessorId>, u64)> = None;
    let mut permutations = 0u64;

    // Heap's algorithm, iterative.
    let mut c = vec![0usize; n];
    let evaluate = |order: &[ProcessorId],
                    worst: &mut Option<(Vec<ProcessorId>, u64)>,
                    best: &mut Option<(Vec<ProcessorId>, u64)>|
     -> Result<(), SimError> {
        let mut probe = counter.clone();
        for &p in order {
            probe.inc(p)?;
        }
        let bottleneck = probe.loads().max_load();
        if worst.as_ref().is_none_or(|(_, b)| bottleneck > *b) {
            *worst = Some((order.to_vec(), bottleneck));
        }
        if best.as_ref().is_none_or(|(_, b)| bottleneck < *b) {
            *best = Some((order.to_vec(), bottleneck));
        }
        Ok(())
    };

    evaluate(&order, &mut worst, &mut best)?;
    permutations += 1;
    let mut i = 0usize;
    while i < n {
        if c[i] < i {
            if i.is_multiple_of(2) {
                order.swap(0, i);
            } else {
                order.swap(c[i], i);
            }
            evaluate(&order, &mut worst, &mut best)?;
            permutations += 1;
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }

    let (worst_order, worst_bottleneck) = worst.expect("at least one permutation");
    let (best_order, best_bottleneck) = best.expect("at least one permutation");
    Ok(ExhaustiveOutcome {
        worst_order,
        worst_bottleneck,
        best_order,
        best_bottleneck,
        permutations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::Adversary;
    use crate::theory;
    use distctr_baselines::CentralCounter;
    use distctr_core::TreeCounter;

    #[test]
    fn search_covers_all_permutations() {
        let counter = CentralCounter::new(4).expect("central");
        let out = exhaustive_search(&counter).expect("search");
        assert_eq!(out.permutations, 24, "4! orders");
        // The central counter's bottleneck is order-independent.
        assert_eq!(out.worst_bottleneck, out.best_bottleneck);
        assert_eq!(out.worst_bottleneck, 2 * 4 + 2);
    }

    #[test]
    fn even_the_best_order_respects_the_lower_bound() {
        let counter = TreeCounter::new(8).expect("tree");
        let out = exhaustive_search(&counter).expect("search");
        let k = u64::from(theory::lower_bound_k(8));
        assert!(
            out.best_bottleneck >= k,
            "no schedule beats the theorem: best {} >= k {k}",
            out.best_bottleneck
        );
        assert!(out.worst_bottleneck >= out.best_bottleneck);
        assert_eq!(out.permutations, 40_320, "8! orders");
    }

    #[test]
    fn greedy_adversary_is_near_the_true_worst_case() {
        let counter = TreeCounter::new(8).expect("tree");
        let truth = exhaustive_search(&counter).expect("search");
        let mut greedy_counter = counter.clone();
        let greedy = Adversary::exhaustive().run(&mut greedy_counter).expect("adversary");
        assert!(
            2 * greedy.bottleneck.1 >= truth.worst_bottleneck,
            "greedy ({}) within 2x of the true worst case ({})",
            greedy.bottleneck.1,
            truth.worst_bottleneck
        );
    }

    #[test]
    #[should_panic(expected = "bounded")]
    fn oversized_search_rejected() {
        let counter = CentralCounter::new(9).expect("central");
        let _ = exhaustive_search(&counter);
    }
}
