//! The weight-function audit: replaying the lower-bound proof's central
//! argument on a real execution.
//!
//! The proof tracks, for the processor `q` chosen *last*, the
//! communication list its operation would have at each point in the
//! sequence, and the weight
//!
//! ```text
//! w_i = Σ_j m(p_ij) / 2^j
//! ```
//!
//! over that list (position-discounted message loads). Two facts make the
//! argument executable:
//!
//! * **Hot-spot premise** — during every operation `i`, at least one
//!   processor of `q`'s *current hypothetical* process must send or
//!   receive a message; otherwise `q`'s process would be unable to
//!   distinguish the pre- and post-`i` states and would return a stale
//!   value. For a deterministic implementation this is directly
//!   checkable: probe `q`'s operation on a cloned counter, take its
//!   contact set, and intersect with the committed operation's contact
//!   set.
//! * **Weight growth** — the proof derives `w_{i+1} ≥ w_i + 2^(−l_i)`,
//!   accumulating to `w_n ≥ Σ 2^(−l_i) ≥ n·2^(−l̄)` (AM-GM), which forces
//!   the bottleneck `λ` to satisfy `λ·2^λ ≥ √n`. The audit records the
//!   measured trajectory and the accumulated right-hand sides so
//!   experiments can display the proof's quantities on real runs.

use distctr_sim::{CommList, Counter, ProcessorId, SimError};

use crate::theory;

/// Measured quantities of one weight-function audit.
#[derive(Debug, Clone)]
pub struct WeightAudit {
    /// The last processor of the audited order.
    pub q: ProcessorId,
    /// `w_i` measured before each operation `i` (length `n`).
    pub weights: Vec<f64>,
    /// Length `l_i` of `q`'s hypothetical communication list before each
    /// operation.
    pub q_list_lens: Vec<u64>,
    /// Number of operations whose contact set intersected `q`'s
    /// hypothetical contact set (the hot-spot premise; must equal
    /// `steps` for a correct counter).
    pub hot_spot_hits: usize,
    /// Operations audited (`n − 1`: all but `q`'s own).
    pub steps: usize,
    /// `Σ 2^(−l_i)` over the audited steps.
    pub inverse_exp_sum: f64,
    /// `q`'s measured load after the full sequence.
    pub q_load: u64,
    /// The bottleneck load after the full sequence.
    pub bottleneck: u64,
}

impl WeightAudit {
    /// Whether the hot-spot premise held at every step.
    #[must_use]
    pub fn hot_spot_premise_holds(&self) -> bool {
        self.hot_spot_hits == self.steps
    }

    /// The AM-GM lower bound `n·2^(−l̄)` for the audited list lengths.
    #[must_use]
    pub fn amgm_bound(&self) -> f64 {
        theory::amgm_lower_bound(&self.q_list_lens)
    }

    /// Whether the measured bottleneck satisfies the theorem's conclusion
    /// for this network size.
    #[must_use]
    pub fn conclusion_holds(&self, n: u64) -> bool {
        self.bottleneck >= u64::from(theory::lower_bound_k(n))
    }
}

/// Runs the audit: executes `order` (all operations) on `counter`,
/// probing `q = order.last()`'s hypothetical operation before each step.
///
/// The counter must record **full traces** (`TraceMode::Full`) so the
/// probe can recover `q`'s ordered communication list.
///
/// # Errors
///
/// Propagates errors from the counter's `inc`.
///
/// # Panics
///
/// Panics if `order` is empty or if the counter does not record full
/// traces.
pub fn audit_weights<C: Counter + Clone>(
    counter: &mut C,
    order: &[ProcessorId],
) -> Result<WeightAudit, SimError> {
    let q = *order.last().expect("order must be nonempty");
    let steps = order.len() - 1;
    let mut weights = Vec::with_capacity(order.len());
    let mut q_list_lens = Vec::with_capacity(order.len());
    let mut hot_spot_hits = 0usize;
    let mut inverse_exp_sum = 0.0f64;

    for (i, &p) in order.iter().enumerate() {
        // Probe q's hypothetical operation from the current state.
        let mut probe = counter.clone();
        let probe_result = probe.inc(q)?;
        let probe_trace =
            probe_result.trace.as_ref().expect("weight audit requires per-op tracing");
        let dag = probe_trace
            .dag
            .as_ref()
            .expect("weight audit requires TraceMode::Full (communication DAG)");
        let list = CommList::from_dag(dag);
        let l = list.len_arcs();
        // w_i: position-discounted loads along q's list (skipping the
        // head, which is q's initiation event).
        let loads = counter.loads();
        let w: f64 = list
            .labels()
            .iter()
            .skip(1)
            .enumerate()
            .map(|(idx, &proc)| loads.load_of(proc) as f64 / (idx as f64 + 1.0).exp2())
            .sum();
        weights.push(w);
        q_list_lens.push(l);

        // Commit operation i and check the hot-spot premise (except for
        // q's own final operation, which trivially intersects itself).
        let committed = counter.inc(p)?;
        if i < steps {
            inverse_exp_sum += (-(l as f64)).exp2();
            let committed_trace =
                committed.trace.as_ref().expect("weight audit requires per-op tracing");
            if committed_trace.contacts.intersects(&probe_trace.contacts) {
                hot_spot_hits += 1;
            }
        }
    }

    let bottleneck = counter.loads().max_load();
    Ok(WeightAudit {
        q,
        weights,
        q_list_lens,
        hot_spot_hits,
        steps,
        inverse_exp_sum,
        q_load: counter.loads().load_of(q),
        bottleneck,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use distctr_core::TreeCounter;
    use distctr_sim::TraceMode;

    fn full_trace_tree(k: u32) -> TreeCounter {
        let n = distctr_core::kmath::leaves_of_order(k) as usize;
        TreeCounter::builder(n).expect("builder").trace(TraceMode::Full).build().expect("counter")
    }

    #[test]
    fn audit_on_tree_counter_k2() {
        let mut c = full_trace_tree(2);
        let order: Vec<ProcessorId> = (0..8).map(ProcessorId::new).collect();
        let audit = audit_weights(&mut c, &order).expect("audit");
        assert_eq!(audit.steps, 7);
        assert_eq!(audit.q, ProcessorId::new(7));
        assert!(
            audit.hot_spot_premise_holds(),
            "hot-spot premise: {} of {} steps",
            audit.hot_spot_hits,
            audit.steps
        );
        assert!(audit.conclusion_holds(8));
        assert_eq!(audit.weights.len(), 8);
        assert_eq!(audit.q_list_lens.len(), 8);
        // Initial weight is 0: all loads are 0 before the first op.
        assert_eq!(audit.weights[0], 0.0);
        // AM-GM consistency on the recorded lengths.
        assert!(theory::amgm_holds(&audit.q_list_lens));
        assert!(audit.inverse_exp_sum > 0.0);
    }

    #[test]
    fn q_load_is_at_most_bottleneck() {
        let mut c = full_trace_tree(2);
        let order: Vec<ProcessorId> = (0..8).rev().map(ProcessorId::new).collect();
        let audit = audit_weights(&mut c, &order).expect("audit");
        assert!(audit.q_load <= audit.bottleneck);
    }

    #[test]
    #[should_panic(expected = "TraceMode::Full")]
    fn contacts_only_counter_is_rejected() {
        let mut c = TreeCounter::new(8).expect("counter"); // Contacts mode
        let order: Vec<ProcessorId> = (0..8).map(ProcessorId::new).collect();
        let _ = audit_weights(&mut c, &order);
    }
}
