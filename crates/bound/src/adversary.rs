//! The proof's adversary, runnable against any counter implementation.
//!
//! "For each operation in the sequence we choose a processor (among those
//! that have not been chosen yet) and a process such that the processor's
//! communication list is longest."
//!
//! [`Adversary::run`] realizes the order-choosing half of that adversary
//! against a concrete (deterministic) implementation: before each
//! operation it *probes* every pending initiator on a cloned counter,
//! measures the communication-list length its operation would have, and
//! commits the longest. (The proof's other degree of freedom — choosing
//! among nondeterministic processes — collapses for a deterministic
//! implementation under a fixed delivery policy; running the adversary
//! under several policies recovers some of it.)

use rand::seq::SliceRandom;
use rand::SeedableRng;

use distctr_sim::{Counter, ProcessorId, SimError};

use crate::theory;

/// Outcome of a full adversarial run.
#[derive(Debug, Clone)]
pub struct AdversaryOutcome {
    /// The chosen initiator order.
    pub order: Vec<ProcessorId>,
    /// Communication-list length `L_i` of each committed operation.
    pub list_lens: Vec<u64>,
    /// The bottleneck processor and its load after the sequence.
    pub bottleneck: (ProcessorId, u64),
    /// Mean list length `L̄`.
    pub avg_list_len: f64,
    /// The theorem's `k` for this `n`.
    pub lower_bound_k: u32,
    /// The pigeonhole bound `⌈2·Σ L_i / n⌉` implied by the measured
    /// traffic.
    pub pigeonhole: u64,
}

impl AdversaryOutcome {
    /// Whether the run is consistent with the Lower Bound Theorem:
    /// the measured bottleneck is at least `k` and at least the
    /// pigeonhole bound.
    #[must_use]
    pub fn consistent_with_theorem(&self) -> bool {
        self.bottleneck.1 >= u64::from(self.lower_bound_k) && self.bottleneck.1 >= self.pigeonhole
    }
}

/// Configuration of the greedy longest-list adversary.
#[derive(Debug, Clone, Default)]
pub struct Adversary {
    /// Probe at most this many pending candidates per step (all when
    /// `None`). Sampling keeps the adversary `O(n·s)` instead of `O(n²)`
    /// for large networks.
    pub sample: Option<usize>,
    /// Seed for candidate sampling.
    pub seed: u64,
}

impl Adversary {
    /// A full (exhaustive-probe) adversary.
    #[must_use]
    pub fn exhaustive() -> Self {
        Adversary::default()
    }

    /// A sampling adversary probing `sample` candidates per step.
    #[must_use]
    pub fn sampled(sample: usize, seed: u64) -> Self {
        Adversary { sample: Some(sample.max(1)), seed }
    }

    /// Runs the adversary to completion: one operation per processor,
    /// always committing the probe with the longest communication list.
    ///
    /// # Errors
    ///
    /// Propagates any error from the counter's `inc`.
    pub fn run<C: Counter + Clone>(&self, counter: &mut C) -> Result<AdversaryOutcome, SimError> {
        let n = counter.processors();
        let mut remaining: Vec<ProcessorId> = (0..n).map(ProcessorId::new).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let mut order = Vec::with_capacity(n);
        let mut list_lens = Vec::with_capacity(n);
        while !remaining.is_empty() {
            let probe_set: Vec<ProcessorId> = match self.sample {
                Some(s) if s < remaining.len() => {
                    remaining.choose_multiple(&mut rng, s).copied().collect()
                }
                _ => remaining.clone(),
            };
            let mut best: Option<(ProcessorId, u64)> = None;
            for &candidate in &probe_set {
                let mut probe = counter.clone();
                let result = probe.inc(candidate)?;
                let len = result.list_len();
                // Longest list wins; ties break toward the smaller id so
                // runs are reproducible.
                let better = match best {
                    None => true,
                    Some((bp, bl)) => len > bl || (len == bl && candidate < bp),
                };
                if better {
                    best = Some((candidate, len));
                }
            }
            let (chosen, _) = best.expect("probe set nonempty");
            let committed = counter.inc(chosen)?;
            list_lens.push(committed.list_len());
            order.push(chosen);
            remaining.retain(|&p| p != chosen);
        }
        let bottleneck = counter.loads().bottleneck().expect("nonempty network");
        let total: u64 = list_lens.iter().sum();
        let avg = total as f64 / n as f64;
        Ok(AdversaryOutcome {
            order,
            list_lens,
            bottleneck,
            avg_list_len: avg,
            lower_bound_k: theory::lower_bound_k(n as u64),
            pigeonhole: theory::pigeonhole_bound(total, n as u64),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distctr_sim::{IncResult, LoadTracker, SimTime};

    /// A tiny deterministic counter where processor `n-1` has an
    /// artificially expensive operation — the adversary should pick it
    /// first.
    #[derive(Clone)]
    struct Skewed {
        n: usize,
        val: u64,
        loads: LoadTracker,
    }
    impl Skewed {
        fn new(n: usize) -> Self {
            Skewed { n, val: 0, loads: LoadTracker::new(n) }
        }
    }
    impl Counter for Skewed {
        fn name(&self) -> &'static str {
            "skewed"
        }
        fn processors(&self) -> usize {
            self.n
        }
        fn inc(&mut self, p: ProcessorId) -> Result<IncResult, SimError> {
            let value = self.val;
            self.val += 1;
            let cost = if p.index() == self.n - 1 { 10 } else { 2 };
            for _ in 0..cost {
                self.loads.record_send(p);
                self.loads.record_receive(ProcessorId::new(0));
            }
            Ok(IncResult {
                value,
                messages: cost,
                completed_at: SimTime::from_ticks(self.val),
                trace: None,
            })
        }
        fn loads(&self) -> &LoadTracker {
            &self.loads
        }
    }

    #[test]
    fn adversary_commits_longest_list_first() {
        let mut c = Skewed::new(4);
        let outcome = Adversary::exhaustive().run(&mut c).expect("run");
        assert_eq!(outcome.order[0], ProcessorId::new(3), "expensive op chosen first");
        assert_eq!(outcome.list_lens[0], 10);
        assert_eq!(outcome.order.len(), 4);
        // Every processor exactly once.
        let mut sorted = outcome.order.clone();
        sorted.sort();
        assert_eq!(sorted, (0..4).map(ProcessorId::new).collect::<Vec<_>>());
    }

    #[test]
    fn outcome_statistics_are_consistent() {
        let mut c = Skewed::new(4);
        let outcome = Adversary::exhaustive().run(&mut c).expect("run");
        let total: u64 = outcome.list_lens.iter().sum();
        assert_eq!(total, 10 + 2 + 2 + 2);
        assert!((outcome.avg_list_len - total as f64 / 4.0).abs() < 1e-12);
        assert_eq!(outcome.pigeonhole, theory::pigeonhole_bound(total, 4));
        assert!(outcome.consistent_with_theorem());
    }

    #[test]
    fn sampled_adversary_still_covers_every_processor() {
        let mut c = Skewed::new(16);
        let outcome = Adversary::sampled(3, 9).run(&mut c).expect("run");
        assert_eq!(outcome.order.len(), 16);
        let mut sorted = outcome.order.clone();
        sorted.sort();
        assert_eq!(sorted, (0..16).map(ProcessorId::new).collect::<Vec<_>>());
    }

    #[test]
    fn probes_do_not_mutate_the_real_counter() {
        let mut c = Skewed::new(4);
        Adversary::exhaustive().run(&mut c).expect("run");
        // Exactly n committed ops: the value is n despite ~n^2 probes.
        assert_eq!(c.val, 4);
    }
}
