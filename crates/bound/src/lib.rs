//! # distctr-bound
//!
//! Executable machinery for the paper's Lower Bound Theorem: *in any
//! distributed counter on n processors, over a sequence of n operations
//! with each processor incrementing exactly once, some processor sends
//! and receives Ω(k) messages, where k^(k+1) = n.*
//!
//! Three pieces make the bound something you can *run*, not just prove:
//!
//! * [`theory`] — the arithmetic: `k(n)`, the continuous threshold
//!   `λ·2^λ ≥ √n`, the AM-GM and pigeonhole steps.
//! * [`Adversary`] — the proof's "longest communication list first"
//!   operation scheduler, generic over any [`distctr_sim::Counter`]
//!   implementation (probing candidates on cloned counters).
//! * [`audit_weights`] — the weight-function argument replayed on a real
//!   execution: `q`'s hypothetical list, its position-discounted weight
//!   trajectory, and the hot-spot premise checked at every step.
//!
//! ```
//! use distctr_bound::{Adversary, theory};
//! use distctr_core::TreeCounter;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut counter = TreeCounter::new(8)?; // k = 2
//! let outcome = Adversary::exhaustive().run(&mut counter)?;
//! assert!(outcome.consistent_with_theorem());
//! assert_eq!(theory::lower_bound_k(8), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod exhaustive;
pub mod theory;
pub mod weights;

pub use adversary::{Adversary, AdversaryOutcome};
pub use exhaustive::{exhaustive_search, ExhaustiveOutcome, MAX_EXHAUSTIVE_N};
pub use weights::{audit_weights, WeightAudit};
