//! The Lower Bound Theorem's arithmetic, as executable checks.
//!
//! "In any algorithm that implements a distributed counter on n
//! processors there is a bottleneck processor that sends and receives
//! Ω(k) messages, where k·k^k = n."
//!
//! The proof chains three elementary facts this module makes checkable on
//! real executions:
//!
//! 1. **Pigeonhole**: if the n operations send `Σ L_i = n·L̄` messages in
//!    total, some processor's load is at least `⌈2nL̄/n⌉ = 2L̄ ≥ L̄`
//!    (every message is charged to a sender and a receiver).
//! 2. **AM-GM**: `Σ 2^(−l_i) ≥ n · 2^(−l̄)` for any list lengths `l_i`
//!    with mean `l̄`.
//! 3. **Threshold**: combining 1-2 with the weight-function argument
//!    yields `λ · 2^λ ≥ √n` for the bottleneck load `λ`, whence `λ ≥ k`
//!    with `k^(k+1) = n` (up to the floor the paper takes).

use distctr_core::kmath;

/// The theorem's `k` for a network of `n` processors: the largest `k`
/// with `k^(k+1) <= n`. Every counter implementation must have a
/// bottleneck processor with load at least this.
///
/// # Examples
///
/// ```
/// use distctr_bound::theory::lower_bound_k;
/// assert_eq!(lower_bound_k(81), 3);
/// assert_eq!(lower_bound_k(1024), 4);
/// assert_eq!(lower_bound_k(2000), 4);
/// ```
#[must_use]
pub fn lower_bound_k(n: u64) -> u32 {
    kmath::bottleneck_lower_bound(n)
}

/// The continuous version of the bound, `x` solving `x^(x+1) = n` —
/// `≈ ln n / ln ln n`. Used as a plot overlay.
#[must_use]
pub fn lower_bound_continuous(n: f64) -> f64 {
    kmath::continuous_order(n)
}

/// The smallest `λ` satisfying the proof's final inequality
/// `λ · 2^λ ≥ sqrt(n)` — the exact form the weight argument produces
/// before the paper coarsens it to `k` with `k^(k+1) = n`.
///
/// # Examples
///
/// ```
/// use distctr_bound::theory::weight_threshold;
/// assert!(weight_threshold(1024.0) >= 2.0);
/// ```
#[must_use]
pub fn weight_threshold(n: f64) -> f64 {
    if n <= 1.0 {
        return 0.0;
    }
    let target = n.sqrt();
    // λ·2^λ is increasing; bisect.
    let (mut lo, mut hi) = (0.0f64, 64.0f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if mid * mid.exp2() >= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// Left-hand side of the AM-GM step: `Σ 2^(−l_i)`.
#[must_use]
pub fn inverse_exponential_sum(list_lens: &[u64]) -> f64 {
    list_lens.iter().map(|&l| (-(l as f64)).exp2()).sum()
}

/// Right-hand side of the AM-GM step: `n · 2^(−mean(l))`.
#[must_use]
pub fn amgm_lower_bound(list_lens: &[u64]) -> f64 {
    if list_lens.is_empty() {
        return 0.0;
    }
    let n = list_lens.len() as f64;
    let mean = list_lens.iter().sum::<u64>() as f64 / n;
    n * (-mean).exp2()
}

/// Verifies the AM-GM inequality `Σ 2^(−l_i) ≥ n·2^(−l̄)` on measured
/// list lengths (allowing for floating-point slack).
#[must_use]
pub fn amgm_holds(list_lens: &[u64]) -> bool {
    inverse_exponential_sum(list_lens) + 1e-9 >= amgm_lower_bound(list_lens)
}

/// The pigeonhole step: with `total` messages over `n` processors, some
/// processor's load (sends + receives) is at least `ceil(2·total / n)`.
#[must_use]
pub fn pigeonhole_bound(total_messages: u64, n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    (2 * total_messages).div_ceil(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_bound_k_matches_kmath_table() {
        assert_eq!(lower_bound_k(1), 1);
        assert_eq!(lower_bound_k(8), 2);
        assert_eq!(lower_bound_k(80), 2);
        assert_eq!(lower_bound_k(81), 3);
        assert_eq!(lower_bound_k(15_625), 5);
        assert_eq!(lower_bound_k(279_936), 6);
    }

    #[test]
    fn weight_threshold_is_increasing_and_sane() {
        let mut last = 0.0;
        for exp in 1..12 {
            let n = 10f64.powi(exp);
            let lam = weight_threshold(n);
            assert!(lam >= last, "monotone");
            // Check it actually satisfies the inequality.
            assert!(lam * lam.exp2() >= n.sqrt() * 0.999);
            last = lam;
        }
        assert_eq!(weight_threshold(1.0), 0.0);
    }

    #[test]
    fn weight_threshold_tracks_discrete_k() {
        // λ(n) and k(n) are within a small factor of each other on the
        // exact points n = k^(k+1).
        for k in 2..=6u32 {
            let n = distctr_core::kmath::leaves_of_order(k) as f64;
            let lam = weight_threshold(n);
            let kf = k as f64;
            assert!(lam <= kf + 1.0 && lam >= kf / 4.0, "k={k}: λ={lam} comparable to k");
        }
    }

    #[test]
    fn amgm_on_uniform_lists_is_tight() {
        let lens = vec![5u64; 100];
        let lhs = inverse_exponential_sum(&lens);
        let rhs = amgm_lower_bound(&lens);
        assert!((lhs - rhs).abs() < 1e-9, "equality when all lengths equal");
        assert!(amgm_holds(&lens));
    }

    #[test]
    fn amgm_on_skewed_lists_is_strict() {
        let lens = vec![0u64, 10];
        assert!(inverse_exponential_sum(&lens) > amgm_lower_bound(&lens));
        assert!(amgm_holds(&lens));
    }

    #[test]
    fn amgm_empty_input() {
        assert_eq!(inverse_exponential_sum(&[]), 0.0);
        assert_eq!(amgm_lower_bound(&[]), 0.0);
        assert!(amgm_holds(&[]));
    }

    #[test]
    fn pigeonhole_examples() {
        // 16 messages over 8 processors: total load 32, someone has >= 4.
        assert_eq!(pigeonhole_bound(16, 8), 4);
        assert_eq!(pigeonhole_bound(1, 8), 1);
        assert_eq!(pigeonhole_bound(0, 8), 0);
        assert_eq!(pigeonhole_bound(5, 0), 0);
        // Rounds up.
        assert_eq!(pigeonhole_bound(9, 4), 5);
    }
}
