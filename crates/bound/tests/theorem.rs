//! Integration: the Lower Bound Theorem checked against every counter
//! implementation in the workspace.

use distctr_baselines::{
    CentralCounter, CombiningTreeCounter, CountingNetworkCounter, DiffractingTreeCounter,
    StaticTreeCounter,
};
use distctr_bound::{audit_weights, Adversary};
use distctr_core::TreeCounter;
use distctr_sim::{Counter, ProcessorId, TraceMode};

fn assert_theorem<C: Counter + Clone>(mut counter: C) {
    let name = counter.name();
    let outcome = Adversary::exhaustive().run(&mut counter).expect("adversary runs");
    assert!(
        outcome.consistent_with_theorem(),
        "{name}: bottleneck {} must be >= k = {} and >= pigeonhole {}",
        outcome.bottleneck.1,
        outcome.lower_bound_k,
        outcome.pigeonhole
    );
}

#[test]
fn lower_bound_holds_for_every_implementation_n8() {
    assert_theorem(TreeCounter::new(8).expect("tree"));
    assert_theorem(StaticTreeCounter::new(8).expect("static"));
    assert_theorem(CentralCounter::new(8).expect("central"));
    assert_theorem(CombiningTreeCounter::new(8).expect("combining"));
    assert_theorem(CountingNetworkCounter::new(8, 4).expect("counting"));
    assert_theorem(DiffractingTreeCounter::new(8, 2).expect("diffracting"));
}

#[test]
fn lower_bound_holds_for_tree_counter_n81() {
    // The interesting case: the matching upper bound still clears the
    // lower bound, with bottleneck Θ(k) sandwiched in [k, 20k].
    let mut counter = TreeCounter::new(81).expect("tree");
    let outcome = Adversary::sampled(8, 17).run(&mut counter).expect("adversary");
    assert!(outcome.consistent_with_theorem());
    assert!(outcome.bottleneck.1 >= 3, "k = 3 for n = 81");
    assert!(outcome.bottleneck.1 <= 60, "still O(k): {}", outcome.bottleneck.1);
}

#[test]
fn adversary_never_beats_what_it_measures() {
    // The adversary's committed list lengths must sum to the counter's
    // total message count.
    let mut counter = CentralCounter::new(8).expect("central");
    let outcome = Adversary::exhaustive().run(&mut counter).expect("adversary");
    let total: u64 = outcome.list_lens.iter().sum();
    assert_eq!(total, counter.loads().total_messages());
}

#[test]
fn weight_audit_hot_spot_premise_across_implementations() {
    // The hot-spot premise must hold for every correct implementation.
    let order: Vec<ProcessorId> = (0..8).map(ProcessorId::new).collect();

    let mut tree =
        TreeCounter::builder(8).expect("builder").trace(TraceMode::Full).build().expect("tree");
    let audit = audit_weights(&mut tree, &order).expect("audit");
    assert!(audit.hot_spot_premise_holds(), "tree: {}/{}", audit.hot_spot_hits, audit.steps);

    let mut central =
        CentralCounter::with_policy(8, TraceMode::Full, distctr_sim::DeliveryPolicy::Fifo)
            .expect("central");
    let audit = audit_weights(&mut central, &order).expect("audit");
    assert!(audit.hot_spot_premise_holds(), "central: {}/{}", audit.hot_spot_hits, audit.steps);

    let mut network = CountingNetworkCounter::with_policy(
        8,
        4,
        TraceMode::Full,
        distctr_sim::DeliveryPolicy::Fifo,
    )
    .expect("counting");
    let audit = audit_weights(&mut network, &order).expect("audit");
    assert!(audit.hot_spot_premise_holds(), "counting: {}/{}", audit.hot_spot_hits, audit.steps);
}

#[test]
fn adversary_bottleneck_at_least_random_order_bottleneck_for_central() {
    // For the centralized counter the bottleneck is workload-independent
    // (2n + 2); the adversary must find at least as much as a random run.
    let mut adversarial = CentralCounter::new(8).expect("central");
    let outcome = Adversary::exhaustive().run(&mut adversarial).expect("adversary");
    let mut random = CentralCounter::new(8).expect("central");
    distctr_sim::SequentialDriver::run_shuffled(&mut random, 3).expect("random");
    assert!(outcome.bottleneck.1 >= random.loads().max_load());
}
