//! The Lower Bound Theorem, model-checked: the bottleneck is not an
//! artifact of one delivery order. On *every* explored schedule of a
//! full n-operation workload, some processor's load reaches the
//! theorem's `k` — and every operation's contact set touches the
//! root-holder chain, the geometric fact the weight argument charges
//! messages against.

use distctr_bound::theory::lower_bound_k;
use distctr_check::{
    default_invariants, Budget, CheckConfig, Checker, HotSpotIntersection, Invariant, World,
};

/// At any terminal state where the whole workload completed, the
/// maximum per-processor load is at least the theorem's `k`.
struct BottleneckAtLeast {
    k: u64,
}

impl Invariant for BottleneckAtLeast {
    fn name(&self) -> &'static str {
        "bottleneck-lower-bound"
    }

    fn check(&self, world: &World) -> Result<(), String> {
        if !world.ops().iter().all(|o| o.value.is_some()) {
            return Ok(()); // the theorem talks about completed workloads
        }
        let max = world.loads().iter().max().copied().unwrap_or(0);
        if max < self.k {
            return Err(format!(
                "all {} ops completed but the bottleneck load is {max} < k = {}",
                world.ops().len(),
                self.k
            ));
        }
        Ok(())
    }
}

#[test]
fn bottleneck_holds_on_every_explored_schedule() {
    // n = 8 processors (k = 2), one op per processor: the theorem says
    // some processor must send+receive at least k messages, on every
    // schedule — not just the FIFO mainline the adversary tests drive.
    let n = 8u64;
    let k = u64::from(lower_bound_k(n));
    assert_eq!(k, 2);
    let cfg = CheckConfig::new(n as usize).sequential_ops(&[0, 1, 2, 3, 4, 5, 6, 7]);
    let mut invariants = default_invariants();
    invariants.push(Box::new(BottleneckAtLeast { k }));
    let outcome = Checker::new(cfg)
        .invariants(invariants)
        .budget(Budget { max_transitions: 80_000, ..Budget::default() })
        .run();
    assert!(outcome.holds(), "violation: {:?}", outcome.violation);
    assert!(outcome.stats.quiescent_leaves >= 1);
}

#[test]
fn hot_spot_geometry_survives_concurrency() {
    // The weight argument needs every op to reach the current root
    // holder; the checker's hot-spot invariant asserts exactly that at
    // every quiescent state, here with two ops racing across the
    // retirement window.
    let cfg = CheckConfig::new(8).warmup(&[0, 2, 4]).concurrent_ops(&[1, 6]);
    let outcome = Checker::new(cfg)
        .invariants(vec![Box::new(HotSpotIntersection)])
        .budget(Budget { max_transitions: 60_000, ..Budget::default() })
        .run();
    assert!(outcome.holds(), "violation: {:?}", outcome.violation);
}
