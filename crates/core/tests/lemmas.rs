//! Integration tests: every lemma of the paper's upper-bound section,
//! verified on full canonical workloads across tree orders and delivery
//! policies.

use distctr_core::{RetirementPolicy, TreeCounter};
use distctr_sim::{Counter, DeliveryPolicy, ProcessorId, SequentialDriver, TraceMode};

fn canonical_run(k: u32, policy: DeliveryPolicy, seed: u64) -> TreeCounter {
    let n = distctr_core::kmath::leaves_of_order(k) as usize;
    let mut c = TreeCounter::builder(n)
        .expect("builder")
        .delivery(policy)
        .trace(TraceMode::Contacts)
        .build()
        .expect("counter");
    let out = SequentialDriver::run_shuffled(&mut c, seed).expect("sequence");
    assert!(out.values_are_sequential(), "counter must be correct before lemma checks");
    c
}

#[test]
fn all_lemmas_hold_across_orders_and_policies() {
    for k in 2..=4u32 {
        for policy in DeliveryPolicy::test_suite() {
            let name = policy.name();
            let c = canonical_run(k, policy, 1000 + k as u64);
            let audit = c.audit();
            assert!(audit.grow_old_lemma_holds(), "Grow Old (k={k}, {name})");
            assert!(audit.retirement_lemma_holds(), "Retirement (k={k}, {name})");
            assert!(
                audit.retirement_counts_within_pools(c.topology()),
                "Number of Retirements (k={k}, {name}): by-level {:?}, exhausted {:?}",
                audit.retirements_by_level(),
                audit.pool_exhausted_by_level()
            );
            assert!(
                audit.stint_work_within(8 * k as u64 + 8),
                "Inner Node Work (k={k}, {name}): {}",
                audit.max_stint_msgs()
            );
        }
    }
}

#[test]
fn number_of_retirements_matches_level_formula() {
    // Lemma: a level-i node retires at most k^(k-i) - 1 times; the root at
    // most k^k - 1 times.
    for k in 2..=4u32 {
        let c = canonical_run(k, DeliveryPolicy::Fifo, 7);
        let topo = c.topology();
        let audit = c.audit();
        for level in 0..=k {
            let max = audit.max_retirements_on_level(topo, level);
            let bound = topo.pool_size(level) - 1;
            assert!(max <= bound, "k={k} level={level}: max retirements {max} > bound {bound}");
        }
        // Level-k nodes never retire (singleton pools).
        assert_eq!(audit.max_retirements_on_level(topo, k), 0);
    }
}

#[test]
fn leaf_node_work_lemma() {
    // A leaf that never serves an inner node exchanges exactly 2 messages:
    // its inc request and the value reply (level-k parents never retire,
    // so no NewWorkerLeaf traffic).
    for k in 2..=3u32 {
        let c = canonical_run(k, DeliveryPolicy::Fifo, 11);
        let topo = c.topology();
        let n = c.processors();
        // Processors whose id is in no inner node's pool are pure leaves.
        let mut in_pool = vec![false; n];
        for node in topo.nodes() {
            for id in topo.pool(node) {
                in_pool[id as usize] = true;
            }
        }
        let mut pure_leaves = 0;
        for (p, covered) in in_pool.iter().enumerate() {
            if !covered {
                pure_leaves += 1;
                assert_eq!(
                    c.loads().load_of(ProcessorId::new(p)),
                    2,
                    "pure leaf P{p} exchanges exactly 2 messages (k={k})"
                );
            }
        }
        // Levels 1..=k pools cover all ids, so there are no pure leaves by
        // construction — the lemma instead bounds every processor's leaf
        // *component* at 2, which the bottleneck test covers. Assert the
        // pool-coverage fact so this test stays honest.
        assert_eq!(pure_leaves, 0, "pools cover every id (k={k})");
    }
}

#[test]
fn leaf_component_is_two_messages() {
    // Isolate leaf traffic: run with retirement disabled and look at
    // processors that serve no inner node initially. Under the static
    // tree, a non-worker processor's whole load is its leaf component.
    let k = 3u32;
    let n = distctr_core::kmath::leaves_of_order(k) as usize;
    let mut c = TreeCounter::builder(n)
        .expect("builder")
        .retirement(RetirementPolicy::Never)
        .build()
        .expect("counter");
    SequentialDriver::run_identity(&mut c).expect("sequence");
    let topo = c.topology();
    let mut is_initial_worker = vec![false; n];
    for node in topo.nodes() {
        is_initial_worker[topo.initial_worker(node).index()] = true;
    }
    for (p, is_worker) in is_initial_worker.iter().enumerate() {
        if !is_worker {
            assert_eq!(
                c.loads().load_of(ProcessorId::new(p)),
                2,
                "leaf component of P{p} is exactly 2 messages"
            );
        }
    }
}

#[test]
fn hot_spot_lemma_on_tree_traces() {
    // Consecutive operations' contact sets intersect.
    let mut c = TreeCounter::with_order(3).expect("k=3");
    let out = SequentialDriver::run_shuffled(&mut c, 5).expect("sequence");
    let traces: Vec<_> =
        out.results.iter().map(|r| r.trace.as_ref().expect("contacts traced")).collect();
    for pair in traces.windows(2) {
        assert!(
            pair[0].contacts.intersects(&pair[1].contacts),
            "Hot Spot Lemma violated between {} and {}",
            pair[0].op,
            pair[1].op
        );
    }
}

#[test]
fn bottleneck_theorem_scales_with_k_not_n() {
    // O(k) bottleneck: as n grows by ~20x (k: 3 -> 4), the bottleneck
    // grows by at most ~2x.
    let b3 = {
        let c = canonical_run(3, DeliveryPolicy::Fifo, 3);
        c.loads().max_load()
    };
    let b4 = {
        let c = canonical_run(4, DeliveryPolicy::Fifo, 4);
        c.loads().max_load()
    };
    assert!(b4 <= 2 * b3, "bottleneck nearly flat: k=3 -> {b3}, k=4 -> {b4}");
    assert!(b4 <= 20 * 4, "O(k) with constant 20: {b4}");
}

#[test]
#[ignore = "slow: n = 15625 full sequence; run with --ignored"]
fn bottleneck_theorem_at_k5() {
    let c = canonical_run(5, DeliveryPolicy::Fifo, 5);
    let audit = c.audit();
    assert!(audit.grow_old_lemma_holds());
    assert!(audit.retirement_lemma_holds());
    assert!(audit.retirement_counts_within_pools(c.topology()));
    assert!(c.loads().max_load() <= 20 * 5, "bottleneck {}", c.loads().max_load());
}

#[test]
fn recycling_pools_sustain_multi_round_workloads() {
    use distctr_core::PoolPolicy;
    let k = 3u32;
    let n = distctr_core::kmath::leaves_of_order(k) as usize;
    let rounds = 4u64;

    let run = |pool: PoolPolicy| {
        let mut c = TreeCounter::builder(n)
            .expect("builder")
            .trace(TraceMode::Off)
            .pool(pool)
            .build()
            .expect("tree");
        for round in 0..rounds {
            let out = SequentialDriver::run_shuffled(&mut c, round).expect("round runs");
            assert!(out.values_are_sequential() || round > 0, "values keep counting");
        }
        assert_eq!(c.value(), rounds * n as u64, "all ops counted");
        (c.loads().max_load(), c.audit().retirement_lemma_holds())
    };

    let (one_shot, one_shot_lemma) = run(PoolPolicy::OneShot);
    let (recycling, recycling_lemma) = run(PoolPolicy::Recycling);
    assert!(one_shot_lemma && recycling_lemma, "per-op lemmas hold under both policies");
    // One-shot pools drain after ~1 round; the permanent workers then eat
    // Θ(n) per extra round. Recycling keeps the bottleneck at ~O(k) per
    // round.
    assert!(
        2 * recycling < one_shot,
        "recycling sustains the spread: {recycling} vs one-shot {one_shot}"
    );
    assert!(
        recycling <= rounds * 20 * u64::from(k),
        "recycling stays within 20k per round: {recycling}"
    );
}

#[test]
fn messages_stay_logarithmic_in_n() {
    // O(log n)-bit messages: sample every message kind and check sizes.
    use distctr_core::{CounterMsg, NodeRef};
    let node = NodeRef { level: 2, index: 3 };
    for k in [2u32, 4, 6] {
        let n = distctr_core::kmath::leaves_of_order(k);
        let value_bits = 64 - n.leading_zeros() + 1;
        let msg: CounterMsg =
            distctr_core::Msg::Apply { node, origin: ProcessorId::new(0), op_seq: 0, req: () };
        let bits = msg.wire_size_bits(n, k, 0, value_bits);
        let budget = 8 * (64 - n.leading_zeros()) + 16;
        assert!(bits <= budget, "k={k}: {bits} bits within O(log n) budget {budget}");
    }
}
