//! Regression sweep for crashes landing at the exact retirement-handoff
//! tick.
//!
//! The nastiest crash point in the protocol is *mid-handoff*: a node has
//! decided to retire, the state-bearing `HandoffFinal` is in flight to
//! the pool successor — and the successor is already dead, or dies the
//! moment it installs. The node's state left the old worker and never
//! (usably) arrived at the new one. The client watchdog's
//! stalled-handoff rescue (`promote_successors` in
//! `crates/core/src/client.rs`) must detect the still-open transfer at
//! quiescence and promote the *next* live pool member, rebuilt from the
//! node's neighbours and the persisted root object.
//!
//! Exhaustively sweeping the crash over **every** network-wide delivery
//! tick of the run guarantees the sweep hits the exact handoff tick (and
//! every other window) — no seed luck involved.

use distctr_core::client::TreeClient;
use distctr_core::{CounterObject, NodeRef};
use distctr_sim::{FaultPlan, ProcessorId, TraceMode};

/// The crash victim: P1 is the root pool's first successor for k = 2
/// (pool {0, 1, 2, 3}), so the first root retirement hands the root —
/// reply cache, counter object and all — straight at the crash.
const VICTIM: usize = 1;

/// Initiators avoiding the victim (a crashed initiator cannot receive
/// its response, which is a *different*, legitimate error).
const INITIATORS: [usize; 7] = [0, 2, 3, 4, 5, 6, 7];

fn client_with_crash_at(tick: u64) -> TreeClient<CounterObject> {
    TreeClient::builder(8, CounterObject::new())
        .expect("builder")
        .trace(TraceMode::Off)
        .faults(FaultPlan::new(0).crash(ProcessorId::new(VICTIM), tick))
        .build()
        .expect("client")
}

/// Per-operation delivery counts of the fault-free run — the sweep's
/// coordinate system.
fn baseline_messages() -> Vec<u64> {
    let mut baseline = TreeClient::builder(8, CounterObject::new())
        .expect("builder")
        .trace(TraceMode::Off)
        .build()
        .expect("client");
    let per_op: Vec<u64> = INITIATORS
        .iter()
        .map(|&p| baseline.invoke(ProcessorId::new(p), ()).expect("baseline inc").messages)
        .collect();
    assert!(
        baseline.audit().retirements_by_level().iter().sum::<u64>() >= 1,
        "the workload must actually cross a retirement for the sweep to mean anything"
    );
    assert_eq!(
        baseline.worker_of(NodeRef::ROOT),
        ProcessorId::new(VICTIM),
        "fault-free, the first root retirement hands off to the victim — \
         so some crash tick in the sweep lands on that handoff"
    );
    per_op
}

#[test]
fn crash_at_every_delivery_tick_keeps_values_sequential() {
    let total: u64 = baseline_messages().iter().sum();

    // The sweep: crash the victim at every delivery tick of the run
    // (plus slack past the end for the fault-free tail). Wherever the
    // tick lands — before the retirement, mid-handoff, right after the
    // install, in the cascade's tail — every operation must still return
    // its sequential value, and one further operation must find (or
    // repair to) a live root worker.
    let mut rescued_ticks = 0usize;
    for tick in 0..=total + 2 {
        let mut client = client_with_crash_at(tick);
        for (expected, &p) in INITIATORS.iter().enumerate() {
            let v = client
                .invoke_fault_tolerant(ProcessorId::new(p), ())
                .unwrap_or_else(|e| panic!("tick {tick}, initiator P{p}: {e}"))
                .response;
            assert_eq!(v, expected as u64, "crash of P{VICTIM} at delivery tick {tick}");
        }
        // One more op: if the crash landed in the last cascade's tail
        // (after the final response), this is the op that discovers the
        // dead or half-installed root worker and rescues it.
        let extra = client
            .invoke_fault_tolerant(ProcessorId::new(0), ())
            .unwrap_or_else(|e| panic!("tick {tick}, post-crash op: {e}"))
            .response;
        assert_eq!(extra, INITIATORS.len() as u64, "tick {tick}: post-crash op value");
        let root_worker = client.worker_of(NodeRef::ROOT);
        assert!(
            !client.is_crashed(root_worker),
            "tick {tick}: the root's worker {root_worker} is dead after a repairing op"
        );
        // The rescue's fingerprint: the root's worker skipped past the
        // corpse to a higher pool member.
        if root_worker.index() > VICTIM {
            rescued_ticks += 1;
        }
    }
    assert!(
        rescued_ticks > 0,
        "no crash tick in 0..={} exercised the promote-past-dead-successor rescue",
        total + 2
    );
}

#[test]
fn crash_inside_the_retirement_cascade_window_is_rescued() {
    // Pin the narrow window directly. The baseline tells us which op
    // triggers the first retirement cascade (its delivery count jumps
    // above the plain climb) and which delivery ticks the cascade spans;
    // a crash at *any* tick inside that span lands between the
    // retirement decision and the cascade's last message — including the
    // tick where the state-bearing final is exactly in flight.
    let per_op = baseline_messages();
    let plain = *per_op.iter().min().expect("non-empty");
    let cascade_op = per_op.iter().position(|&m| m > plain).expect("a cascade op exists");
    let window_start: u64 = per_op[..cascade_op].iter().sum();
    let window_end: u64 = window_start + per_op[cascade_op];

    for tick in window_start + 1..=window_end {
        let mut client = client_with_crash_at(tick);
        // Drive up to and including the cascade-triggering op: its value
        // must come back even though its own cascade is being shot at.
        for (expected, &p) in INITIATORS.iter().take(cascade_op + 1).enumerate() {
            let v = client
                .invoke_fault_tolerant(ProcessorId::new(p), ())
                .unwrap_or_else(|e| panic!("tick {tick}, initiator P{p}: {e}"))
                .response;
            assert_eq!(v, expected as u64, "tick {tick}");
        }
        // The next op walks into whatever the crash left behind — a
        // stalled handoff or a freshly-installed-then-killed root — and
        // must repair it on the spot.
        let next = client
            .invoke_fault_tolerant(ProcessorId::new(INITIATORS[cascade_op + 1]), ())
            .unwrap_or_else(|e| panic!("tick {tick}, rescue op: {e}"))
            .response;
        assert_eq!(next, cascade_op as u64 + 1, "tick {tick}: rescue op value");
        let root_worker = client.worker_of(NodeRef::ROOT);
        assert!(
            root_worker.index() > VICTIM,
            "tick {tick}: the rescue must promote the root past the dead successor, \
             found {root_worker}"
        );
        assert!(!client.is_crashed(root_worker), "tick {tick}: root worker alive");
    }
}
