//! Seeded-random property tests for `kmath` — the arithmetic both
//! backends and the checker share. No `proptest` machinery: cases are
//! drawn from a seeded `StdRng` in-tree, so every run checks the exact
//! same corpus and a failure names its inputs.

use distctr_core::kmath::{
    bottleneck_lower_bound, exact_order, leaves_of_order, next_pool_index, order_for, pow_u64,
    retirement_threshold, MAX_ORDER,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `retirement_threshold` and `next_pool_index` are total (no panic, no
/// overflow) over every `k ≤ 16` and every pool geometry an order-`k`
/// tree can produce — including orders beyond `MAX_ORDER`, which the
/// threshold formula must still accept (callers validate the order, the
/// arithmetic must not).
#[test]
fn threshold_and_pool_walk_are_total_for_k_up_to_16() {
    for k in 1u32..=16 {
        let t = retirement_threshold(k);
        assert_eq!(t, 4 * u64::from(k), "threshold is linear in k");
        assert!(t >= 4, "threshold never degenerates");
        // Pool sizes in an order-k tree are k^(k - level) for inner
        // levels and k^k for the root; walk every size the formula can
        // produce without panicking, for both policies.
        for level in 0..=k.min(MAX_ORDER) {
            let size = if level == 0 {
                pow_u64(k.min(MAX_ORDER), k.min(MAX_ORDER))
            } else {
                pow_u64(k.min(MAX_ORDER), k.min(MAX_ORDER) - level)
            };
            for cursor in 0..size.min(64) {
                let _ = next_pool_index(cursor, size, false);
                let _ = next_pool_index(cursor, size, true);
            }
        }
    }
}

/// A one-shot pool walk visits strictly increasing, in-range, pairwise
/// distinct indices and terminates; a recycling walk of `size > 1`
/// visits every index exactly once per lap. Pool geometries are drawn
/// from a seeded rng.
#[test]
fn pool_indices_never_collide() {
    let mut rng = StdRng::seed_from_u64(0x006b_6d61_7468);
    for _ in 0..500 {
        let size: u64 = rng.gen_range(1..=4096u64);
        let start: u64 = rng.gen_range(0..size);

        // One-shot: strictly increasing from start, no repeats, drains.
        let mut seen = Vec::new();
        let mut cursor = start;
        while let Some(next) = next_pool_index(cursor, size, false) {
            assert!(next > cursor, "one-shot cursor must advance");
            assert!(next < size, "index stays in the pool");
            assert!(!seen.contains(&next), "one-shot pool index repeated");
            seen.push(next);
            cursor = next;
        }
        assert_eq!(cursor, size - 1, "one-shot drains to the last id");
        assert_eq!(seen.len() as u64, size - 1 - start, "every successor visited once");

        // Recycling: one full lap hits every other index exactly once
        // and returns to the start; singletons block.
        if size == 1 {
            assert_eq!(next_pool_index(start, size, true), None);
        } else {
            let mut seen = vec![false; size as usize];
            let mut cursor = start;
            for _ in 0..size - 1 {
                cursor = next_pool_index(cursor, size, true).expect("recycling never blocks");
                assert!(!seen[cursor as usize], "recycling lap revisited {cursor}");
                seen[cursor as usize] = true;
            }
            assert_eq!(next_pool_index(cursor, size, true), Some(start), "lap closes");
        }
    }
}

/// The E11 ablation sweep's threshold column (k = 4: multiples
/// {1, 2, 4, 8, 32}·k = {4, 8, 16, 32, 128}) is exactly what the
/// formula produces, with `retirement_threshold` the 4k paper row.
#[test]
fn thresholds_match_the_e11_ablation_table() {
    let k = 4u32;
    let sweep: Vec<u64> = [1u64, 2, 4, 8, 32].iter().map(|m| m * u64::from(k)).collect();
    assert_eq!(sweep, vec![4, 8, 16, 32, 128]);
    assert_eq!(retirement_threshold(k), 16, "the paper row is 4k");
    // And across orders, the paper constant stays 4k.
    for k in 1u32..=16 {
        assert_eq!(retirement_threshold(k), 4 * u64::from(k));
    }
}

/// Round-trips between `n` and `k`: `exact_order` inverts
/// `leaves_of_order`; `order_for` is the smallest admissible order for
/// arbitrary seeded `n`; the lower-bound `k` never exceeds it.
#[test]
fn order_solvers_agree_on_seeded_inputs() {
    for k in 1..=MAX_ORDER {
        let n = leaves_of_order(k);
        assert_eq!(exact_order(n), Some(k), "exact_order inverts leaves_of_order");
        assert_eq!(order_for(n), k);
    }
    let mut rng = StdRng::seed_from_u64(0xE11);
    for _ in 0..500 {
        let n: u64 = rng.gen_range(1..=3_000_000_000u64);
        let k = order_for(n);
        assert!(leaves_of_order(k) >= n, "order_for must round up");
        if k > 1 {
            assert!(leaves_of_order(k - 1) < n, "order_for must be minimal");
        }
        let lb = bottleneck_lower_bound(n);
        assert!(lb <= k, "lower-bound k cannot exceed the rounded-up order");
        if let Some(exact) = exact_order(n) {
            assert_eq!(exact, k);
            assert_eq!(lb, exact, "at exact sizes the bound equals the order");
        }
    }
}
