//! Model-based property tests: a tree-hosted object must behave exactly
//! like its sequential model, no matter the workload, seed or delivery
//! policy — the linearization the tree provides is the sequential object
//! semantics itself.

use distctr_core::object::{PqRequest, PqResponse, PriorityQueueObject};
use distctr_core::{DistributedFlipBit, DistributedPriorityQueue, TreeClient, TreeCounter};
use distctr_sim::{Counter, DeliveryPolicy, ProcessorId, TraceMode};
use proptest::prelude::*;
use std::collections::BinaryHeap;

/// A random priority-queue op.
#[derive(Debug, Clone, Copy)]
enum PqOp {
    Insert(u64),
    ExtractMin,
}

fn pq_op() -> impl Strategy<Value = PqOp> {
    prop_oneof![(0u64..1000).prop_map(PqOp::Insert), Just(PqOp::ExtractMin),]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn distributed_pq_matches_binary_heap_model(
        ops in prop::collection::vec(pq_op(), 1..60),
        seed in any::<u64>(),
    ) {
        let mut dist = DistributedPriorityQueue::new(8).expect("pq");
        let mut model: BinaryHeap<std::cmp::Reverse<u64>> = BinaryHeap::new();
        for (i, op) in ops.iter().enumerate() {
            let initiator = ProcessorId::new(((seed as usize).wrapping_add(i * 7)) % 8);
            match op {
                PqOp::Insert(key) => {
                    let len = dist.insert(initiator, *key).expect("insert");
                    model.push(std::cmp::Reverse(*key));
                    prop_assert_eq!(len as usize, model.len());
                }
                PqOp::ExtractMin => {
                    let got = dist.extract_min(initiator).expect("extract");
                    let want = model.pop().map(|r| r.0);
                    prop_assert_eq!(got, want);
                }
            }
        }
        prop_assert_eq!(dist.len(), model.len());
    }

    #[test]
    fn distributed_flip_bit_matches_bool_model(
        flips in 1usize..80,
        seed in any::<u64>(),
    ) {
        let mut dist = DistributedFlipBit::new(8).expect("bit");
        let mut model = false;
        for i in 0..flips {
            let initiator = ProcessorId::new(((seed as usize).wrapping_add(i * 3)) % 8);
            let old = dist.test_and_flip(initiator).expect("flip");
            prop_assert_eq!(old, model);
            model = !model;
        }
        prop_assert_eq!(dist.bit(), model);
    }

    #[test]
    fn tree_client_pq_correct_under_random_delays(
        seed in any::<u64>(),
        max_delay in 1u64..10,
        keys in prop::collection::vec(0u64..100, 1..20),
    ) {
        let mut client = TreeClient::builder(8, PriorityQueueObject::new())
            .expect("builder")
            .trace(TraceMode::Off)
            .delivery(DeliveryPolicy::random_delay(seed, max_delay))
            .build()
            .expect("client");
        for (i, &key) in keys.iter().enumerate() {
            client
                .invoke(ProcessorId::new(i % 8), PqRequest::Insert(key))
                .expect("insert");
        }
        let mut drained = Vec::new();
        loop {
            match client
                .invoke(ProcessorId::new(drained.len() % 8), PqRequest::ExtractMin)
                .expect("extract")
                .response
            {
                PqResponse::Min(Some(v)) => drained.push(v),
                PqResponse::Min(None) => break,
                PqResponse::Inserted { .. } => unreachable!(),
            }
        }
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        prop_assert_eq!(drained, sorted, "heapsort over the network");
    }

    #[test]
    fn counter_and_flip_bit_parity_agree(seed in any::<u64>()) {
        // The flip bit is the counter mod 2: drive both with the same
        // initiators and compare.
        let mut counter = TreeCounter::new(27).expect("counter");
        let mut bit = DistributedFlipBit::new(27).expect("bit");
        for i in 0..40usize {
            let p = ProcessorId::new(((seed as usize).wrapping_add(i * 11)) % 27);
            let value = counter.inc(p).expect("inc").value;
            let old = bit.test_and_flip(p).expect("flip");
            prop_assert_eq!(old, value % 2 == 1);
        }
    }
}
