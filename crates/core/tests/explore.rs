//! Exhaustive schedule exploration of the tree protocol: the lemmas hold
//! on *every* delivery order the asynchronous model admits, not just the
//! sampled policies.

use distctr_core::{CounterMsg, CounterObject, Msg, RetirementPolicy, Topology, TreeProtocol};
use distctr_sim::{explore, Injection, OpId, ProcessorId};

type Proto = TreeProtocol<CounterObject>;

fn fresh(k: u32) -> Proto {
    let topo = Topology::new(k).expect("topology");
    TreeProtocol::new(topo, RetirementPolicy::PaperDefault, CounterObject::new())
}

fn inc_injection(proto: &Proto, initiator: usize, op: usize) -> Injection<CounterMsg> {
    let origin = ProcessorId::new(initiator);
    let leaf_parent = proto.topology().leaf_parent(initiator as u64);
    Injection {
        op: OpId::new(op),
        from: origin,
        to: proto.worker_of(leaf_parent),
        msg: Msg::Apply { node: leaf_parent, origin, op_seq: op as u64, req: () },
    }
}

#[test]
fn every_schedule_of_a_single_inc_is_correct() {
    let proto = fresh(2);
    let outcome = explore(&proto, &[inc_injection(&proto, 5, 0)], 10_000, &|p: &Proto| match p
        .peek_response()
    {
        Some(&0) => Ok(()),
        other => Err(format!("expected value 0, got {other:?}")),
    });
    assert!(outcome.holds(), "{outcome:?}");
    assert!(!outcome.truncated);
    // The inc path is a chain: one schedule only.
    assert_eq!(outcome.schedules, 1);
}

#[test]
fn every_schedule_of_a_retirement_cascade_keeps_the_lemmas() {
    // Drive the protocol near a retirement threshold with a canonical
    // FIFO mainline, then exhaustively explore the schedules of the next
    // operation — the one that triggers a retirement cascade (fan-out of
    // handoff parts and NewWorker notifications admits many orders).
    let mut proto = fresh(2);
    let mut triggered = false;
    for i in 0..8usize {
        // Mainline execution of op i under an arbitrary canonical order
        // (explore returns the protocol untouched, so run the mainline
        // by delivering via a single-schedule budget... simplest: use the
        // explorer itself with budget 1 and capture nothing).
        let before_retirements: u64 = proto.audit().retirements_by_level().iter().sum();
        let injection = inc_injection(&proto, i, i);

        // Check this op's schedules from the current state. Retirement
        // cascades fan out factorially, so for the heavy ops the budget
        // truncates the search — tens of thousands of distinct schedules
        // is still a far wider sweep than any sampled policy. (The per-op
        // Grow-Old/Retirement extrema need the client's op bracketing, so
        // the explorer invariant checks the schedule-independent facts:
        // the returned value and pool integrity.)
        let expected = i as u64;
        let outcome = explore(&proto, std::slice::from_ref(&injection), 20_000, &|p: &Proto| {
            if p.peek_response() != Some(&expected) {
                return Err(format!("op {i}: wrong value {:?}", p.peek_response()));
            }
            if p.audit().pool_exhausted_by_level().iter().any(|&e| e > 0) {
                return Err(format!("op {i}: pool exhausted in some schedule"));
            }
            if p.object().value() != expected + 1 {
                return Err(format!("op {i}: value advanced wrongly to {}", p.object().value()));
            }
            Ok(())
        });
        assert!(outcome.holds(), "op {i}: {outcome:?}");
        assert!(outcome.schedules >= 1, "op {i}: at least one schedule checked ({outcome:?})");

        // Advance the mainline along one concrete schedule (the DFS's
        // first = FIFO-ish order), reproduced by a budget-1 exploration
        // that *returns* the advanced state via a mutable capture.
        proto = advance_one_schedule(&proto, &injection);
        let after_retirements: u64 = proto.audit().retirements_by_level().iter().sum();
        if after_retirements > before_retirements {
            triggered = true;
        }
    }
    assert!(triggered, "the sequence really exercised a retirement cascade");
    assert_eq!(proto.object().value(), 8, "mainline counted all ops");
}

/// Runs one operation to quiescence along the first DFS schedule and
/// returns the resulting protocol state.
fn advance_one_schedule(proto: &Proto, injection: &Injection<CounterMsg>) -> Proto {
    use std::cell::RefCell;
    let result: RefCell<Option<Proto>> = RefCell::new(None);
    let outcome = explore(proto, std::slice::from_ref(injection), 1, &|p: &Proto| {
        *result.borrow_mut() = Some(p.clone());
        Ok(())
    });
    assert!(outcome.schedules >= 1);
    let mut advanced = result.into_inner().expect("one schedule completed");
    // Clear the delivered response so the next op starts clean (the real
    // client does this via take_pending_response).
    let _ = advanced_take(&mut advanced);
    advanced
}

/// Drains the pending response through the public client path equivalent.
fn advanced_take(proto: &mut Proto) -> Option<u64> {
    // TreeProtocol::take_pending_response is crate-private; peek + rebuild
    // is unnecessary — delivering the next op simply overwrites it, so
    // nothing to do. Kept as a documentation point.
    proto.peek_response().copied()
}
