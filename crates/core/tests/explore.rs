//! Exhaustive schedule exploration of the tree protocol: the lemmas hold
//! on *every* delivery order the asynchronous model admits, not just the
//! sampled policies.
//!
//! The heavy lifting lives in `distctr-check`, the engine-level model
//! checker: it drives `NodeEngine`s directly, prunes commuting
//! deliveries with sleep sets, and evaluates the full invariant set
//! (values, loads, retirement integrity, hot-spot geometry, pairwise
//! linearizability) at every quiescent state. The old whole-protocol
//! DFS in `distctr_sim::explore` is kept as a thin adapter for
//! `Protocol` implementors and is exercised here once, on the scenario
//! where exactness is cheap.

use distctr_check::{replay, Budget, CheckConfig, Checker, Schedule};
use distctr_core::{CounterObject, Msg, RetirementPolicy, Topology, TreeProtocol};
use distctr_sim::{explore, Injection, OpId, ProcessorId};

type Proto = TreeProtocol<CounterObject>;

/// The sim explorer survives as the thin adapter for whole-`Protocol`
/// checking: a single inc admits exactly one schedule, verified here.
#[test]
fn every_schedule_of_a_single_inc_is_correct() {
    let topo = Topology::new(2).expect("topology");
    let proto = TreeProtocol::new(topo, RetirementPolicy::PaperDefault, CounterObject::new());
    let origin = ProcessorId::new(5);
    let leaf_parent = proto.topology().leaf_parent(5);
    let injection = Injection {
        op: OpId::new(0),
        from: origin,
        to: proto.worker_of(leaf_parent),
        msg: Msg::Apply { node: leaf_parent, origin, op_seq: 0, req: () },
    };
    let outcome = explore(&proto, &[injection], 10_000, &|p: &Proto| match p.peek_response() {
        Some(&0) => Ok(()),
        other => Err(format!("expected value 0, got {other:?}")),
    });
    assert!(outcome.holds(), "{outcome:?}");
    assert!(!outcome.truncated);
    // The inc path is a chain: one schedule only.
    assert_eq!(outcome.schedules, 1);
}

#[test]
fn every_schedule_of_a_retirement_cascade_keeps_the_lemmas() {
    // Eight sequential ops on the k = 2 tree cross the paper-default
    // retirement threshold at every level: the checker explores the
    // delivery orders of each op from each reachable quiescent state
    // (retirement cascades fan out handoff parts and NewWorker
    // notifications, which admit many orders), evaluating the full
    // default invariant set everywhere. The budget truncates the
    // combinatorial tail; tens of thousands of transitions is still a
    // far wider sweep than any sampled policy.
    let cfg = CheckConfig::new(8).sequential_ops(&[0, 1, 2, 3, 4, 5, 6, 7]);
    let outcome = Checker::new(cfg.clone())
        .budget(Budget { max_transitions: 120_000, ..Budget::default() })
        .run();
    assert!(outcome.holds(), "violation: {:?}", outcome.violation);
    assert!(outcome.stats.quiescent_leaves >= 1);

    // The deterministic mainline (empty schedule = pure FIFO drain)
    // really exercised a cascade and counted every op.
    let mainline = replay(&cfg, &Schedule::default());
    assert!(mainline.violation.is_none(), "{:?}", mainline.violation);
    assert!(mainline.retirements >= 1, "the sequence must trigger a retirement cascade");
    let values: Vec<u64> = mainline.values.iter().map(|v| v.expect("all ops complete")).collect();
    assert_eq!(values, (0..8).collect::<Vec<u64>>(), "mainline counted all ops in order");
}

#[test]
fn concurrent_ops_across_the_cascade_window_keep_the_lemmas() {
    // Cross-operation concurrency the old per-op DFS could not model:
    // a warmed tree with two increments in flight at once, straddling
    // the root's retirement.
    let cfg = CheckConfig::new(8).warmup(&[0, 2, 4]).concurrent_ops(&[1, 6]);
    let outcome =
        Checker::new(cfg).budget(Budget { max_transitions: 60_000, ..Budget::default() }).run();
    assert!(outcome.holds(), "violation: {:?}", outcome.violation);
    assert!(outcome.stats.sleep_skips > 0, "sleep sets prune commuting deliveries");
}
