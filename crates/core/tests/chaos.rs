//! Chaos harness (experiment E18): a seeded grid of message drops,
//! duplication and scheduled worker crashes, asserting that the
//! fault-tolerant counter keeps its two contracts under fire:
//!
//! 1. **Sequential values** — every completed `inc` returns exactly the
//!    next integer, no gaps, no repeats, even when messages vanish, get
//!    delivered twice, or workers die mid-handoff;
//! 2. **Bounded loads** — the per-processor bottleneck stays within the
//!    paper's `20k` plus an explicit, documented recovery slack.
//!
//! Every cell is driven purely by `(seed, FaultPlan)`; the replay test
//! asserts a rerun reproduces the fault log, loads and audit bit for
//! bit.
//!
//! Crash-target geometry for `n = 81` (`k = 3`): processors `54..81`
//! are singleton level-3 pools (a crash there is unrecoverable by
//! design), so the chaos grid draws its targets from the recoverable
//! range `0..54` — and, to guarantee recovery actually triggers, from
//! the *initial workers* in that range (`0` for the root, `27 + 3·b`
//! for level-2 nodes). Initiators are drawn from `54..81`, which the
//! plans never crash.

use distctr_core::TreeCounter;
use distctr_sim::{Counter, FaultEvent, FaultPlan, ProcessorId, TraceMode};

const N: usize = 81;
const K: u64 = 3;
const OPS: u64 = 30;

/// The documented recovery slack `c·k` beyond the failure-free `20k`
/// bound (see DESIGN.md §7). Each term is measured, not guessed:
///
/// * `fault_slack()` — rebuild traffic plus `k + 1` messages per
///   recovery, charged by the audit to the processors that ran it;
/// * one extra receive per duplicated delivery;
/// * one replayed root path, `2(k + 2)` messages, per watchdog retry.
fn load_bound(c: &TreeCounter) -> u64 {
    20 * K + c.audit().fault_slack() + c.fault_stats().dups + c.watchdog_retries() * 2 * (K + 2)
}

/// Everything observable about one chaos run; `PartialEq` so replay
/// equality is a single assert.
#[derive(Debug, PartialEq)]
struct Outcome {
    values: Vec<u64>,
    loads: Vec<u64>,
    recoveries: u64,
    watchdog_retries: u64,
    fault_log: Vec<FaultEvent>,
    crashed: Vec<ProcessorId>,
}

fn run_cell(plan: &FaultPlan, ops: u64) -> Outcome {
    let mut c = TreeCounter::builder(N)
        .expect("builder")
        .trace(TraceMode::Off)
        .faults(plan.clone())
        .build()
        .expect("counter");
    let mut values = Vec::with_capacity(ops as usize);
    for i in 0..ops {
        // Initiators come from the never-crashed range 54..81.
        let initiator = ProcessorId::new(54 + ((i * 7) % 27) as usize);
        let v = c.inc_fault_tolerant(initiator).expect("recoverable cell").value;
        values.push(v);
    }
    let bound = load_bound(&c);
    let max = c.loads().max_load();
    assert!(max <= bound, "bottleneck {max} exceeds 20k + recovery slack = {bound} under {plan:?}");
    Outcome {
        values,
        loads: c.loads().to_vec(),
        recoveries: c.audit().recoveries(),
        watchdog_retries: c.watchdog_retries(),
        fault_log: c.fault_log().to_vec(),
        crashed: c.crashed_processors(),
    }
}

/// A plan with up to `crashes ≤ k` scheduled kills, all aimed at
/// initial workers of recoverable (multi-member) pools: the root's
/// worker first, then level-2 pool heads in distinct pools so no pool
/// ever loses more than one member.
fn make_plan(seed: u64, drop: f64, dup: f64, crashes: u32) -> FaultPlan {
    assert!(u64::from(crashes) <= K, "at most k crashes per cell");
    let mut plan = FaultPlan::new(seed).drop_prob(drop).dup_prob(dup);
    let b = seed % 9;
    let targets = [0, 27 + 3 * b, 27 + 3 * ((b + 4) % 9)];
    for (i, &t) in targets.iter().take(crashes as usize).enumerate() {
        plan = plan.crash(ProcessorId::new(t as usize), 10 + 25 * i as u64);
    }
    plan
}

#[test]
fn seeded_grid_stays_sequential_and_bounded() {
    let grid = [
        // (drop probability, duplication probability, crashes)
        (0.00, 0.00, 3),
        (0.02, 0.00, 1),
        (0.10, 0.03, 0),
        (0.05, 0.02, 2),
        (0.10, 0.03, 3),
    ];
    for seed in [7u64, 42, 0xC0FFEE] {
        for &(drop, dup, crashes) in &grid {
            let plan = make_plan(seed, drop, dup, crashes);
            let out = run_cell(&plan, OPS);
            let expected: Vec<u64> = (0..OPS).collect();
            assert_eq!(
                out.values, expected,
                "values must stay exactly sequential (seed {seed}, {drop}/{dup}/{crashes})"
            );
            if crashes > 0 {
                assert_eq!(
                    out.crashed.len(),
                    crashes as usize,
                    "every scheduled crash fired (seed {seed})"
                );
                assert!(
                    out.recoveries >= 1,
                    "killing the root's worker must force at least one recovery (seed {seed})"
                );
            }
            if drop > 0.0 || crashes > 0 {
                assert!(
                    !out.fault_log.is_empty(),
                    "an active plan leaves a fault trail (seed {seed})"
                );
            }
        }
    }
}

#[test]
fn chaos_runs_replay_exactly_from_seed_and_plan() {
    // The full observable outcome — values, per-processor loads, the
    // fault log, recovery and retry counts — is a pure function of
    // (seed, FaultPlan). No hidden clock, no ambient randomness.
    let plan = make_plan(0xFA11, 0.08, 0.03, 2);
    let first = run_cell(&plan, 20);
    let second = run_cell(&plan, 20);
    assert_eq!(first, second, "replay from (seed, plan) is bit-for-bit");
    assert!(first.fault_log.iter().any(|e| matches!(e, FaultEvent::Crashed { .. })));
}

#[test]
fn a_different_seed_perturbs_the_faults_but_never_the_values() {
    let a = run_cell(&make_plan(1, 0.10, 0.03, 1), 20);
    let b = run_cell(&make_plan(2, 0.10, 0.03, 1), 20);
    assert_eq!(a.values, b.values, "correctness is seed-independent");
    assert_ne!(
        a.fault_log, b.fault_log,
        "10% drops over hundreds of sends cannot coincide across seeds"
    );
}

#[test]
fn checker_explores_every_order_of_a_chaos_cell() {
    // The model-checked chaos cell: where the seeded grid above samples
    // one delivery order per (seed, plan), the engine-level checker
    // explores *every* admissible order of the same scenario — the
    // plan's scheduled crash fires at the same network-wide delivery
    // count in each trace (`CheckConfig::faults` reuses the `FaultPlan`
    // crash semantics; its probabilistic drops and duplicates are
    // subsumed by schedule exploration). Sequential values, bounded
    // loads, retirement integrity and linearizability are asserted at
    // every quiescent state of every explored trace.
    use distctr_check::{Budget, CheckConfig, Checker};

    let plan = FaultPlan::new(7).crash(ProcessorId::new(0), 10);
    let cfg = CheckConfig::new(N).sequential_ops(&[54, 61]).fault_tolerant().faults(&plan);
    let outcome =
        Checker::new(cfg).budget(Budget { max_transitions: 60_000, ..Budget::default() }).run();
    assert!(outcome.holds(), "violation: {:?}", outcome.violation);
    assert!(outcome.stats.quiescent_leaves >= 1);
}

#[test]
fn crashing_up_to_k_workers_is_survivable_at_n_81() {
    // The acceptance headline: k simultaneous-ish worker crashes at
    // n = 81 with drops and duplication on top, and the counter still
    // hands out 0..ops-1 in order while recovering every dead node.
    let plan = make_plan(99, 0.05, 0.02, 3);
    let out = run_cell(&plan, OPS);
    assert_eq!(out.values, (0..OPS).collect::<Vec<u64>>());
    assert_eq!(out.crashed.len(), 3);
    assert!(out.recoveries >= 3, "each killed worker's nodes were rebuilt");
    assert!(out.watchdog_retries >= 1, "the watchdog actually intervened");
}
