//! The sans-io protocol engine: one state machine, three backends.
//!
//! Following the I/O-automaton shape (a protocol is pure state plus a
//! transition function; schedulers, clocks and wires live outside it),
//! every protocol decision of the retirement tree — `Apply` forwarding,
//! value return, retirement handoff, pool-successor promotion, and crash
//! recovery — is made in exactly one place: [`NodeEngine::on_event`].
//! The engine never touches a channel, a clock or a counter directly;
//! it consumes [`Event`]s and returns pure [`Effect`]s, and each
//! execution layer is a thin driver that realizes those effects on its
//! own transport:
//!
//! | driver | `Send` | `Reply` | `SetTimer` | `Audit` |
//! |---|---|---|---|---|
//! | simulator ([`TreeProtocol`](crate::protocol::TreeProtocol)) | sim network | pending response | client watchdog at quiescence | [`CounterAudit`](crate::audit::CounterAudit) ledger |
//! | threads (`distctr-net`) | crossbeam channel | results channel | driver retry/backoff | shared atomic counters |
//!
//! One engine instance models one *processor* (mirroring the threaded
//! backend, where all knowledge is local and node state genuinely
//! migrates inside [`Msg::HandoffFinal`]); the single-threaded simulator
//! simply owns a vector of engines, one per processor.
//!
//! ## State model
//!
//! The engine hosts the nodes this processor currently works for. A
//! retirement removes the node and leaves a forwarding address (the
//! shim: messages that still arrive are forwarded to the successor for
//! one extra hop, the paper's handshake argument); the successor buffers
//! early traffic until the state-bearing final part installs the node.
//! Crash recovery is a *forced retirement*: the promoted successor
//! rebuilds the k+2-value state from one [`Msg::RebuildShare`] per
//! distinct neighbour instead of a handoff from the dead worker.
//!
//! Timer effects are advisory: the engine brackets every handoff and
//! rebuild with [`Effect::SetTimer`]/[`Effect::CancelTimer`] so an async
//! driver could arm real timeouts; the current drivers realize the same
//! protection at quiescence (the simulator's client watchdog) or by
//! bounded retry (the threaded driver), and ignore the effects.

use std::sync::Arc;

use distctr_sim::ProcessorId;

use crate::kmath;
use crate::messages::{Msg, NodeTransfer};
use crate::object::RootObject;
use crate::topology::{NodeRef, Topology};

/// Monotone protocol time, in driver-defined ticks. The simulator feeds
/// its `SimTime`; the threaded driver, which has no virtual clock, feeds
/// [`VirtualTime::ZERO`] (its retry loop plays the watchdog instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct VirtualTime(pub u64);

impl VirtualTime {
    /// Time zero.
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// The raw tick count.
    #[must_use]
    pub fn ticks(self) -> u64 {
        self.0
    }
}

impl std::ops::Add<u64> for VirtualTime {
    type Output = VirtualTime;
    fn add(self, rhs: u64) -> VirtualTime {
        VirtualTime(self.0 + rhs)
    }
}

/// Ticks after which an unfinished handoff or rebuild should be treated
/// as lost (the deadline the engine stamps on [`Effect::SetTimer`]).
pub const WATCHDOG_TICKS: u64 = 16;

/// Retirement behaviour of the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetirementPolicy {
    /// The paper's threshold: retire at age `4k`.
    #[default]
    PaperDefault,
    /// Retire at a custom age (ablation experiments).
    AfterAge(u64),
    /// Never retire — this is exactly the static-tree baseline the paper
    /// argues is bottlenecked at the root.
    Never,
}

impl RetirementPolicy {
    /// The concrete age threshold for an order-`k` tree, or `None` for
    /// [`RetirementPolicy::Never`].
    #[must_use]
    pub fn threshold(self, k: u32) -> Option<u64> {
        match self {
            RetirementPolicy::PaperDefault => Some(kmath::retirement_threshold(k)),
            RetirementPolicy::AfterAge(age) => Some(age.max(1)),
            RetirementPolicy::Never => None,
        }
    }
}

/// How a node's replacement pool is consumed.
///
/// The paper dimensions each pool for the canonical workload (each
/// processor increments exactly once): `pool_size - 1` retirements
/// suffice, and a drained pool is never touched again. For longer
/// operation sequences (M rounds of the canonical workload) that
/// dimensioning is too small — [`PoolPolicy::Recycling`] wraps around the
/// pool instead, keeping the *amortized* per-processor load at O(k) per
/// round. This is an extension beyond the paper, exercised by experiment
/// E15.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PoolPolicy {
    /// The paper's scheme: a node stops retiring when its pool is
    /// exhausted.
    #[default]
    OneShot,
    /// Wrap around the pool: after the last id, reuse the first.
    Recycling,
}

/// Static per-run parameters of a [`NodeEngine`]. The two drivers differ
/// only here — protocol transitions are identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Retirement age threshold; `None` disables retirement (the
    /// static-tree ablation).
    pub threshold: Option<u64>,
    /// How replacement pools are consumed.
    pub pool_policy: PoolPolicy,
    /// Root reply-cache capacity (oldest entries evicted beyond it).
    pub reply_cache_cap: usize,
    /// Whether the root answers duplicate `op_seq`s from the reply cache
    /// (exactly-once retries). The threaded driver always dedupes; the
    /// simulator arms this with its fault-tolerant mode so fault-free
    /// runs pay nothing.
    pub dedupe: bool,
    /// Whether every fresh root application emits [`Effect::Persist`] —
    /// the simulator's stable-storage model, powering root crash
    /// recovery. The threaded driver has no stable storage and leaves
    /// this off.
    pub persist: bool,
}

impl EngineConfig {
    /// The paper's configuration for an order-`k` tree: retire at `4k`,
    /// one-shot pools, no dedupe, no stable storage.
    #[must_use]
    pub fn paper(k: u32) -> Self {
        EngineConfig {
            threshold: Some(kmath::retirement_threshold(k)),
            pool_policy: PoolPolicy::OneShot,
            reply_cache_cap: usize::MAX,
            dedupe: false,
            persist: false,
        }
    }
}

/// The k+2 values of one hosted node (plus the object at the root): the
/// paper's "id that tells which processor currently works for the node,
/// the identifiers of its k children and its parent, and … its age".
#[derive(Debug, Clone)]
pub struct Hosted<O: RootObject> {
    /// Messages sent or received by the node in the current stint.
    pub age: u64,
    /// Retirements so far (worker = pool start + cursor).
    pub pool_cursor: u64,
    /// Current worker of the parent node (None at the root).
    pub parent_worker: Option<ProcessorId>,
    /// Inner-node children's workers (empty on level k).
    pub child_workers: Vec<ProcessorId>,
    /// Hosted object (root only).
    pub object: Option<O>,
    /// Replies already sent, keyed by op sequence (root only); migrates
    /// with the object on handoff.
    pub reply_cache: Vec<(u64, O::Response)>,
}

/// An input to the engine.
#[derive(Debug, Clone)]
pub enum Event<O: RootObject> {
    /// A protocol message was delivered to this processor.
    Deliver {
        /// The message.
        msg: Msg<O>,
    },
    /// The local user asks this processor to initiate one operation.
    Invoke {
        /// Driver-assigned operation sequence number.
        op_seq: u64,
        /// The operation payload.
        req: O::Request,
    },
    /// The local user asks this processor to initiate a *batch* of
    /// `count` identical operations sharing one tree traversal
    /// ([`Msg::BatchApply`]). The eventual [`Effect::Reply`] carries the
    /// first response — the start of the batch's contiguous range for
    /// range-structured objects like the counter.
    InvokeBatch {
        /// Driver-assigned sequence number for the whole batch. A retry
        /// must repeat both the `op_seq` and the `count`.
        op_seq: u64,
        /// Number of operations combined (values < 1 are treated as 1).
        count: u64,
        /// The operation payload, shared by the whole batch.
        req: O::Request,
    },
    /// Stable storage restores a recovered node's object state (the
    /// driver answers [`Effect::Recovered`] for the root with this).
    Restore {
        /// The node being restored.
        node: NodeRef,
        /// The object state from stable storage.
        object: O,
        /// The reply cache from stable storage (exactly-once across the
        /// crash).
        reply_cache: Vec<(u64, O::Response)>,
    },
}

/// Ledger entries the engine emits so drivers can account identically.
/// The simulator maps these 1:1 onto
/// [`CounterAudit`](crate::audit::CounterAudit) calls; the threaded
/// driver keeps only the shared counters it reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditEvent {
    /// `node`'s worker handled a message of `kind`, aging the node by
    /// `aged` (2 for an apply: receive + forward; 1 for a notification).
    Handled {
        /// The node that grew older.
        node: NodeRef,
        /// Message kind, as [`Msg::kind`].
        kind: &'static str,
        /// Age growth (also the node's message count for this delivery).
        aged: u64,
    },
    /// A message of `kind` was handled without aging anyone.
    Kind(&'static str),
    /// `msgs` messages were charged to `node`'s current stint without
    /// aging it through [`AuditEvent::Handled`] (handoff parts and
    /// notifications sent on retirement/recovery).
    Traffic {
        /// The node whose stint the messages belong to.
        node: NodeRef,
        /// Number of messages.
        msgs: u64,
    },
    /// A message reached a retired worker and was forwarded to the
    /// successor by the shim.
    ShimForward,
    /// `node` began an ordinary retirement.
    Retirement {
        /// The retiring node.
        node: NodeRef,
    },
    /// `node` reached the threshold with no successor available.
    PoolExhausted {
        /// The blocked node.
        node: NodeRef,
    },
    /// A stint of `node` completed (handoff or rebuild installed here);
    /// the new stint starts charged with the `setup_msgs` that installed
    /// it.
    StintComplete {
        /// The node that changed hands.
        node: NodeRef,
        /// Messages that set the new stint up (k+1 handoff parts, or one
        /// rebuild share per neighbour).
        setup_msgs: u64,
    },
    /// A crash recovery of `node` completed.
    Recovery {
        /// The recovered node.
        node: NodeRef,
    },
    /// `count` recovery messages (promotes, queries, shares) were
    /// exchanged — the explicit slack term of the fault-aware load
    /// bound. Recovery traffic never ages nodes.
    RecoveryMsgs {
        /// Number of messages.
        count: u64,
    },
    /// A message had to be dropped (lost routing view or missing object
    /// state after an unrecovered crash).
    Lost,
}

/// A pure output of the engine; drivers realize these on their
/// transport.
#[derive(Debug, Clone)]
pub enum Effect<O: RootObject> {
    /// Send `msg` to `to` (charged as network load by the driver).
    Send {
        /// Destination processor.
        to: ProcessorId,
        /// The message.
        msg: Msg<O>,
    },
    /// Deliver `resp` to the local user who invoked operation `op_seq`
    /// (the initiator received the root's `Reply`).
    Reply {
        /// Operation sequence number.
        op_seq: u64,
        /// The response.
        resp: O::Response,
    },
    /// Arm a watchdog for `node`: if the matching [`Effect::CancelTimer`]
    /// has not arrived by `deadline`, the in-flight handoff or rebuild
    /// should be presumed lost and recovery started.
    SetTimer {
        /// The node being watched.
        node: NodeRef,
        /// When to fire.
        deadline: VirtualTime,
    },
    /// Disarm `node`'s watchdog (the handoff or rebuild completed).
    CancelTimer {
        /// The node no longer being watched.
        node: NodeRef,
    },
    /// This processor retired from `node`; `successor` will take over
    /// once the in-flight handoff installs there.
    Retired {
        /// The node changing hands.
        node: NodeRef,
        /// The pool successor the handoff is addressed to.
        successor: ProcessorId,
    },
    /// A handoff installed `node` at this processor (`worker`), which
    /// now serves it with the given pool cursor.
    Installed {
        /// The node that changed hands.
        node: NodeRef,
        /// The new worker (the emitting engine's processor).
        worker: ProcessorId,
        /// The node's position in its replacement pool.
        pool_cursor: u64,
    },
    /// A crash recovery of `node` started at this processor
    /// (`successor`), which is now collecting rebuild shares.
    RecoveryStarted {
        /// The node being rebuilt.
        node: NodeRef,
        /// The promoted pool successor (the emitting engine's
        /// processor).
        successor: ProcessorId,
    },
    /// A crash recovery of `node` completed: this processor (`worker`)
    /// serves it now. For the root, the driver should follow up with
    /// [`Event::Restore`] from stable storage.
    Recovered {
        /// The rebuilt node.
        node: NodeRef,
        /// The new worker (the emitting engine's processor).
        worker: ProcessorId,
        /// The node's position in its replacement pool.
        pool_cursor: u64,
    },
    /// Stable storage checkpoint: the root applied operation `op_seq`
    /// fresh, producing `resp` and the new `object` state. Only emitted
    /// with [`EngineConfig::persist`].
    Persist {
        /// The node whose state is checkpointed (the root).
        node: NodeRef,
        /// The object state after the application.
        object: O,
        /// The operation just applied.
        op_seq: u64,
        /// Its response.
        resp: O::Response,
    },
    /// An accounting entry; see [`AuditEvent`].
    Audit(AuditEvent),
}

/// The effects of one [`NodeEngine::on_event`] call, in emission order
/// (audit entries are ordered consistently with the simulator's
/// pre-refactor ledger).
pub type Effects<O> = Vec<Effect<O>>;

/// FNV-1a over `bytes`: a fixed, portable hash for state fingerprints
/// (`DefaultHasher` makes no cross-version stability promise).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A sorted arena of per-node slots, keyed by the interned `NodeRef →
/// u32` flat index ([`Topology::flat_index`]; [`Topology::node_at`] is
/// the inverse).
///
/// One engine hosts O(1) nodes out of a tree that can have millions, so
/// the former per-engine `HashMap<NodeRef, T>`s are replaced by one
/// short sorted run of `(flat, T)` pairs: three words when empty (a
/// `HashMap` is six, plus its heap block once touched), binary-searched
/// lookups with no hashing, and iteration already in `NodeRef` order —
/// which is exactly the flat-index order, so fingerprints can rebuild
/// the canonical sorted rendering for free.
#[derive(Debug, Clone)]
struct NodeSlots<T> {
    entries: Vec<(u32, T)>,
}

impl<T> NodeSlots<T> {
    fn new() -> Self {
        NodeSlots { entries: Vec::new() }
    }

    /// Sortedness invariant, checked in debug builds and — so release
    /// checker runs catch stale-id bugs — under the `bounds-audit`
    /// feature.
    #[inline]
    fn audit(&self) {
        #[cfg(any(debug_assertions, feature = "bounds-audit"))]
        assert!(
            self.entries.windows(2).all(|w| w[0].0 < w[1].0),
            "arena slots must stay strictly sorted by interned node id"
        );
    }

    fn contains(&self, key: u32) -> bool {
        self.entries.binary_search_by_key(&key, |&(k, _)| k).is_ok()
    }

    fn get(&self, key: u32) -> Option<&T> {
        self.entries.binary_search_by_key(&key, |&(k, _)| k).ok().map(|i| &self.entries[i].1)
    }

    fn get_mut(&mut self, key: u32) -> Option<&mut T> {
        match self.entries.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => Some(&mut self.entries[i].1),
            Err(_) => None,
        }
    }

    fn insert(&mut self, key: u32, value: T) {
        match self.entries.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => self.entries[i].1 = value,
            Err(i) => self.entries.insert(i, (key, value)),
        }
        self.audit();
    }

    fn remove(&mut self, key: u32) -> Option<T> {
        match self.entries.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => {
                let (_, value) = self.entries.remove(i);
                self.audit();
                Some(value)
            }
            Err(_) => None,
        }
    }

    /// The slot for `key`, inserting `T::default()` if absent (the
    /// former `entry(..).or_default()`).
    fn get_or_default(&mut self, key: u32) -> &mut T
    where
        T: Default,
    {
        let i = match self.entries.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => i,
            Err(i) => {
                self.entries.insert(i, (key, T::default()));
                self.audit();
                i
            }
        };
        &mut self.entries[i].1
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    /// Slots in ascending key (= `NodeRef`) order.
    fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.entries.iter().map(|(k, v)| (*k, v))
    }
}

/// How many rebuild shares a recovery of `node` must collect: one per
/// inner neighbour (parent plus inner children). Leaf children hold no
/// share — but level-k nodes have singleton pools and are never promoted
/// in the first place.
#[must_use]
pub fn expected_shares(topo: &Topology, node: NodeRef) -> u32 {
    let parent = u32::from(topo.parent(node).is_some());
    let children = topo.inner_children(node).map_or(0, |c| c.len() as u32);
    parent + children
}

/// Seeds the initial hosting across a fleet of per-processor engines:
/// each node is installed at its pool's first processor, with neighbour
/// routing derived from the topology and `object` hosted at the root.
///
/// # Panics
///
/// Panics if `engines` does not hold one engine per processor of
/// `topo`, in processor order.
pub fn seed_initial_hosting<O: RootObject>(
    topo: &Topology,
    engines: &mut [NodeEngine<O>],
    object: &O,
) {
    assert_eq!(engines.len() as u64, topo.processors(), "one engine per processor");
    for node in topo.nodes() {
        let worker = topo.initial_worker(node);
        let parent_worker = topo.parent(node).map(|p| topo.initial_worker(p));
        let child_workers = topo
            .inner_children(node)
            .map(|children| children.iter().map(|&c| topo.initial_worker(c)).collect())
            .unwrap_or_default();
        engines[worker.index()].install(
            node,
            Hosted {
                age: 0,
                pool_cursor: 0,
                parent_worker,
                child_workers,
                object: (node == NodeRef::ROOT).then(|| object.clone()),
                reply_cache: Vec::new(),
            },
        );
    }
}

/// The per-processor protocol state machine. See the module docs.
#[derive(Debug, Clone)]
pub struct NodeEngine<O: RootObject> {
    me: ProcessorId,
    topo: Arc<Topology>,
    config: EngineConfig,
    /// Nodes this processor currently works for.
    hosted: NodeSlots<Hosted<O>>,
    /// Nodes this processor retired from, with the successor to forward
    /// to (the shim).
    forwarding: NodeSlots<ProcessorId>,
    /// Messages for nodes whose handoff has not arrived here yet.
    pending: NodeSlots<Vec<Msg<O>>>,
    /// In-flight rebuilds: per node, the distinct neighbours that
    /// answered so far with the worker each reported.
    rebuilding: NodeSlots<NodeSlots<ProcessorId>>,
}

impl<O: RootObject> NodeEngine<O> {
    /// An engine for processor `me`, hosting nothing yet (see
    /// [`seed_initial_hosting`]).
    #[must_use]
    pub fn new(me: ProcessorId, topo: Arc<Topology>, config: EngineConfig) -> Self {
        NodeEngine {
            me,
            topo,
            config,
            hosted: NodeSlots::new(),
            forwarding: NodeSlots::new(),
            pending: NodeSlots::new(),
            rebuilding: NodeSlots::new(),
        }
    }

    /// Interns `node` to its arena key: the topology's flat index, which
    /// is dense, stable, and ordered exactly like `NodeRef`'s `Ord`.
    /// Under `bounds-audit` (and in debug builds) the round trip through
    /// [`Topology::node_at`] is verified, catching stale or foreign ids
    /// before they corrupt a slot.
    #[inline]
    fn slot(&self, node: NodeRef) -> u32 {
        let flat = self.topo.flat_index(node);
        #[cfg(any(debug_assertions, feature = "bounds-audit"))]
        assert_eq!(self.topo.node_at(flat), node, "interned node id must round-trip");
        flat as u32
    }

    /// The inverse interning: arena key back to the node it names.
    #[inline]
    fn node_of(&self, slot: u32) -> NodeRef {
        self.topo.node_at(slot as usize)
    }

    /// The processor this engine models.
    #[must_use]
    pub fn me(&self) -> ProcessorId {
        self.me
    }

    /// The engine's static configuration.
    #[must_use]
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Arms or disarms reply-cache deduplication at runtime (the
    /// simulator toggles it with its fault-tolerant mode).
    pub fn set_dedupe(&mut self, enabled: bool) {
        self.config.dedupe = enabled;
    }

    /// Whether this processor currently works for `node`.
    #[must_use]
    pub fn hosts(&self, node: NodeRef) -> bool {
        self.hosted.contains(self.slot(node))
    }

    /// The hosted state of `node`, if this processor works for it.
    #[must_use]
    pub fn hosted(&self, node: NodeRef) -> Option<&Hosted<O>> {
        self.hosted.get(self.slot(node))
    }

    /// Installs `node` here directly (initial seeding; protocol-driven
    /// installs go through [`Msg::HandoffFinal`]).
    pub fn install(&mut self, node: NodeRef, hosted: Hosted<O>) {
        self.hosted.insert(self.slot(node), hosted);
    }

    /// A deterministic structural fingerprint of this engine's protocol
    /// state: hosting table, shim forwarding, buffered messages and
    /// in-flight rebuilds. Two engines with identical protocol state
    /// produce identical fingerprints regardless of storage backend,
    /// process, or platform (the hash is FNV-1a over a canonical sorted
    /// rendering, not `DefaultHasher`), so drivers as different as the
    /// model checker and the threaded backend can compare final states.
    /// The rendering is pinned to the original `BTreeMap` one — the
    /// arena slots are de-interned through [`Topology::node_at`] and
    /// rebuilt into the same sorted maps, which costs nothing extra
    /// because slot order *is* `NodeRef` order. The static configuration
    /// is excluded: fingerprints only make sense between engines driven
    /// under the same `EngineConfig`.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        use std::collections::BTreeMap;
        let hosted: BTreeMap<NodeRef, &Hosted<O>> =
            self.hosted.iter().map(|(s, h)| (self.node_of(s), h)).collect();
        let forwarding: BTreeMap<NodeRef, &ProcessorId> =
            self.forwarding.iter().map(|(s, w)| (self.node_of(s), w)).collect();
        let pending: BTreeMap<NodeRef, &Vec<Msg<O>>> =
            self.pending.iter().map(|(s, msgs)| (self.node_of(s), msgs)).collect();
        let rebuilding: BTreeMap<NodeRef, BTreeMap<NodeRef, &ProcessorId>> = self
            .rebuilding
            .iter()
            .map(|(s, shares)| {
                (self.node_of(s), shares.iter().map(|(s2, w)| (self.node_of(s2), w)).collect())
            })
            .collect();
        let canon = format!(
            "p{} hosted={hosted:?} fwd={forwarding:?} pending={pending:?} rebuild={rebuilding:?}",
            self.me.index()
        );
        fnv1a(canon.as_bytes())
    }

    /// The single entry point: consumes one event, returns the effects.
    pub fn on_event(&mut self, event: Event<O>, now: VirtualTime) -> Effects<O> {
        let mut fx = Vec::new();
        match event {
            Event::Deliver { msg } => self.on_msg(msg, now, &mut fx),
            Event::Invoke { op_seq, req } => {
                // Level-k nodes have singleton pools and never move, so
                // the leaf's entry point into the tree is static.
                let leaf_parent = self.topo.leaf_parent(self.me.index() as u64);
                let worker = self.topo.initial_worker(leaf_parent);
                fx.push(Effect::Send {
                    to: worker,
                    msg: Msg::Apply { node: leaf_parent, origin: self.me, op_seq, req },
                });
            }
            Event::InvokeBatch { op_seq, count, req } => {
                let leaf_parent = self.topo.leaf_parent(self.me.index() as u64);
                let worker = self.topo.initial_worker(leaf_parent);
                fx.push(Effect::Send {
                    to: worker,
                    msg: Msg::BatchApply {
                        node: leaf_parent,
                        origin: self.me,
                        op_seq,
                        count: count.max(1),
                        req,
                    },
                });
            }
            Event::Restore { node, object, reply_cache } => {
                if let Some(h) = self.hosted.get_mut(self.slot(node)) {
                    h.object = Some(object);
                    h.reply_cache = reply_cache;
                    // The object is back; traffic buffered during the
                    // rebuild can flow now.
                    self.replay_pending(node, now, &mut fx);
                }
            }
        }
        fx
    }

    fn on_msg(&mut self, msg: Msg<O>, now: VirtualTime, fx: &mut Effects<O>) {
        match msg {
            Msg::Apply { node, origin, op_seq, req } => {
                self.on_apply(node, origin, op_seq, None, req, now, fx);
            }
            Msg::BatchApply { node, origin, op_seq, count, req } => {
                self.on_apply(node, origin, op_seq, Some(count), req, now, fx);
            }
            Msg::Reply { op_seq, resp } => {
                fx.push(Effect::Audit(AuditEvent::Kind("reply")));
                fx.push(Effect::Reply { op_seq, resp });
            }
            Msg::HandoffPart { .. } => {
                // Unit parts only carry load; the final part installs.
                fx.push(Effect::Audit(AuditEvent::Kind("handoff")));
            }
            Msg::HandoffFinal { transfer } => self.on_handoff_final(*transfer, now, fx),
            m @ Msg::NewWorker { .. } => self.on_new_worker(m, now, fx),
            Msg::NewWorkerLeaf { .. } => {
                fx.push(Effect::Audit(AuditEvent::Kind("new-worker-leaf")));
            }
            Msg::RecoverPromote { node, neighbours } => {
                self.on_recover_promote(node, neighbours, now, fx);
            }
            Msg::RebuildQuery { node, neighbour, successor } => {
                fx.push(Effect::Audit(AuditEvent::Kind("rebuild-query")));
                // Query received plus share sent. Any processor that
                // serves (or served) the neighbour can answer — the
                // share's content is the neighbour's identity and a
                // worker it answers at, which every pool member knows.
                fx.push(Effect::Audit(AuditEvent::RecoveryMsgs { count: 2 }));
                fx.push(Effect::Send {
                    to: successor,
                    msg: Msg::RebuildShare { node, neighbour, worker: self.me },
                });
            }
            Msg::RebuildShare { node, neighbour, worker } => {
                self.on_rebuild_share(node, neighbour, worker, now, fx);
            }
        }
    }

    /// Shims or buffers a message for a node this processor no longer
    /// (or does not yet) work for. Returns `true` if the message was
    /// consumed.
    fn shim_or_buffer(&mut self, node: NodeRef, msg: Msg<O>, fx: &mut Effects<O>) -> bool {
        let slot = self.slot(node);
        if self.hosted.contains(slot) {
            return false;
        }
        if let Some(&successor) = self.forwarding.get(slot) {
            // Shim: forward to the successor we handed the node to
            // (counts as one extra message, the paper's handshake
            // argument).
            fx.push(Effect::Audit(AuditEvent::ShimForward));
            fx.push(Effect::Send { to: successor, msg });
        } else {
            // The handoff has not reached us yet; deliver when it does.
            self.pending.get_or_default(slot).push(msg);
        }
        true
    }

    /// Re-wraps an in-flight (batch) apply for `node`, preserving the
    /// batch count so shimmed/buffered traversals keep their identity.
    fn wrap_apply(
        node: NodeRef,
        origin: ProcessorId,
        op_seq: u64,
        batch: Option<u64>,
        req: O::Request,
    ) -> Msg<O> {
        match batch {
            None => Msg::Apply { node, origin, op_seq, req },
            Some(count) => Msg::BatchApply { node, origin, op_seq, count, req },
        }
    }

    /// Handles a unit (`batch = None`) or batched (`batch = Some(count)`)
    /// apply. Both are **one message** of the protocol: the node ages by
    /// the same 2 (receive + forward) regardless of the batch size, which
    /// is exactly where the amortized O(k / count) per-inc load comes
    /// from — and why the Hot Spot Lemma's accounting, which counts
    /// messages, is preserved per *traversal*.
    #[allow(clippy::too_many_arguments)]
    fn on_apply(
        &mut self,
        node: NodeRef,
        origin: ProcessorId,
        op_seq: u64,
        batch: Option<u64>,
        req: O::Request,
        now: VirtualTime,
        fx: &mut Effects<O>,
    ) {
        let rewrapped = Self::wrap_apply(node, origin, op_seq, batch, req.clone());
        if self.shim_or_buffer(node, rewrapped, fx) {
            return;
        }
        let kind = if batch.is_some() { "batch-apply" } else { "apply" };
        fx.push(Effect::Audit(AuditEvent::Handled { node, kind, aged: 2 }));
        let h = self.hosted.get_mut(self.slot(node)).expect("hosted checked above");
        h.age += 2;
        if node == NodeRef::ROOT {
            // Deduplicate by operation: a retried (or network-duplicated)
            // Apply for an operation already executed re-sends the
            // cached response instead of applying twice. A batch retry
            // repeats the same op_seq *and* count, so the cached first
            // response denotes the identical range — batches are
            // exactly-once through the same cache.
            let cached = self
                .config
                .dedupe
                .then(|| h.reply_cache.iter().find(|(seq, _)| *seq == op_seq))
                .flatten()
                .map(|(_, resp)| resp.clone());
            let resp = if let Some(resp) = cached {
                resp
            } else {
                let Some(object) = h.object.as_mut() else {
                    // State was lost (crash without recovery): the
                    // operation dies here instead of aborting the run.
                    fx.push(Effect::Audit(AuditEvent::Lost));
                    return;
                };
                let resp = match batch {
                    None => object.apply(req),
                    Some(count) => object.apply_batch(req, count.max(1)),
                };
                h.reply_cache.push((op_seq, resp.clone()));
                if h.reply_cache.len() > self.config.reply_cache_cap {
                    h.reply_cache.remove(0);
                }
                if self.config.persist {
                    fx.push(Effect::Persist {
                        node,
                        object: object.clone(),
                        op_seq,
                        resp: resp.clone(),
                    });
                }
                resp
            };
            fx.push(Effect::Send { to: origin, msg: Msg::Reply { op_seq, resp } });
        } else {
            let parent = self.topo.parent(node).expect("non-root has a parent");
            let Some(parent_worker) = h.parent_worker else {
                // An inner node that has lost its routing view drops the
                // request rather than aborting.
                fx.push(Effect::Audit(AuditEvent::Lost));
                return;
            };
            fx.push(Effect::Send {
                to: parent_worker,
                msg: Self::wrap_apply(parent, origin, op_seq, batch, req),
            });
        }
        self.maybe_retire(node, now, fx);
    }

    fn on_new_worker(&mut self, msg: Msg<O>, now: VirtualTime, fx: &mut Effects<O>) {
        let Msg::NewWorker { node, retired, new_worker } = msg else { unreachable!() };
        if self.shim_or_buffer(node, Msg::NewWorker { node, retired, new_worker }, fx) {
            return;
        }
        fx.push(Effect::Audit(AuditEvent::Handled { node, kind: "new-worker", aged: 1 }));
        let h = self.hosted.get_mut(self.slot(node)).expect("hosted checked above");
        h.age += 1;
        if self.topo.parent(node) == Some(retired) {
            h.parent_worker = Some(new_worker);
        } else if let Some(children) = self.topo.inner_children(node) {
            if let Some(idx) = children.iter().position(|&c| c == retired) {
                h.child_workers[idx] = new_worker;
            }
        }
        self.maybe_retire(node, now, fx);
    }

    fn on_handoff_final(
        &mut self,
        transfer: NodeTransfer<O>,
        now: VirtualTime,
        fx: &mut Effects<O>,
    ) {
        fx.push(Effect::Audit(AuditEvent::Kind("handoff-final")));
        let node = transfer.node;
        let slot = self.slot(node);
        self.hosted.insert(
            slot,
            Hosted {
                age: 0,
                pool_cursor: transfer.pool_cursor,
                parent_worker: transfer.parent_worker,
                child_workers: transfer.child_workers,
                object: transfer.object,
                reply_cache: transfer.reply_cache,
            },
        );
        // We are the current worker now; drop any stale forwarding entry
        // (possible if this processor served the node in a previous
        // recycling epoch).
        self.forwarding.remove(slot);
        fx.push(Effect::Installed { node, worker: self.me, pool_cursor: transfer.pool_cursor });
        fx.push(Effect::CancelTimer { node });
        // The stint that just ended absorbed the k+1 handoff messages;
        // they seed the new stint's count.
        let setup = u64::from(self.topo.order()) + 1;
        fx.push(Effect::Audit(AuditEvent::StintComplete { node, setup_msgs: setup }));
        self.replay_pending(node, now, fx);
    }

    fn on_recover_promote(
        &mut self,
        node: NodeRef,
        neighbours: Vec<(NodeRef, ProcessorId)>,
        now: VirtualTime,
        fx: &mut Effects<O>,
    ) {
        fx.push(Effect::Audit(AuditEvent::Kind("recover-promote")));
        let slot = self.slot(node);
        if self.hosted.contains(slot) {
            // Stale promotion: this processor already took over.
            return;
        }
        // (Re-)start the collection: a repeated promotion is the retry
        // path when rebuild traffic is itself lost.
        self.rebuilding.insert(slot, NodeSlots::new());
        fx.push(Effect::RecoveryStarted { node, successor: self.me });
        fx.push(Effect::SetTimer { node, deadline: now + WATCHDOG_TICKS });
        let queries = neighbours.len() as u64;
        for (neighbour, worker) in neighbours {
            fx.push(Effect::Send {
                to: worker,
                msg: Msg::RebuildQuery { node, neighbour, successor: self.me },
            });
        }
        // The promote delivery plus the queries it sent.
        fx.push(Effect::Audit(AuditEvent::RecoveryMsgs { count: 1 + queries }));
    }

    fn on_rebuild_share(
        &mut self,
        node: NodeRef,
        neighbour: NodeRef,
        worker: ProcessorId,
        now: VirtualTime,
        fx: &mut Effects<O>,
    ) {
        fx.push(Effect::Audit(AuditEvent::Kind("rebuild-share")));
        fx.push(Effect::Audit(AuditEvent::RecoveryMsgs { count: 1 }));
        let slot = self.slot(node);
        let neighbour_slot = self.slot(neighbour);
        // Every *distinct* neighbour must answer (a duplicated share
        // must not complete the rebuild with a neighbour missing).
        let needed = expected_shares(&self.topo, node);
        let Some(collected) = self.rebuilding.get_mut(slot) else {
            // Late or duplicated share, no rebuild in flight: ignore.
            return;
        };
        collected.insert(neighbour_slot, worker);
        if (collected.len() as u32) < needed {
            return;
        }
        let collected = self.rebuilding.remove(slot).expect("present above");
        // Align the pool cursor with the promoted worker so a later
        // ordinary retirement continues from the right place.
        let pool = self.topo.pool(node);
        let me = self.me.index() as u64;
        debug_assert!(pool.contains(&me), "successor must come from the node's pool");
        let pool_cursor = me - pool.start;
        let parent = self.topo.parent(node);
        let parent_worker =
            parent.map(|p| *collected.get(self.slot(p)).expect("parent share collected"));
        let child_workers: Vec<ProcessorId> = self
            .topo
            .inner_children(node)
            .map(|children| {
                children
                    .iter()
                    .map(|&c| *collected.get(self.slot(c)).expect("child share collected"))
                    .collect()
            })
            .unwrap_or_default();
        self.hosted.insert(
            slot,
            Hosted {
                age: 0,
                pool_cursor,
                parent_worker,
                child_workers: child_workers.clone(),
                // The object (root only) comes back from stable storage:
                // the driver answers `Recovered` with `Event::Restore`.
                object: None,
                reply_cache: Vec::new(),
            },
        );
        self.forwarding.remove(slot);
        fx.push(Effect::Recovered { node, worker: self.me, pool_cursor });
        fx.push(Effect::CancelTimer { node });
        fx.push(Effect::Audit(AuditEvent::Recovery { node }));
        fx.push(Effect::Audit(AuditEvent::StintComplete { node, setup_msgs: u64::from(needed) }));
        // Parent and children learn the new worker id through the normal
        // notification messages (ordinary, aging traffic).
        let mut notifications = 0u64;
        if let (Some(parent), Some(w)) = (parent, parent_worker) {
            fx.push(Effect::Send {
                to: w,
                msg: Msg::NewWorker { node: parent, retired: node, new_worker: self.me },
            });
            notifications += 1;
        }
        match self.topo.inner_children(node) {
            Some(children) => {
                for (idx, child) in children.into_iter().enumerate() {
                    fx.push(Effect::Send {
                        to: child_workers[idx],
                        msg: Msg::NewWorker { node: child, retired: node, new_worker: self.me },
                    });
                    notifications += 1;
                }
            }
            None => {
                for leaf in self.topo.leaf_children(node) {
                    fx.push(Effect::Send {
                        to: leaf,
                        msg: Msg::NewWorkerLeaf { retired: node, new_worker: self.me },
                    });
                    notifications += 1;
                }
            }
        }
        fx.push(Effect::Audit(AuditEvent::Traffic { node, msgs: notifications }));
        // A rebuilt root has no object until `Event::Restore`; replaying
        // applies before that would lose them, so its pending buffer
        // waits for the restore.
        if node != NodeRef::ROOT {
            self.replay_pending(node, now, fx);
        }
    }

    fn maybe_retire(&mut self, node: NodeRef, now: VirtualTime, fx: &mut Effects<O>) {
        let Some(threshold) = self.config.threshold else { return };
        let slot = self.slot(node);
        let Some(h) = self.hosted.get(slot) else { return };
        if h.age < threshold {
            return;
        }
        let pool = self.topo.pool(node);
        let size = pool.end - pool.start;
        let recycle = self.config.pool_policy == PoolPolicy::Recycling;
        let Some(next_index) = kmath::next_pool_index(h.pool_cursor, size, recycle) else {
            // No successor available (a drained one-shot pool, or a
            // singleton): the node soldiers on with a reset age. Under
            // the paper's dimensioning this is unreachable for the
            // canonical workload (the audit asserts so).
            fx.push(Effect::Audit(AuditEvent::PoolExhausted { node }));
            self.hosted.get_mut(slot).expect("hosted checked above").age = 0;
            return;
        };
        let successor = ProcessorId::new((pool.start + next_index) as usize);
        fx.push(Effect::Audit(AuditEvent::Retirement { node }));
        let h = self.hosted.remove(slot).expect("hosted checked above");
        self.forwarding.insert(slot, successor);
        fx.push(Effect::Retired { node, successor });
        fx.push(Effect::SetTimer { node, deadline: now + WATCHDOG_TICKS });

        // k+1 handoff messages: k unit parts plus the state-bearing
        // final (the paper's "k+3 messages" per retirement are these
        // plus the notifications below).
        let total = self.topo.order() + 1;
        for part in 0..total - 1 {
            fx.push(Effect::Send { to: successor, msg: Msg::HandoffPart { node, part, total } });
        }
        fx.push(Effect::Send {
            to: successor,
            msg: Msg::HandoffFinal {
                transfer: Box::new(NodeTransfer {
                    node,
                    pool_cursor: next_index,
                    parent_worker: h.parent_worker,
                    child_workers: h.child_workers.clone(),
                    object: h.object,
                    reply_cache: h.reply_cache,
                }),
            },
        });
        // Notify the parent and every child of the new worker. The root
        // "saves the message that would inform the parent".
        let mut notifications = 0u64;
        if let (Some(parent), Some(w)) = (self.topo.parent(node), h.parent_worker) {
            fx.push(Effect::Send {
                to: w,
                msg: Msg::NewWorker { node: parent, retired: node, new_worker: successor },
            });
            notifications += 1;
        }
        match self.topo.inner_children(node) {
            Some(children) => {
                for (idx, child) in children.into_iter().enumerate() {
                    fx.push(Effect::Send {
                        to: h.child_workers[idx],
                        msg: Msg::NewWorker { node: child, retired: node, new_worker: successor },
                    });
                    notifications += 1;
                }
            }
            None => {
                // Only reachable in ablation configurations: level-k
                // pools are singletons under the paper's scheme, so
                // level-k nodes never retire.
                for leaf in self.topo.leaf_children(node) {
                    fx.push(Effect::Send {
                        to: leaf,
                        msg: Msg::NewWorkerLeaf { retired: node, new_worker: successor },
                    });
                    notifications += 1;
                }
            }
        }
        fx.push(Effect::Audit(AuditEvent::Traffic {
            node,
            msgs: u64::from(total) + notifications,
        }));
    }

    fn replay_pending(&mut self, node: NodeRef, now: VirtualTime, fx: &mut Effects<O>) {
        if let Some(buffered) = self.pending.remove(self.slot(node)) {
            for msg in buffered {
                self.on_msg(msg, now, fx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::CounterObject;

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    fn fleet(k: u32, config: EngineConfig) -> (Arc<Topology>, Vec<NodeEngine<CounterObject>>) {
        let topo = Arc::new(Topology::new(k).expect("topology"));
        let mut engines: Vec<NodeEngine<CounterObject>> = (0..topo.processors() as usize)
            .map(|i| NodeEngine::new(p(i), Arc::clone(&topo), config))
            .collect();
        seed_initial_hosting(&topo, &mut engines, &CounterObject::new());
        (topo, engines)
    }

    fn sends<O: RootObject>(fx: &[Effect<O>]) -> Vec<(ProcessorId, &Msg<O>)> {
        fx.iter()
            .filter_map(|e| match e {
                Effect::Send { to, msg } => Some((*to, msg)),
                _ => None,
            })
            .collect()
    }

    /// Runs the fleet like a zero-delay network until no sends remain,
    /// collecting every non-send effect. The engines are a complete
    /// executable protocol on their own — this is the smallest possible
    /// driver.
    fn run_fleet(
        engines: &mut [NodeEngine<CounterObject>],
        mut inbox: Vec<(ProcessorId, Msg<CounterObject>)>,
    ) -> Vec<Effect<CounterObject>> {
        let mut observed = Vec::new();
        while let Some((to, msg)) = inbox.pop() {
            let fx = engines[to.index()].on_event(Event::Deliver { msg }, VirtualTime::ZERO);
            for e in fx {
                match e {
                    Effect::Send { to, msg } => inbox.push((to, msg)),
                    other => observed.push(other),
                }
            }
        }
        observed
    }

    #[test]
    fn seeding_installs_each_node_at_its_pool_start() {
        let (topo, engines) = fleet(2, EngineConfig::paper(2));
        for node in topo.nodes() {
            let w = topo.initial_worker(node);
            assert!(engines[w.index()].hosts(node), "{node} at its initial worker");
        }
        let root = engines[0].hosted(NodeRef::ROOT).expect("root hosted at 0");
        assert!(root.object.is_some(), "object lives at the root");
        assert_eq!(root.child_workers.len(), 2);
    }

    #[test]
    fn invoke_enters_the_tree_at_the_leaf_parent() {
        let (topo, mut engines) = fleet(2, EngineConfig::paper(2));
        let fx = engines[5].on_event(Event::Invoke { op_seq: 9, req: () }, VirtualTime::ZERO);
        let s = sends(&fx);
        assert_eq!(s.len(), 1);
        let leaf_parent = topo.leaf_parent(5);
        assert_eq!(s[0].0, topo.initial_worker(leaf_parent));
        assert!(matches!(s[0].1, Msg::Apply { node, op_seq: 9, .. } if *node == leaf_parent));
    }

    #[test]
    fn an_operation_climbs_to_the_root_and_replies_to_the_initiator() {
        let (_, mut engines) = fleet(2, EngineConfig::paper(2));
        let fx = engines[3].on_event(Event::Invoke { op_seq: 0, req: () }, VirtualTime::ZERO);
        let inbox = sends(&fx).into_iter().map(|(to, m)| (to, m.clone())).collect();
        let observed = run_fleet(&mut engines, inbox);
        let replies: Vec<_> = observed
            .iter()
            .filter_map(|e| match e {
                Effect::Reply { op_seq, resp } => Some((*op_seq, *resp)),
                _ => None,
            })
            .collect();
        assert_eq!(replies, vec![(0, 0)], "first count, delivered to the invoker");
    }

    #[test]
    fn the_root_applies_each_op_seq_exactly_once_when_deduping() {
        let config = EngineConfig { dedupe: true, ..EngineConfig::paper(2) };
        let (_, mut engines) = fleet(2, config);
        let apply = Msg::Apply { node: NodeRef::ROOT, origin: p(7), op_seq: 4, req: () };
        for _ in 0..2 {
            let fx = engines[0].on_event(Event::Deliver { msg: apply.clone() }, VirtualTime::ZERO);
            let s = sends(&fx);
            assert!(
                matches!(s[0].1, Msg::Reply { op_seq: 4, resp: 0 }),
                "duplicate answered from the cache, not re-applied"
            );
        }
        let next = Msg::Apply { node: NodeRef::ROOT, origin: p(7), op_seq: 5, req: () };
        let fx = engines[0].on_event(Event::Deliver { msg: next }, VirtualTime::ZERO);
        assert!(matches!(sends(&fx)[0].1, Msg::Reply { resp: 1, .. }), "count advanced once");
    }

    #[test]
    fn a_batch_traverses_once_and_replies_with_the_range_start() {
        let (_, mut engines) = fleet(2, EngineConfig::paper(2));
        // Warm the counter to 3 with unit ops, then send a batch of 5.
        for seq in 0..3 {
            let fx = engines[3].on_event(Event::Invoke { op_seq: seq, req: () }, VirtualTime::ZERO);
            let inbox = sends(&fx).into_iter().map(|(to, m)| (to, m.clone())).collect();
            run_fleet(&mut engines, inbox);
        }
        let fx = engines[3]
            .on_event(Event::InvokeBatch { op_seq: 3, count: 5, req: () }, VirtualTime::ZERO);
        let s = sends(&fx);
        assert!(
            matches!(s[0].1, Msg::BatchApply { count: 5, op_seq: 3, .. }),
            "the batch enters the tree as one message"
        );
        let inbox = s.into_iter().map(|(to, m)| (to, m.clone())).collect();
        let observed = run_fleet(&mut engines, inbox);
        let replies: Vec<_> = observed
            .iter()
            .filter_map(|e| match e {
                Effect::Reply { op_seq, resp } => Some((*op_seq, *resp)),
                _ => None,
            })
            .collect();
        assert_eq!(replies, vec![(3, 3)], "the batch owns [3, 8)");
        // The next unit op sees the whole range consumed.
        let fx = engines[4].on_event(Event::Invoke { op_seq: 4, req: () }, VirtualTime::ZERO);
        let inbox = sends(&fx).into_iter().map(|(to, m)| (to, m.clone())).collect();
        let observed = run_fleet(&mut engines, inbox);
        assert!(
            observed.iter().any(|e| matches!(e, Effect::Reply { op_seq: 4, resp: 8 })),
            "unit op after the batch starts at 8"
        );
    }

    #[test]
    fn a_batch_of_m_ages_each_node_by_two_not_two_m() {
        let (topo, mut engines) = fleet(2, EngineConfig::paper(2));
        let node = NodeRef { level: 1, index: 0 };
        let me = topo.initial_worker(node);
        // Threshold is 4k = 8; a batch of 100 is still ONE message and
        // must age the node by exactly 2 — no retirement.
        let msg = Msg::BatchApply { node, origin: p(0), op_seq: 0, count: 100, req: () };
        let fx = engines[me.index()].on_event(Event::Deliver { msg }, VirtualTime::ZERO);
        assert!(
            !fx.iter().any(|e| matches!(e, Effect::Retired { .. })),
            "a batch counts once toward the threshold, not once per inc"
        );
        assert_eq!(engines[me.index()].hosted(node).expect("hosted").age, 2);
        assert!(fx.iter().any(|e| matches!(
            e,
            Effect::Audit(AuditEvent::Handled { kind: "batch-apply", aged: 2, .. })
        )));
        // Exactly as many batches as unit applies reach the threshold:
        // three more deliveries retire the node (4 * 2 = 8 = 4k).
        let mut last = Vec::new();
        for seq in 1..4 {
            let msg = Msg::BatchApply { node, origin: p(0), op_seq: seq, count: 100, req: () };
            last = engines[me.index()].on_event(Event::Deliver { msg }, VirtualTime::ZERO);
        }
        assert!(
            last.iter().any(|e| matches!(e, Effect::Retired { node: n, .. } if *n == node)),
            "the fourth traversal (batched or not) retires the node"
        );
        let forwarded =
            sends(&last).iter().filter(|(_, m)| matches!(m, Msg::BatchApply { .. })).count();
        assert_eq!(forwarded, 1, "the batch climbs on as a batch");
    }

    #[test]
    fn a_batch_retry_is_answered_from_the_reply_cache_with_the_same_range() {
        let config = EngineConfig { dedupe: true, ..EngineConfig::paper(2) };
        let (_, mut engines) = fleet(2, config);
        let batch =
            Msg::BatchApply { node: NodeRef::ROOT, origin: p(7), op_seq: 4, count: 6, req: () };
        for attempt in 0..2 {
            let fx = engines[0].on_event(Event::Deliver { msg: batch.clone() }, VirtualTime::ZERO);
            let s = sends(&fx);
            assert!(
                matches!(s[0].1, Msg::Reply { op_seq: 4, resp: 0 }),
                "attempt {attempt}: the retried batch owns the same range [0, 6)"
            );
        }
        let next = Msg::Apply { node: NodeRef::ROOT, origin: p(7), op_seq: 5, req: () };
        let fx = engines[0].on_event(Event::Deliver { msg: next }, VirtualTime::ZERO);
        assert!(
            matches!(sends(&fx)[0].1, Msg::Reply { resp: 6, .. }),
            "the counter advanced by the batch size exactly once"
        );
    }

    #[test]
    fn a_batch_buffered_at_an_uninstalled_successor_keeps_its_count() {
        let (topo, mut engines) = fleet(2, EngineConfig::paper(2));
        let node = NodeRef { level: 1, index: 0 };
        let successor = ProcessorId::new(topo.pool(node).start as usize + 1);
        let early = Msg::BatchApply { node, origin: p(0), op_seq: 0, count: 9, req: () };
        let fx =
            engines[successor.index()].on_event(Event::Deliver { msg: early }, VirtualTime::ZERO);
        assert!(sends(&fx).is_empty(), "buffered until the handoff installs");
        let transfer = NodeTransfer {
            node,
            pool_cursor: 1,
            parent_worker: Some(p(0)),
            child_workers: vec![p(0), p(2)],
            object: None,
            reply_cache: Vec::new(),
        };
        let fx = engines[successor.index()].on_event(
            Event::Deliver { msg: Msg::HandoffFinal { transfer: Box::new(transfer) } },
            VirtualTime::ZERO,
        );
        assert!(
            sends(&fx)
                .iter()
                .any(|(to, m)| *to == p(0) && matches!(m, Msg::BatchApply { count: 9, .. })),
            "the replayed batch still carries count 9"
        );
    }

    #[test]
    fn reaching_the_threshold_retires_with_k_plus_one_handoffs_and_notifications() {
        let (topo, mut engines) = fleet(2, EngineConfig::paper(2));
        let node = NodeRef { level: 1, index: 0 };
        let me = topo.initial_worker(node);
        // Age the node to the threshold (8 = 4k): four applies.
        let mut fx = Vec::new();
        for seq in 0..4 {
            let msg = Msg::Apply { node, origin: p(0), op_seq: seq, req: () };
            fx = engines[me.index()].on_event(Event::Deliver { msg }, VirtualTime(3));
        }
        assert!(
            fx.iter().any(|e| matches!(e, Effect::Retired { node: n, .. } if *n == node)),
            "threshold reached → retired"
        );
        let successor = topo.pool(node).start + 1;
        let to_successor: Vec<_> =
            sends(&fx).into_iter().filter(|(to, _)| to.index() as u64 == successor).collect();
        let parts =
            to_successor.iter().filter(|(_, m)| matches!(m, Msg::HandoffPart { .. })).count();
        let finals =
            to_successor.iter().filter(|(_, m)| matches!(m, Msg::HandoffFinal { .. })).count();
        assert_eq!((parts, finals), (2, 1), "k unit parts + the state-bearing final");
        let notifications =
            sends(&fx).iter().filter(|(_, m)| matches!(m, Msg::NewWorker { .. })).count();
        assert_eq!(notifications, 3, "parent + 2 children");
        assert!(fx.iter().any(|e| matches!(e, Effect::SetTimer { .. })), "watchdog armed");
        assert!(!engines[me.index()].hosts(node), "the job left this processor");
    }

    #[test]
    fn early_traffic_buffers_until_the_final_installs_then_replays() {
        let (topo, mut engines) = fleet(2, EngineConfig::paper(2));
        let node = NodeRef { level: 1, index: 0 };
        let successor = ProcessorId::new(topo.pool(node).start as usize + 1);
        // An apply reaches the successor before any handoff: buffered.
        let early = Msg::Apply { node, origin: p(0), op_seq: 0, req: () };
        let fx =
            engines[successor.index()].on_event(Event::Deliver { msg: early }, VirtualTime::ZERO);
        assert!(sends(&fx).is_empty(), "nothing forwarded yet");
        // The final arrives: install + replay of the buffered apply.
        let transfer = NodeTransfer {
            node,
            pool_cursor: 1,
            parent_worker: Some(p(0)),
            child_workers: vec![p(0), p(2)],
            object: None,
            reply_cache: Vec::new(),
        };
        let fx = engines[successor.index()].on_event(
            Event::Deliver { msg: Msg::HandoffFinal { transfer: Box::new(transfer) } },
            VirtualTime::ZERO,
        );
        assert!(fx.iter().any(|e| matches!(e, Effect::Installed { .. })));
        assert!(fx.iter().any(|e| matches!(e, Effect::CancelTimer { .. })));
        assert!(
            sends(&fx).iter().any(|(to, m)| *to == p(0) && matches!(m, Msg::Apply { .. })),
            "the buffered apply climbed on after the install"
        );
        assert_eq!(engines[successor.index()].hosted(node).expect("installed").age, 2);
    }

    #[test]
    fn a_retired_worker_shims_traffic_to_its_successor() {
        let (topo, mut engines) = fleet(2, EngineConfig::paper(2));
        let node = NodeRef { level: 1, index: 0 };
        let me = topo.initial_worker(node);
        for seq in 0..4 {
            let msg = Msg::Apply { node, origin: p(0), op_seq: seq, req: () };
            engines[me.index()].on_event(Event::Deliver { msg }, VirtualTime::ZERO);
        }
        assert!(!engines[me.index()].hosts(node), "retired above");
        let stale = Msg::Apply { node, origin: p(0), op_seq: 9, req: () };
        let fx = engines[me.index()].on_event(Event::Deliver { msg: stale }, VirtualTime::ZERO);
        assert!(fx.iter().any(|e| matches!(e, Effect::Audit(AuditEvent::ShimForward))));
        let s = sends(&fx);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].0.index() as u64, topo.pool(node).start + 1, "forwarded to successor");
    }

    #[test]
    fn recovery_rebuilds_from_distinct_neighbours_only() {
        let (topo, mut engines) = fleet(2, EngineConfig::paper(2));
        let node = NodeRef { level: 1, index: 0 };
        let successor = ProcessorId::new(topo.pool(node).start as usize + 1);
        let parent = topo.parent(node).expect("level 1 has a parent");
        let children = topo.inner_children(node).expect("level 1 has inner children");
        let neighbours: Vec<(NodeRef, ProcessorId)> =
            std::iter::once((parent, topo.initial_worker(parent)))
                .chain(children.iter().map(|&c| (c, topo.initial_worker(c))))
                .collect();
        let promote = Msg::RecoverPromote { node, neighbours: neighbours.clone() };
        let fx =
            engines[successor.index()].on_event(Event::Deliver { msg: promote }, VirtualTime::ZERO);
        assert!(fx.iter().any(|e| matches!(e, Effect::RecoveryStarted { .. })));
        let queries =
            sends(&fx).iter().filter(|(_, m)| matches!(m, Msg::RebuildQuery { .. })).count();
        assert_eq!(queries, neighbours.len(), "one query per neighbour");
        // A duplicated parent share must not complete the rebuild early.
        let parent_share =
            Msg::RebuildShare { node, neighbour: parent, worker: topo.initial_worker(parent) };
        for _ in 0..3 {
            let fx = engines[successor.index()]
                .on_event(Event::Deliver { msg: parent_share.clone() }, VirtualTime::ZERO);
            assert!(
                !fx.iter().any(|e| matches!(e, Effect::Recovered { .. })),
                "duplicates of one neighbour never complete the rebuild"
            );
        }
        // The remaining distinct neighbours complete it.
        let mut last = Vec::new();
        for &c in &children {
            let share = Msg::RebuildShare { node, neighbour: c, worker: topo.initial_worker(c) };
            last = engines[successor.index()]
                .on_event(Event::Deliver { msg: share }, VirtualTime::ZERO);
        }
        assert!(
            last.iter().any(|e| matches!(
                e,
                Effect::Recovered { node: n, worker, .. } if *n == node && *worker == successor
            )),
            "all distinct neighbours answered → recovered"
        );
        let rebuilt = engines[successor.index()].hosted(node).expect("installed");
        assert_eq!(rebuilt.pool_cursor, 1, "cursor aligned with the promoted worker");
        assert_eq!(rebuilt.parent_worker, Some(topo.initial_worker(parent)));
        let notifications =
            sends(&last).iter().filter(|(_, m)| matches!(m, Msg::NewWorker { .. })).count();
        assert_eq!(notifications, neighbours.len(), "neighbours learn the new worker");
    }

    #[test]
    fn a_recovered_root_waits_for_restore_before_serving_buffered_applies() {
        let (topo, mut engines) = fleet(2, EngineConfig::paper(2));
        let successor = p(1);
        let children = topo.inner_children(NodeRef::ROOT).expect("root children");
        let neighbours: Vec<(NodeRef, ProcessorId)> =
            children.iter().map(|&c| (c, topo.initial_worker(c))).collect();
        engines[successor.index()].on_event(
            Event::Deliver { msg: Msg::RecoverPromote { node: NodeRef::ROOT, neighbours } },
            VirtualTime::ZERO,
        );
        // An apply lands mid-rebuild: buffered.
        let apply = Msg::Apply { node: NodeRef::ROOT, origin: p(6), op_seq: 3, req: () };
        let fx =
            engines[successor.index()].on_event(Event::Deliver { msg: apply }, VirtualTime::ZERO);
        assert!(sends(&fx).is_empty(), "buffered while rebuilding");
        for &c in &children {
            let share = Msg::RebuildShare { node: NodeRef::ROOT, neighbour: c, worker: p(0) };
            let fx = engines[successor.index()]
                .on_event(Event::Deliver { msg: share }, VirtualTime::ZERO);
            // Even once recovered, the buffered apply must wait for the
            // object to come back from stable storage.
            assert!(!sends(&fx).iter().any(|(_, m)| matches!(m, Msg::Reply { .. })));
        }
        let mut restored = CounterObject::new();
        let replies =
            vec![(0, restored.apply(())), (1, restored.apply(())), (2, restored.apply(()))];
        let fx = engines[successor.index()].on_event(
            Event::Restore { node: NodeRef::ROOT, object: restored, reply_cache: replies },
            VirtualTime::ZERO,
        );
        let s = sends(&fx);
        assert!(
            s.iter().any(|(to, m)| *to == p(6) && matches!(m, Msg::Reply { op_seq: 3, resp: 3 })),
            "restore replayed the buffered apply against the restored state: {s:?}"
        );
    }

    #[test]
    fn exhausted_pools_reset_the_age_instead_of_retiring() {
        // Threshold 1 with one-shot pools: the level-2 (singleton pool)
        // node blocks immediately.
        let config = EngineConfig { threshold: Some(1), ..EngineConfig::paper(2) };
        let (topo, mut engines) = fleet(2, config);
        let node = topo.leaf_parent(0);
        let me = topo.initial_worker(node);
        let msg = Msg::Apply { node, origin: p(0), op_seq: 0, req: () };
        let fx = engines[me.index()].on_event(Event::Deliver { msg }, VirtualTime::ZERO);
        assert!(fx.iter().any(
            |e| matches!(e, Effect::Audit(AuditEvent::PoolExhausted { node: n }) if *n == node)
        ));
        assert_eq!(engines[me.index()].hosted(node).expect("still hosted").age, 0);
        assert!(engines[me.index()].hosts(node), "the node soldiers on");
    }

    #[test]
    fn stale_promotions_are_ignored_by_the_current_worker() {
        let (_, mut engines) = fleet(2, EngineConfig::paper(2));
        let promote = Msg::RecoverPromote { node: NodeRef::ROOT, neighbours: Vec::new() };
        let fx = engines[0].on_event(Event::Deliver { msg: promote }, VirtualTime::ZERO);
        assert!(sends(&fx).is_empty(), "processor 0 still hosts the root: no rebuild");
        assert!(!fx.iter().any(|e| matches!(e, Effect::RecoveryStarted { .. })));
    }

    #[test]
    fn rebuild_queries_are_answered_with_a_unit_share() {
        let (_, mut engines) = fleet(2, EngineConfig::paper(2));
        let node = NodeRef { level: 1, index: 0 };
        let query = Msg::RebuildQuery { node, neighbour: NodeRef::ROOT, successor: p(3) };
        let fx = engines[0].on_event(Event::Deliver { msg: query }, VirtualTime::ZERO);
        let s = sends(&fx);
        assert_eq!(s.len(), 1);
        assert!(matches!(
            s[0].1,
            Msg::RebuildShare { node: n, neighbour, worker } if *n == node && *neighbour == NodeRef::ROOT && *worker == p(0)
        ));
    }

    #[test]
    fn retirement_policy_thresholds_come_from_kmath() {
        assert_eq!(RetirementPolicy::PaperDefault.threshold(3), Some(12));
        assert_eq!(RetirementPolicy::AfterAge(7).threshold(3), Some(7));
        assert_eq!(RetirementPolicy::AfterAge(0).threshold(3), Some(1), "clamped to 1");
        assert_eq!(RetirementPolicy::Never.threshold(3), None);
        assert_eq!(RetirementPolicy::default(), RetirementPolicy::PaperDefault);
    }
}
