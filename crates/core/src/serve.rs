//! The backend-agnostic serving interface.
//!
//! A service boundary (such as `distctr-server`'s TCP layer) needs a
//! uniform view of "a counter it can host": execute one `inc` charged to
//! an initiating processor, and report the load-accounting quantities
//! the bottleneck story is about. Both execution backends implement it —
//! [`TreeCounter`] (the discrete-event simulator) here, and the
//! real-threads `ThreadedTreeCounter` in `distctr-net` — so the same
//! server, tests and experiments run against either.
//!
//! Exactly-once across retries is part of the interface: a backend that
//! owns a reply cache (the root's migrating cache in both tree backends)
//! can hand out **tickets** via [`CounterBackend::reserve`]. Driving
//! [`CounterBackend::inc_ticketed`] twice with the same ticket applies
//! the increment once and returns the same value twice — which is what a
//! server needs when a client reconnects and retries a request whose
//! reply was lost in flight.

use distctr_sim::{Counter, ProcessorId};

use crate::counter::TreeCounter;
use crate::error::CoreError;

/// The key a single-counter client addresses implicitly: every backend
/// is a keyspace of (at least) one, hosting this key, so pre-keyspace
/// clients and servers interoperate with keyed ones unchanged.
pub const DEFAULT_KEY: u64 = 0;

/// Outcome of a keyed operation ([`CounterBackend::inc_key`] /
/// [`CounterBackend::inc_batch_key`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyedReply {
    /// The operation was applied; the value (or first value of the
    /// granted contiguous range) is carried.
    Fresh(u64),
    /// The operation's dedup token was found in a reply cache: nothing
    /// was applied, and the original grant's (first) value is carried.
    /// This is what keeps a reconnect-and-retry exactly-once even when
    /// the key migrated backends between the attempts.
    Replay(u64),
    /// The backend does not host this key (single-counter backends host
    /// only [`DEFAULT_KEY`]; a keyspace may be at its key limit).
    Unrouted,
}

/// Keyspace-level statistics, carried over the wire in the server's
/// stats snapshot. A single-counter backend is a keyspace of one with
/// no migration machinery — see [`KeyspaceStats::single`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KeyspaceStats {
    /// Keys currently hosted.
    pub keys_hosted: u64,
    /// Keys promoted centralized → tree so far.
    pub promotions: u64,
    /// Keys demoted tree → centralized so far.
    pub demotions: u64,
    /// Keys marked for migration that have not yet settled (draining).
    pub migrations_inflight: u64,
}

impl KeyspaceStats {
    /// The stats of a plain single-counter backend: one hosted key,
    /// nothing ever migrates.
    #[must_use]
    pub fn single() -> Self {
        KeyspaceStats { keys_hosted: 1, ..KeyspaceStats::default() }
    }
}

/// A counter implementation that can be hosted behind a service
/// boundary.
///
/// # Examples
///
/// ```
/// use distctr_core::{CounterBackend, TreeCounter};
/// use distctr_sim::ProcessorId;
///
/// # fn main() -> Result<(), distctr_core::CoreError> {
/// let mut backend = TreeCounter::new(8)?;
/// assert_eq!(CounterBackend::inc(&mut backend, ProcessorId::new(3))?, 0);
/// assert_eq!(CounterBackend::inc(&mut backend, ProcessorId::new(5))?, 1);
/// assert!(backend.bottleneck() >= 1);
/// # Ok(())
/// # }
/// ```
pub trait CounterBackend {
    /// The backend's error type.
    type Error: std::error::Error + Send + Sync + 'static;

    /// Number of processors in the hosted network.
    fn processors(&self) -> usize;

    /// Executes one `inc` initiated (and charged to) `initiator`,
    /// returning the counter value.
    ///
    /// # Errors
    ///
    /// Backend-specific: out-of-range initiators always fail; threaded
    /// backends may also time out or lose peers.
    fn inc(&mut self, initiator: ProcessorId) -> Result<u64, Self::Error>;

    /// Reserves a dedup ticket for one client request, if this backend
    /// supports exactly-once retries. `None` (the default) means the
    /// caller must deduplicate retries itself.
    fn reserve(&mut self) -> Option<u64> {
        None
    }

    /// Executes one `inc` under a ticket from
    /// [`CounterBackend::reserve`]: re-driving the same ticket must not
    /// increment again, and must return the value of the first
    /// application. The default ignores the ticket and increments.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CounterBackend::inc`].
    fn inc_ticketed(&mut self, initiator: ProcessorId, _ticket: u64) -> Result<u64, Self::Error> {
        self.inc(initiator)
    }

    /// Executes a *batch* of `count` incs charged to `initiator` as one
    /// traversal where the backend supports it, returning the **first**
    /// value of the batch's contiguous range `[first, first + count)`.
    ///
    /// The default replays [`CounterBackend::inc`] `count` times —
    /// semantically identical (the values are contiguous because the
    /// backend serializes them) but unamortized. Tree backends override
    /// it with a single `BatchInc` traversal.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CounterBackend::inc`].
    fn inc_batch(&mut self, initiator: ProcessorId, count: u64) -> Result<u64, Self::Error> {
        let first = self.inc(initiator)?;
        for _ in 1..count {
            self.inc(initiator)?;
        }
        Ok(first)
    }

    /// Batch analogue of [`CounterBackend::inc_ticketed`]: re-driving the
    /// same ticket with the same `count` must not increment again and
    /// must return the same range start. The default ignores the ticket.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CounterBackend::inc`].
    fn inc_batch_ticketed(
        &mut self,
        initiator: ProcessorId,
        _ticket: u64,
        count: u64,
    ) -> Result<u64, Self::Error> {
        self.inc_batch(initiator, count)
    }

    /// Executes one `inc` against counter `key`, optionally under a
    /// `(session, request)` dedup token: a backend that keeps a keyed
    /// reply cache answers a replayed token with [`KeyedReply::Replay`]
    /// instead of incrementing again — and carries that cache across
    /// backend migrations, so exactly-once survives a key changing
    /// placement between a request and its retry.
    ///
    /// The default routes [`DEFAULT_KEY`] to [`CounterBackend::inc`]
    /// (ignoring the token; the caller's own answer table must dedup)
    /// and reports every other key [`KeyedReply::Unrouted`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`CounterBackend::inc`].
    fn inc_key(
        &mut self,
        key: u64,
        initiator: ProcessorId,
        token: Option<(u64, u64)>,
    ) -> Result<KeyedReply, Self::Error> {
        let _ = token;
        if key == DEFAULT_KEY {
            self.inc(initiator).map(KeyedReply::Fresh)
        } else {
            Ok(KeyedReply::Unrouted)
        }
    }

    /// Batch analogue of [`CounterBackend::inc_key`]: `count` incs
    /// against counter `key` as one traversal where supported, granting
    /// the contiguous range `[first, first + count)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CounterBackend::inc`].
    fn inc_batch_key(
        &mut self,
        key: u64,
        initiator: ProcessorId,
        count: u64,
        token: Option<(u64, u64)>,
    ) -> Result<KeyedReply, Self::Error> {
        let _ = token;
        if key == DEFAULT_KEY {
            self.inc_batch(initiator, count).map(KeyedReply::Fresh)
        } else {
            Ok(KeyedReply::Unrouted)
        }
    }

    /// Reads counter `key`'s current value (the count of grants so far)
    /// without incrementing, or `None` if this backend cannot serve
    /// reads for it. The default declines every key: the single-counter
    /// backends expose no read path, only keyspaces do.
    fn read_key(&self, key: u64) -> Option<u64> {
        let _ = key;
        None
    }

    /// Keyspace-level statistics. The default reports a keyspace of one
    /// ([`KeyspaceStats::single`]).
    fn keyspace_stats(&self) -> KeyspaceStats {
        KeyspaceStats::single()
    }

    /// The bottleneck load `m_b = max_p m_p` so far.
    fn bottleneck(&self) -> u64;

    /// Total worker retirements so far.
    fn retirements(&self) -> u64;
}

impl CounterBackend for TreeCounter {
    type Error = CoreError;

    fn processors(&self) -> usize {
        Counter::processors(self)
    }

    fn inc(&mut self, initiator: ProcessorId) -> Result<u64, Self::Error> {
        Ok(Counter::inc(self, initiator).map_err(CoreError::Sim)?.value)
    }

    fn inc_batch(&mut self, initiator: ProcessorId, count: u64) -> Result<u64, Self::Error> {
        Ok(TreeCounter::inc_batch(self, initiator, count).map_err(CoreError::Sim)?.value)
    }

    fn bottleneck(&self) -> u64 {
        self.loads().max_load()
    }

    fn retirements(&self) -> u64 {
        self.audit().retirements_by_level().iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sequential_through_the_trait<B: CounterBackend>(backend: &mut B, ops: usize) {
        for i in 0..ops {
            let p = ProcessorId::new(i % backend.processors());
            assert_eq!(backend.inc(p).expect("inc"), i as u64);
        }
    }

    #[test]
    fn sim_backend_counts_through_the_trait() {
        let mut sim = TreeCounter::new(8).expect("counter");
        sequential_through_the_trait(&mut sim, 8);
        assert!(sim.bottleneck() >= 2, "the root's worker moved messages");
        assert!(CounterBackend::retirements(&sim) > 0);
    }

    #[test]
    fn sim_batch_returns_the_range_start_and_advances_by_count() {
        let mut sim = TreeCounter::new(8).expect("counter");
        assert_eq!(CounterBackend::inc(&mut sim, ProcessorId::new(0)).expect("inc"), 0);
        assert_eq!(
            CounterBackend::inc_batch(&mut sim, ProcessorId::new(1), 5).expect("batch"),
            1,
            "owns [1, 6)"
        );
        assert_eq!(CounterBackend::inc(&mut sim, ProcessorId::new(2)).expect("inc"), 6);
        assert_eq!(sim.inc_batch_ticketed(ProcessorId::new(3), 9, 2).expect("batch"), 7);
    }

    #[test]
    fn default_ticketing_is_a_plain_inc() {
        let mut sim = TreeCounter::new(8).expect("counter");
        assert_eq!(sim.reserve(), None);
        assert_eq!(sim.inc_ticketed(ProcessorId::new(0), 7).expect("inc"), 0);
        assert_eq!(sim.inc_ticketed(ProcessorId::new(1), 7).expect("inc"), 1);
    }

    #[test]
    fn default_keyed_methods_make_every_backend_a_keyspace_of_one() {
        let mut sim = TreeCounter::new(8).expect("counter");
        let p = ProcessorId::new(0);
        assert_eq!(sim.inc_key(DEFAULT_KEY, p, Some((1, 1))).expect("inc"), KeyedReply::Fresh(0));
        assert_eq!(
            sim.inc_batch_key(DEFAULT_KEY, p, 3, None).expect("batch"),
            KeyedReply::Fresh(1)
        );
        assert_eq!(sim.inc_key(7, p, None).expect("inc"), KeyedReply::Unrouted);
        assert_eq!(sim.inc_batch_key(7, p, 2, None).expect("batch"), KeyedReply::Unrouted);
        assert_eq!(sim.read_key(DEFAULT_KEY), None, "single-counter backends decline reads");
        assert_eq!(sim.keyspace_stats(), KeyspaceStats::single());
        assert_eq!(sim.keyspace_stats().keys_hosted, 1);
    }
}
