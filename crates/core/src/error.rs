//! Error type for counter construction.

use std::error::Error;
use std::fmt;

use distctr_sim::SimError;

/// Errors from building or driving a [`TreeCounter`](crate::TreeCounter).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// The requested network size cannot be mapped to a supported tree
    /// order.
    Order(String),
    /// An underlying simulator error.
    Sim(SimError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Order(msg) => write!(f, "invalid tree order: {msg}"),
            CoreError::Sim(e) => write!(f, "simulator error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Order(_) => None,
            CoreError::Sim(e) => Some(e),
        }
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::Order("k too large".into());
        assert!(e.to_string().contains("k too large"));
        assert!(e.source().is_none());
        let s: CoreError = SimError::EmptyNetwork.into();
        assert!(s.to_string().contains("at least one"));
        assert!(s.source().is_some());
    }
}
