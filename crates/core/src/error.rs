//! Error type for counter construction.

use std::error::Error;
use std::fmt;

use distctr_sim::SimError;

/// Errors from building or driving a [`TreeCounter`](crate::TreeCounter).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// The requested network size cannot be mapped to a supported tree
    /// order.
    Order(String),
    /// An underlying simulator error.
    Sim(SimError),
    /// A crashed processor cannot be replaced: the node it served has no
    /// live pool successor left (level-k nodes have singleton pools; a
    /// one-shot pool may be drained), or the operation's initiator itself
    /// is down.
    Unrecoverable(String),
    /// The recovery watchdog gave up: after `attempts` inject-and-repair
    /// rounds the operation still produced no response.
    RecoveryFailed {
        /// Watchdog rounds spent before giving up.
        attempts: u32,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Order(msg) => write!(f, "invalid tree order: {msg}"),
            CoreError::Sim(e) => write!(f, "simulator error: {e}"),
            CoreError::Unrecoverable(msg) => write!(f, "unrecoverable crash: {msg}"),
            CoreError::RecoveryFailed { attempts } => {
                write!(f, "operation still unanswered after {attempts} recovery attempts")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::Order("k too large".into());
        assert!(e.to_string().contains("k too large"));
        assert!(e.source().is_none());
        let s: CoreError = SimError::EmptyNetwork.into();
        assert!(s.to_string().contains("at least one"));
        assert!(s.source().is_some());
        let u = CoreError::Unrecoverable("node (3, 0) pool drained".into());
        assert!(u.to_string().contains("unrecoverable"));
        assert!(u.source().is_none());
        let r = CoreError::RecoveryFailed { attempts: 25 };
        assert!(r.to_string().contains("25"));
    }
}
