//! The communication tree structure (paper Figure 4) and its identifier
//! scheme.
//!
//! "Each inner node in the communication tree has k children. All leaves
//! of the tree are on level k+1; the root is on level zero. Hence the
//! number of leaves is k·k^k." Inner nodes occupy levels `0..=k`; the
//! leaves are the `n = k^(k+1)` processors themselves.
//!
//! Identifier scheme (zero-based here; the paper is one-based):
//! node `j` on level `i` (for `i in 1..=k`) initially uses processor
//! `(i-1)·k^k + j·k^(k-i)` and owns the *replacement pool* of the
//! `k^(k-i)` processor ids starting there — "exactly k^(k-i) − 1
//! replacement processors, just as needed". The root starts at processor
//! 0 and walks the pool `0..k^k`. Levels use disjoint id blocks of size
//! `k^k` each, so "no two inner nodes on levels 1 through k ever have the
//! same identifiers"; the root's pool intentionally aliases level 1's
//! block (the paper notes this is harmless: a processor works at most once
//! for the root and at most once for one other inner node).

use std::fmt;

use distctr_sim::ProcessorId;

use crate::kmath::{leaves_of_order, pow_u64, MAX_ORDER};

/// An inner node of the communication tree: `level` 0 (root) through `k`,
/// `index` within the level (level `i` has `k^i` nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeRef {
    /// Level, 0 = root, `k` = parents of leaves.
    pub level: u32,
    /// Index within the level, `0..k^level`.
    pub index: u64,
}

impl NodeRef {
    /// The root node.
    pub const ROOT: NodeRef = NodeRef { level: 0, index: 0 };
}

impl fmt::Display for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}.{}", self.level, self.index)
    }
}

/// The static shape of an order-`k` communication tree.
///
/// # Examples
///
/// ```
/// use distctr_core::topology::{NodeRef, Topology};
/// let t = Topology::new(3).expect("order 3");
/// assert_eq!(t.processors(), 81);
/// assert_eq!(t.nodes_on_level(2), 9);
/// let leaf_parent = t.leaf_parent(80);
/// assert_eq!(leaf_parent.level, 3);
/// assert_eq!(t.parent(leaf_parent), Some(NodeRef { level: 2, index: 8 }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    k: u32,
    /// `offsets[i]` = number of inner nodes on levels `< i`.
    offsets: Vec<u64>,
}

impl Topology {
    /// Builds the topology of an order-`k` tree.
    ///
    /// # Errors
    ///
    /// Returns `Err` with a description if `k` is 0 or above
    /// [`MAX_ORDER`].
    pub fn new(k: u32) -> Result<Self, String> {
        if k == 0 {
            return Err("tree order k must be at least 1".to_string());
        }
        if k > MAX_ORDER {
            return Err(format!("tree order k={k} exceeds MAX_ORDER={MAX_ORDER}"));
        }
        let mut offsets = Vec::with_capacity(k as usize + 2);
        let mut acc = 0u64;
        for level in 0..=k {
            offsets.push(acc);
            acc += pow_u64(k, level);
        }
        offsets.push(acc); // total inner nodes
        Ok(Topology { k, offsets })
    }

    /// The tree order `k`.
    #[must_use]
    pub fn order(&self) -> u32 {
        self.k
    }

    /// Number of processors `n = k^(k+1)` (= leaves).
    #[must_use]
    pub fn processors(&self) -> u64 {
        leaves_of_order(self.k)
    }

    /// Number of inner nodes on level `i` (`k^i`).
    ///
    /// # Panics
    ///
    /// Panics if `i > k`.
    #[must_use]
    pub fn nodes_on_level(&self, i: u32) -> u64 {
        assert!(i <= self.k, "level {i} beyond inner levels 0..={}", self.k);
        pow_u64(self.k, i)
    }

    /// Total number of inner nodes (levels `0..=k`).
    #[must_use]
    pub fn inner_node_count(&self) -> u64 {
        *self.offsets.last().expect("offsets nonempty")
    }

    /// Flat storage index of an inner node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the tree.
    #[must_use]
    pub fn flat_index(&self, node: NodeRef) -> usize {
        assert!(node.level <= self.k, "level {} beyond {}", node.level, self.k);
        assert!(
            node.index < self.nodes_on_level(node.level),
            "index {} beyond level {} width",
            node.index,
            node.level
        );
        usize::try_from(self.offsets[node.level as usize] + node.index)
            .expect("inner node count fits usize")
    }

    /// Inverse of [`Topology::flat_index`].
    ///
    /// # Panics
    ///
    /// Panics if `flat` is out of range.
    #[must_use]
    pub fn node_at(&self, flat: usize) -> NodeRef {
        let flat = flat as u64;
        assert!(flat < self.inner_node_count(), "flat index out of range");
        let level = match self.offsets.binary_search(&flat) {
            Ok(i) if i <= self.k as usize => i as u32,
            Ok(_) | Err(0) => unreachable!("offsets[0] = 0"),
            Err(i) => (i - 1) as u32,
        };
        NodeRef { level, index: flat - self.offsets[level as usize] }
    }

    /// The parent of an inner node (None for the root).
    #[must_use]
    pub fn parent(&self, node: NodeRef) -> Option<NodeRef> {
        (node.level > 0)
            .then(|| NodeRef { level: node.level - 1, index: node.index / self.k as u64 })
    }

    /// The inner-node children of `node`: `k` nodes on the next level, or
    /// `None` if `node` is on level `k` (its children are leaves).
    #[must_use]
    pub fn inner_children(&self, node: NodeRef) -> Option<Vec<NodeRef>> {
        (node.level < self.k).then(|| {
            (0..self.k as u64)
                .map(|c| NodeRef { level: node.level + 1, index: node.index * self.k as u64 + c })
                .collect()
        })
    }

    /// The leaf children of a level-`k` node, as processor ids.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not on level `k`.
    #[must_use]
    pub fn leaf_children(&self, node: NodeRef) -> Vec<ProcessorId> {
        assert_eq!(node.level, self.k, "only level-k nodes have leaf children");
        (0..self.k as u64)
            .map(|c| ProcessorId::new((node.index * self.k as u64 + c) as usize))
            .collect()
    }

    /// The level-`k` node above leaf (processor) `leaf`.
    ///
    /// # Panics
    ///
    /// Panics if `leaf >= n`.
    #[must_use]
    pub fn leaf_parent(&self, leaf: u64) -> NodeRef {
        assert!(leaf < self.processors(), "leaf {leaf} out of range");
        NodeRef { level: self.k, index: leaf / self.k as u64 }
    }

    /// Number of leaves under `node` — the number of operation paths
    /// through it: `k^(k+1-level)`.
    #[must_use]
    pub fn paths_through(&self, node: NodeRef) -> u64 {
        pow_u64(self.k, self.k + 1 - node.level)
    }

    /// The processor that initially works for `node`.
    #[must_use]
    pub fn initial_worker(&self, node: NodeRef) -> ProcessorId {
        ProcessorId::new(self.pool_start(node) as usize)
    }

    /// The replacement pool of `node`: the contiguous id range its
    /// successive workers are drawn from. Size `k^k` for the root,
    /// `k^(k-i)` for a level-`i` node, supporting `size - 1` retirements.
    #[must_use]
    pub fn pool(&self, node: NodeRef) -> std::ops::Range<u64> {
        let start = self.pool_start(node);
        start..start + self.pool_size(node.level)
    }

    /// Size of every level-`i` node's replacement pool.
    #[must_use]
    pub fn pool_size(&self, level: u32) -> u64 {
        if level == 0 {
            pow_u64(self.k, self.k)
        } else {
            pow_u64(self.k, self.k - level)
        }
    }

    fn pool_start(&self, node: NodeRef) -> u64 {
        if node.level == 0 {
            0
        } else {
            (node.level as u64 - 1) * pow_u64(self.k, self.k)
                + node.index * pow_u64(self.k, self.k - node.level)
        }
    }

    /// Iterates over every inner node, root first, level by level.
    pub fn nodes(&self) -> impl Iterator<Item = NodeRef> + '_ {
        (0..=self.k).flat_map(move |level| {
            (0..self.nodes_on_level(level)).map(move |index| NodeRef { level, index })
        })
    }

    /// Renders the tree structure in the spirit of paper Figure 4: one
    /// line per level with node counts, pools and initial ids (elided for
    /// wide levels).
    #[must_use]
    pub fn render_ascii(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "order k={} tree: {} inner nodes, {} leaves/processors",
            self.k,
            self.inner_node_count(),
            self.processors()
        );
        for level in 0..=self.k {
            let width = self.nodes_on_level(level);
            let pool = self.pool_size(level);
            let show = width.min(4);
            let ids: Vec<String> = (0..show)
                .map(|j| self.initial_worker(NodeRef { level, index: j }).to_string())
                .collect();
            let _ = writeln!(
                out,
                "  level {level}: {width} node(s), pool {pool} id(s) each, initial workers [{}{}]",
                ids.join(", "),
                if width > show { ", ..." } else { "" }
            );
        }
        let _ =
            writeln!(out, "  level {}: {} leaves (processors P0..)", self.k + 1, self.processors());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn construction_bounds() {
        assert!(Topology::new(0).is_err());
        assert!(Topology::new(MAX_ORDER + 1).is_err());
        assert!(Topology::new(1).is_ok());
        assert!(Topology::new(MAX_ORDER).is_ok());
    }

    #[test]
    fn level_widths_and_totals() {
        let t = Topology::new(3).expect("k=3");
        assert_eq!(t.nodes_on_level(0), 1);
        assert_eq!(t.nodes_on_level(1), 3);
        assert_eq!(t.nodes_on_level(2), 9);
        assert_eq!(t.nodes_on_level(3), 27);
        assert_eq!(t.inner_node_count(), 40);
        assert_eq!(t.processors(), 81);
    }

    #[test]
    fn flat_index_roundtrip() {
        let t = Topology::new(3).expect("k=3");
        for (i, node) in t.nodes().enumerate() {
            assert_eq!(t.flat_index(node), i);
            assert_eq!(t.node_at(i), node);
        }
        assert_eq!(t.nodes().count() as u64, t.inner_node_count());
    }

    #[test]
    fn parent_child_inverse() {
        let t = Topology::new(3).expect("k=3");
        for node in t.nodes() {
            if let Some(children) = t.inner_children(node) {
                assert_eq!(children.len(), 3);
                for c in children {
                    assert_eq!(t.parent(c), Some(node));
                }
            } else {
                assert_eq!(node.level, t.order());
            }
        }
        assert_eq!(t.parent(NodeRef::ROOT), None);
    }

    #[test]
    fn leaf_parent_and_leaf_children_inverse() {
        let t = Topology::new(3).expect("k=3");
        for leaf in 0..t.processors() {
            let parent = t.leaf_parent(leaf);
            assert_eq!(parent.level, 3);
            let kids = t.leaf_children(parent);
            assert!(kids.contains(&ProcessorId::new(leaf as usize)));
        }
    }

    #[test]
    fn initial_ids_distinct_on_levels_one_through_k() {
        // "no two inner nodes on levels 1 through k get the same id"
        for k in 1..=4u32 {
            let t = Topology::new(k).expect("topology");
            let mut seen = HashSet::new();
            for node in t.nodes().filter(|n| n.level >= 1) {
                assert!(
                    seen.insert(t.initial_worker(node)),
                    "duplicate initial id at {node} (k={k})"
                );
            }
        }
    }

    #[test]
    fn pools_disjoint_within_levels_one_through_k_and_cover_valid_ids() {
        for k in 2..=4u32 {
            let t = Topology::new(k).expect("topology");
            let mut claimed: HashSet<u64> = HashSet::new();
            for node in t.nodes().filter(|n| n.level >= 1) {
                for id in t.pool(node) {
                    assert!(id < t.processors(), "pool id {id} < n (k={k}, {node})");
                    assert!(claimed.insert(id), "pools overlap at id {id} (k={k}, {node})");
                }
            }
            // Levels 1..=k partition exactly k * k^k = n ids.
            assert_eq!(claimed.len() as u64, t.processors());
        }
    }

    #[test]
    fn root_pool_aliases_level_one_block() {
        let t = Topology::new(3).expect("k=3");
        let root_pool = t.pool(NodeRef::ROOT);
        assert_eq!(root_pool, 0..27, "root walks ids 0..k^k");
        assert_eq!(t.pool_size(0), 27);
        assert_eq!(t.pool_size(1), 9);
        assert_eq!(t.pool_size(3), 1, "level-k nodes never retire");
    }

    #[test]
    fn largest_identifier_is_below_n() {
        // The paper checks the largest id (parent of the rightmost leaf)
        // stays within 1..=n.
        for k in 1..=5u32 {
            let t = Topology::new(k).expect("topology");
            let rightmost = NodeRef { level: k, index: t.nodes_on_level(k) - 1 };
            let id = t.initial_worker(rightmost);
            assert!(
                (id.index() as u64) < t.processors(),
                "largest id {id} below n={} (k={k})",
                t.processors()
            );
        }
    }

    #[test]
    fn paths_through_counts_leaves_below() {
        let t = Topology::new(3).expect("k=3");
        assert_eq!(t.paths_through(NodeRef::ROOT), 81);
        assert_eq!(t.paths_through(NodeRef { level: 1, index: 0 }), 27);
        assert_eq!(t.paths_through(NodeRef { level: 3, index: 5 }), 3);
    }

    #[test]
    fn paper_id_example_matches_formula() {
        // One-based check of the formula (i-1)k^k + j·k^(k-i) + 1.
        let t = Topology::new(3).expect("k=3");
        let n110 = t.initial_worker(NodeRef { level: 1, index: 0 });
        assert_eq!(n110.display_one_based(), 1);
        let n21 = t.initial_worker(NodeRef { level: 2, index: 1 });
        // (2-1)*27 + 1*3 + 1 = 31
        assert_eq!(n21.display_one_based(), 31);
    }

    #[test]
    fn degenerate_order_one_tree() {
        let t = Topology::new(1).expect("k=1");
        assert_eq!(t.processors(), 1);
        assert_eq!(t.inner_node_count(), 2, "root + one level-1 node");
        assert_eq!(t.leaf_parent(0), NodeRef { level: 1, index: 0 });
        assert_eq!(t.pool_size(0), 1);
        assert_eq!(t.pool_size(1), 1);
    }

    #[test]
    fn render_mentions_every_level() {
        let t = Topology::new(2).expect("k=2");
        let s = t.render_ascii();
        for level in 0..=3 {
            assert!(s.contains(&format!("level {level}")), "level {level} in:\n{s}");
        }
    }

    #[test]
    fn node_display() {
        assert_eq!(NodeRef { level: 2, index: 7 }.to_string(), "N2.7");
        assert_eq!(NodeRef::ROOT.to_string(), "N0.0");
    }
}
