//! Executable lemma audits.
//!
//! The upper-bound section of the paper proves five lemmas about the
//! retirement tree. Each is a *checkable invariant* of a run, and the
//! auditor records exactly the quantities they bound:
//!
//! * **Retirement Lemma** — no node retires more than once during any
//!   single inc operation.
//! * **Grow Old Lemma** — an inner node that does not retire during an
//!   operation sends and receives at most 4 messages in it.
//! * **Number of Retirements Lemma** — a level-`i` node retires at most
//!   `pool_size(i) - 1` times over the whole sequence.
//! * **Inner Node Work Lemma** — O(k) messages per worker stint.
//! * **Leaf Node Work Lemma** — O(1) messages per leaf (verified from the
//!   global load tracker by the experiments).

use std::collections::HashMap;

use crate::topology::{NodeRef, Topology};

/// Counters and extrema collected while a [`TreeCounter`](crate::TreeCounter)
/// runs, sufficient to check every lemma of the paper's upper bound.
#[derive(Debug, Clone)]
pub struct CounterAudit {
    k: u32,
    retirements_by_node: Vec<u64>,
    retirements_by_level: Vec<u64>,
    pool_exhausted_by_level: Vec<u64>,
    shim_forwards: u64,
    recoveries_by_level: Vec<u64>,
    recovery_msgs: u64,
    stints_completed: u64,
    max_stint_msgs: u64,
    stint_msgs: Vec<u64>,
    msgs_by_kind: HashMap<&'static str, u64>,
    // Per-operation scratch, folded at `end_op`.
    op_msgs: HashMap<usize, u64>,
    op_retired: HashMap<usize, u64>,
    max_nonretiring_msgs_per_op: u64,
    max_retirements_per_node_per_op: u64,
    ops_seen: u64,
}

impl CounterAudit {
    /// Creates an auditor for a tree with the given topology.
    #[must_use]
    pub fn new(topo: &Topology) -> Self {
        let nodes = usize::try_from(topo.inner_node_count()).expect("node count fits usize");
        CounterAudit {
            k: topo.order(),
            retirements_by_node: vec![0; nodes],
            retirements_by_level: vec![0; topo.order() as usize + 1],
            pool_exhausted_by_level: vec![0; topo.order() as usize + 1],
            shim_forwards: 0,
            recoveries_by_level: vec![0; topo.order() as usize + 1],
            recovery_msgs: 0,
            stints_completed: 0,
            max_stint_msgs: 0,
            stint_msgs: vec![0; nodes],
            msgs_by_kind: HashMap::new(),
            op_msgs: HashMap::new(),
            op_retired: HashMap::new(),
            max_nonretiring_msgs_per_op: 0,
            max_retirements_per_node_per_op: 0,
            ops_seen: 0,
        }
    }

    /// Marks the start of an inc operation.
    pub fn begin_op(&mut self) {
        self.op_msgs.clear();
        self.op_retired.clear();
    }

    /// Folds the finished operation's per-node counts into the extrema.
    pub fn end_op(&mut self) {
        self.ops_seen += 1;
        for (&node, &msgs) in &self.op_msgs {
            if !self.op_retired.contains_key(&node) {
                self.max_nonretiring_msgs_per_op = self.max_nonretiring_msgs_per_op.max(msgs);
            }
        }
        for &times in self.op_retired.values() {
            self.max_retirements_per_node_per_op = self.max_retirements_per_node_per_op.max(times);
        }
    }

    /// Records `count` messages sent/received by the node with flat index
    /// `flat` (operational traffic contributing to its age).
    pub fn record_node_msgs(&mut self, flat: usize, count: u64) {
        *self.op_msgs.entry(flat).or_insert(0) += count;
        self.stint_msgs[flat] += count;
    }

    /// Records a message of the given protocol kind.
    pub fn record_kind(&mut self, kind: &'static str) {
        *self.msgs_by_kind.entry(kind).or_insert(0) += 1;
    }

    /// Records a retirement of `node` (flat index `flat`).
    pub fn record_retirement(&mut self, node: NodeRef, flat: usize) {
        self.retirements_by_node[flat] += 1;
        self.retirements_by_level[node.level as usize] += 1;
        *self.op_retired.entry(flat).or_insert(0) += 1;
    }

    /// Records that `node`'s age crossed the threshold but its pool had no
    /// replacement left (expected to never happen under the paper's
    /// dimensioning; counted per level so tests can assert that).
    pub fn record_pool_exhausted(&mut self, node: NodeRef) {
        self.pool_exhausted_by_level[node.level as usize] += 1;
    }

    /// Records a handoff completion: the stint of the predecessor worker
    /// ended. Folds its message count into the stint maximum.
    pub fn record_stint_complete(&mut self, flat: usize, handoff_parts: u64) {
        // The successor's k+1 received handoff parts belong to the new
        // stint's setup cost; charge them so the Inner Node Work Lemma
        // audit sees the full O(k) per stint.
        let msgs = self.stint_msgs[flat];
        self.max_stint_msgs = self.max_stint_msgs.max(msgs);
        self.stint_msgs[flat] = handoff_parts;
        self.stints_completed += 1;
    }

    /// Records a shim forward (message that reached a retired worker and
    /// was forwarded to the successor — the paper's "handshake" traffic).
    pub fn record_shim_forward(&mut self) {
        self.shim_forwards += 1;
    }

    /// Records a completed crash recovery of `node`: its pool successor
    /// finished rebuilding the state the dead worker never handed off.
    pub fn record_recovery(&mut self, node: NodeRef) {
        self.recoveries_by_level[node.level as usize] += 1;
    }

    /// Records `count` recovery protocol messages (promote / rebuild-query
    /// / rebuild-share traffic). Recovery messages do not age nodes —
    /// they are accounted here instead, as the explicit slack term of the
    /// fault-aware load bound (see [`CounterAudit::fault_slack`]).
    pub fn record_recovery_msgs(&mut self, count: u64) {
        self.recovery_msgs += count;
    }

    // --- lemma views -----------------------------------------------------

    /// Tree order `k`.
    #[must_use]
    pub fn order(&self) -> u32 {
        self.k
    }

    /// Operations audited so far.
    #[must_use]
    pub fn ops_seen(&self) -> u64 {
        self.ops_seen
    }

    /// Total retirements per level, root first.
    #[must_use]
    pub fn retirements_by_level(&self) -> &[u64] {
        &self.retirements_by_level
    }

    /// Retirements of the node with flat index `flat`.
    #[must_use]
    pub fn retirements_of(&self, flat: usize) -> u64 {
        self.retirements_by_node[flat]
    }

    /// Largest per-node retirement count on `level`, given the topology.
    #[must_use]
    pub fn max_retirements_on_level(&self, topo: &Topology, level: u32) -> u64 {
        topo.nodes()
            .filter(|n| n.level == level)
            .map(|n| self.retirements_by_node[topo.flat_index(n)])
            .max()
            .unwrap_or(0)
    }

    /// Pool-exhaustion events per level (all zero in a correct run).
    #[must_use]
    pub fn pool_exhausted_by_level(&self) -> &[u64] {
        &self.pool_exhausted_by_level
    }

    /// Total shim forwards.
    #[must_use]
    pub fn shim_forwards(&self) -> u64 {
        self.shim_forwards
    }

    /// Completed crash recoveries per level, root first.
    #[must_use]
    pub fn recoveries_by_level(&self) -> &[u64] {
        &self.recoveries_by_level
    }

    /// Total completed crash recoveries.
    #[must_use]
    pub fn recoveries(&self) -> u64 {
        self.recoveries_by_level.iter().sum()
    }

    /// Total recovery protocol messages (promotes, rebuild queries and
    /// rebuild shares).
    #[must_use]
    pub fn recovery_msgs(&self) -> u64 {
        self.recovery_msgs
    }

    /// The audit-observable slack of the fault-aware load bound.
    ///
    /// Under faults the paper's per-processor bound `c·k` holds up to
    /// explicit recovery overhead: every recovery protocol message, plus
    /// the `k + 1` new-worker notifications each completed recovery sends
    /// as ordinary (aging) traffic. The chaos harness adds the
    /// network-level terms the auditor cannot see — duplicate deliveries
    /// and watchdog retries — from the fault log; see `tests/chaos.rs`.
    #[must_use]
    pub fn fault_slack(&self) -> u64 {
        self.recovery_msgs + self.recoveries() * (u64::from(self.k) + 1)
    }

    /// Completed worker stints.
    #[must_use]
    pub fn stints_completed(&self) -> u64 {
        self.stints_completed
    }

    /// Largest number of operational messages in any completed stint.
    #[must_use]
    pub fn max_stint_msgs(&self) -> u64 {
        self.max_stint_msgs
    }

    /// Largest number of messages handled in one op by a node that did
    /// not retire during that op.
    #[must_use]
    pub fn max_nonretiring_msgs_per_op(&self) -> u64 {
        self.max_nonretiring_msgs_per_op
    }

    /// Largest number of times any node retired within one op.
    #[must_use]
    pub fn max_retirements_per_node_per_op(&self) -> u64 {
        self.max_retirements_per_node_per_op
    }

    /// Message counts by protocol kind.
    #[must_use]
    pub fn msgs_by_kind(&self) -> &HashMap<&'static str, u64> {
        &self.msgs_by_kind
    }

    /// Grow Old Lemma: every non-retiring node handled ≤ 4 messages per op.
    #[must_use]
    pub fn grow_old_lemma_holds(&self) -> bool {
        self.max_nonretiring_msgs_per_op <= 4
    }

    /// Retirement Lemma: no node retired twice within one op.
    #[must_use]
    pub fn retirement_lemma_holds(&self) -> bool {
        self.max_retirements_per_node_per_op <= 1
    }

    /// Number of Retirements Lemma: every level-`i` node retired at most
    /// `pool_size(i) - 1` times, and no pool was ever exhausted.
    #[must_use]
    pub fn retirement_counts_within_pools(&self, topo: &Topology) -> bool {
        self.pool_exhausted_by_level.iter().all(|&e| e == 0)
            && (0..=topo.order()).all(|level| {
                self.max_retirements_on_level(topo, level)
                    <= topo.pool_size(level).saturating_sub(1)
            })
    }

    /// Inner Node Work Lemma: every completed stint handled at most
    /// `bound` messages; the paper's bound is O(k), and `8k + 8` is a
    /// generous concrete constant the experiments check.
    #[must_use]
    pub fn stint_work_within(&self, bound: u64) -> bool {
        self.max_stint_msgs <= bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::new(2).expect("k=2")
    }

    #[test]
    fn fresh_audit_passes_all_lemmas() {
        let t = topo();
        let a = CounterAudit::new(&t);
        assert!(a.grow_old_lemma_holds());
        assert!(a.retirement_lemma_holds());
        assert!(a.retirement_counts_within_pools(&t));
        assert!(a.stint_work_within(0));
        assert_eq!(a.ops_seen(), 0);
        assert_eq!(a.order(), 2);
    }

    #[test]
    fn nonretiring_message_extremum() {
        let t = topo();
        let mut a = CounterAudit::new(&t);
        a.begin_op();
        a.record_node_msgs(0, 3);
        a.record_node_msgs(1, 5); // node 1 retires, so excluded
        a.record_retirement(t.node_at(1), 1);
        a.end_op();
        assert_eq!(a.max_nonretiring_msgs_per_op(), 3);
        assert!(a.grow_old_lemma_holds());
        a.begin_op();
        a.record_node_msgs(2, 6);
        a.end_op();
        assert_eq!(a.max_nonretiring_msgs_per_op(), 6);
        assert!(!a.grow_old_lemma_holds());
    }

    #[test]
    fn double_retirement_detected() {
        let t = topo();
        let mut a = CounterAudit::new(&t);
        a.begin_op();
        a.record_retirement(t.node_at(0), 0);
        a.end_op();
        assert!(a.retirement_lemma_holds());
        a.begin_op();
        a.record_retirement(t.node_at(0), 0);
        a.record_retirement(t.node_at(0), 0);
        a.end_op();
        assert!(!a.retirement_lemma_holds());
        assert_eq!(a.retirements_of(0), 3);
        assert_eq!(a.retirements_by_level()[0], 3);
    }

    #[test]
    fn stint_accounting_folds_on_completion() {
        let t = topo();
        let mut a = CounterAudit::new(&t);
        a.begin_op();
        a.record_node_msgs(0, 9);
        a.record_stint_complete(0, 3);
        a.end_op();
        assert_eq!(a.max_stint_msgs(), 9);
        assert_eq!(a.stints_completed(), 1);
        assert!(a.stint_work_within(9));
        assert!(!a.stint_work_within(8));
        // New stint starts charged with its handoff parts.
        a.begin_op();
        a.record_node_msgs(0, 1);
        a.record_stint_complete(0, 3);
        a.end_op();
        assert_eq!(a.max_stint_msgs(), 9);
    }

    #[test]
    fn pool_exhaustion_fails_retirement_count_check() {
        let t = topo();
        let mut a = CounterAudit::new(&t);
        assert!(a.retirement_counts_within_pools(&t));
        a.record_pool_exhausted(NodeRef { level: 2, index: 0 });
        assert!(!a.retirement_counts_within_pools(&t));
        assert_eq!(a.pool_exhausted_by_level(), &[0, 0, 1]);
    }

    #[test]
    fn retirement_level_maxima() {
        let t = topo();
        let mut a = CounterAudit::new(&t);
        let level1 = NodeRef { level: 1, index: 1 };
        let flat = t.flat_index(level1);
        a.begin_op();
        a.record_retirement(level1, flat);
        a.end_op();
        assert_eq!(a.max_retirements_on_level(&t, 1), 1);
        assert_eq!(a.max_retirements_on_level(&t, 0), 0);
        // k=2: level-1 pool has 2 ids -> at most 1 retirement. Still ok.
        assert!(a.retirement_counts_within_pools(&t));
    }

    #[test]
    fn recovery_counters_feed_the_fault_slack() {
        let t = topo();
        let mut a = CounterAudit::new(&t);
        assert_eq!(a.recoveries(), 0);
        assert_eq!(a.fault_slack(), 0);
        a.record_recovery_msgs(4); // promote + query + 2 shares
        a.record_recovery(t.node_at(1));
        assert_eq!(a.recoveries(), 1);
        assert_eq!(a.recoveries_by_level(), &[0, 1, 0]);
        assert_eq!(a.recovery_msgs(), 4);
        // k=2: slack = 4 recovery msgs + (k+1) notifications.
        assert_eq!(a.fault_slack(), 4 + 3);
        // Recoveries are not retirements: the paper lemmas stay clean.
        assert!(a.retirement_lemma_holds());
        assert!(a.retirement_counts_within_pools(&t));
    }

    #[test]
    fn kind_and_shim_counters() {
        let t = topo();
        let mut a = CounterAudit::new(&t);
        a.record_kind("inc");
        a.record_kind("inc");
        a.record_kind("value");
        a.record_shim_forward();
        assert_eq!(a.msgs_by_kind().get("inc"), Some(&2));
        assert_eq!(a.msgs_by_kind().get("value"), Some(&1));
        assert_eq!(a.shim_forwards(), 1);
    }
}
