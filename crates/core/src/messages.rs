//! Wire messages of the retirement-tree protocol.
//!
//! The protocol is generic over the [`RootObject`](crate::object::RootObject)
//! it transports: [`TreeMsg<R, S>`] carries requests `R` up the tree and
//! responses `S` straight back to initiators. The paper's counter is the
//! instance `R = ()`, `S = u64` ([`CounterMsg`]).
//!
//! The paper keeps "the length of messages as short as O(log n) bits" by
//! splitting a retirement handoff into k+1 unit messages (parent id plus
//! k child ids) rather than one big state dump; we model the same message
//! economy. [`TreeMsg::wire_size_bits`] estimates each message's encoded
//! size so tests can assert the O(log n) claim for small-state objects.

use distctr_sim::ProcessorId;

use crate::topology::NodeRef;

/// A message of the tree protocol carrying requests `R` and responses `S`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeMsg<R, S> {
    /// An operation request from `origin`, climbing the tree; addressed
    /// to the current worker of `node`.
    Apply {
        /// The tree node this hop targets.
        node: NodeRef,
        /// The processor that initiated the operation.
        origin: ProcessorId,
        /// The operation payload.
        req: R,
    },
    /// The operation's response, sent by the root's worker directly to
    /// the operation's initiator.
    Reply {
        /// The response payload.
        resp: S,
    },
    /// One unit of a retiring worker's state transfer to its successor.
    /// `part`/`total` sequence the k+1 units (one per neighbour id; the
    /// root's handoff additionally carries the object state).
    Handoff {
        /// The node whose worker is being replaced.
        node: NodeRef,
        /// Zero-based part number.
        part: u32,
        /// Total number of parts in this handoff.
        total: u32,
    },
    /// Notification to the worker of `node` that adjacent node `retired`
    /// now answers at `new_worker`.
    NewWorker {
        /// The neighbour being informed (whose worker receives this).
        node: NodeRef,
        /// The node whose worker changed.
        retired: NodeRef,
        /// The replacement processor.
        new_worker: ProcessorId,
    },
    /// Notification to a leaf processor that its parent node `retired`
    /// now answers at `new_worker`. Only reachable in ablation
    /// configurations (level-k nodes have singleton pools and never
    /// retire under the paper's scheme).
    NewWorkerLeaf {
        /// The node whose worker changed (the leaf's parent).
        retired: NodeRef,
        /// The replacement processor.
        new_worker: ProcessorId,
    },
    /// Recovery: the watchdog of `node`'s pool successor fired because the
    /// current worker is presumed crashed. Delivered to the successor
    /// itself (a self-message modelling its local timeout), this starts a
    /// *forced retirement*: the successor rebuilds the node's k+2-value
    /// state from its neighbours instead of receiving a handoff from the
    /// dead worker.
    RecoverPromote {
        /// The node whose worker crashed.
        node: NodeRef,
    },
    /// Recovery: the promoted `successor` asks a neighbour's worker to
    /// resend its share of `node`'s state (the neighbour's own id, plus —
    /// from the parent — the node's pool cursor).
    RebuildQuery {
        /// The node being rebuilt.
        node: NodeRef,
        /// Where to send the [`TreeMsg::RebuildShare`].
        successor: ProcessorId,
    },
    /// Recovery: one neighbour's unit share of `node`'s rebuilt state.
    /// Like handoff parts, each share is a unit message; the successor
    /// takes over once every neighbour has answered.
    RebuildShare {
        /// The node being rebuilt.
        node: NodeRef,
    },
}

/// The paper's counter instance of the protocol messages.
pub type CounterMsg = TreeMsg<(), u64>;

impl<R, S> TreeMsg<R, S> {
    /// A short tag for diagnostics and audits.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TreeMsg::Apply { .. } => "apply",
            TreeMsg::Reply { .. } => "reply",
            TreeMsg::Handoff { .. } => "handoff",
            TreeMsg::NewWorker { .. } => "new-worker",
            TreeMsg::NewWorkerLeaf { .. } => "new-worker-leaf",
            TreeMsg::RecoverPromote { .. } => "recover-promote",
            TreeMsg::RebuildQuery { .. } => "rebuild-query",
            TreeMsg::RebuildShare { .. } => "rebuild-share",
        }
    }

    /// Estimated encoded size in bits on a network of `n` processors with
    /// tree order `k`, given the payload sizes of the hosted object's
    /// request (`req_bits`) and response (`resp_bits`). Every other field
    /// is a processor id (`log2 n` bits), a node reference
    /// (`log2 k + log2 n` bits) or a small part counter. For the counter
    /// (`req_bits = 0`, `resp_bits ≈ log2 n`) this verifies the paper's
    /// O(log n) message-length claim.
    #[must_use]
    pub fn wire_size_bits(&self, n: u64, k: u32, req_bits: u32, resp_bits: u32) -> u32 {
        let id_bits = 64 - n.max(2).leading_zeros();
        let node_bits = (32 - k.max(2).leading_zeros()) + id_bits;
        let tag_bits = 3;
        tag_bits
            + match self {
                TreeMsg::Apply { .. } => node_bits + id_bits + req_bits,
                TreeMsg::Reply { .. } => resp_bits,
                TreeMsg::Handoff { .. } => node_bits + 2 * (32 - k.max(2).leading_zeros() + 2),
                TreeMsg::NewWorker { .. } => 2 * node_bits + id_bits,
                TreeMsg::NewWorkerLeaf { .. } => node_bits + id_bits,
                TreeMsg::RecoverPromote { .. } => node_bits,
                TreeMsg::RebuildQuery { .. } => node_bits + id_bits,
                TreeMsg::RebuildShare { .. } => node_bits,
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(level: u32, index: u64) -> NodeRef {
        NodeRef { level, index }
    }

    fn counter_bits(n: u64) -> u32 {
        64 - n.max(2).leading_zeros() + 1
    }

    #[test]
    fn kinds_are_distinct() {
        let msgs: [CounterMsg; 8] = [
            TreeMsg::Apply { node: node(1, 0), origin: ProcessorId::new(0), req: () },
            TreeMsg::Reply { resp: 1 },
            TreeMsg::Handoff { node: node(1, 0), part: 0, total: 4 },
            TreeMsg::NewWorker {
                node: node(0, 0),
                retired: node(1, 0),
                new_worker: ProcessorId::new(1),
            },
            TreeMsg::NewWorkerLeaf { retired: node(3, 0), new_worker: ProcessorId::new(1) },
            TreeMsg::RecoverPromote { node: node(1, 0) },
            TreeMsg::RebuildQuery { node: node(1, 0), successor: ProcessorId::new(2) },
            TreeMsg::RebuildShare { node: node(1, 0) },
        ];
        let kinds: std::collections::HashSet<_> = msgs.iter().map(TreeMsg::kind).collect();
        assert_eq!(kinds.len(), msgs.len());
    }

    #[test]
    fn wire_size_is_logarithmic_in_n_for_the_counter() {
        let m: CounterMsg = TreeMsg::NewWorker {
            node: node(2, 7),
            retired: node(3, 21),
            new_worker: ProcessorId::new(40),
        };
        let small = m.wire_size_bits(81, 3, 0, counter_bits(81));
        let big = m.wire_size_bits(279_936, 6, 0, counter_bits(279_936));
        assert!(small < big);
        // O(log n): even for the largest supported n, far below 4 * 64.
        assert!(big < 256, "message stays O(log n) bits: {big}");
        // Doubling n adds at most ~3 bits per id field.
        let n1 = m.wire_size_bits(1 << 20, 5, 0, counter_bits(1 << 20));
        let n2 = m.wire_size_bits(1 << 21, 5, 0, counter_bits(1 << 21));
        assert!(n2 - n1 <= 3 * 3);
    }

    #[test]
    fn all_variants_have_positive_size() {
        let msgs: [CounterMsg; 7] = [
            TreeMsg::Apply { node: node(1, 0), origin: ProcessorId::new(0), req: () },
            TreeMsg::Reply { resp: 1 },
            TreeMsg::Handoff { node: node(1, 0), part: 0, total: 4 },
            TreeMsg::NewWorkerLeaf { retired: node(3, 0), new_worker: ProcessorId::new(1) },
            TreeMsg::RecoverPromote { node: node(1, 0) },
            TreeMsg::RebuildQuery { node: node(1, 0), successor: ProcessorId::new(2) },
            TreeMsg::RebuildShare { node: node(1, 0) },
        ];
        for m in msgs {
            assert!(m.wire_size_bits(1024, 4, 0, 11) > 0, "{}", m.kind());
        }
    }

    #[test]
    fn request_payload_contributes_to_apply_size() {
        // A priority-queue insert carries a 64-bit key.
        let m: TreeMsg<u64, u64> =
            TreeMsg::Apply { node: node(1, 0), origin: ProcessorId::new(0), req: 9 };
        let plain = m.wire_size_bits(1024, 4, 0, 11);
        let keyed = m.wire_size_bits(1024, 4, 64, 11);
        assert_eq!(keyed - plain, 64);
    }
}
