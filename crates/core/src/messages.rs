//! Wire messages of the retirement-tree protocol — the **one** message
//! vocabulary shared by every backend.
//!
//! The protocol is generic over the [`RootObject`](crate::object::RootObject)
//! it transports: [`Msg<O>`] carries requests `O::Request` up the tree
//! and responses `O::Response` straight back to initiators. The paper's
//! counter is the instance `O = CounterObject` ([`CounterMsg`]). The
//! simulator, the threaded backend and the TCP service all exchange
//! exactly these messages; the sans-io engine
//! ([`NodeEngine`](crate::engine::NodeEngine)) is their single producer
//! and consumer, so the backends cannot drift apart.
//!
//! The paper keeps "the length of messages as short as O(log n) bits" by
//! splitting a retirement handoff into k+1 unit messages rather than one
//! big state dump; we model the same message economy with k load-only
//! [`Msg::HandoffPart`]s plus one [`Msg::HandoffFinal`] carrying the
//! k+2-value state (O(k log n) bits — the aggregate of the paper's unit
//! parts). [`Msg::wire_size_bits`] estimates each message's encoded size
//! so tests can assert the O(log n) claim for small-state objects.

use distctr_sim::ProcessorId;

use crate::object::{CounterObject, RootObject};
use crate::topology::NodeRef;

/// The k+2 values that migrate with a retiring (or rebuilt) node's job:
/// its place in the replacement pool, the workers of its parent and
/// children, and — at the root — the hosted object with its reply cache.
#[derive(Debug, Clone)]
pub struct NodeTransfer<O: RootObject> {
    /// The node changing hands.
    pub node: NodeRef,
    /// Retirements so far (the pool cursor of the *successor*).
    pub pool_cursor: u64,
    /// Current worker of the parent node (None at the root).
    pub parent_worker: Option<ProcessorId>,
    /// Current workers of the inner-node children (empty on level k).
    pub child_workers: Vec<ProcessorId>,
    /// The hosted object state (Some at the root only).
    pub object: Option<O>,
    /// Recent `(op_seq, response)` pairs already answered by the root,
    /// migrating with the object so retries stay exactly-once across
    /// retirements (root only; empty elsewhere).
    pub reply_cache: Vec<(u64, O::Response)>,
}

/// A message of the tree protocol, generic over the hosted
/// [`RootObject`].
#[derive(Debug, Clone)]
pub enum Msg<O: RootObject> {
    /// An operation request from `origin`, climbing the tree; addressed
    /// to the current worker of `node`.
    Apply {
        /// The tree node this hop targets.
        node: NodeRef,
        /// The processor that initiated the operation (reply address).
        origin: ProcessorId,
        /// Driver-assigned operation sequence number; the root's reply
        /// cache deduplicates retries by it.
        op_seq: u64,
        /// The operation payload.
        req: O::Request,
    },
    /// A *batch* of `count` identical operation requests from `origin`,
    /// climbing the tree as **one** message; addressed to the current
    /// worker of `node`. The root applies the whole batch atomically
    /// ([`RootObject::apply_batch`](crate::object::RootObject::apply_batch))
    /// and answers with a single [`Msg::Reply`] carrying the first
    /// response — for the counter, the start `v` of the contiguous range
    /// `[v, v + count)` the batch owns. Each tree node ages by the same
    /// constant as for a unit `Apply`: the batch costs one traversal, so
    /// the per-inc message load is amortized to O(k / count).
    BatchApply {
        /// The tree node this hop targets.
        node: NodeRef,
        /// The processor that initiated the batch (reply address).
        origin: ProcessorId,
        /// Driver-assigned sequence number for the whole batch; a retry
        /// repeats the same `op_seq` *and* the same `count`, so the
        /// root's reply cache deduplicates batches unchanged.
        op_seq: u64,
        /// Number of operations combined into this traversal (≥ 1).
        count: u64,
        /// The operation payload, shared by every member of the batch.
        req: O::Request,
    },
    /// The operation's response, sent by the root's worker directly to
    /// the operation's initiator.
    Reply {
        /// Operation sequence number (matches the `Apply`).
        op_seq: u64,
        /// The response payload.
        resp: O::Response,
    },
    /// One unit of a retiring worker's state transfer to its successor
    /// (parts `0..total-1`; pure load, the final part installs).
    HandoffPart {
        /// The node whose worker is being replaced.
        node: NodeRef,
        /// Zero-based part number.
        part: u32,
        /// Total number of messages in this handoff (k+1).
        total: u32,
    },
    /// The final handoff message, carrying the migrating state.
    HandoffFinal {
        /// The transferred node state.
        transfer: Box<NodeTransfer<O>>,
    },
    /// Notification to the worker of `node` that adjacent node `retired`
    /// now answers at `new_worker`.
    NewWorker {
        /// The neighbour being informed (whose worker receives this).
        node: NodeRef,
        /// The node whose worker changed.
        retired: NodeRef,
        /// The replacement processor.
        new_worker: ProcessorId,
    },
    /// Notification to a leaf processor that its parent node `retired`
    /// now answers at `new_worker`. Only reachable in ablation
    /// configurations (level-k nodes have singleton pools and never
    /// retire under the paper's scheme).
    NewWorkerLeaf {
        /// The node whose worker changed (the leaf's parent).
        retired: NodeRef,
        /// The replacement processor.
        new_worker: ProcessorId,
    },
    /// Recovery: the watchdog of `node`'s pool successor fired because the
    /// current worker is presumed crashed (or a handoff's state-bearing
    /// final was lost). Delivered to the successor itself (a self-message
    /// modelling its local timeout), this starts a *forced retirement*:
    /// the successor rebuilds the node's k+2-value state from its
    /// neighbours instead of receiving a handoff from the dead worker.
    RecoverPromote {
        /// The node whose worker crashed.
        node: NodeRef,
        /// The node's neighbours with the worker each is currently
        /// reachable at (supplied by the watchdog, which reads the
        /// registry at quiescence — the successor's own routing view
        /// died with the old worker).
        neighbours: Vec<(NodeRef, ProcessorId)>,
    },
    /// Recovery: the promoted `successor` asks `neighbour`'s worker to
    /// resend its share of `node`'s state (the neighbour's own identity
    /// and current worker).
    RebuildQuery {
        /// The node being rebuilt.
        node: NodeRef,
        /// The neighbour whose share is requested.
        neighbour: NodeRef,
        /// Where to send the [`Msg::RebuildShare`].
        successor: ProcessorId,
    },
    /// Recovery: one neighbour's unit share of `node`'s rebuilt state.
    /// Like handoff parts, each share is a unit message; the successor
    /// takes over once every distinct neighbour has answered.
    RebuildShare {
        /// The node being rebuilt.
        node: NodeRef,
        /// The neighbour this share speaks for.
        neighbour: NodeRef,
        /// The processor currently answering for `neighbour`.
        worker: ProcessorId,
    },
}

/// The paper's counter instance of the protocol messages.
pub type CounterMsg = Msg<CounterObject>;

impl<O: RootObject> Msg<O> {
    /// A short tag for diagnostics and audits.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::Apply { .. } => "apply",
            Msg::BatchApply { .. } => "batch-apply",
            Msg::Reply { .. } => "reply",
            Msg::HandoffPart { .. } => "handoff",
            Msg::HandoffFinal { .. } => "handoff-final",
            Msg::NewWorker { .. } => "new-worker",
            Msg::NewWorkerLeaf { .. } => "new-worker-leaf",
            Msg::RecoverPromote { .. } => "recover-promote",
            Msg::RebuildQuery { .. } => "rebuild-query",
            Msg::RebuildShare { .. } => "rebuild-share",
        }
    }

    /// Estimated encoded size in bits on a network of `n` processors with
    /// tree order `k`, given the payload sizes of the hosted object's
    /// request (`req_bits`) and response (`resp_bits`). Every other field
    /// is a processor id or op sequence (`log2 n` bits), a node reference
    /// (`log2 k + log2 n` bits) or a small part counter. For the counter
    /// (`req_bits = 0`, `resp_bits ≈ log2 n`) this verifies the paper's
    /// O(log n) message-length claim for every unit message; the
    /// state-bearing [`Msg::HandoffFinal`] aggregates the k+2 values the
    /// paper would split into unit parts, so it alone is O(k log n).
    #[must_use]
    pub fn wire_size_bits(&self, n: u64, k: u32, req_bits: u32, resp_bits: u32) -> u32 {
        let id_bits = 64 - n.max(2).leading_zeros();
        let node_bits = (32 - k.max(2).leading_zeros()) + id_bits;
        let tag_bits = 4;
        tag_bits
            + match self {
                Msg::Apply { .. } => node_bits + 2 * id_bits + req_bits,
                // The count rides in the op-sequence width: a batch of m
                // from a driver is bounded by the op space, so it costs
                // one more id-sized field — still O(log n).
                Msg::BatchApply { .. } => node_bits + 3 * id_bits + req_bits,
                Msg::Reply { .. } => id_bits + resp_bits,
                // Part counters are bounded by MAX_ORDER + 1, so a fixed
                // byte each suffices regardless of k.
                Msg::HandoffPart { .. } => node_bits + 2 * 8,
                Msg::HandoffFinal { .. } => node_bits + (k + 2) * id_bits + resp_bits,
                Msg::NewWorker { .. } => 2 * node_bits + id_bits,
                Msg::NewWorkerLeaf { .. } => node_bits + id_bits,
                Msg::RecoverPromote { neighbours, .. } => {
                    node_bits + (neighbours.len() as u32) * (node_bits + id_bits)
                }
                Msg::RebuildQuery { .. } => 2 * node_bits + id_bits,
                Msg::RebuildShare { .. } => 2 * node_bits + id_bits,
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(level: u32, index: u64) -> NodeRef {
        NodeRef { level, index }
    }

    fn counter_bits(n: u64) -> u32 {
        64 - n.max(2).leading_zeros() + 1
    }

    fn transfer() -> Box<NodeTransfer<CounterObject>> {
        Box::new(NodeTransfer {
            node: node(1, 0),
            pool_cursor: 1,
            parent_worker: Some(ProcessorId::new(0)),
            child_workers: vec![ProcessorId::new(2), ProcessorId::new(4)],
            object: None,
            reply_cache: Vec::new(),
        })
    }

    fn all_variants() -> Vec<CounterMsg> {
        vec![
            Msg::Apply { node: node(1, 0), origin: ProcessorId::new(0), op_seq: 0, req: () },
            Msg::BatchApply {
                node: node(1, 0),
                origin: ProcessorId::new(0),
                op_seq: 0,
                count: 4,
                req: (),
            },
            Msg::Reply { op_seq: 0, resp: 1 },
            Msg::HandoffPart { node: node(1, 0), part: 0, total: 4 },
            Msg::HandoffFinal { transfer: transfer() },
            Msg::NewWorker {
                node: node(0, 0),
                retired: node(1, 0),
                new_worker: ProcessorId::new(1),
            },
            Msg::NewWorkerLeaf { retired: node(3, 0), new_worker: ProcessorId::new(1) },
            Msg::RecoverPromote {
                node: node(1, 0),
                neighbours: vec![(node(0, 0), ProcessorId::new(0))],
            },
            Msg::RebuildQuery {
                node: node(1, 0),
                neighbour: node(0, 0),
                successor: ProcessorId::new(2),
            },
            Msg::RebuildShare {
                node: node(1, 0),
                neighbour: node(0, 0),
                worker: ProcessorId::new(0),
            },
        ]
    }

    #[test]
    fn kinds_are_distinct() {
        let msgs = all_variants();
        let kinds: std::collections::HashSet<_> = msgs.iter().map(Msg::kind).collect();
        assert_eq!(kinds.len(), msgs.len());
    }

    #[test]
    fn wire_size_is_logarithmic_in_n_for_the_counter() {
        let m: CounterMsg = Msg::NewWorker {
            node: node(2, 7),
            retired: node(3, 21),
            new_worker: ProcessorId::new(40),
        };
        let small = m.wire_size_bits(81, 3, 0, counter_bits(81));
        let big = m.wire_size_bits(279_936, 6, 0, counter_bits(279_936));
        assert!(small < big);
        // O(log n): even for the largest supported n, far below 4 * 64.
        assert!(big < 256, "message stays O(log n) bits: {big}");
        // Doubling n adds at most ~3 bits per id field.
        let n1 = m.wire_size_bits(1 << 20, 5, 0, counter_bits(1 << 20));
        let n2 = m.wire_size_bits(1 << 21, 5, 0, counter_bits(1 << 21));
        assert!(n2 - n1 <= 3 * 3);
    }

    #[test]
    fn all_variants_have_positive_size() {
        for m in all_variants() {
            assert!(m.wire_size_bits(1024, 4, 0, 11) > 0, "{}", m.kind());
        }
    }

    #[test]
    fn request_payload_contributes_to_apply_size() {
        // A priority-queue insert carries a 64-bit key.
        let m: Msg<crate::object::MaxRegisterObject> =
            Msg::Apply { node: node(1, 0), origin: ProcessorId::new(0), op_seq: 0, req: 9 };
        let plain = m.wire_size_bits(1024, 4, 0, 11);
        let keyed = m.wire_size_bits(1024, 4, 64, 11);
        assert_eq!(keyed - plain, 64);
    }

    #[test]
    fn only_the_final_handoff_message_scales_with_k() {
        let part: CounterMsg = Msg::HandoffPart { node: node(1, 0), part: 0, total: 4 };
        let fin: CounterMsg = Msg::HandoffFinal { transfer: transfer() };
        let part_growth = part.wire_size_bits(1024, 9, 0, 11) - part.wire_size_bits(1024, 2, 0, 11);
        let fin_growth = fin.wire_size_bits(1024, 9, 0, 11) - fin.wire_size_bits(1024, 2, 0, 11);
        assert!(part_growth <= 4, "unit parts stay O(log n): {part_growth}");
        assert!(fin_growth >= 7 * 11, "the final aggregates k+2 ids: {fin_growth}");
    }

    #[test]
    fn transfer_round_trips_through_clone() {
        let t = transfer();
        let c = t.clone();
        assert_eq!(c.pool_cursor, 1);
        assert_eq!(c.node, t.node);
    }
}
