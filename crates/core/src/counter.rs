//! The public distributed counter: the paper's matching upper bound.
//!
//! A [`TreeCounter`] is the counter instance of the generic
//! [`TreeClient`] and exposes the paper's
//! `inc` operation. Every processor's total message load over the
//! canonical workload (each processor increments exactly once) is O(k),
//! where `n = k^(k+1)` — the Bottleneck Theorem, which the audits and
//! experiments verify on real runs.

use distctr_sim::{
    Counter, DeliveryPolicy, FaultEvent, FaultPlan, FaultStats, IncResult, LoadTracker,
    ProcessorId, SimError, TraceMode,
};

use crate::audit::CounterAudit;
use crate::client::{TreeClient, TreeClientBuilder};
use crate::error::CoreError;
use crate::kmath::{leaves_of_order, MAX_ORDER};
use crate::object::CounterObject;
use crate::protocol::{PoolPolicy, RetirementPolicy};
use crate::topology::{NodeRef, Topology};

/// Builder for [`TreeCounter`] with non-default delivery policy, trace
/// mode or retirement policy.
///
/// # Examples
///
/// ```
/// use distctr_core::{TreeCounter, RetirementPolicy};
/// use distctr_sim::{DeliveryPolicy, TraceMode};
///
/// # fn main() -> Result<(), distctr_core::CoreError> {
/// let counter = TreeCounter::builder(81)?
///     .delivery(DeliveryPolicy::random_delay(7, 4))
///     .trace(TraceMode::Full)
///     .retirement(RetirementPolicy::PaperDefault)
///     .build()?;
/// assert_eq!(counter.order(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TreeCounterBuilder {
    inner: TreeClientBuilder<CounterObject>,
}

impl TreeCounterBuilder {
    /// Sets the trace mode (default: [`TraceMode::Contacts`]).
    #[must_use]
    pub fn trace(mut self, trace: TraceMode) -> Self {
        self.inner = self.inner.trace(trace);
        self
    }

    /// Sets the delivery policy (default: FIFO).
    #[must_use]
    pub fn delivery(mut self, policy: DeliveryPolicy) -> Self {
        self.inner = self.inner.delivery(policy);
        self
    }

    /// Sets the retirement policy (default: the paper's `4k` threshold).
    #[must_use]
    pub fn retirement(mut self, retirement: RetirementPolicy) -> Self {
        self.inner = self.inner.retirement(retirement);
        self
    }

    /// Sets the pool policy (default: the paper's one-shot pools).
    #[must_use]
    pub fn pool(mut self, pool: PoolPolicy) -> Self {
        self.inner = self.inner.pool(pool);
        self
    }

    /// Injects faults from `plan` and arms crash recovery; drive the
    /// counter with [`TreeCounter::inc_fault_tolerant`].
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.inner = self.inner.faults(plan);
        self
    }

    /// Builds the counter.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the topology or network cannot be built.
    pub fn build(self) -> Result<TreeCounter, CoreError> {
        Ok(TreeCounter { client: self.inner.build()? })
    }
}

/// The retirement-based k-ary communication-tree counter.
///
/// # Examples
///
/// ```
/// use distctr_core::TreeCounter;
/// use distctr_sim::{Counter, ProcessorId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // 81 = 3^4 processors, tree order k = 3.
/// let mut counter = TreeCounter::new(81)?;
/// let first = counter.inc(ProcessorId::new(17))?;
/// let second = counter.inc(ProcessorId::new(63))?;
/// assert_eq!(first.value, 0);
/// assert_eq!(second.value, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TreeCounter {
    client: TreeClient<CounterObject>,
}

impl TreeCounter {
    /// Creates a counter for at least `n` processors, rounding `n` up to
    /// the next value of the form `k^(k+1)` exactly as the paper suggests.
    /// [`Counter::processors`] reports the rounded size.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Order`] if `n` is 0 or beyond the largest
    /// supported network.
    pub fn new(n: usize) -> Result<Self, CoreError> {
        Self::builder(n)?.build()
    }

    /// Creates a counter for an exact tree order `k` (n = k^(k+1)).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Order`] if `k` is 0 or above [`MAX_ORDER`].
    pub fn with_order(k: u32) -> Result<Self, CoreError> {
        if k == 0 || k > MAX_ORDER {
            return Err(CoreError::Order(format!("order k={k} outside 1..={MAX_ORDER}")));
        }
        Self::new(usize::try_from(leaves_of_order(k)).expect("supported orders fit usize"))
    }

    /// Starts a builder for a counter of at least `n` processors.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Order`] if `n` is 0 or too large.
    pub fn builder(n: usize) -> Result<TreeCounterBuilder, CoreError> {
        Ok(TreeCounterBuilder { inner: TreeClient::builder(n, CounterObject::new())? })
    }

    /// The tree order `k`.
    #[must_use]
    pub fn order(&self) -> u32 {
        self.client.order()
    }

    /// The tree topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        self.client.topology()
    }

    /// The lemma auditor's view of the run so far.
    #[must_use]
    pub fn audit(&self) -> &CounterAudit {
        self.client.audit()
    }

    /// The counter's current value (stored at the root).
    #[must_use]
    pub fn value(&self) -> u64 {
        self.client.object().value()
    }

    /// The processor currently working for `node`.
    #[must_use]
    pub fn worker_of(&self, node: NodeRef) -> ProcessorId {
        self.client.worker_of(node)
    }

    /// Number of operations executed.
    #[must_use]
    pub fn ops_executed(&self) -> usize {
        self.client.ops_executed()
    }

    /// Per-processor engine fingerprints, in processor order (see
    /// [`TreeClient::engine_fingerprints`]).
    #[must_use]
    pub fn engine_fingerprints(&self) -> Vec<u64> {
        self.client.engine_fingerprints()
    }

    /// One `inc` on a faulty network: quiescing without a response
    /// triggers the recovery watchdog (crashed workers are replaced by
    /// their pool successors, the operation is retried exactly-once) —
    /// see [`TreeClient::invoke_fault_tolerant`].
    ///
    /// # Errors
    ///
    /// See [`TreeClient::invoke_fault_tolerant`].
    pub fn inc_fault_tolerant(&mut self, initiator: ProcessorId) -> Result<IncResult, CoreError> {
        let result = self.client.invoke_fault_tolerant(initiator, ())?;
        Ok(IncResult {
            value: result.response,
            messages: result.messages,
            completed_at: result.completed_at,
            trace: result.trace,
        })
    }

    /// A batch of `count` incs sharing one tree traversal
    /// ([`Msg::BatchApply`](crate::messages::Msg::BatchApply)): the
    /// returned value is the start of the contiguous range
    /// `[value, value + count)` the batch owns. One message of protocol
    /// load regardless of `count` — see [`TreeClient::invoke_batch`].
    ///
    /// # Errors
    ///
    /// See [`TreeClient::invoke`].
    pub fn inc_batch(&mut self, initiator: ProcessorId, count: u64) -> Result<IncResult, SimError> {
        let result = self.client.invoke_batch(initiator, count, ())?;
        Ok(IncResult {
            value: result.response,
            messages: result.messages,
            completed_at: result.completed_at,
            trace: result.trace,
        })
    }

    /// [`TreeCounter::inc_batch`] with the recovery watchdog of
    /// [`TreeCounter::inc_fault_tolerant`]: retries repeat the same
    /// sequence number and count, so the range stays exactly-once.
    ///
    /// # Errors
    ///
    /// See [`TreeClient::invoke_fault_tolerant`].
    pub fn inc_batch_fault_tolerant(
        &mut self,
        initiator: ProcessorId,
        count: u64,
    ) -> Result<IncResult, CoreError> {
        let result = self.client.invoke_batch_fault_tolerant(initiator, count, ())?;
        Ok(IncResult {
            value: result.response,
            messages: result.messages,
            completed_at: result.completed_at,
            trace: result.trace,
        })
    }

    /// Crashes processor `p` immediately (test hook) and arms recovery.
    pub fn crash(&mut self, p: ProcessorId) {
        self.client.crash(p);
    }

    /// The fault plan driving the network, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.client.fault_plan()
    }

    /// Every fault the network injected so far, in order.
    #[must_use]
    pub fn fault_log(&self) -> &[FaultEvent] {
        self.client.fault_log()
    }

    /// Summary counts of injected faults.
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        self.client.fault_stats()
    }

    /// Processors currently down.
    #[must_use]
    pub fn crashed_processors(&self) -> Vec<ProcessorId> {
        self.client.crashed_processors()
    }

    /// Times the recovery watchdog re-ran an operation.
    #[must_use]
    pub fn watchdog_retries(&self) -> u64 {
        self.client.watchdog_retries()
    }
}

impl Counter for TreeCounter {
    fn name(&self) -> &'static str {
        if self.client.retirement_enabled() {
            "retirement-tree"
        } else {
            "static-tree"
        }
    }

    fn processors(&self) -> usize {
        self.client.processors()
    }

    fn inc(&mut self, initiator: ProcessorId) -> Result<IncResult, SimError> {
        let result = self.client.invoke(initiator, ())?;
        Ok(IncResult {
            value: result.response,
            messages: result.messages,
            completed_at: result.completed_at,
            trace: result.trace,
        })
    }

    fn loads(&self) -> &LoadTracker {
        self.client.loads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distctr_sim::SequentialDriver;

    #[test]
    fn rounding_rule_matches_paper() {
        let c = TreeCounter::new(50).expect("n=50 rounds to 81");
        assert_eq!(c.order(), 3);
        assert_eq!(c.processors(), 81);
        let c = TreeCounter::new(81).expect("exact");
        assert_eq!(c.processors(), 81);
        let c = TreeCounter::new(82).expect("rounds to 1024");
        assert_eq!(c.order(), 4);
    }

    #[test]
    fn construction_errors() {
        assert!(matches!(TreeCounter::new(0), Err(CoreError::Order(_))));
        assert!(matches!(TreeCounter::with_order(0), Err(CoreError::Order(_))));
        assert!(matches!(TreeCounter::with_order(MAX_ORDER + 1), Err(CoreError::Order(_))));
    }

    #[test]
    fn single_inc_returns_zero_and_increments() {
        let mut c = TreeCounter::with_order(2).expect("k=2");
        let r = c.inc(ProcessorId::new(5)).expect("inc");
        assert_eq!(r.value, 0);
        assert_eq!(c.value(), 1);
        assert!(r.messages >= 4, "leaf->L2->L1->root->leaf takes at least 4 messages");
        let trace = r.trace.expect("contacts traced by default");
        assert!(trace.contacts.contains(ProcessorId::new(5)));
    }

    #[test]
    fn values_are_sequential_for_identity_permutation() {
        let mut c = TreeCounter::with_order(2).expect("k=2");
        let out = SequentialDriver::run_identity(&mut c).expect("sequence");
        assert!(out.values_are_sequential());
        assert_eq!(c.value(), 8);
        assert_eq!(c.ops_executed(), 8);
    }

    #[test]
    fn unknown_initiator_rejected() {
        let mut c = TreeCounter::with_order(2).expect("k=2");
        let err = c.inc(ProcessorId::new(99)).unwrap_err();
        assert_eq!(err, SimError::UnknownProcessor { index: 99, processors: 8 });
    }

    #[test]
    fn name_reflects_retirement_policy() {
        let c = TreeCounter::with_order(2).expect("k=2");
        assert_eq!(c.name(), "retirement-tree");
        let s = TreeCounter::builder(8)
            .expect("builder")
            .retirement(RetirementPolicy::Never)
            .build()
            .expect("static");
        assert_eq!(s.name(), "static-tree");
    }

    #[test]
    fn all_lemmas_hold_on_canonical_workload_k3() {
        let mut c = TreeCounter::with_order(3).expect("k=3");
        let out = SequentialDriver::run_shuffled(&mut c, 42).expect("sequence");
        assert!(out.values_are_sequential());
        let audit = c.audit();
        assert!(audit.grow_old_lemma_holds(), "Grow Old Lemma");
        assert!(audit.retirement_lemma_holds(), "Retirement Lemma");
        assert!(
            audit.retirement_counts_within_pools(c.topology()),
            "Number of Retirements Lemma; per-level: {:?}, exhausted: {:?}",
            audit.retirements_by_level(),
            audit.pool_exhausted_by_level()
        );
        let k = c.order() as u64;
        assert!(
            audit.stint_work_within(8 * k + 8),
            "Inner Node Work Lemma: max stint {} vs 8k+8 = {}",
            audit.max_stint_msgs(),
            8 * k + 8
        );
    }

    #[test]
    fn bottleneck_is_big_o_of_k_not_n() {
        // The headline: the max per-processor load is O(k). The constant
        // is sizeable (a processor can serve the root once and one other
        // inner node once, each stint costing ~6k messages), so we check
        // against 20k — and against n once n is large enough for the
        // asymptotics to separate.
        for k in [3u32, 4] {
            let mut c = TreeCounter::with_order(k).expect("tree");
            SequentialDriver::run_identity(&mut c).expect("sequence");
            let bottleneck = c.loads().max_load();
            let n = c.processors() as u64;
            assert!(
                bottleneck <= 20 * u64::from(k),
                "k={k}: bottleneck {bottleneck} exceeds 20k = {}",
                20 * k
            );
            if k >= 4 {
                assert!(
                    bottleneck < n / 4,
                    "k={k}: bottleneck {bottleneck} should be far below n = {n}"
                );
            }
        }
    }

    #[test]
    fn static_tree_root_is_bottlenecked() {
        let mut s = TreeCounter::builder(8)
            .expect("builder")
            .retirement(RetirementPolicy::Never)
            .build()
            .expect("static");
        SequentialDriver::run_identity(&mut s).expect("sequence");
        // Root worker receives every inc and sends every value: load 2n at
        // the root's processor (plus its own leaf traffic).
        assert!(s.loads().max_load() >= 2 * 8);
        assert_eq!(s.audit().stints_completed(), 0, "no retirement ever");
    }

    #[test]
    fn crash_recovery_promotes_the_pool_successor() {
        let mut c = TreeCounter::with_order(3).expect("k=3");
        let root = NodeRef::ROOT;
        let old_worker = c.worker_of(root);
        c.crash(old_worker);
        // Initiator 80 is far from the root's pool; its first attempt
        // dead-letters at the root, the watchdog promotes the pool
        // successor, and the retry goes through.
        let r = c.inc_fault_tolerant(ProcessorId::new(80)).expect("recovered inc");
        assert_eq!(r.value, 0);
        assert_eq!(c.value(), 1);
        assert_ne!(c.worker_of(root), old_worker, "successor installed");
        // Pools overlap along root paths, so P0's crash takes out the
        // root and the level-1 node it also served — both recover.
        assert!(c.audit().recoveries() >= 1);
        assert_eq!(c.audit().recoveries_by_level()[0], 1);
        assert!(c.watchdog_retries() >= 1);
        assert!(c.audit().recovery_msgs() >= 1 + 3 + 3, "promote + k queries + k shares");
        // Later operations run normally on the recovered tree.
        let r = c.inc_fault_tolerant(ProcessorId::new(7)).expect("second inc");
        assert_eq!(r.value, 1);
    }

    #[test]
    fn duplicated_applies_stay_exactly_once() {
        // Every message duplicated: without the root's reply cache the
        // counter would double-count.
        let mut c = TreeCounter::builder(8)
            .expect("builder")
            .faults(FaultPlan::new(7).dup_prob(1.0))
            .build()
            .expect("counter");
        for i in 0..4usize {
            let r = c.inc_fault_tolerant(ProcessorId::new(i)).expect("inc");
            assert_eq!(r.value, i as u64, "values stay sequential under duplication");
        }
        assert_eq!(c.value(), 4);
        assert!(c.fault_stats().dups > 0, "duplication actually happened");
    }

    #[test]
    fn crashing_a_singleton_pool_on_the_path_is_unrecoverable() {
        let mut c = TreeCounter::with_order(3).expect("k=3");
        // Processor 54 is the lone pool member of level-3 node (3, 0),
        // serving leaves 0..2.
        let leaf_parent = c.topology().leaf_parent(0);
        let worker = c.worker_of(leaf_parent);
        c.crash(worker);
        let err = c.inc_fault_tolerant(ProcessorId::new(0)).unwrap_err();
        assert!(matches!(err, CoreError::Unrecoverable(_)), "{err}");
        // Leaves under a different level-3 node are unaffected.
        let r = c.inc_fault_tolerant(ProcessorId::new(40)).expect("other subtree");
        assert_eq!(r.value, 0);
    }

    #[test]
    fn crashed_initiator_is_rejected() {
        let mut c = TreeCounter::with_order(2).expect("k=2");
        c.crash(ProcessorId::new(5));
        let err = c.inc_fault_tolerant(ProcessorId::new(5)).unwrap_err();
        assert!(matches!(err, CoreError::Unrecoverable(_)), "{err}");
    }

    #[test]
    fn clone_forks_full_counter_state() {
        let mut c = TreeCounter::with_order(2).expect("k=2");
        c.inc(ProcessorId::new(0)).expect("inc");
        let mut fork = c.clone();
        let a = c.inc(ProcessorId::new(1)).expect("inc");
        let b = fork.inc(ProcessorId::new(1)).expect("inc");
        assert_eq!(a.value, b.value, "fork replays identically");
        assert_eq!(a.messages, b.messages);
    }
}
