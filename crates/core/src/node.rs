//! Per-node runtime state.
//!
//! "Each inner node stores k+2 values: an identifier id that tells which
//! processor currently works for the node, the identifiers of its k
//! children and its parent, and the number of messages that the node sent
//! or received since its current processor works for it — its age."
//!
//! In the simulator the neighbour ids are derivable from the
//! [`Topology`](crate::topology::Topology) plus each neighbour's current
//! worker, so the state here is the worker, the pool cursor, the age and
//! the in-progress handoff bookkeeping. The hosted object's state (the
//! counter value at the root) lives in the protocol's
//! [`RootObject`](crate::object::RootObject).

use distctr_sim::ProcessorId;

/// Mutable state of one inner tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeState {
    /// The processor currently working for this node.
    pub worker: ProcessorId,
    /// How many retirements have happened (worker = pool start + cursor).
    pub pool_cursor: u64,
    /// Messages sent or received by the node in the current stint.
    pub age: u64,
    /// Whether a handoff to a successor is in flight.
    pub handing_off: bool,
    /// The successor that will take over when the handoff completes.
    pub pending_worker: Option<ProcessorId>,
    /// Handoff parts received so far by the successor.
    pub handoff_parts_seen: u32,
    /// Whether a crash recovery (forced retirement) is in flight: the
    /// pool successor is rebuilding the node's state from its neighbours
    /// because the previous worker died without handing off.
    pub recovering: bool,
    /// Rebuild shares received so far by the promoted successor.
    pub rebuild_shares_seen: u32,
}

impl NodeState {
    /// Fresh state for a node whose initial worker is `worker`.
    #[must_use]
    pub fn new(worker: ProcessorId) -> Self {
        NodeState {
            worker,
            pool_cursor: 0,
            age: 0,
            handing_off: false,
            pending_worker: None,
            handoff_parts_seen: 0,
            recovering: false,
            rebuild_shares_seen: 0,
        }
    }

    /// Records one message sent or received by the node; returns the new
    /// age.
    pub fn grow_older(&mut self, by: u64) -> u64 {
        self.age += by;
        self.age
    }

    /// Begins a retirement: resets the age, advances the pool cursor and
    /// remembers the successor until the handoff completes.
    pub fn begin_retirement(&mut self, successor: ProcessorId) {
        debug_assert!(!self.handing_off, "cannot retire twice concurrently");
        self.age = 0;
        self.pool_cursor += 1;
        self.handing_off = true;
        self.pending_worker = Some(successor);
        self.handoff_parts_seen = 0;
    }

    /// Registers one received handoff part; when all `total` parts have
    /// arrived, installs the successor and returns `true`.
    ///
    /// Parts arriving while no handoff is in flight — duplicated by a
    /// faulty network, or left over from a handoff a crash recovery
    /// cancelled — are ignored.
    pub fn receive_handoff_part(&mut self, total: u32) -> bool {
        if !self.handing_off {
            return false;
        }
        self.handoff_parts_seen += 1;
        if self.handoff_parts_seen >= total {
            self.worker = self
                .pending_worker
                .take()
                .expect("handoff completion requires a pending successor");
            self.handing_off = false;
            self.handoff_parts_seen = 0;
            true
        } else {
            false
        }
    }

    /// Begins a crash recovery: `successor` (promoted by its watchdog)
    /// will take over once it has rebuilt the node's state from its
    /// neighbours. Cancels any handoff the dead worker left in flight;
    /// a repeated promotion restarts the share collection (the retry path
    /// when rebuild traffic is itself lost).
    pub fn begin_recovery(&mut self, successor: ProcessorId) {
        self.handing_off = false;
        self.handoff_parts_seen = 0;
        self.recovering = true;
        self.rebuild_shares_seen = 0;
        self.pending_worker = Some(successor);
    }

    /// Registers one rebuild share; when all `needed` neighbours have
    /// answered, installs the successor, resets the age and returns
    /// `true`. Shares arriving outside a recovery (late or duplicated)
    /// are ignored.
    pub fn receive_rebuild_share(&mut self, needed: u32) -> bool {
        if !self.recovering {
            return false;
        }
        self.rebuild_shares_seen += 1;
        if self.rebuild_shares_seen >= needed {
            self.worker = self
                .pending_worker
                .take()
                .expect("recovery completion requires a pending successor");
            self.recovering = false;
            self.rebuild_shares_seen = 0;
            self.age = 0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    #[test]
    fn new_state_is_quiet() {
        let s = NodeState::new(p(7));
        assert_eq!(s.worker, p(7));
        assert_eq!(s.age, 0);
        assert!(!s.handing_off);
        assert_eq!(s.pool_cursor, 0);
    }

    #[test]
    fn aging_accumulates() {
        let mut s = NodeState::new(p(0));
        assert_eq!(s.grow_older(2), 2);
        assert_eq!(s.grow_older(1), 3);
        assert_eq!(s.age, 3);
    }

    #[test]
    fn retirement_resets_age_and_advances_cursor() {
        let mut s = NodeState::new(p(0));
        s.grow_older(8);
        s.begin_retirement(p(1));
        assert_eq!(s.age, 0);
        assert_eq!(s.pool_cursor, 1);
        assert!(s.handing_off);
        assert_eq!(s.pending_worker, Some(p(1)));
        // Worker switches only when the handoff completes.
        assert_eq!(s.worker, p(0));
    }

    #[test]
    fn handoff_completes_after_all_parts() {
        let mut s = NodeState::new(p(0));
        s.begin_retirement(p(1));
        assert!(!s.receive_handoff_part(3));
        assert!(!s.receive_handoff_part(3));
        assert!(s.receive_handoff_part(3), "third of three parts completes");
        assert_eq!(s.worker, p(1));
        assert!(!s.handing_off);
        assert_eq!(s.pending_worker, None);
        assert_eq!(s.handoff_parts_seen, 0, "ready for the next handoff");
    }

    #[test]
    fn stray_handoff_parts_are_ignored() {
        let mut s = NodeState::new(p(0));
        assert!(!s.receive_handoff_part(1), "no handoff in flight");
        assert_eq!(s.worker, p(0));
        assert_eq!(s.handoff_parts_seen, 0);
    }

    #[test]
    fn recovery_cancels_a_handoff_and_installs_on_last_share() {
        let mut s = NodeState::new(p(0));
        s.grow_older(9);
        s.begin_retirement(p(1));
        s.receive_handoff_part(3);
        // The old worker dies mid-handoff; the watchdog promotes p(2).
        s.begin_recovery(p(2));
        assert!(s.recovering);
        assert!(!s.handing_off, "recovery cancels the in-flight handoff");
        assert!(!s.receive_handoff_part(3), "late parts are ignored");
        assert!(!s.receive_rebuild_share(2));
        assert!(s.receive_rebuild_share(2), "last share completes");
        assert_eq!(s.worker, p(2));
        assert_eq!(s.age, 0, "the fresh worker starts a fresh stint");
        assert!(!s.recovering);
        assert_eq!(s.pending_worker, None);
    }

    #[test]
    fn repeated_promotion_restarts_share_collection() {
        let mut s = NodeState::new(p(0));
        s.begin_recovery(p(1));
        assert!(!s.receive_rebuild_share(2));
        s.begin_recovery(p(1));
        assert_eq!(s.rebuild_shares_seen, 0, "restart drops stale shares");
        assert!(!s.receive_rebuild_share(2));
        assert!(s.receive_rebuild_share(2));
        assert_eq!(s.worker, p(1));
    }

    #[test]
    fn stray_rebuild_shares_are_ignored() {
        let mut s = NodeState::new(p(0));
        assert!(!s.receive_rebuild_share(1), "no recovery in flight");
        assert_eq!(s.worker, p(0));
    }

    #[test]
    fn consecutive_retirements_walk_the_pool() {
        let mut s = NodeState::new(p(10));
        for step in 1..=3u64 {
            s.begin_retirement(p(10 + step as usize));
            assert!(s.receive_handoff_part(1));
            assert_eq!(s.pool_cursor, step);
            assert_eq!(s.worker, p(10 + step as usize));
        }
    }
}
