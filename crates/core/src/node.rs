//! The simulator's global registry view of per-node state.
//!
//! "Each inner node stores k+2 values: an identifier id that tells which
//! processor currently works for the node, the identifiers of its k
//! children and its parent, and the number of messages that the node sent
//! or received since its current processor works for it — its age."
//!
//! The authoritative copy of those values lives inside the engines (see
//! [`crate::engine::NodeEngine`]), migrating between processors with the
//! handoff messages. [`NodeState`] is the simulator driver's *registry*
//! mirror of one node: who works for it now, how old its stint is, and
//! whether a handoff or a crash recovery is in flight. The client's
//! watchdog reads this view at quiescence to find crashed or stuck
//! workers; the driver updates it from the engines' install/retire/
//! recover effects. Engines never read it.

use distctr_sim::ProcessorId;

/// Registry mirror of one inner tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeState {
    /// The processor currently working for this node.
    pub worker: ProcessorId,
    /// How many retirements have happened (worker = pool start + cursor).
    pub pool_cursor: u64,
    /// Messages sent or received by the node in the current stint.
    pub age: u64,
    /// Whether a handoff to a successor is in flight.
    pub handing_off: bool,
    /// The successor that will take over when the handoff or recovery
    /// completes.
    pub pending_worker: Option<ProcessorId>,
    /// Whether a crash recovery (forced retirement) is in flight: the
    /// pool successor is rebuilding the node's state from its neighbours
    /// because the previous worker died without handing off.
    pub recovering: bool,
}

impl NodeState {
    /// Fresh state for a node whose initial worker is `worker`.
    #[must_use]
    pub fn new(worker: ProcessorId) -> Self {
        NodeState {
            worker,
            pool_cursor: 0,
            age: 0,
            handing_off: false,
            pending_worker: None,
            recovering: false,
        }
    }

    /// Records one message sent or received by the node; returns the new
    /// age.
    pub fn grow_older(&mut self, by: u64) -> u64 {
        self.age += by;
        self.age
    }

    /// Mirrors a retirement beginning: resets the age, advances the pool
    /// cursor and remembers the successor until the handoff completes
    /// (the engine's `Installed` effect clears the in-flight flags).
    pub fn begin_retirement(&mut self, successor: ProcessorId) {
        debug_assert!(!self.handing_off, "cannot retire twice concurrently");
        self.age = 0;
        self.pool_cursor += 1;
        self.handing_off = true;
        self.pending_worker = Some(successor);
    }

    /// Mirrors a crash recovery beginning: `successor` (promoted by its
    /// watchdog) will take over once it has rebuilt the node's state from
    /// its neighbours. Cancels any handoff the dead worker left in
    /// flight; a repeated promotion just re-registers the successor (the
    /// retry path when rebuild traffic is itself lost).
    pub fn begin_recovery(&mut self, successor: ProcessorId) {
        self.handing_off = false;
        self.recovering = true;
        self.pending_worker = Some(successor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    #[test]
    fn new_state_is_quiet() {
        let s = NodeState::new(p(7));
        assert_eq!(s.worker, p(7));
        assert_eq!(s.age, 0);
        assert!(!s.handing_off);
        assert!(!s.recovering);
        assert_eq!(s.pool_cursor, 0);
        assert_eq!(s.pending_worker, None);
    }

    #[test]
    fn aging_accumulates() {
        let mut s = NodeState::new(p(0));
        assert_eq!(s.grow_older(2), 2);
        assert_eq!(s.grow_older(1), 3);
        assert_eq!(s.age, 3);
    }

    #[test]
    fn retirement_resets_age_and_advances_cursor() {
        let mut s = NodeState::new(p(0));
        s.grow_older(8);
        s.begin_retirement(p(1));
        assert_eq!(s.age, 0);
        assert_eq!(s.pool_cursor, 1);
        assert!(s.handing_off);
        assert_eq!(s.pending_worker, Some(p(1)));
        // The worker field switches only when the engine's install
        // effect arrives at the driver.
        assert_eq!(s.worker, p(0));
    }

    #[test]
    fn recovery_cancels_an_in_flight_handoff() {
        let mut s = NodeState::new(p(0));
        s.grow_older(9);
        s.begin_retirement(p(1));
        // The old worker dies mid-handoff; the watchdog promotes p(2).
        s.begin_recovery(p(2));
        assert!(s.recovering);
        assert!(!s.handing_off, "recovery cancels the in-flight handoff");
        assert_eq!(s.pending_worker, Some(p(2)));
        assert_eq!(s.worker, p(0), "worker updates only on the recovered effect");
    }

    #[test]
    fn repeated_promotion_keeps_the_successor_registered() {
        let mut s = NodeState::new(p(0));
        s.begin_recovery(p(1));
        s.begin_recovery(p(1));
        assert!(s.recovering);
        assert_eq!(s.pending_worker, Some(p(1)));
    }
}
