//! # distctr-core
//!
//! The primary contribution of Wattenhofer & Widmayer, *An Inherent
//! Bottleneck in Distributed Counting* (1997): a distributed counter with
//! an **optimal communication bottleneck**. Over the canonical workload —
//! `n` sequential `inc` operations, one per processor — no processor
//! sends or receives more than O(k) messages, where `k^(k+1) = n` (so
//! `k ≈ log n / log log n`), matching the paper's lower bound.
//!
//! The construction is a k-ary communication tree of inner levels `0..=k`
//! whose leaves are the `n` processors. `inc` requests climb to the root,
//! which returns the value directly to the initiator. Every inner node
//! tracks its *age* (messages handled by its current worker) and
//! **retires** at age `4k`, handing the job to the next processor of a
//! statically assigned replacement pool — spreading the root's hot-spot
//! work over `k^k` processors.
//!
//! ```
//! use distctr_core::TreeCounter;
//! use distctr_sim::{Counter, SequentialDriver};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut counter = TreeCounter::new(81)?; // k = 3
//! let outcome = SequentialDriver::run_shuffled(&mut counter, 42)?;
//! assert!(outcome.values_are_sequential());
//! // The headline guarantee: bottleneck load is O(k), not O(n)
//! // (the constant is ~17k: a processor may serve the root once and one
//! // other inner node once, each stint costing ~6k messages).
//! assert!(counter.loads().max_load() <= 20 * 3);
//! // And every lemma of the paper holds on the actual run:
//! assert!(counter.audit().grow_old_lemma_holds());
//! assert!(counter.audit().retirement_lemma_holds());
//! assert!(counter.audit().retirement_counts_within_pools(counter.topology()));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod client;
pub mod counter;
pub mod engine;
pub mod error;
pub mod kmath;
pub mod messages;
pub mod node;
pub mod object;
pub mod protocol;
pub mod serve;
pub mod structures;
pub mod topology;

pub use audit::CounterAudit;
pub use client::{InvokeResult, TreeClient, TreeClientBuilder};
pub use counter::{TreeCounter, TreeCounterBuilder};
pub use engine::{AuditEvent, Effect, Effects, EngineConfig, Event, NodeEngine, VirtualTime};
pub use error::CoreError;
pub use messages::{CounterMsg, Msg, NodeTransfer};
pub use object::{
    CounterObject, FlipBitObject, MaxRegisterObject, PriorityQueueObject, RootObject,
};
pub use protocol::{PoolPolicy, RetirementPolicy, TreeProtocol};
pub use serve::{CounterBackend, KeyedReply, KeyspaceStats, DEFAULT_KEY};
pub use structures::{DistributedFlipBit, DistributedPriorityQueue};
pub use topology::{NodeRef, Topology};
