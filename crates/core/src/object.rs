//! Sequentially-dependent objects hosted at the tree root.
//!
//! The paper's Hot Spot Lemma — and with it the whole lower bound —
//! applies to "the family of all distributed data structures in which an
//! operation depends on the operation that immediately precedes it.
//! Examples are a bit that can be accessed and flipped, and a priority
//! queue." The tree construction generalizes the same way: any object
//! whose operations are read-modify-write against a single logical state
//! can ride the retirement tree and inherit the O(k) bottleneck.
//!
//! [`RootObject`] abstracts that state: requests climb the tree exactly
//! like `inc` messages, the root applies them in arrival order, and
//! responses return directly to the initiator. [`CounterObject`] is the
//! paper's counter; [`FlipBitObject`] and [`PriorityQueueObject`] are the
//! paper's two other examples.

use std::collections::BinaryHeap;
use std::fmt;

/// A sequential object living at the root of the communication tree.
///
/// `apply` must be deterministic: together with the network's ordering it
/// defines the object's linearization.
pub trait RootObject: Clone + fmt::Debug {
    /// Operation request, carried up the tree.
    type Request: Clone + fmt::Debug;
    /// Operation response, sent straight back to the initiator.
    type Response: Clone + fmt::Debug;

    /// Applies one operation and produces its response.
    fn apply(&mut self, req: Self::Request) -> Self::Response;

    /// Applies `count` copies of `req` as one atomic step and produces
    /// the response of the *first* copy.
    ///
    /// This is the sequential-object side of batched traversals
    /// ([`Msg::BatchApply`](crate::messages::Msg::BatchApply)): objects
    /// whose responses form a range under repetition — the counter
    /// returns its pre-batch value, so the batch owns `[v, v + count)` —
    /// override this with an O(1) step. The default replays `apply`
    /// `count` times, which is always semantically correct.
    fn apply_batch(&mut self, req: Self::Request, count: u64) -> Self::Response {
        let first = self.apply(req.clone());
        for _ in 1..count {
            self.apply(req.clone());
        }
        first
    }
}

/// The paper's counter: `inc` returns the pre-increment value.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterObject {
    value: u64,
}

impl CounterObject {
    /// A counter starting at zero.
    #[must_use]
    pub fn new() -> Self {
        CounterObject::default()
    }

    /// The current value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.value
    }
}

impl RootObject for CounterObject {
    type Request = ();
    type Response = u64;

    fn apply(&mut self, (): ()) -> u64 {
        let old = self.value;
        self.value += 1;
        old
    }

    /// One addition regardless of `count`; the batch owns `[old, old + count)`.
    fn apply_batch(&mut self, (): (), count: u64) -> u64 {
        let old = self.value;
        self.value += count;
        old
    }
}

/// The paper's "bit that can be accessed and flipped":
/// test-and-flip returns the old bit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlipBitObject {
    bit: bool,
}

impl FlipBitObject {
    /// A bit starting at `false`.
    #[must_use]
    pub fn new() -> Self {
        FlipBitObject::default()
    }

    /// The current bit.
    #[must_use]
    pub fn bit(&self) -> bool {
        self.bit
    }
}

impl RootObject for FlipBitObject {
    type Request = ();
    type Response = bool;

    fn apply(&mut self, (): ()) -> bool {
        let old = self.bit;
        self.bit = !self.bit;
        old
    }
}

/// A fetch-max register: `fetch_max(x)` returns the old maximum and
/// raises the register to `max(old, x)` — another member of the paper's
/// sequentially-dependent family, included as the simplest nontrivial
/// custom [`RootObject`] (see the tutorial in `docs/TUTORIAL.md`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MaxRegisterObject {
    max: u64,
}

impl MaxRegisterObject {
    /// A register starting at zero.
    #[must_use]
    pub fn new() -> Self {
        MaxRegisterObject::default()
    }

    /// The current maximum.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }
}

impl RootObject for MaxRegisterObject {
    type Request = u64;
    type Response = u64;

    fn apply(&mut self, x: u64) -> u64 {
        let old = self.max;
        self.max = self.max.max(x);
        old
    }
}

/// Requests of the distributed priority queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PqRequest {
    /// Insert a key.
    Insert(u64),
    /// Remove and return the smallest key.
    ExtractMin,
}

/// Responses of the distributed priority queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PqResponse {
    /// The insert completed; reports the queue length after it.
    Inserted {
        /// Number of keys now in the queue.
        len: u64,
    },
    /// The extracted minimum (None if the queue was empty).
    Min(Option<u64>),
}

/// The paper's priority-queue example: a min-priority-queue whose state
/// lives at the (migrating) root.
///
/// Note on message sizes: unlike the counter, the queue's state is not
/// O(log n) bits, so a root retirement's handoff conceptually carries the
/// heap. The *lower bound* still applies verbatim (operations are
/// sequentially dependent); only the upper bound's message-length remark
/// specializes to small-state objects.
#[derive(Debug, Clone, Default)]
pub struct PriorityQueueObject {
    heap: BinaryHeap<std::cmp::Reverse<u64>>,
}

impl PriorityQueueObject {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        PriorityQueueObject::default()
    }

    /// Number of keys currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The smallest key without removing it.
    #[must_use]
    pub fn peek_min(&self) -> Option<u64> {
        self.heap.peek().map(|r| r.0)
    }
}

impl RootObject for PriorityQueueObject {
    type Request = PqRequest;
    type Response = PqResponse;

    fn apply(&mut self, req: PqRequest) -> PqResponse {
        match req {
            PqRequest::Insert(key) => {
                self.heap.push(std::cmp::Reverse(key));
                PqResponse::Inserted { len: self.heap.len() as u64 }
            }
            PqRequest::ExtractMin => PqResponse::Min(self.heap.pop().map(|r| r.0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_object_counts() {
        let mut c = CounterObject::new();
        assert_eq!(c.apply(()), 0);
        assert_eq!(c.apply(()), 1);
        assert_eq!(c.value(), 2);
    }

    #[test]
    fn counter_batch_reserves_a_contiguous_range() {
        let mut c = CounterObject::new();
        assert_eq!(c.apply(()), 0);
        assert_eq!(c.apply_batch((), 5), 1, "batch starts at the pre-batch value");
        assert_eq!(c.apply(()), 6, "the batch consumed [1, 6)");
        assert_eq!(c.value(), 7);
    }

    #[test]
    fn default_batch_replays_apply_and_returns_the_first_response() {
        let mut b = FlipBitObject::new();
        assert!(!b.apply_batch((), 3), "first flip saw false");
        assert!(b.bit(), "three flips applied");
        let mut q = PriorityQueueObject::new();
        q.apply(PqRequest::Insert(7));
        assert_eq!(q.apply_batch(PqRequest::ExtractMin, 2), PqResponse::Min(Some(7)));
        assert!(q.is_empty());
    }

    #[test]
    fn flip_bit_alternates() {
        let mut b = FlipBitObject::new();
        assert!(!b.apply(()));
        assert!(b.apply(()));
        assert!(!b.apply(()));
        assert!(b.bit());
    }

    #[test]
    fn priority_queue_orders_keys() {
        let mut q = PriorityQueueObject::new();
        assert_eq!(q.apply(PqRequest::ExtractMin), PqResponse::Min(None));
        q.apply(PqRequest::Insert(5));
        q.apply(PqRequest::Insert(1));
        let resp = q.apply(PqRequest::Insert(3));
        assert_eq!(resp, PqResponse::Inserted { len: 3 });
        assert_eq!(q.peek_min(), Some(1));
        assert_eq!(q.apply(PqRequest::ExtractMin), PqResponse::Min(Some(1)));
        assert_eq!(q.apply(PqRequest::ExtractMin), PqResponse::Min(Some(3)));
        assert_eq!(q.apply(PqRequest::ExtractMin), PqResponse::Min(Some(5)));
        assert!(q.is_empty());
    }

    #[test]
    fn max_register_keeps_the_running_maximum() {
        let mut r = MaxRegisterObject::new();
        assert_eq!(r.apply(5), 0);
        assert_eq!(r.apply(3), 5, "returns the old max");
        assert_eq!(r.apply(9), 5);
        assert_eq!(r.max(), 9);
    }

    #[test]
    fn objects_are_cloneable_for_adversary_probing() {
        let mut q = PriorityQueueObject::new();
        q.apply(PqRequest::Insert(9));
        let mut fork = q.clone();
        assert_eq!(fork.apply(PqRequest::ExtractMin), PqResponse::Min(Some(9)));
        assert_eq!(q.len(), 1, "original untouched");
    }
}
