//! Domain wrappers for the paper's generalized data structures.
//!
//! "Note that the argument in the Hot Spot Lemma can be made for the
//! family of all distributed data structures in which an operation
//! depends on the operation that immediately precedes it. Examples for
//! such data structures are a bit that can be accessed and flipped, and
//! a priority queue."
//!
//! Both ride the same retirement tree as the counter and inherit its
//! O(k) per-processor bottleneck over the canonical workload.

use distctr_sim::{LoadTracker, ProcessorId, SimError};

use crate::audit::CounterAudit;
use crate::client::TreeClient;
use crate::error::CoreError;
use crate::object::{FlipBitObject, PqRequest, PqResponse, PriorityQueueObject};
use crate::topology::Topology;

/// A distributed test-and-flip bit.
///
/// # Examples
///
/// ```
/// use distctr_core::DistributedFlipBit;
/// use distctr_sim::ProcessorId;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut bit = DistributedFlipBit::new(8)?;
/// assert_eq!(bit.test_and_flip(ProcessorId::new(2))?, false);
/// assert_eq!(bit.test_and_flip(ProcessorId::new(6))?, true);
/// assert_eq!(bit.bit(), false);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DistributedFlipBit {
    client: TreeClient<FlipBitObject>,
}

impl DistributedFlipBit {
    /// Creates a flip bit served by at least `n` processors (rounded up
    /// to `k^(k+1)`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::TreeCounter::new`].
    pub fn new(n: usize) -> Result<Self, CoreError> {
        Ok(DistributedFlipBit { client: TreeClient::new(n, FlipBitObject::new())? })
    }

    /// Returns the old bit and flips it, as one operation initiated by
    /// `initiator`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::client::TreeClient::invoke`].
    pub fn test_and_flip(&mut self, initiator: ProcessorId) -> Result<bool, SimError> {
        Ok(self.client.invoke(initiator, ())?.response)
    }

    /// The current bit.
    #[must_use]
    pub fn bit(&self) -> bool {
        self.client.object().bit()
    }

    /// Number of processors.
    #[must_use]
    pub fn processors(&self) -> usize {
        self.client.processors()
    }

    /// Per-processor message loads.
    #[must_use]
    pub fn loads(&self) -> &LoadTracker {
        self.client.loads()
    }

    /// The lemma auditor.
    #[must_use]
    pub fn audit(&self) -> &CounterAudit {
        self.client.audit()
    }

    /// The tree topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        self.client.topology()
    }
}

/// A distributed min-priority queue.
///
/// # Examples
///
/// ```
/// use distctr_core::DistributedPriorityQueue;
/// use distctr_sim::ProcessorId;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut pq = DistributedPriorityQueue::new(8)?;
/// pq.insert(ProcessorId::new(0), 30)?;
/// pq.insert(ProcessorId::new(1), 10)?;
/// assert_eq!(pq.extract_min(ProcessorId::new(2))?, Some(10));
/// assert_eq!(pq.extract_min(ProcessorId::new(3))?, Some(30));
/// assert_eq!(pq.extract_min(ProcessorId::new(4))?, None);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DistributedPriorityQueue {
    client: TreeClient<PriorityQueueObject>,
}

impl DistributedPriorityQueue {
    /// Creates a priority queue served by at least `n` processors
    /// (rounded up to `k^(k+1)`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::TreeCounter::new`].
    pub fn new(n: usize) -> Result<Self, CoreError> {
        Ok(DistributedPriorityQueue { client: TreeClient::new(n, PriorityQueueObject::new())? })
    }

    /// Inserts `key`, returning the queue length after the insert.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::client::TreeClient::invoke`].
    pub fn insert(&mut self, initiator: ProcessorId, key: u64) -> Result<u64, SimError> {
        match self.client.invoke(initiator, PqRequest::Insert(key))?.response {
            PqResponse::Inserted { len } => Ok(len),
            PqResponse::Min(_) => unreachable!("insert answers with Inserted"),
        }
    }

    /// Removes and returns the smallest key (`None` if empty).
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::client::TreeClient::invoke`].
    pub fn extract_min(&mut self, initiator: ProcessorId) -> Result<Option<u64>, SimError> {
        match self.client.invoke(initiator, PqRequest::ExtractMin)?.response {
            PqResponse::Min(min) => Ok(min),
            PqResponse::Inserted { .. } => unreachable!("extract answers with Min"),
        }
    }

    /// Number of keys currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.client.object().len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.client.object().is_empty()
    }

    /// Number of processors.
    #[must_use]
    pub fn processors(&self) -> usize {
        self.client.processors()
    }

    /// Per-processor message loads.
    #[must_use]
    pub fn loads(&self) -> &LoadTracker {
        self.client.loads()
    }

    /// The lemma auditor.
    #[must_use]
    pub fn audit(&self) -> &CounterAudit {
        self.client.audit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_bit_parity_matches_operation_count() {
        let mut bit = DistributedFlipBit::new(27).expect("bit");
        let n = bit.processors();
        for i in 0..n {
            let old = bit.test_and_flip(ProcessorId::new(i)).expect("flip");
            assert_eq!(old, i % 2 == 1);
        }
        assert_eq!(bit.bit(), n % 2 == 1);
    }

    #[test]
    fn flip_bit_keeps_tree_lemmas() {
        let mut bit = DistributedFlipBit::new(81).expect("bit");
        for i in 0..81 {
            bit.test_and_flip(ProcessorId::new(i)).expect("flip");
        }
        assert!(bit.audit().grow_old_lemma_holds());
        assert!(bit.audit().retirement_lemma_holds());
        assert!(bit.audit().retirement_counts_within_pools(bit.topology()));
        assert!(bit.loads().max_load() <= 20 * 3, "O(k) bottleneck for the bit too");
    }

    #[test]
    fn priority_queue_sorts_arbitrary_inserts() {
        let mut pq = DistributedPriorityQueue::new(8).expect("pq");
        let keys = [5u64, 3, 9, 1, 7, 3, 8, 2];
        for (i, &key) in keys.iter().enumerate() {
            let len = pq.insert(ProcessorId::new(i % 8), key).expect("insert");
            assert_eq!(len, i as u64 + 1);
        }
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        for (i, &expected) in sorted.iter().enumerate() {
            let min = pq.extract_min(ProcessorId::new(i % 8)).expect("extract");
            assert_eq!(min, Some(expected));
        }
        assert!(pq.is_empty());
        assert_eq!(pq.extract_min(ProcessorId::new(0)).expect("extract"), None);
    }

    #[test]
    fn priority_queue_is_heapsort_over_the_network() {
        // Round-trip property over a pseudo-random key set.
        let mut pq = DistributedPriorityQueue::new(8).expect("pq");
        let mut keys: Vec<u64> = (0..32).map(|i| (i * 2654435761u64) % 1000).collect();
        for (i, &key) in keys.iter().enumerate() {
            pq.insert(ProcessorId::new(i % 8), key).expect("insert");
        }
        assert_eq!(pq.len(), 32);
        let mut drained = Vec::new();
        while let Some(min) = pq.extract_min(ProcessorId::new(drained.len() % 8)).expect("extract")
        {
            drained.push(min);
        }
        keys.sort_unstable();
        assert_eq!(drained, keys);
    }
}
