//! The generic tree-object client: any [`RootObject`] served through the
//! retirement tree with the paper's O(k) bottleneck guarantee.

use distctr_sim::{
    DeliveryPolicy, FaultEvent, FaultPlan, FaultStats, LoadTracker, Network, OpId, ProcessorId,
    SimError, SimTime, TraceMode,
};

use crate::audit::CounterAudit;
use crate::error::CoreError;
use crate::kmath::{exact_order, leaves_of_order, order_for, MAX_ORDER};
use crate::messages::Msg;
use crate::object::RootObject;
use crate::protocol::{PoolPolicy, RetirementPolicy, TreeProtocol};
use crate::topology::{NodeRef, Topology};

/// Result of one operation against a tree-hosted object.
#[derive(Debug, Clone)]
pub struct InvokeResult<S> {
    /// The object's response, delivered to the initiator.
    pub response: S,
    /// Messages exchanged during the operation (including retirement
    /// traffic it triggered).
    pub messages: u64,
    /// Simulated completion time.
    pub completed_at: SimTime,
    /// Per-operation trace, when recorded.
    pub trace: Option<distctr_sim::OpTrace>,
}

/// Builder for a [`TreeClient`].
#[derive(Debug, Clone)]
pub struct TreeClientBuilder<O> {
    k: u32,
    trace: TraceMode,
    policy: DeliveryPolicy,
    retirement: RetirementPolicy,
    pool: PoolPolicy,
    faults: Option<FaultPlan>,
    object: O,
}

impl<O: RootObject> TreeClientBuilder<O> {
    /// Sets the trace mode (default: [`TraceMode::Contacts`]).
    #[must_use]
    pub fn trace(mut self, trace: TraceMode) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the delivery policy (default: FIFO).
    #[must_use]
    pub fn delivery(mut self, policy: DeliveryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the retirement policy (default: the paper's `4k` threshold).
    #[must_use]
    pub fn retirement(mut self, retirement: RetirementPolicy) -> Self {
        self.retirement = retirement;
        self
    }

    /// Sets the pool policy (default: the paper's one-shot pools; use
    /// [`PoolPolicy::Recycling`] for workloads longer than one op per
    /// processor).
    #[must_use]
    pub fn pool(mut self, pool: PoolPolicy) -> Self {
        self.pool = pool;
        self
    }

    /// Injects faults from `plan` (message drops, duplications, scheduled
    /// processor crashes) and arms the protocol's crash-recovery
    /// machinery. Drive the client with
    /// [`TreeClient::invoke_fault_tolerant`] so the watchdog can repair
    /// crashes and retry lost operations.
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Builds the client.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the topology or network cannot be built.
    pub fn build(self) -> Result<TreeClient<O>, CoreError> {
        let topo = Topology::new(self.k).map_err(CoreError::Order)?;
        let n = usize::try_from(topo.processors()).map_err(|_| {
            CoreError::Order(format!("n = {} does not fit usize", topo.processors()))
        })?;
        let fault_tolerant = self.faults.is_some();
        let net = match self.faults {
            Some(plan) => Network::with_faults(n, self.trace, self.policy, plan)?,
            None => Network::with_policy(n, self.trace, self.policy)?,
        };
        let mut proto =
            TreeProtocol::with_pool_policy(topo, self.retirement, self.pool, self.object);
        proto.set_fault_tolerant(fault_tolerant);
        Ok(TreeClient { net, proto, next_op: 0, watchdog_retries: 0 })
    }
}

/// A sequentially-dependent object served through the paper's retirement
/// tree.
///
/// # Examples
///
/// ```
/// use distctr_core::client::TreeClient;
/// use distctr_core::object::FlipBitObject;
/// use distctr_sim::ProcessorId;
///
/// # fn main() -> Result<(), distctr_core::CoreError> {
/// let mut bit = TreeClient::new(8, FlipBitObject::new())?;
/// assert!(!bit.invoke(ProcessorId::new(3), ())?.response);
/// assert!(bit.invoke(ProcessorId::new(5), ())?.response);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TreeClient<O: RootObject> {
    net: Network<Msg<O>>,
    proto: TreeProtocol<O>,
    next_op: usize,
    watchdog_retries: u64,
}

impl<O: RootObject> TreeClient<O> {
    /// Watchdog rounds [`TreeClient::invoke_fault_tolerant`] runs before
    /// giving up on an operation.
    pub const MAX_RECOVERY_ATTEMPTS: u32 = 25;

    /// Creates a client for at least `n` processors (rounded up to
    /// `k^(k+1)`), hosting `object`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Order`] if `n` is 0 or beyond the largest
    /// supported network.
    pub fn new(n: usize, object: O) -> Result<Self, CoreError> {
        Self::builder(n, object)?.build()
    }

    /// Starts a builder for a client of at least `n` processors.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Order`] if `n` is 0 or too large.
    pub fn builder(n: usize, object: O) -> Result<TreeClientBuilder<O>, CoreError> {
        if n == 0 {
            return Err(CoreError::Order("n must be at least 1".into()));
        }
        let n64 = n as u64;
        if n64 > leaves_of_order(MAX_ORDER) {
            return Err(CoreError::Order(format!("n={n} beyond the largest supported network")));
        }
        let k = if let Some(k) = exact_order(n64) { k } else { order_for(n64) };
        Ok(TreeClientBuilder {
            k,
            trace: TraceMode::Contacts,
            policy: DeliveryPolicy::default(),
            retirement: RetirementPolicy::default(),
            pool: PoolPolicy::default(),
            faults: None,
            object,
        })
    }

    /// The tree order `k`.
    #[must_use]
    pub fn order(&self) -> u32 {
        self.proto.topology().order()
    }

    /// Number of processors (rounded up to `k^(k+1)`).
    #[must_use]
    pub fn processors(&self) -> usize {
        self.net.processors()
    }

    /// The tree topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        self.proto.topology()
    }

    /// The lemma auditor's view of the run so far.
    #[must_use]
    pub fn audit(&self) -> &CounterAudit {
        self.proto.audit()
    }

    /// The hosted object's current state.
    #[must_use]
    pub fn object(&self) -> &O {
        self.proto.object()
    }

    /// The processor currently working for `node`.
    #[must_use]
    pub fn worker_of(&self, node: NodeRef) -> ProcessorId {
        self.proto.worker_of(node)
    }

    /// Per-processor message loads since construction.
    #[must_use]
    pub fn loads(&self) -> &LoadTracker {
        self.net.loads()
    }

    /// Number of operations executed.
    #[must_use]
    pub fn ops_executed(&self) -> usize {
        self.next_op
    }

    /// Per-processor engine fingerprints, in processor order (see
    /// [`crate::protocol::TreeProtocol::engine_fingerprints`]).
    #[must_use]
    pub fn engine_fingerprints(&self) -> Vec<u64> {
        self.proto.engine_fingerprints()
    }

    /// Executes one operation initiated by `initiator`, running the whole
    /// process (including retirement cascades) to quiescence.
    ///
    /// # Errors
    ///
    /// * [`SimError::UnknownProcessor`] if `initiator` is out of range.
    /// * [`SimError::Livelock`] if the protocol fails to
    ///   quiesce.
    ///
    /// # Panics
    ///
    /// Panics if the protocol quiesces without delivering a response to
    /// the initiator — a protocol bug, not a user condition.
    pub fn invoke(
        &mut self,
        initiator: ProcessorId,
        req: O::Request,
    ) -> Result<InvokeResult<O::Response>, SimError> {
        self.invoke_inner(initiator, None, req)
    }

    /// Executes a *batch* of `count` identical operations sharing one
    /// tree traversal ([`Msg::BatchApply`]): the root applies all of them
    /// atomically and the response is that of the first member — for the
    /// counter, the start of the batch's contiguous range
    /// `[first, first + count)`. The whole batch is one message of the
    /// protocol, so per-member load is amortized to O(k / count).
    ///
    /// # Errors
    ///
    /// Same conditions as [`TreeClient::invoke`].
    pub fn invoke_batch(
        &mut self,
        initiator: ProcessorId,
        count: u64,
        req: O::Request,
    ) -> Result<InvokeResult<O::Response>, SimError> {
        self.invoke_inner(initiator, Some(count.max(1)), req)
    }

    fn invoke_inner(
        &mut self,
        initiator: ProcessorId,
        batch: Option<u64>,
        req: O::Request,
    ) -> Result<InvokeResult<O::Response>, SimError> {
        if initiator.index() >= self.net.processors() {
            return Err(SimError::UnknownProcessor {
                index: initiator.index(),
                processors: self.net.processors(),
            });
        }
        let op = OpId::new(self.next_op);
        self.next_op += 1;
        self.proto.audit_mut().begin_op();
        let leaf_parent = self.proto.topology().leaf_parent(initiator.index() as u64);
        let worker = self.proto.worker_of(leaf_parent);
        self.net.inject(
            op,
            initiator,
            worker,
            Self::entry_msg(leaf_parent, initiator, op.index() as u64, batch, req),
        );
        let stats = self.net.run_to_quiescence(&mut self.proto)?;
        self.proto.audit_mut().end_op();
        let trace = self.net.finish_op(op);
        let response = self
            .proto
            .take_pending_response()
            .expect("operation must deliver a response to the initiator before quiescence");
        Ok(InvokeResult {
            response,
            messages: stats.delivered,
            completed_at: stats.end_time,
            trace,
        })
    }

    /// The message that enters an operation (or a batch) into the tree.
    fn entry_msg(
        node: NodeRef,
        origin: ProcessorId,
        op_seq: u64,
        batch: Option<u64>,
        req: O::Request,
    ) -> Msg<O> {
        match batch {
            None => Msg::Apply { node, origin, op_seq, req },
            Some(count) => Msg::BatchApply { node, origin, op_seq, count, req },
        }
    }

    /// Whether the client retires workers (false for the static-tree
    /// ablation).
    #[must_use]
    pub fn retirement_enabled(&self) -> bool {
        self.proto.threshold().is_some()
    }

    // --- fault tolerance -------------------------------------------------

    /// The fault plan driving the network, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.net.fault_plan()
    }

    /// Every fault the network injected so far, in order.
    #[must_use]
    pub fn fault_log(&self) -> &[FaultEvent] {
        self.net.fault_log()
    }

    /// Summary counts of injected faults.
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        self.net.fault_stats()
    }

    /// Processors currently down.
    #[must_use]
    pub fn crashed_processors(&self) -> Vec<ProcessorId> {
        self.net.crashed_processors()
    }

    /// Whether `p` is down.
    #[must_use]
    pub fn is_crashed(&self, p: ProcessorId) -> bool {
        self.net.is_crashed(p)
    }

    /// Times the watchdog re-ran an operation because a round quiesced
    /// without a response (a slack term of the fault-aware load bound).
    #[must_use]
    pub fn watchdog_retries(&self) -> u64 {
        self.watchdog_retries
    }

    /// Crashes processor `p` immediately (test hook; scheduled crashes
    /// normally come from the [`FaultPlan`]) and arms the recovery
    /// machinery.
    pub fn crash(&mut self, p: ProcessorId) {
        self.net.crash(p);
        self.proto.set_fault_tolerant(true);
    }

    /// Executes one operation on a faulty network: like
    /// [`TreeClient::invoke`], but quiescing without a response triggers
    /// the recovery watchdog instead of a panic. Each round the watchdog
    /// promotes the pool successor of every crashed or stuck worker (a
    /// forced retirement rebuilt from the node's neighbours) and re-sends
    /// the operation; the root's reply cache keeps retries exactly-once.
    ///
    /// # Errors
    ///
    /// * [`CoreError::Unrecoverable`] if the initiator is down, or a node
    ///   on the operation's path lost its worker with no live pool
    ///   successor left (level-k nodes have singleton pools and cannot
    ///   recover).
    /// * [`CoreError::RecoveryFailed`] if
    ///   [`TreeClient::MAX_RECOVERY_ATTEMPTS`] rounds all quiesce without
    ///   a response.
    /// * [`CoreError::Sim`] for simulator errors (livelock, bad
    ///   initiator).
    pub fn invoke_fault_tolerant(
        &mut self,
        initiator: ProcessorId,
        req: O::Request,
    ) -> Result<InvokeResult<O::Response>, CoreError> {
        self.invoke_fault_tolerant_inner(initiator, None, req)
    }

    /// Fault-tolerant batch invocation: [`TreeClient::invoke_batch`] with
    /// the recovery watchdog of [`TreeClient::invoke_fault_tolerant`].
    /// Watchdog retries re-send the batch with the same `op_seq` *and*
    /// the same `count`, so the root's reply cache keeps the whole range
    /// exactly-once across crashes.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TreeClient::invoke_fault_tolerant`].
    pub fn invoke_batch_fault_tolerant(
        &mut self,
        initiator: ProcessorId,
        count: u64,
        req: O::Request,
    ) -> Result<InvokeResult<O::Response>, CoreError> {
        self.invoke_fault_tolerant_inner(initiator, Some(count.max(1)), req)
    }

    fn invoke_fault_tolerant_inner(
        &mut self,
        initiator: ProcessorId,
        batch: Option<u64>,
        req: O::Request,
    ) -> Result<InvokeResult<O::Response>, CoreError> {
        if initiator.index() >= self.net.processors() {
            return Err(SimError::UnknownProcessor {
                index: initiator.index(),
                processors: self.net.processors(),
            }
            .into());
        }
        self.proto.set_fault_tolerant(true);
        let op = OpId::new(self.next_op);
        self.next_op += 1;
        self.proto.audit_mut().begin_op();
        let leaf_parent = self.proto.topology().leaf_parent(initiator.index() as u64);
        let path = self.op_path(leaf_parent);
        let mut messages = 0u64;
        let mut attempts = 0u32;
        let (response, completed_at) = loop {
            if attempts >= Self::MAX_RECOVERY_ATTEMPTS {
                self.proto.audit_mut().end_op();
                self.net.finish_op(op);
                return Err(CoreError::RecoveryFailed { attempts });
            }
            attempts += 1;
            if self.net.is_crashed(initiator) {
                self.proto.audit_mut().end_op();
                self.net.finish_op(op);
                return Err(CoreError::Unrecoverable(format!(
                    "initiator {initiator} has crashed and cannot receive a response"
                )));
            }
            // Promote successors for crashed/stuck workers before
            // (re-)sending the operation into the tree.
            if let Err(e) = self.promote_successors(op, &path) {
                self.proto.audit_mut().end_op();
                self.net.finish_op(op);
                return Err(e);
            }
            let entry_worker = self.proto.worker_of(leaf_parent);
            if !self.net.is_crashed(entry_worker) {
                self.net.inject(
                    op,
                    initiator,
                    entry_worker,
                    Self::entry_msg(leaf_parent, initiator, op.index() as u64, batch, req.clone()),
                );
            }
            let stats = self.net.run_to_quiescence(&mut self.proto)?;
            messages += stats.delivered;
            if let Some(resp) = self.proto.take_pending_response() {
                break (resp, stats.end_time);
            }
            // Quiescent with no response: the op (or its reply) was lost
            // to a drop or a crash. Repair and retry.
            self.watchdog_retries += 1;
            // A plain retry heals a dropped message; if it did not, some
            // engine on the path may hold a stale routing view (a lost
            // NewWorker after a retirement or recovery leaves it sending
            // to a dead processor forever). Re-advertise the registry's
            // worker of every path node to the engine below it.
            if attempts >= 2 {
                self.refresh_path_routing(op, &path);
            }
        };
        self.proto.audit_mut().end_op();
        let trace = self.net.finish_op(op);
        Ok(InvokeResult { response, messages, completed_at, trace })
    }

    /// Flat indices of the inner nodes the op climbs, leaf-parent to root.
    fn op_path(&self, leaf_parent: NodeRef) -> Vec<usize> {
        let topo = self.proto.topology();
        let mut path = Vec::new();
        let mut cur = Some(leaf_parent);
        while let Some(node) = cur {
            path.push(topo.flat_index(node));
            cur = topo.parent(node);
        }
        path
    }

    /// One watchdog repair pass: for every node whose worker is down,
    /// whose handoff stalled (quiescent while the state-bearing final is
    /// still unaccounted for — the successor either died or never got
    /// it), or whose recovery stalled (quiescent while still collecting
    /// shares), inject a [`Msg::RecoverPromote`] self-message at a live
    /// pool successor. The promote realizes the engine's `SetTimer`
    /// protection: quiescence with the transfer still open *is* the
    /// timeout.
    ///
    /// Nodes with no live successor are fatal only when they sit on the
    /// operation's `path`; off-path stranded nodes are left alone (their
    /// own operations will report the error).
    fn promote_successors(&mut self, op: OpId, path: &[usize]) -> Result<(), CoreError> {
        let node_count =
            usize::try_from(self.proto.topology().inner_node_count()).expect("nodes fit usize");
        // Root first: a crashed parent must be repaired for its child's
        // rebuild queries to be answerable, and flat order is level-major.
        for flat in 0..node_count {
            let node = self.proto.topology().node_at(flat);
            let st = self.proto.node_state(flat);
            let worker_dead = self.net.is_crashed(st.worker);
            // A handoff still open at quiescence lost its final part
            // (with the migrating state aboard) to a drop or a crash:
            // rebuild from the neighbours exactly as after a crash.
            let stalled_handoff = st.handing_off;
            let stalled_recovery = st.recovering;
            if !worker_dead && !stalled_handoff && !stalled_recovery {
                continue;
            }
            let Some(successor) = self.live_successor(node, flat) else {
                // Fatal only if the op needs this node and its worker is
                // actually gone.
                if worker_dead {
                    if path.contains(&flat) {
                        return Err(CoreError::Unrecoverable(format!(
                            "node ({}, {}) lost worker {} and its pool has no live successor",
                            node.level, node.index, st.worker
                        )));
                    }
                    continue;
                }
                if stalled_handoff {
                    // The pool is drained but the *retiring* worker is
                    // still alive: the state-bearing final went to a
                    // corpse, and the old worker no longer serves the
                    // node — it shim-forwards every request at the dead
                    // successor. Promote the old worker itself: it is a
                    // pool member, no longer hosts the node, and the
                    // rebuild clears its own stale forwarding entry.
                    let old_worker = st.worker;
                    let neighbours = self.neighbour_workers(node);
                    self.net.inject(
                        op,
                        old_worker,
                        old_worker,
                        Msg::RecoverPromote { node, neighbours },
                    );
                }
                continue;
            };
            // The promote carries the watchdog's registry view of the
            // node's neighbourhood: the successor's own routing view died
            // with the old worker, so the promote must tell it where to
            // send its rebuild queries.
            let neighbours = self.neighbour_workers(node);
            // The promote models the successor's own watchdog timeout: a
            // self-message, charged to the successor.
            self.net.inject(op, successor, successor, Msg::RecoverPromote { node, neighbours });
        }
        Ok(())
    }

    /// The node's inner neighbours (parent plus inner children) with the
    /// worker each is currently reachable at: its registry worker, or —
    /// when the neighbour is itself mid-recovery (pools overlap along
    /// root paths, so one crash can take out a whole ancestor chain) —
    /// the successor being promoted for it. Any pool member can answer a
    /// rebuild query, since a share's content is the neighbour's own
    /// identity.
    fn neighbour_workers(&self, node: NodeRef) -> Vec<(NodeRef, ProcessorId)> {
        let topo = self.proto.topology();
        topo.parent(node)
            .into_iter()
            .chain(topo.inner_children(node).unwrap_or_default())
            .map(|neighbour| (neighbour, self.reachable_worker(neighbour)))
            .collect()
    }

    /// The processor `node` is currently reachable at: its registry
    /// worker, or — mid-recovery — the successor being promoted for it.
    fn reachable_worker(&self, node: NodeRef) -> ProcessorId {
        let st = self.proto.node_state(self.proto.topology().flat_index(node));
        if st.recovering {
            st.pending_worker.unwrap_or(st.worker)
        } else {
            st.worker
        }
    }

    /// Repairs stale engine routing along the operation's path: for each
    /// path node with a parent, inject a [`Msg::NewWorker`] self-message
    /// at the node's worker re-announcing the parent's current worker.
    /// Engines route with strictly local knowledge, so a `NewWorker`
    /// notification lost to a drop or a crash leaves the engine below
    /// forwarding to a dead processor indefinitely; the registry (which
    /// the driver keeps current from the engines' install/recover
    /// effects) is the directory that re-seeds that knowledge. Costs at
    /// most `k + 1` self-messages per invocation, charged like any other
    /// protocol traffic.
    fn refresh_path_routing(&mut self, op: OpId, path: &[usize]) {
        for &flat in path {
            let node = self.proto.topology().node_at(flat);
            let Some(parent) = self.proto.topology().parent(node) else { continue };
            let worker = self.reachable_worker(node);
            if self.net.is_crashed(worker) {
                continue; // promote_successors owns the dead-worker case
            }
            let new_worker = self.reachable_worker(parent);
            self.net.inject(
                op,
                worker,
                worker,
                Msg::NewWorker { node, retired: parent, new_worker },
            );
        }
    }

    /// The next live processor of `node`'s pool, if one is left. A
    /// recovery or handoff already in flight keeps its successor (the
    /// promote is a restart or rescue, not a new promotion).
    fn live_successor(&self, node: NodeRef, flat: usize) -> Option<ProcessorId> {
        let st = self.proto.node_state(flat);
        if st.recovering || st.handing_off {
            if let Some(p) = st.pending_worker {
                if !self.net.is_crashed(p) {
                    return Some(p);
                }
            }
        }
        let pool = self.proto.topology().pool(node);
        let size = pool.end - pool.start;
        let candidates: Vec<u64> = match self.proto.pool_policy() {
            // One-shot pools never reuse an id: only indices past the
            // cursor are eligible.
            PoolPolicy::OneShot => (st.pool_cursor + 1..size).collect(),
            // Recycling pools wrap; every index but the current one is
            // eligible.
            PoolPolicy::Recycling => (1..size).map(|step| (st.pool_cursor + step) % size).collect(),
        };
        candidates
            .into_iter()
            .map(|i| ProcessorId::new((pool.start + i) as usize))
            .find(|&p| !self.net.is_crashed(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{FlipBitObject, PqRequest, PqResponse, PriorityQueueObject};

    #[test]
    fn flip_bit_through_the_tree() {
        let mut bit = TreeClient::new(8, FlipBitObject::new()).expect("client");
        for i in 0..8usize {
            let r = bit.invoke(ProcessorId::new(i), ()).expect("invoke");
            assert_eq!(r.response, i % 2 == 1, "flips alternate");
        }
        assert!(!bit.object().bit(), "8 flips return to false");
        assert!(bit.audit().retirement_lemma_holds());
    }

    #[test]
    fn priority_queue_through_the_tree() {
        let mut pq = TreeClient::new(8, PriorityQueueObject::new()).expect("client");
        for (i, key) in [42u64, 7, 19].iter().enumerate() {
            let r = pq.invoke(ProcessorId::new(i), PqRequest::Insert(*key)).expect("insert");
            assert_eq!(r.response, PqResponse::Inserted { len: i as u64 + 1 });
        }
        let r = pq.invoke(ProcessorId::new(5), PqRequest::ExtractMin).expect("extract");
        assert_eq!(r.response, PqResponse::Min(Some(7)));
        assert_eq!(pq.object().len(), 2);
    }

    #[test]
    fn generic_client_keeps_the_bottleneck_guarantee() {
        // The O(k) bottleneck is object-independent: one op per processor
        // on the flip bit stays within 20k, same as the counter.
        let mut bit = TreeClient::new(81, FlipBitObject::new()).expect("client");
        for i in 0..81usize {
            bit.invoke(ProcessorId::new(i), ()).expect("invoke");
        }
        assert!(bit.loads().max_load() <= 20 * 3);
        assert!(bit.audit().grow_old_lemma_holds());
        assert!(bit.audit().retirement_counts_within_pools(bit.topology()));
    }

    #[test]
    fn construction_validation() {
        assert!(TreeClient::new(0, FlipBitObject::new()).is_err());
        let client = TreeClient::new(50, FlipBitObject::new()).expect("rounds up");
        assert_eq!(client.processors(), 81);
        assert_eq!(client.order(), 3);
        assert!(client.retirement_enabled());
    }

    #[test]
    fn unknown_initiator_rejected() {
        let mut bit = TreeClient::new(8, FlipBitObject::new()).expect("client");
        let err = bit.invoke(ProcessorId::new(99), ()).unwrap_err();
        assert_eq!(err, SimError::UnknownProcessor { index: 99, processors: 8 });
    }
}
