//! The generic tree-object client: any [`RootObject`] served through the
//! retirement tree with the paper's O(k) bottleneck guarantee.

use distctr_sim::{
    DeliveryPolicy, LoadTracker, Network, OpId, ProcessorId, SimError, SimTime, TraceMode,
};

use crate::audit::CounterAudit;
use crate::error::CoreError;
use crate::kmath::{exact_order, leaves_of_order, order_for, MAX_ORDER};
use crate::messages::TreeMsg;
use crate::object::RootObject;
use crate::protocol::{PoolPolicy, RetirementPolicy, TreeProtocol};
use crate::topology::{NodeRef, Topology};

/// Result of one operation against a tree-hosted object.
#[derive(Debug, Clone)]
pub struct InvokeResult<S> {
    /// The object's response, delivered to the initiator.
    pub response: S,
    /// Messages exchanged during the operation (including retirement
    /// traffic it triggered).
    pub messages: u64,
    /// Simulated completion time.
    pub completed_at: SimTime,
    /// Per-operation trace, when recorded.
    pub trace: Option<distctr_sim::OpTrace>,
}

/// Builder for a [`TreeClient`].
#[derive(Debug, Clone)]
pub struct TreeClientBuilder<O> {
    k: u32,
    trace: TraceMode,
    policy: DeliveryPolicy,
    retirement: RetirementPolicy,
    pool: PoolPolicy,
    object: O,
}

impl<O: RootObject> TreeClientBuilder<O> {
    /// Sets the trace mode (default: [`TraceMode::Contacts`]).
    #[must_use]
    pub fn trace(mut self, trace: TraceMode) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the delivery policy (default: FIFO).
    #[must_use]
    pub fn delivery(mut self, policy: DeliveryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the retirement policy (default: the paper's `4k` threshold).
    #[must_use]
    pub fn retirement(mut self, retirement: RetirementPolicy) -> Self {
        self.retirement = retirement;
        self
    }

    /// Sets the pool policy (default: the paper's one-shot pools; use
    /// [`PoolPolicy::Recycling`] for workloads longer than one op per
    /// processor).
    #[must_use]
    pub fn pool(mut self, pool: PoolPolicy) -> Self {
        self.pool = pool;
        self
    }

    /// Builds the client.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the topology or network cannot be built.
    pub fn build(self) -> Result<TreeClient<O>, CoreError> {
        let topo = Topology::new(self.k).map_err(CoreError::Order)?;
        let n = usize::try_from(topo.processors()).map_err(|_| {
            CoreError::Order(format!("n = {} does not fit usize", topo.processors()))
        })?;
        let net = Network::with_policy(n, self.trace, self.policy)?;
        let proto =
            TreeProtocol::with_pool_policy(topo, self.retirement, self.pool, self.object);
        Ok(TreeClient { net, proto, next_op: 0 })
    }
}

/// A sequentially-dependent object served through the paper's retirement
/// tree.
///
/// # Examples
///
/// ```
/// use distctr_core::client::TreeClient;
/// use distctr_core::object::FlipBitObject;
/// use distctr_sim::ProcessorId;
///
/// # fn main() -> Result<(), distctr_core::CoreError> {
/// let mut bit = TreeClient::new(8, FlipBitObject::new())?;
/// assert!(!bit.invoke(ProcessorId::new(3), ())?.response);
/// assert!(bit.invoke(ProcessorId::new(5), ())?.response);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TreeClient<O: RootObject> {
    net: Network<TreeMsg<O::Request, O::Response>>,
    proto: TreeProtocol<O>,
    next_op: usize,
}

impl<O: RootObject> TreeClient<O> {
    /// Creates a client for at least `n` processors (rounded up to
    /// `k^(k+1)`), hosting `object`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Order`] if `n` is 0 or beyond the largest
    /// supported network.
    pub fn new(n: usize, object: O) -> Result<Self, CoreError> {
        Self::builder(n, object)?.build()
    }

    /// Starts a builder for a client of at least `n` processors.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Order`] if `n` is 0 or too large.
    pub fn builder(n: usize, object: O) -> Result<TreeClientBuilder<O>, CoreError> {
        if n == 0 {
            return Err(CoreError::Order("n must be at least 1".into()));
        }
        let n64 = n as u64;
        if n64 > leaves_of_order(MAX_ORDER) {
            return Err(CoreError::Order(format!(
                "n={n} beyond the largest supported network"
            )));
        }
        let k = if let Some(k) = exact_order(n64) { k } else { order_for(n64) };
        Ok(TreeClientBuilder {
            k,
            trace: TraceMode::Contacts,
            policy: DeliveryPolicy::default(),
            retirement: RetirementPolicy::default(),
            pool: PoolPolicy::default(),
            object,
        })
    }

    /// The tree order `k`.
    #[must_use]
    pub fn order(&self) -> u32 {
        self.proto.topology().order()
    }

    /// Number of processors (rounded up to `k^(k+1)`).
    #[must_use]
    pub fn processors(&self) -> usize {
        self.net.processors()
    }

    /// The tree topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        self.proto.topology()
    }

    /// The lemma auditor's view of the run so far.
    #[must_use]
    pub fn audit(&self) -> &CounterAudit {
        self.proto.audit()
    }

    /// The hosted object's current state.
    #[must_use]
    pub fn object(&self) -> &O {
        self.proto.object()
    }

    /// The processor currently working for `node`.
    #[must_use]
    pub fn worker_of(&self, node: NodeRef) -> ProcessorId {
        self.proto.worker_of(node)
    }

    /// Per-processor message loads since construction.
    #[must_use]
    pub fn loads(&self) -> &LoadTracker {
        self.net.loads()
    }

    /// Number of operations executed.
    #[must_use]
    pub fn ops_executed(&self) -> usize {
        self.next_op
    }

    /// Executes one operation initiated by `initiator`, running the whole
    /// process (including retirement cascades) to quiescence.
    ///
    /// # Errors
    ///
    /// * [`SimError::UnknownProcessor`] if `initiator` is out of range.
    /// * [`SimError::MessageCapExceeded`] if the protocol fails to
    ///   quiesce.
    ///
    /// # Panics
    ///
    /// Panics if the protocol quiesces without delivering a response to
    /// the initiator — a protocol bug, not a user condition.
    pub fn invoke(
        &mut self,
        initiator: ProcessorId,
        req: O::Request,
    ) -> Result<InvokeResult<O::Response>, SimError> {
        if initiator.index() >= self.net.processors() {
            return Err(SimError::UnknownProcessor {
                index: initiator.index(),
                processors: self.net.processors(),
            });
        }
        let op = OpId::new(self.next_op);
        self.next_op += 1;
        self.proto.audit_mut().begin_op();
        let leaf_parent = self.proto.topology().leaf_parent(initiator.index() as u64);
        let worker = self.proto.worker_of(leaf_parent);
        self.net.inject(
            op,
            initiator,
            worker,
            TreeMsg::Apply { node: leaf_parent, origin: initiator, req },
        );
        let stats = self.net.run_to_quiescence(&mut self.proto)?;
        self.proto.audit_mut().end_op();
        let trace = self.net.finish_op(op);
        let response = self
            .proto
            .take_pending_response()
            .expect("operation must deliver a response to the initiator before quiescence");
        Ok(InvokeResult { response, messages: stats.delivered, completed_at: stats.end_time, trace })
    }

    /// Whether the client retires workers (false for the static-tree
    /// ablation).
    #[must_use]
    pub fn retirement_enabled(&self) -> bool {
        self.proto.threshold().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{FlipBitObject, PqRequest, PqResponse, PriorityQueueObject};

    #[test]
    fn flip_bit_through_the_tree() {
        let mut bit = TreeClient::new(8, FlipBitObject::new()).expect("client");
        for i in 0..8usize {
            let r = bit.invoke(ProcessorId::new(i), ()).expect("invoke");
            assert_eq!(r.response, i % 2 == 1, "flips alternate");
        }
        assert!(!bit.object().bit(), "8 flips return to false");
        assert!(bit.audit().retirement_lemma_holds());
    }

    #[test]
    fn priority_queue_through_the_tree() {
        let mut pq = TreeClient::new(8, PriorityQueueObject::new()).expect("client");
        for (i, key) in [42u64, 7, 19].iter().enumerate() {
            let r = pq.invoke(ProcessorId::new(i), PqRequest::Insert(*key)).expect("insert");
            assert_eq!(r.response, PqResponse::Inserted { len: i as u64 + 1 });
        }
        let r = pq.invoke(ProcessorId::new(5), PqRequest::ExtractMin).expect("extract");
        assert_eq!(r.response, PqResponse::Min(Some(7)));
        assert_eq!(pq.object().len(), 2);
    }

    #[test]
    fn generic_client_keeps_the_bottleneck_guarantee() {
        // The O(k) bottleneck is object-independent: one op per processor
        // on the flip bit stays within 20k, same as the counter.
        let mut bit = TreeClient::new(81, FlipBitObject::new()).expect("client");
        for i in 0..81usize {
            bit.invoke(ProcessorId::new(i), ()).expect("invoke");
        }
        assert!(bit.loads().max_load() <= 20 * 3);
        assert!(bit.audit().grow_old_lemma_holds());
        assert!(bit.audit().retirement_counts_within_pools(bit.topology()));
    }

    #[test]
    fn construction_validation() {
        assert!(TreeClient::new(0, FlipBitObject::new()).is_err());
        let client = TreeClient::new(50, FlipBitObject::new()).expect("rounds up");
        assert_eq!(client.processors(), 81);
        assert_eq!(client.order(), 3);
        assert!(client.retirement_enabled());
    }

    #[test]
    fn unknown_initiator_rejected() {
        let mut bit = TreeClient::new(8, FlipBitObject::new()).expect("client");
        let err = bit.invoke(ProcessorId::new(99), ()).unwrap_err();
        assert_eq!(err, SimError::UnknownProcessor { index: 99, processors: 8 });
    }
}
