//! Arithmetic around the paper's tree order `k`.
//!
//! The lower bound says some processor exchanges Ω(k) messages where
//! `k·k^k = k^(k+1) = n`; the matching tree has arity `k`, inner levels
//! `0..=k` and `n = k^(k+1)` leaves. This module solves for `k` given `n`
//! (exactly, or rounded up as the paper suggests: "simply increase n to
//! the next higher value of the form k·k^k"), and provides the continuous
//! approximation `k ≈ ln n / ln ln n` used in plots.

/// Largest tree order the simulator supports: `k^(k+1)` must fit the
/// `u32`-indexed processor space (`9^10 ≈ 3.49e9 < 2^32 < 10^11`).
pub const MAX_ORDER: u32 = 9;

/// Computes `k^(k+1)` — the number of leaves (= processors) of an order-k
/// tree.
///
/// # Panics
///
/// Panics if `k == 0` or `k > MAX_ORDER`.
///
/// # Examples
///
/// ```
/// use distctr_core::kmath::leaves_of_order;
/// assert_eq!(leaves_of_order(1), 1);
/// assert_eq!(leaves_of_order(2), 8);
/// assert_eq!(leaves_of_order(3), 81);
/// assert_eq!(leaves_of_order(4), 1024);
/// assert_eq!(leaves_of_order(5), 15_625);
/// ```
#[must_use]
pub fn leaves_of_order(k: u32) -> u64 {
    assert!(k >= 1, "tree order k must be at least 1");
    assert!(k <= MAX_ORDER, "tree order k={k} exceeds MAX_ORDER={MAX_ORDER}");
    (k as u64).pow(k + 1)
}

/// The smallest order `k` with `k^(k+1) >= n` — the paper's rounding rule
/// for arbitrary `n`.
///
/// # Panics
///
/// Panics if `n == 0` or `n > leaves_of_order(MAX_ORDER)`.
///
/// # Examples
///
/// ```
/// use distctr_core::kmath::order_for;
/// assert_eq!(order_for(1), 1);
/// assert_eq!(order_for(2), 2);
/// assert_eq!(order_for(8), 2);
/// assert_eq!(order_for(9), 3);
/// assert_eq!(order_for(1024), 4);
/// assert_eq!(order_for(1025), 5);
/// ```
#[must_use]
pub fn order_for(n: u64) -> u32 {
    assert!(n >= 1, "n must be at least 1");
    assert!(
        n <= leaves_of_order(MAX_ORDER),
        "n={n} exceeds the largest supported network {}",
        leaves_of_order(MAX_ORDER)
    );
    (1..=MAX_ORDER).find(|&k| leaves_of_order(k) >= n).expect("checked against MAX_ORDER")
}

/// The tree order to build for a target fleet of `n` processors: the
/// inverse of `n = k^(k+1)`, rounded up (so the built tree has at least
/// `n` leaves), clamped to [`MAX_ORDER`]. Unlike [`order_for`] it is
/// total — oversized requests saturate at the largest supported tree
/// instead of panicking — which makes it the right sizing function for
/// benchmark sweeps that probe the upper end of the processor space.
/// Asymptotically `k_for_n(n) ≈ ln n / ln ln n`, the paper's bound.
///
/// # Examples
///
/// ```
/// use distctr_core::kmath::{k_for_n, MAX_ORDER};
/// assert_eq!(k_for_n(0), 1);
/// assert_eq!(k_for_n(81), 3);
/// assert_eq!(k_for_n(82), 4);
/// assert_eq!(k_for_n(1_000_000), 7); // 7^8 = 5_764_801 covers 1e6
/// assert_eq!(k_for_n(u64::MAX), MAX_ORDER);
/// ```
#[must_use]
pub fn k_for_n(n: u64) -> u32 {
    (1..=MAX_ORDER).find(|&k| leaves_of_order(k) >= n).unwrap_or(MAX_ORDER)
}

/// The exact order if `n` is of the form `k^(k+1)`, else `None`.
///
/// # Examples
///
/// ```
/// use distctr_core::kmath::exact_order;
/// assert_eq!(exact_order(81), Some(3));
/// assert_eq!(exact_order(82), None);
/// ```
#[must_use]
pub fn exact_order(n: u64) -> Option<u32> {
    if n == 0 || n > leaves_of_order(MAX_ORDER) {
        return None;
    }
    let k = order_for(n);
    (leaves_of_order(k) == n).then_some(k)
}

/// The paper's lower bound on the bottleneck load for `n` sequential
/// operations spread over `n` processors: the `k` with `k^(k+1) = n`,
/// rounded *down* for intermediate `n` (a valid bound since the bound is
/// monotone in `n`).
///
/// # Examples
///
/// ```
/// use distctr_core::kmath::bottleneck_lower_bound;
/// assert_eq!(bottleneck_lower_bound(8), 2);
/// assert_eq!(bottleneck_lower_bound(80), 2);
/// assert_eq!(bottleneck_lower_bound(81), 3);
/// assert_eq!(bottleneck_lower_bound(1_000_000), 6); // 6^7 = 279936 <= 1e6
/// ```
#[must_use]
pub fn bottleneck_lower_bound(n: u64) -> u32 {
    assert!(n >= 1, "n must be at least 1");
    (1..=MAX_ORDER).rev().find(|&k| leaves_of_order(k) <= n).unwrap_or(1)
}

/// Continuous approximation of the bound: the solution `x` of
/// `x^(x+1) = n`, close to `ln n / ln ln n` for large `n`. Used for plot
/// overlays; the discrete [`bottleneck_lower_bound`] is the real bound.
///
/// Returns 1.0 for `n <= 1`.
#[must_use]
pub fn continuous_order(n: f64) -> f64 {
    if n <= 1.0 {
        return 1.0;
    }
    let target = n.ln();
    // Solve (x+1) ln x = ln n by Newton iteration; f is increasing for
    // x >= 1 so bisection-seeded Newton converges fast.
    let mut x = (target / target.ln().max(1.0)).max(1.0);
    for _ in 0..64 {
        let f = (x + 1.0) * x.ln() - target;
        let fp = x.ln() + (x + 1.0) / x;
        let next = x - f / fp;
        if !next.is_finite() {
            break;
        }
        let next = next.max(1.0);
        if (next - x).abs() < 1e-12 {
            x = next;
            break;
        }
        x = next;
    }
    x
}

/// The paper's retirement age threshold for an order-`k` tree: a worker
/// retires once its node has sent or received `4k` messages. Both
/// backends (and the engine's default policy) call this so they cannot
/// disagree on when a node retires.
///
/// # Examples
///
/// ```
/// use distctr_core::kmath::retirement_threshold;
/// assert_eq!(retirement_threshold(2), 8);
/// assert_eq!(retirement_threshold(3), 12);
/// ```
#[must_use]
pub fn retirement_threshold(k: u32) -> u64 {
    4 * u64::from(k)
}

/// The pool index of the next replacement worker after `cursor` in a
/// pool of `size` ids, or `None` if no successor is available: a
/// one-shot pool (`recycle = false`, the paper's dimensioning) is
/// exhausted once the cursor reaches its last id, while a recycling pool
/// wraps around and only a singleton pool (no one to hand to) blocks.
///
/// # Examples
///
/// ```
/// use distctr_core::kmath::next_pool_index;
/// assert_eq!(next_pool_index(0, 3, false), Some(1));
/// assert_eq!(next_pool_index(2, 3, false), None); // one-shot: drained
/// assert_eq!(next_pool_index(2, 3, true), Some(0)); // recycling: wraps
/// assert_eq!(next_pool_index(0, 1, true), None); // singleton: stuck
/// ```
#[must_use]
pub fn next_pool_index(cursor: u64, size: u64, recycle: bool) -> Option<u64> {
    if recycle {
        (size > 1).then(|| (cursor + 1) % size)
    } else {
        (cursor + 1 < size).then(|| cursor + 1)
    }
}

/// Amortized messages charged per increment when traversals are batched:
/// a unit inc costs one message per tree level (`k + 1` hops from the
/// leaf parent to the root), a batch of `m` incs shares one traversal,
/// so each member is charged `(k + 1) / m` — the O(k / m) amortization
/// that batched combining buys without giving up exact values.
///
/// # Examples
///
/// ```
/// use distctr_core::kmath::amortized_msgs_per_inc;
/// assert_eq!(amortized_msgs_per_inc(3, 1), 4.0); // k+1 hops, unbatched
/// assert_eq!(amortized_msgs_per_inc(3, 4), 1.0);
/// assert_eq!(amortized_msgs_per_inc(2, 6), 0.5);
/// assert_eq!(amortized_msgs_per_inc(2, 0), 3.0); // empty batch = unit
/// ```
#[must_use]
pub fn amortized_msgs_per_inc(k: u32, batch: u64) -> f64 {
    let hops = f64::from(k) + 1.0;
    hops / batch.max(1) as f64
}

/// `k^e` as `u64`, for id-block arithmetic.
///
/// # Panics
///
/// Panics on overflow — callers stay within `k <= MAX_ORDER`, where all
/// block sizes fit comfortably.
#[must_use]
pub fn pow_u64(k: u32, e: u32) -> u64 {
    (k as u64).checked_pow(e).expect("k^e fits in u64 for supported orders")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaves_table() {
        let expected = [(1, 1u64), (2, 8), (3, 81), (4, 1024), (5, 15_625), (6, 279_936)];
        for (k, n) in expected {
            assert_eq!(leaves_of_order(k), n, "k={k}");
        }
    }

    #[test]
    fn max_order_fits_u32_processor_space() {
        assert!(leaves_of_order(MAX_ORDER) < u32::MAX as u64);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_order_rejected() {
        let _ = leaves_of_order(0);
    }

    #[test]
    #[should_panic(expected = "MAX_ORDER")]
    fn huge_order_rejected() {
        let _ = leaves_of_order(MAX_ORDER + 1);
    }

    #[test]
    fn order_for_rounds_up() {
        assert_eq!(order_for(1), 1);
        for n in 2..=8 {
            assert_eq!(order_for(n), 2, "n={n}");
        }
        for n in 9..=81 {
            assert_eq!(order_for(n), 3, "n={n}");
        }
        assert_eq!(order_for(82), 4);
        assert_eq!(order_for(leaves_of_order(MAX_ORDER)), MAX_ORDER);
    }

    #[test]
    fn order_and_bound_sandwich_every_n() {
        for n in 1..5000u64 {
            let up = order_for(n);
            let down = bottleneck_lower_bound(n);
            assert!(leaves_of_order(up) >= n);
            assert!(leaves_of_order(down) <= n || down == 1);
            assert!(up.saturating_sub(down) <= 1, "n={n}: up={up}, down={down}");
        }
    }

    #[test]
    fn k_for_n_properties() {
        // Exact inverse on every representable k^(k+1).
        for k in 1..=MAX_ORDER {
            assert_eq!(k_for_n(leaves_of_order(k)), k, "exact inverse at k={k}");
        }
        // Monotone, total, and in-between n rounds up by exactly the
        // amount the sandwich with the lower bound allows.
        let mut last = 0;
        for n in (0..200_000u64).step_by(97).chain([u64::MAX / 2, u64::MAX]) {
            let k = k_for_n(n);
            assert!(k >= last, "monotone: n={n}");
            last = k;
            assert!((1..=MAX_ORDER).contains(&k));
            // The built tree covers the request (until the clamp).
            if n <= leaves_of_order(MAX_ORDER) {
                assert!(leaves_of_order(k) >= n, "n={n} covered by k={k}");
                if n >= 1 {
                    assert_eq!(k, order_for(n), "agrees with order_for in range");
                    let down = bottleneck_lower_bound(n);
                    assert!(k.saturating_sub(down) <= 1, "sandwich: n={n}");
                }
            } else {
                assert_eq!(k, MAX_ORDER, "oversized requests saturate");
            }
            // Consistent with the continuous solution: the discrete
            // order is its ceiling (within float slack) while in range.
            if (2..=leaves_of_order(MAX_ORDER)).contains(&n) {
                let x = continuous_order(n as f64);
                assert!(
                    f64::from(k) + 1e-6 >= x && f64::from(k) - x < 1.0 + 1e-6,
                    "n={n}: k={k} should be ceil of continuous {x}"
                );
            }
        }
    }

    #[test]
    fn exact_order_only_on_exact_sizes() {
        for k in 1..=6 {
            assert_eq!(exact_order(leaves_of_order(k)), Some(k));
            assert_eq!(exact_order(leaves_of_order(k) + 1), None);
        }
        assert_eq!(exact_order(0), None);
    }

    #[test]
    fn continuous_order_matches_discrete_on_exact_points() {
        for k in 2..=6u32 {
            let n = leaves_of_order(k) as f64;
            let x = continuous_order(n);
            assert!(
                (x - k as f64).abs() < 1e-6,
                "continuous solution at n=k^(k+1) should be k: k={k}, x={x}"
            );
        }
    }

    #[test]
    fn continuous_order_is_monotone() {
        let mut last = 0.0;
        for exp in 1..18 {
            let x = continuous_order(10f64.powi(exp));
            assert!(x >= last, "monotone in n");
            last = x;
        }
    }

    #[test]
    fn continuous_order_degenerate_inputs() {
        assert_eq!(continuous_order(0.0), 1.0);
        assert_eq!(continuous_order(1.0), 1.0);
        assert!(continuous_order(1.5) >= 1.0);
    }

    #[test]
    fn retirement_threshold_is_four_k() {
        for k in 1..=MAX_ORDER {
            assert_eq!(retirement_threshold(k), 4 * u64::from(k));
        }
    }

    #[test]
    fn one_shot_pools_drain_and_recycling_pools_wrap() {
        // One-shot: walk 0 → size-1, then stop forever.
        let mut cursor = 0;
        let mut steps = 0;
        while let Some(next) = next_pool_index(cursor, 4, false) {
            assert_eq!(next, cursor + 1);
            cursor = next;
            steps += 1;
        }
        assert_eq!((cursor, steps), (3, 3), "one-shot visits each id once");
        // Recycling: the walk never ends and cycles through every id.
        let mut cursor = 0;
        for step in 1..=8u64 {
            cursor = next_pool_index(cursor, 4, true).expect("recycling never drains");
            assert_eq!(cursor, step % 4);
        }
        // Singleton pools block either way.
        assert_eq!(next_pool_index(0, 1, false), None);
        assert_eq!(next_pool_index(0, 1, true), None);
    }

    #[test]
    fn amortized_load_shrinks_inversely_with_the_batch() {
        for k in 1..=MAX_ORDER {
            let unit = amortized_msgs_per_inc(k, 1);
            assert_eq!(unit, f64::from(k) + 1.0, "unbatched = one msg per level");
            for m in [2u64, 8, 32] {
                let batched = amortized_msgs_per_inc(k, m);
                assert!((batched * m as f64 - unit).abs() < 1e-12, "k={k}, m={m}");
            }
        }
    }

    #[test]
    fn pow_u64_small_cases() {
        assert_eq!(pow_u64(3, 0), 1);
        assert_eq!(pow_u64(3, 4), 81);
        assert_eq!(pow_u64(9, 10), 3_486_784_401);
    }
}
