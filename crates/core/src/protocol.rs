//! The retirement-tree protocol state machine.
//!
//! One [`TreeProtocol`] value holds the state of every inner node (the
//! simulator is single-threaded; keeping the states in one flat vector
//! indexed by [`Topology::flat_index`] is both simple and fast) plus the
//! hosted [`RootObject`], and reacts to message deliveries:
//!
//! * `Apply` climbs the tree toward the root, aging each node by 2 (one
//!   receive + one forward);
//! * at the root, the object applies the request and the response is
//!   sent straight back to the operation's initiator;
//! * any node whose age reaches the retirement threshold (the paper's
//!   `4k`) retires: it hands its job to the next processor of its
//!   replacement pool in k+1 unit messages and notifies its parent and
//!   children, whose ages grow by 1 each — possibly cascading.
//!
//! Messages that reach a processor no longer working for the target node
//! (possible under adversarial delivery while a handoff is in flight) are
//! forwarded to the current worker — the "proper handshaking protocol
//! with a constant number of extra messages" the paper sketches.
//!
//! ## Crash recovery as forced retirement
//!
//! The paper assumes "no failures occur"; this implementation extends the
//! retirement pool into a failure-recovery mechanism. When a worker
//! crashes, its pool successor (promoted by a watchdog timeout, modelled
//! as a [`TreeMsg::RecoverPromote`] self-message) performs a *forced
//! retirement*: because the dead worker can no longer send its k+1
//! handoff parts, the successor rebuilds the node's k+2-value state by
//! querying the node's neighbours ([`TreeMsg::RebuildQuery`]) and
//! collecting one unit share from each ([`TreeMsg::RebuildShare`]). Once
//! every neighbour has answered, the successor takes over exactly as if a
//! normal handoff had completed and notifies parent and children.
//! Recovery messages do not age nodes; they are tracked by the audit as
//! the explicit slack term of the fault-aware load bound.
//!
//! Two explicit stable-storage assumptions make root crashes recoverable:
//! the hosted object's state and the per-operation reply cache survive a
//! crash of the root's worker (in the simulator both live in the
//! [`TreeProtocol`] value rather than per-processor memory, which models
//! exactly that). The reply cache, enabled in fault-tolerant mode, makes
//! retried operations exactly-once: a re-sent `Apply` for an operation
//! the root already executed returns the cached response instead of
//! applying twice.

use std::collections::HashMap;

use distctr_sim::{Outbox, ProcessorId, Protocol};

use crate::audit::CounterAudit;
use crate::messages::TreeMsg;
use crate::node::NodeState;
use crate::object::{CounterObject, RootObject};
use crate::topology::{NodeRef, Topology};

/// Retirement behaviour of the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetirementPolicy {
    /// The paper's threshold: retire at age `4k`.
    #[default]
    PaperDefault,
    /// Retire at a custom age (ablation experiments).
    AfterAge(u64),
    /// Never retire — this is exactly the static-tree baseline the paper
    /// argues is bottlenecked at the root.
    Never,
}

impl RetirementPolicy {
    /// The concrete age threshold for an order-`k` tree, or `None` for
    /// [`RetirementPolicy::Never`].
    #[must_use]
    pub fn threshold(self, k: u32) -> Option<u64> {
        match self {
            RetirementPolicy::PaperDefault => Some(4 * k as u64),
            RetirementPolicy::AfterAge(age) => Some(age.max(1)),
            RetirementPolicy::Never => None,
        }
    }
}

/// How a node's replacement pool is consumed.
///
/// The paper dimensions each pool for the canonical workload (each
/// processor increments exactly once): `pool_size - 1` retirements
/// suffice, and a drained pool is never touched again. For longer
/// operation sequences (M rounds of the canonical workload) that
/// dimensioning is too small — [`PoolPolicy::Recycling`] wraps around the
/// pool instead, keeping the *amortized* per-processor load at O(k) per
/// round. This is an extension beyond the paper, exercised by experiment
/// E15.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PoolPolicy {
    /// The paper's scheme: a node stops retiring when its pool is
    /// exhausted.
    #[default]
    OneShot,
    /// Wrap around the pool: after the last id, reuse the first.
    Recycling,
}

/// Complete protocol state: topology, per-node state, audit, the hosted
/// object, and the response pending delivery to the current operation's
/// initiator.
#[derive(Debug, Clone)]
pub struct TreeProtocol<O: RootObject = CounterObject> {
    topo: Topology,
    nodes: Vec<NodeState>,
    threshold: Option<u64>,
    pool_policy: PoolPolicy,
    pending_response: Option<O::Response>,
    audit: CounterAudit,
    object: O,
    /// Whether crash-recovery machinery (root reply cache) is armed.
    fault_tolerant: bool,
    /// Responses already produced by the root, keyed by operation index.
    /// Stable storage for exactly-once retries; only populated in
    /// fault-tolerant mode, so fault-free runs pay nothing.
    reply_cache: HashMap<usize, O::Response>,
}

impl<O: RootObject> TreeProtocol<O> {
    /// Builds the initial protocol state for `topo`, hosting `object` at
    /// the root.
    #[must_use]
    pub fn new(topo: Topology, retirement: RetirementPolicy, object: O) -> Self {
        Self::with_pool_policy(topo, retirement, PoolPolicy::OneShot, object)
    }

    /// Builds the protocol with an explicit pool policy.
    #[must_use]
    pub fn with_pool_policy(
        topo: Topology,
        retirement: RetirementPolicy,
        pool_policy: PoolPolicy,
        object: O,
    ) -> Self {
        let nodes: Vec<NodeState> =
            topo.nodes().map(|n| NodeState::new(topo.initial_worker(n))).collect();
        let audit = CounterAudit::new(&topo);
        let threshold = retirement.threshold(topo.order());
        TreeProtocol {
            topo,
            nodes,
            threshold,
            pool_policy,
            pending_response: None,
            audit,
            object,
            fault_tolerant: false,
            reply_cache: HashMap::new(),
        }
    }

    /// The pool policy in force.
    #[must_use]
    pub fn pool_policy(&self) -> PoolPolicy {
        self.pool_policy
    }

    /// The tree topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The lemma auditor.
    #[must_use]
    pub fn audit(&self) -> &CounterAudit {
        &self.audit
    }

    /// Mutable access for op bracketing by the client.
    pub(crate) fn audit_mut(&mut self) -> &mut CounterAudit {
        &mut self.audit
    }

    /// The hosted object's current state.
    #[must_use]
    pub fn object(&self) -> &O {
        &self.object
    }

    /// Current worker of `node`.
    #[must_use]
    pub fn worker_of(&self, node: NodeRef) -> ProcessorId {
        self.nodes[self.topo.flat_index(node)].worker
    }

    /// Age of `node` in its current stint.
    #[must_use]
    pub fn age_of(&self, node: NodeRef) -> u64 {
        self.nodes[self.topo.flat_index(node)].age
    }

    /// The retirement age threshold in force, if any.
    #[must_use]
    pub fn threshold(&self) -> Option<u64> {
        self.threshold
    }

    /// Takes the response delivered to the current operation's initiator.
    pub(crate) fn take_pending_response(&mut self) -> Option<O::Response> {
        self.pending_response.take()
    }

    /// Whether crash-recovery machinery is armed.
    #[must_use]
    pub fn fault_tolerant(&self) -> bool {
        self.fault_tolerant
    }

    /// Arms the crash-recovery machinery: the root caches one response
    /// per operation so watchdog retries are exactly-once.
    pub fn set_fault_tolerant(&mut self, enabled: bool) {
        self.fault_tolerant = enabled;
    }

    /// State of the node with flat index `flat` (used by the client's
    /// watchdog to find crashed or stuck workers).
    #[must_use]
    pub fn node_state(&self, flat: usize) -> &NodeState {
        &self.nodes[flat]
    }

    /// How many rebuild shares a recovery of `node` must collect: one per
    /// inner neighbour (parent plus inner children). Leaf children hold no
    /// share — but level-k nodes have singleton pools and are never
    /// promoted in the first place.
    #[must_use]
    pub fn expected_shares(&self, node: NodeRef) -> u32 {
        let parent = u32::from(self.topo.parent(node).is_some());
        let children = self.topo.inner_children(node).map_or(0, |c| c.len() as u32);
        parent + children
    }

    /// The response waiting for the current operation's initiator, if
    /// delivered (read-only; used by the schedule explorer's invariants).
    #[must_use]
    pub fn peek_response(&self) -> Option<&O::Response> {
        self.pending_response.as_ref()
    }

    fn handle_apply(
        &mut self,
        out: &mut Outbox<'_, TreeMsg<O::Request, O::Response>>,
        node: NodeRef,
        origin: ProcessorId,
        req: O::Request,
    ) {
        let flat = self.topo.flat_index(node);
        if self.nodes[flat].worker != out.me() {
            // Shim: this processor retired from the node; forward to the
            // current worker (counts as one extra message, as in the
            // paper's handshake argument).
            self.audit.record_shim_forward();
            let worker = self.nodes[flat].worker;
            out.send(worker, TreeMsg::Apply { node, origin, req });
            return;
        }
        self.audit.record_kind("apply");
        self.audit.record_node_msgs(flat, 2);
        self.nodes[flat].grow_older(2);
        if node == NodeRef::ROOT {
            // In fault-tolerant mode the root deduplicates by operation:
            // a retried (or network-duplicated) Apply for an operation
            // already executed re-sends the cached response instead of
            // applying twice.
            let resp = if self.fault_tolerant {
                self.reply_cache
                    .entry(out.op().index())
                    .or_insert_with(|| self.object.apply(req))
                    .clone()
            } else {
                self.object.apply(req)
            };
            out.send(origin, TreeMsg::Reply { resp });
        } else {
            let parent = self.topo.parent(node).expect("non-root has a parent");
            let parent_worker = self.nodes[self.topo.flat_index(parent)].worker;
            out.send(parent_worker, TreeMsg::Apply { node: parent, origin, req });
        }
        self.maybe_retire(out, node, flat);
    }

    fn handle_new_worker(
        &mut self,
        out: &mut Outbox<'_, TreeMsg<O::Request, O::Response>>,
        msg: TreeMsg<O::Request, O::Response>,
    ) {
        let TreeMsg::NewWorker { node, .. } = &msg else { unreachable!() };
        let node = *node;
        let flat = self.topo.flat_index(node);
        if self.nodes[flat].worker != out.me() && !self.nodes[flat].handing_off {
            self.audit.record_shim_forward();
            let worker = self.nodes[flat].worker;
            out.send(worker, msg);
            return;
        }
        self.audit.record_kind("new-worker");
        self.audit.record_node_msgs(flat, 1);
        self.nodes[flat].grow_older(1);
        self.maybe_retire(out, node, flat);
    }

    fn handle_handoff(&mut self, node: NodeRef, total: u32) {
        self.audit.record_kind("handoff");
        let flat = self.topo.flat_index(node);
        if self.nodes[flat].receive_handoff_part(total) {
            self.audit.record_stint_complete(flat, total.into());
        }
    }

    /// The successor's watchdog fired: start (or restart) the forced
    /// retirement of `node` with `out.me()` as the replacement worker.
    fn handle_recover_promote(
        &mut self,
        out: &mut Outbox<'_, TreeMsg<O::Request, O::Response>>,
        node: NodeRef,
    ) {
        self.audit.record_kind("recover-promote");
        let flat = self.topo.flat_index(node);
        if self.nodes[flat].worker == out.me() && !self.nodes[flat].recovering {
            // Stale promotion: this processor already took over.
            return;
        }
        self.nodes[flat].begin_recovery(out.me());
        // One unit query per neighbour that holds a share of the node's
        // state: the parent knows the node's place in its pool, each
        // inner child knows its own id.
        let mut queries = 0u64;
        if let Some(parent) = self.topo.parent(node) {
            let w = self.reachable_worker(self.topo.flat_index(parent));
            out.send(w, TreeMsg::RebuildQuery { node, successor: out.me() });
            queries += 1;
        }
        if let Some(children) = self.topo.inner_children(node) {
            for child in children {
                let w = self.reachable_worker(self.topo.flat_index(child));
                out.send(w, TreeMsg::RebuildQuery { node, successor: out.me() });
                queries += 1;
            }
        }
        // The promote delivery plus the queries it sent.
        self.audit.record_recovery_msgs(1 + queries);
    }

    /// Where to address recovery traffic for the node with flat index
    /// `flat`: its worker, or — when the node is itself mid-recovery (its
    /// worker crashed too; pools overlap along root paths, so one crash
    /// can take out a whole ancestor chain) — the successor being
    /// promoted for it. Any pool member can answer a rebuild query, since
    /// a share's content is the neighbour's own identity.
    fn reachable_worker(&self, flat: usize) -> ProcessorId {
        let st = &self.nodes[flat];
        if st.recovering {
            st.pending_worker.unwrap_or(st.worker)
        } else {
            st.worker
        }
    }

    /// A neighbour's worker answers a rebuild query with its unit share.
    fn handle_rebuild_query(
        &mut self,
        out: &mut Outbox<'_, TreeMsg<O::Request, O::Response>>,
        node: NodeRef,
        successor: ProcessorId,
    ) {
        self.audit.record_kind("rebuild-query");
        // Query received plus share sent. Any processor that serves (or
        // served) the neighbour can answer — the share's content is the
        // neighbour's own identity, which every pool member knows.
        self.audit.record_recovery_msgs(2);
        out.send(successor, TreeMsg::RebuildShare { node });
    }

    /// One share of the rebuilt state arrived at the promoted successor.
    fn handle_rebuild_share(
        &mut self,
        out: &mut Outbox<'_, TreeMsg<O::Request, O::Response>>,
        node: NodeRef,
    ) {
        self.audit.record_kind("rebuild-share");
        self.audit.record_recovery_msgs(1);
        let flat = self.topo.flat_index(node);
        let needed = self.expected_shares(node);
        if !self.nodes[flat].receive_rebuild_share(needed) {
            return;
        }
        // Recovery complete: the successor is installed (age 0). Align
        // the pool cursor with the promoted worker so a later ordinary
        // retirement continues from the right place in the pool.
        let pool = self.topo.pool(node);
        let me = out.me().index() as u64;
        debug_assert!(pool.contains(&me), "successor must come from the node's pool");
        self.nodes[flat].pool_cursor = me - pool.start;
        self.audit.record_recovery(node);
        self.audit.record_stint_complete(flat, u64::from(needed));
        // Parent and children learn the new worker id through the normal
        // notification messages (ordinary, aging traffic).
        let mut notifications = 0u64;
        if let Some(parent) = self.topo.parent(node) {
            let w = self.nodes[self.topo.flat_index(parent)].worker;
            out.send(w, TreeMsg::NewWorker { node: parent, retired: node, new_worker: out.me() });
            notifications += 1;
        }
        match self.topo.inner_children(node) {
            Some(children) => {
                for child in children {
                    let w = self.nodes[self.topo.flat_index(child)].worker;
                    out.send(
                        w,
                        TreeMsg::NewWorker { node: child, retired: node, new_worker: out.me() },
                    );
                    notifications += 1;
                }
            }
            None => {
                for leaf in self.topo.leaf_children(node) {
                    out.send(leaf, TreeMsg::NewWorkerLeaf { retired: node, new_worker: out.me() });
                    notifications += 1;
                }
            }
        }
        self.audit.record_node_msgs(flat, notifications);
    }

    fn maybe_retire(
        &mut self,
        out: &mut Outbox<'_, TreeMsg<O::Request, O::Response>>,
        node: NodeRef,
        flat: usize,
    ) {
        let Some(threshold) = self.threshold else { return };
        if self.nodes[flat].handing_off || self.nodes[flat].age < threshold {
            return;
        }
        let pool = self.topo.pool(node);
        let size = pool.end - pool.start;
        let blocked = match self.pool_policy {
            // Under the paper's dimensioning a drained pool is
            // unreachable for the canonical workload (the audit asserts
            // so); the node soldiers on with a reset age.
            PoolPolicy::OneShot => self.nodes[flat].pool_cursor + 1 >= size,
            // Recycling wraps; only a singleton pool (no one to hand to)
            // blocks.
            PoolPolicy::Recycling => size <= 1,
        };
        if blocked {
            self.audit.record_pool_exhausted(node);
            self.nodes[flat].age = 0;
            return;
        }
        let next_index = (self.nodes[flat].pool_cursor + 1) % size;
        let successor = ProcessorId::new((pool.start + next_index) as usize);
        self.audit.record_retirement(node, flat);
        self.nodes[flat].begin_retirement(successor);

        // k+1 unit messages transfer the job to the successor.
        let parts = self.topo.order() + 1;
        for part in 0..parts {
            out.send(successor, TreeMsg::Handoff { node, part, total: parts });
        }
        // Notify parent and children of the new worker id. The root
        // "saves the message that would inform the parent".
        let mut notifications = 0u64;
        if let Some(parent) = self.topo.parent(node) {
            let w = self.nodes[self.topo.flat_index(parent)].worker;
            out.send(w, TreeMsg::NewWorker { node: parent, retired: node, new_worker: successor });
            notifications += 1;
        }
        match self.topo.inner_children(node) {
            Some(children) => {
                for child in children {
                    let w = self.nodes[self.topo.flat_index(child)].worker;
                    out.send(
                        w,
                        TreeMsg::NewWorker { node: child, retired: node, new_worker: successor },
                    );
                    notifications += 1;
                }
            }
            None => {
                for leaf in self.topo.leaf_children(node) {
                    out.send(leaf, TreeMsg::NewWorkerLeaf { retired: node, new_worker: successor });
                    notifications += 1;
                }
            }
        }
        self.audit.record_node_msgs(flat, u64::from(parts) + notifications);
    }
}

impl<O: RootObject> Protocol for TreeProtocol<O> {
    type Msg = TreeMsg<O::Request, O::Response>;

    fn on_deliver(&mut self, out: &mut Outbox<'_, Self::Msg>, _from: ProcessorId, msg: Self::Msg) {
        match msg {
            TreeMsg::Apply { node, origin, req } => self.handle_apply(out, node, origin, req),
            TreeMsg::Reply { resp } => {
                self.audit.record_kind("reply");
                self.pending_response = Some(resp);
            }
            TreeMsg::Handoff { node, total, .. } => self.handle_handoff(node, total),
            m @ TreeMsg::NewWorker { .. } => self.handle_new_worker(out, m),
            TreeMsg::NewWorkerLeaf { .. } => {
                self.audit.record_kind("new-worker-leaf");
            }
            TreeMsg::RecoverPromote { node } => self.handle_recover_promote(out, node),
            TreeMsg::RebuildQuery { node, successor } => {
                self.handle_rebuild_query(out, node, successor);
            }
            TreeMsg::RebuildShare { node } => self.handle_rebuild_share(out, node),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retirement_policy_thresholds() {
        assert_eq!(RetirementPolicy::PaperDefault.threshold(3), Some(12));
        assert_eq!(RetirementPolicy::AfterAge(7).threshold(3), Some(7));
        assert_eq!(RetirementPolicy::AfterAge(0).threshold(3), Some(1), "clamped to 1");
        assert_eq!(RetirementPolicy::Never.threshold(3), None);
        assert_eq!(RetirementPolicy::default(), RetirementPolicy::PaperDefault);
    }

    #[test]
    fn fresh_protocol_has_initial_workers_and_zero_value() {
        let topo = Topology::new(3).expect("k=3");
        let proto: TreeProtocol =
            TreeProtocol::new(topo.clone(), RetirementPolicy::PaperDefault, CounterObject::new());
        assert_eq!(proto.object().value(), 0);
        assert_eq!(proto.threshold(), Some(12));
        for node in topo.nodes() {
            assert_eq!(proto.worker_of(node), topo.initial_worker(node));
            assert_eq!(proto.age_of(node), 0);
        }
    }

    #[test]
    fn never_policy_disables_threshold() {
        let topo = Topology::new(2).expect("k=2");
        let proto: TreeProtocol =
            TreeProtocol::new(topo, RetirementPolicy::Never, CounterObject::new());
        assert_eq!(proto.threshold(), None);
    }

    #[test]
    fn protocol_hosts_arbitrary_objects() {
        use crate::object::FlipBitObject;
        let topo = Topology::new(2).expect("k=2");
        let proto = TreeProtocol::new(topo, RetirementPolicy::PaperDefault, FlipBitObject::new());
        assert!(!proto.object().bit());
    }
}
