//! The simulator driver of the protocol engine.
//!
//! All protocol decisions live in [`crate::engine::NodeEngine`]; this
//! module adapts a fleet of per-processor engines (one per simulated
//! processor) to the discrete-event [`Network`](distctr_sim::Network):
//! each delivered message becomes an [`Event::Deliver`] for the
//! receiving processor's engine, and the resulting [`Effect`]s are
//! realized on simulator facilities:
//!
//! * [`Effect::Send`] goes back out through the [`Outbox`] (charged to
//!   the load tracker like any send);
//! * [`Effect::Reply`] parks the response for the client to collect at
//!   quiescence;
//! * [`Effect::Audit`] entries feed the [`CounterAudit`] lemma ledger
//!   and keep the *registry* — a global `NodeState` view of every
//!   node's current worker — in sync, which the client's watchdog reads
//!   to find crashed or stuck workers;
//! * [`Effect::Persist`] maintains the stable-storage shadow of the
//!   root's object and reply cache, and [`Effect::Recovered`] for the
//!   root is answered with an [`Event::Restore`] from that shadow;
//! * [`Effect::SetTimer`]/[`Effect::CancelTimer`] are ignored — the
//!   simulator realizes watchdog timeouts at quiescence (the client
//!   promotes successors between rounds), not with a timer wheel.
//!
//! ## Stable storage and the registry
//!
//! Two explicit stable-storage assumptions make root crashes
//! recoverable: the hosted object's state and the per-operation reply
//! cache survive a crash of the root's worker. The shadow kept here
//! (updated on every [`Effect::Persist`]) models exactly that. The
//! reply cache, with deduplication enabled in fault-tolerant mode,
//! makes retried operations exactly-once: a re-sent `Apply` for an
//! operation the root already executed returns the cached response
//! instead of applying twice.
//!
//! The registry is *observer* state: the engines never read it. It
//! mirrors what each engine announces through install/retire/recover
//! effects, so the watchdog (and tests) can ask "who works for this
//! node now?" without reaching into per-processor state.

use std::sync::Arc;

use distctr_sim::{Outbox, ProcessorId, Protocol};

use crate::audit::CounterAudit;
use crate::engine::{
    seed_initial_hosting, AuditEvent, Effect, Effects, EngineConfig, Event, NodeEngine, VirtualTime,
};
pub use crate::engine::{PoolPolicy, RetirementPolicy};
use crate::messages::Msg;
use crate::node::NodeState;
use crate::object::{CounterObject, RootObject};
use crate::topology::{NodeRef, Topology};

/// The simulator driver: a fleet of per-processor engines plus the
/// simulator-only facilities (registry, audit ledger, stable-storage
/// shadow, pending response).
#[derive(Debug, Clone)]
pub struct TreeProtocol<O: RootObject = CounterObject> {
    topo: Arc<Topology>,
    engines: Vec<NodeEngine<O>>,
    /// Global registry of each node's current worker (observer state for
    /// the client watchdog; engines never read it).
    nodes: Vec<NodeState>,
    threshold: Option<u64>,
    pool_policy: PoolPolicy,
    pending_response: Option<O::Response>,
    audit: CounterAudit,
    /// Whether crash-recovery machinery (root reply dedupe) is armed.
    fault_tolerant: bool,
    /// Stable-storage shadow of the root object (updated on every
    /// persist effect; survives any crash by construction).
    stable_object: O,
    /// Stable-storage shadow of the root's reply history.
    stable_replies: Vec<(u64, O::Response)>,
}

impl<O: RootObject> TreeProtocol<O> {
    /// Builds the initial protocol state for `topo`, hosting `object` at
    /// the root.
    #[must_use]
    pub fn new(topo: Topology, retirement: RetirementPolicy, object: O) -> Self {
        Self::with_pool_policy(topo, retirement, PoolPolicy::OneShot, object)
    }

    /// Builds the protocol with an explicit pool policy.
    #[must_use]
    pub fn with_pool_policy(
        topo: Topology,
        retirement: RetirementPolicy,
        pool_policy: PoolPolicy,
        object: O,
    ) -> Self {
        let topo = Arc::new(topo);
        let threshold = retirement.threshold(topo.order());
        let config = EngineConfig {
            threshold,
            pool_policy,
            // The simulator's stable storage is unbounded; the cache only
            // grows in fault-tolerant mode (dedupe off ⇒ handled fresh).
            reply_cache_cap: usize::MAX,
            dedupe: false,
            persist: true,
        };
        let mut engines: Vec<NodeEngine<O>> = (0..topo.processors() as usize)
            .map(|i| NodeEngine::new(ProcessorId::new(i), Arc::clone(&topo), config))
            .collect();
        seed_initial_hosting(&topo, &mut engines, &object);
        let nodes: Vec<NodeState> =
            topo.nodes().map(|n| NodeState::new(topo.initial_worker(n))).collect();
        let audit = CounterAudit::new(&topo);
        TreeProtocol {
            topo,
            engines,
            nodes,
            threshold,
            pool_policy,
            pending_response: None,
            audit,
            fault_tolerant: false,
            stable_object: object,
            stable_replies: Vec::new(),
        }
    }

    /// The pool policy in force.
    #[must_use]
    pub fn pool_policy(&self) -> PoolPolicy {
        self.pool_policy
    }

    /// The tree topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The lemma auditor.
    #[must_use]
    pub fn audit(&self) -> &CounterAudit {
        &self.audit
    }

    /// Mutable access for op bracketing by the client.
    pub(crate) fn audit_mut(&mut self) -> &mut CounterAudit {
        &mut self.audit
    }

    /// The hosted object's current state (the stable-storage shadow,
    /// which tracks every fresh application at the root).
    #[must_use]
    pub fn object(&self) -> &O {
        &self.stable_object
    }

    /// Current worker of `node`.
    #[must_use]
    pub fn worker_of(&self, node: NodeRef) -> ProcessorId {
        self.nodes[self.topo.flat_index(node)].worker
    }

    /// Age of `node` in its current stint.
    #[must_use]
    pub fn age_of(&self, node: NodeRef) -> u64 {
        self.nodes[self.topo.flat_index(node)].age
    }

    /// The retirement age threshold in force, if any.
    #[must_use]
    pub fn threshold(&self) -> Option<u64> {
        self.threshold
    }

    /// Takes the response delivered to the current operation's initiator.
    pub(crate) fn take_pending_response(&mut self) -> Option<O::Response> {
        self.pending_response.take()
    }

    /// Whether crash-recovery machinery is armed.
    #[must_use]
    pub fn fault_tolerant(&self) -> bool {
        self.fault_tolerant
    }

    /// Arms the crash-recovery machinery: the root caches one response
    /// per operation so watchdog retries are exactly-once.
    pub fn set_fault_tolerant(&mut self, enabled: bool) {
        self.fault_tolerant = enabled;
        for engine in &mut self.engines {
            engine.set_dedupe(enabled);
        }
    }

    /// State of the node with flat index `flat` (used by the client's
    /// watchdog to find crashed or stuck workers).
    #[must_use]
    pub fn node_state(&self, flat: usize) -> &NodeState {
        &self.nodes[flat]
    }

    /// The engine of processor `p` (read-only; tests and invariants).
    #[must_use]
    pub fn engine_of(&self, p: ProcessorId) -> &NodeEngine<O> {
        &self.engines[p.index()]
    }

    /// Per-processor engine fingerprints, in processor order — the same
    /// values the model checker and the threaded backend fold through
    /// `combined_fingerprint`, so a simulated run's final state can be
    /// compared across drivers and across refactors of the engine's
    /// internal storage.
    #[must_use]
    pub fn engine_fingerprints(&self) -> Vec<u64> {
        self.engines.iter().map(NodeEngine::fingerprint).collect()
    }

    /// How many rebuild shares a recovery of `node` must collect.
    #[must_use]
    pub fn expected_shares(&self, node: NodeRef) -> u32 {
        crate::engine::expected_shares(&self.topo, node)
    }

    /// The response waiting for the current operation's initiator, if
    /// delivered (read-only; used by the schedule explorer's invariants).
    #[must_use]
    pub fn peek_response(&self) -> Option<&O::Response> {
        self.pending_response.as_ref()
    }

    /// Realizes one batch of engine effects on the simulator.
    fn apply_effects(&mut self, out: &mut Outbox<'_, Msg<O>>, fx: Effects<O>) {
        for effect in fx {
            match effect {
                Effect::Send { to, msg } => out.send(to, msg),
                Effect::Reply { resp, .. } => self.pending_response = Some(resp),
                Effect::Retired { node, successor } => {
                    let flat = self.topo.flat_index(node);
                    self.nodes[flat].begin_retirement(successor);
                }
                Effect::Installed { node, worker, pool_cursor } => {
                    let flat = self.topo.flat_index(node);
                    let st = &mut self.nodes[flat];
                    st.worker = worker;
                    st.pending_worker = None;
                    st.handing_off = false;
                    st.pool_cursor = pool_cursor;
                }
                Effect::RecoveryStarted { node, successor } => {
                    let flat = self.topo.flat_index(node);
                    self.nodes[flat].begin_recovery(successor);
                }
                Effect::Recovered { node, worker, pool_cursor } => {
                    let flat = self.topo.flat_index(node);
                    let st = &mut self.nodes[flat];
                    st.worker = worker;
                    st.pending_worker = None;
                    st.handing_off = false;
                    st.recovering = false;
                    st.age = 0;
                    st.pool_cursor = pool_cursor;
                    if node == NodeRef::ROOT {
                        // Stable storage restores the object (and the
                        // reply history for exactly-once) at the new
                        // worker before any further delivery.
                        let restore = Event::Restore {
                            node,
                            object: self.stable_object.clone(),
                            reply_cache: self.stable_replies.clone(),
                        };
                        let now = VirtualTime(out.now().ticks());
                        let fx2 = self.engines[worker.index()].on_event(restore, now);
                        self.apply_effects(out, fx2);
                    }
                }
                Effect::Persist { object, op_seq, resp, .. } => {
                    self.stable_object = object;
                    self.stable_replies.push((op_seq, resp));
                }
                Effect::SetTimer { .. } | Effect::CancelTimer { .. } => {
                    // The client watchdog realizes timer protection at
                    // quiescence; no timer wheel in the simulator.
                }
                Effect::Audit(ev) => self.apply_audit(ev),
            }
        }
    }

    /// Maps one audit event onto the ledger and the registry.
    fn apply_audit(&mut self, ev: AuditEvent) {
        match ev {
            AuditEvent::Handled { node, kind, aged } => {
                let flat = self.topo.flat_index(node);
                self.audit.record_kind(kind);
                self.audit.record_node_msgs(flat, aged);
                self.nodes[flat].grow_older(aged);
            }
            AuditEvent::Kind(kind) => self.audit.record_kind(kind),
            AuditEvent::Traffic { node, msgs } => {
                let flat = self.topo.flat_index(node);
                self.audit.record_node_msgs(flat, msgs);
            }
            AuditEvent::ShimForward => self.audit.record_shim_forward(),
            AuditEvent::Retirement { node } => {
                let flat = self.topo.flat_index(node);
                self.audit.record_retirement(node, flat);
            }
            AuditEvent::PoolExhausted { node } => {
                let flat = self.topo.flat_index(node);
                self.audit.record_pool_exhausted(node);
                self.nodes[flat].age = 0;
            }
            AuditEvent::StintComplete { node, setup_msgs } => {
                let flat = self.topo.flat_index(node);
                self.audit.record_stint_complete(flat, setup_msgs);
            }
            AuditEvent::Recovery { node } => self.audit.record_recovery(node),
            AuditEvent::RecoveryMsgs { count } => self.audit.record_recovery_msgs(count),
            AuditEvent::Lost => {
                // An operation died inside the protocol (object state
                // missing after an unrecovered crash). The watchdog's
                // retry loop notices the missing response.
            }
        }
    }
}

impl<O: RootObject> Protocol for TreeProtocol<O> {
    type Msg = Msg<O>;

    fn on_deliver(&mut self, out: &mut Outbox<'_, Self::Msg>, _from: ProcessorId, msg: Self::Msg) {
        let now = VirtualTime(out.now().ticks());
        let fx = self.engines[out.me().index()].on_event(Event::Deliver { msg }, now);
        self.apply_effects(out, fx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retirement_policy_thresholds() {
        assert_eq!(RetirementPolicy::PaperDefault.threshold(3), Some(12));
        assert_eq!(RetirementPolicy::AfterAge(7).threshold(3), Some(7));
        assert_eq!(RetirementPolicy::AfterAge(0).threshold(3), Some(1), "clamped to 1");
        assert_eq!(RetirementPolicy::Never.threshold(3), None);
        assert_eq!(RetirementPolicy::default(), RetirementPolicy::PaperDefault);
    }

    #[test]
    fn fresh_protocol_has_initial_workers_and_zero_value() {
        let topo = Topology::new(3).expect("k=3");
        let proto: TreeProtocol =
            TreeProtocol::new(topo.clone(), RetirementPolicy::PaperDefault, CounterObject::new());
        assert_eq!(proto.object().value(), 0);
        assert_eq!(proto.threshold(), Some(12));
        for node in topo.nodes() {
            assert_eq!(proto.worker_of(node), topo.initial_worker(node));
            assert_eq!(proto.age_of(node), 0);
            // The engine fleet agrees with the registry.
            assert!(proto.engine_of(topo.initial_worker(node)).hosts(node));
        }
    }

    #[test]
    fn never_policy_disables_threshold() {
        let topo = Topology::new(2).expect("k=2");
        let proto: TreeProtocol =
            TreeProtocol::new(topo, RetirementPolicy::Never, CounterObject::new());
        assert_eq!(proto.threshold(), None);
    }

    #[test]
    fn protocol_hosts_arbitrary_objects() {
        use crate::object::FlipBitObject;
        let topo = Topology::new(2).expect("k=2");
        let proto = TreeProtocol::new(topo, RetirementPolicy::PaperDefault, FlipBitObject::new());
        assert!(!proto.object().bit());
    }

    #[test]
    fn fault_tolerance_toggle_reaches_every_engine() {
        let topo = Topology::new(2).expect("k=2");
        let mut proto: TreeProtocol =
            TreeProtocol::new(topo, RetirementPolicy::PaperDefault, CounterObject::new());
        assert!(!proto.fault_tolerant());
        proto.set_fault_tolerant(true);
        assert!(proto.fault_tolerant());
        assert!(proto.engine_of(ProcessorId::new(3)).config().dedupe);
        proto.set_fault_tolerant(false);
        assert!(!proto.engine_of(ProcessorId::new(0)).config().dedupe);
    }
}
