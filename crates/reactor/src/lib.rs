//! # distctr-reactor
//!
//! The readiness core under the async serving stack: a level-triggered
//! [`Poller`] wrapping raw Linux `epoll` through direct `extern "C"`
//! bindings (no external dependencies — this workspace builds offline),
//! with a portable `poll(2)` fallback behind the same API; a self-pipe
//! [`Waker`] for cross-thread wakeups; and fd-pressure helpers
//! ([`FdReserve`], [`raise_nofile_soft`]) so `EMFILE` is shed with an
//! answer instead of a hung client.
//!
//! This crate is deliberately tiny and protocol-free: it knows about
//! file descriptors and readiness, nothing about frames, sessions or
//! counters. All `unsafe` in the serving stack is confined to
//! [`mod@sys`]; everything exported here is a safe owned type.
//!
//! ```
//! use std::time::Duration;
//! use std::os::fd::AsRawFd;
//! use distctr_reactor::{Event, Interest, Poller};
//!
//! # fn main() -> std::io::Result<()> {
//! let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
//! listener.set_nonblocking(true)?;
//! let mut poller = Poller::new()?;
//! poller.register(listener.as_raw_fd(), 7, Interest::READ)?;
//!
//! let mut events = Vec::new();
//! // Nothing pending: the wait times out with zero events.
//! assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(1)))?, 0);
//!
//! let client = std::net::TcpStream::connect(listener.local_addr()?)?;
//! // The pending connection wakes the registration.
//! while poller.wait(&mut events, Some(Duration::from_millis(100)))? == 0 {}
//! assert!(events.iter().any(|e| e.token == 7 && e.readable));
//! # drop(client);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod limits;
mod poller;
pub mod sys;
mod waker;

pub use limits::{is_fd_exhaustion, nofile_limits, raise_nofile_soft, FdReserve};
pub use poller::{Backend, Event, Interest, Poller};
pub use waker::Waker;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::{Duration, Instant};

    fn backends() -> Vec<Poller> {
        vec![
            Poller::new().expect("default poller"),
            Poller::with_backend(Backend::Poll).expect("poll fallback"),
        ]
    }

    #[test]
    fn default_backend_is_epoll_on_linux() {
        if cfg!(target_os = "linux") {
            assert_eq!(Poller::new().unwrap().backend(), Backend::Epoll);
        }
        assert_eq!(Poller::with_backend(Backend::Poll).unwrap().backend(), Backend::Poll);
    }

    #[test]
    fn timeout_fires_with_no_events() {
        for mut poller in backends() {
            let mut events = Vec::new();
            let t0 = Instant::now();
            let n = poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
            assert_eq!(n, 0);
            assert!(events.is_empty());
            assert!(t0.elapsed() >= Duration::from_millis(5), "the wait actually blocked");
        }
    }

    #[test]
    fn listener_readiness_and_stream_readiness_round_trip() {
        for mut poller in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.set_nonblocking(true).unwrap();
            poller.register(listener.as_raw_fd(), 1, Interest::READ).unwrap();

            let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let mut events = Vec::new();
            wait_for(&mut poller, &mut events, 1);
            assert!(events.iter().any(|e| e.token == 1 && e.readable), "{events:?}");

            let (server_side, _) = listener.accept().unwrap();
            server_side.set_nonblocking(true).unwrap();
            poller.register(server_side.as_raw_fd(), 2, Interest::READ).unwrap();
            // Quiet stream: no spurious read readiness.
            poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap();
            assert!(!events.iter().any(|e| e.token == 2 && e.readable), "{events:?}");

            client.write_all(b"ping").unwrap();
            wait_for(&mut poller, &mut events, 2);
            assert!(events.iter().any(|e| e.token == 2 && e.readable), "{events:?}");

            // A fresh stream with room in its send buffer is writable.
            poller.modify(server_side.as_raw_fd(), 2, Interest::BOTH).unwrap();
            wait_for(&mut poller, &mut events, 2);
            assert!(events.iter().any(|e| e.token == 2 && e.writable), "{events:?}");

            poller.deregister(server_side.as_raw_fd()).unwrap();
            poller.deregister(listener.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn peer_hangup_reports_readable_eof() {
        for mut poller in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (server_side, _) = listener.accept().unwrap();
            server_side.set_nonblocking(true).unwrap();
            poller.register(server_side.as_raw_fd(), 9, Interest::READ).unwrap();
            drop(client);
            let mut events = Vec::new();
            wait_for(&mut poller, &mut events, 9);
            let ev = events.iter().find(|e| e.token == 9).unwrap();
            assert!(ev.readable, "hangup must surface as readable-EOF: {ev:?}");
        }
    }

    #[test]
    fn waker_wakes_a_parked_wait_from_another_thread() {
        for mut poller in backends() {
            let waker = std::sync::Arc::new(Waker::new().unwrap());
            poller.register(waker.fd(), 0, Interest::READ).unwrap();
            let w = std::sync::Arc::clone(&waker);
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                w.wake();
            });
            let mut events = Vec::new();
            let t0 = Instant::now();
            // Wait "forever": only the waker can end this.
            while poller.wait(&mut events, Some(Duration::from_secs(10))).unwrap() == 0 {}
            assert!(t0.elapsed() < Duration::from_secs(5), "woken, not timed out");
            assert!(events.iter().any(|e| e.token == 0 && e.readable));
            waker.drain();
            // Drained: the next wait no longer sees the waker.
            poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
            assert!(!events.iter().any(|e| e.token == 0), "{events:?}");
            handle.join().unwrap();
            poller.deregister(waker.fd()).unwrap();
        }
    }

    #[test]
    fn wakes_coalesce_and_drain_handles_bursts() {
        let waker = Waker::new().unwrap();
        for _ in 0..10_000 {
            waker.wake(); // fills the pipe; must never block or error
        }
        waker.drain();
        let mut poller = Poller::new().unwrap();
        poller.register(waker.fd(), 3, Interest::READ).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(5))).unwrap();
        assert!(events.is_empty(), "a drained waker is quiet: {events:?}");
    }

    #[test]
    fn duplicate_registration_and_unknown_fd_are_errors() {
        let mut poller = Poller::with_backend(Backend::Poll).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let fd = listener.as_raw_fd();
        poller.register(fd, 1, Interest::READ).unwrap();
        assert!(poller.register(fd, 2, Interest::READ).is_err(), "double register");
        poller.deregister(fd).unwrap();
        assert!(poller.deregister(fd).is_err(), "double deregister");
        assert!(poller.modify(fd, 1, Interest::READ).is_err(), "modify unknown");
    }

    #[test]
    fn nofile_limits_read_and_raise() {
        let (soft, hard) = nofile_limits().unwrap();
        assert!(soft > 0 && hard >= soft);
        // Raising to the current soft value is a no-op, never an error.
        assert_eq!(raise_nofile_soft(soft).unwrap(), soft);
        // Asking past the hard limit clamps to it.
        let raised = raise_nofile_soft(u64::MAX).unwrap();
        assert!(raised >= soft && raised <= hard);
    }

    #[test]
    fn fd_reserve_sheds_a_pending_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut reserve = FdReserve::new();
        assert!(reserve.armed());
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        // Give the kernel a beat to finish the handshake.
        std::thread::sleep(Duration::from_millis(10));
        let mut answered = false;
        assert!(reserve.shed_one(&listener, |s| {
            answered = true;
            let _ = s.write_all(b"busy");
        }));
        assert!(answered);
        assert!(reserve.armed(), "re-armed after the shed");
        drop(client);
    }

    fn wait_for(poller: &mut Poller, events: &mut Vec<Event>, token: usize) {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            poller.wait(events, Some(Duration::from_millis(50))).unwrap();
            if events.iter().any(|e| e.token == token) {
                return;
            }
            assert!(Instant::now() < deadline, "timed out waiting for token {token}");
        }
    }
}
