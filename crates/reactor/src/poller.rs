//! The readiness poller: one safe type over two kernel interfaces.
//!
//! [`Poller`] is a level-triggered readiness multiplexer. On Linux it
//! wraps an `epoll` instance — O(ready) wakeups, the only interface
//! that holds 10k+ registrations without rescanning them per call. The
//! portable fallback drives the same API over `poll(2)`, which rescans
//! the whole table per call (O(registered)) but exists everywhere;
//! [`Poller::new`] picks epoll where compiled in, and
//! [`Poller::with_backend`] forces the fallback for tests and
//! non-Linux targets.
//!
//! Registrations are level-triggered on purpose: the serving loop's
//! invariant is "interest reflects what the connection state machine
//! is waiting for", and level semantics make a missed drain a repeat
//! notification instead of a lost connection.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

use crate::sys;

/// What a registration wants to hear about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read interest only.
    pub const READ: Interest = Interest { readable: true, writable: false };
    /// Write interest only.
    pub const WRITE: Interest = Interest { readable: false, writable: true };
    /// Both directions.
    pub const BOTH: Interest = Interest { readable: true, writable: true };
    /// Neither direction (parked registration; errors still surface).
    pub const NONE: Interest = Interest { readable: false, writable: false };
}

/// One readiness notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: usize,
    /// The fd has bytes to read (or a hangup to observe via `read 0`).
    pub readable: bool,
    /// The fd can accept bytes.
    pub writable: bool,
    /// Error or hangup: the fd should be read to EOF / closed.
    pub closed: bool,
}

/// Which kernel interface backs a [`Poller`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Linux `epoll` — O(ready) readiness at any registration count.
    Epoll,
    /// Portable `poll(2)` — O(registered) per call, works everywhere.
    Poll,
}

enum Imp {
    #[cfg(target_os = "linux")]
    Epoll(Epoll),
    Poll(PollTable),
}

/// A level-triggered readiness multiplexer; see the module docs.
pub struct Poller {
    imp: Imp,
}

impl Poller {
    /// The fastest available backend: epoll on Linux, `poll(2)`
    /// elsewhere.
    ///
    /// # Errors
    ///
    /// I/O error if the kernel refuses an epoll instance.
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            Ok(Poller { imp: Imp::Epoll(Epoll::new()?) })
        }
        #[cfg(not(target_os = "linux"))]
        {
            Self::with_backend(Backend::Poll)
        }
    }

    /// A poller over an explicit [`Backend`]. Requesting
    /// [`Backend::Epoll`] off Linux falls back to `poll(2)`.
    ///
    /// # Errors
    ///
    /// I/O error if the kernel refuses an epoll instance.
    pub fn with_backend(backend: Backend) -> io::Result<Poller> {
        match backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll => Ok(Poller { imp: Imp::Epoll(Epoll::new()?) }),
            _ => Ok(Poller { imp: Imp::Poll(PollTable::default()) }),
        }
    }

    /// Which backend this poller runs on.
    #[must_use]
    pub fn backend(&self) -> Backend {
        match &self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(_) => Backend::Epoll,
            Imp::Poll(_) => Backend::Poll,
        }
    }

    /// Registers `fd` under `token`. The fd must stay open until
    /// [`Poller::deregister`]; the token comes back verbatim in every
    /// [`Event`].
    ///
    /// # Errors
    ///
    /// I/O error from the kernel (e.g. the fd is already registered).
    pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(e) => e.ctl(sys::EPOLL_CTL_ADD, fd, token, interest),
            Imp::Poll(t) => t.register(fd, token, interest),
        }
    }

    /// Replaces the interest set of a registered fd.
    ///
    /// # Errors
    ///
    /// I/O error from the kernel (e.g. the fd was never registered).
    pub fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(e) => e.ctl(sys::EPOLL_CTL_MOD, fd, token, interest),
            Imp::Poll(t) => t.modify(fd, interest),
        }
    }

    /// Removes a registration. Must be called *before* the fd is
    /// closed on the `poll(2)` backend (a closed fd in the table is
    /// `POLLNVAL` noise); epoll drops closed fds on its own but the
    /// discipline is kept uniform.
    ///
    /// # Errors
    ///
    /// I/O error from the kernel (e.g. the fd was never registered).
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(e) => e.ctl(sys::EPOLL_CTL_DEL, fd, 0, Interest::NONE),
            Imp::Poll(t) => t.deregister(fd),
        }
    }

    /// Blocks until readiness or `timeout` (forever when `None`),
    /// appending to `events` (cleared first). Returns the ready count;
    /// `0` means the timeout (or a signal) fired.
    ///
    /// # Errors
    ///
    /// I/O error from the kernel. `EINTR` is reported as `Ok(0)`.
    pub fn wait(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        events.clear();
        let timeout_ms = timeout_to_ms(timeout);
        let r = match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(e) => e.wait(events, timeout_ms),
            Imp::Poll(t) => t.wait(events, timeout_ms),
        };
        match r {
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
            other => other,
        }
    }
}

/// Clamps a timeout to the `int` milliseconds the kernel takes,
/// rounding sub-millisecond waits *up* so a 100µs deadline does not
/// spin at timeout 0.
fn timeout_to_ms(timeout: Option<Duration>) -> sys::CInt {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            let ms = if ms == 0 && !d.is_zero() { 1 } else { ms };
            ms.min(sys::CInt::MAX as u128) as sys::CInt
        }
    }
}

// --- epoll backend ---------------------------------------------------

#[cfg(target_os = "linux")]
struct Epoll {
    epfd: RawFd,
    /// Reused kernel-events buffer; capacity bounds one wait's batch,
    /// not the registration count (level triggering re-reports).
    buf: Vec<sys::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl Epoll {
    fn new() -> io::Result<Epoll> {
        Ok(Epoll {
            epfd: sys::sys_epoll_create()?,
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; 1024],
        })
    }

    fn ctl(
        &mut self,
        op: sys::CInt,
        fd: RawFd,
        token: usize,
        interest: Interest,
    ) -> io::Result<()> {
        let mut events = sys::EPOLLRDHUP;
        if interest.readable {
            events |= sys::EPOLLIN;
        }
        if interest.writable {
            events |= sys::EPOLLOUT;
        }
        sys::sys_epoll_ctl(self.epfd, op, fd, events, token as u64)
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: sys::CInt) -> io::Result<usize> {
        let n = sys::sys_epoll_wait(self.epfd, &mut self.buf, timeout_ms)?;
        for ev in &self.buf[..n] {
            let bits = ev.events;
            events.push(Event {
                token: ev.data as usize,
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0,
                writable: bits & sys::EPOLLOUT != 0,
                closed: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            });
        }
        Ok(n)
    }
}

#[cfg(target_os = "linux")]
impl Drop for Epoll {
    fn drop(&mut self) {
        sys::sys_close(self.epfd);
    }
}

// --- poll(2) backend -------------------------------------------------

#[derive(Default)]
struct PollTable {
    fds: Vec<sys::PollFd>,
    tokens: Vec<usize>,
}

impl PollTable {
    fn find(&self, fd: RawFd) -> Option<usize> {
        self.fds.iter().position(|p| p.fd == fd)
    }

    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        if self.find(fd).is_some() {
            return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd already registered"));
        }
        self.fds.push(sys::PollFd { fd, events: interest_bits(interest), revents: 0 });
        self.tokens.push(token);
        Ok(())
    }

    fn modify(&mut self, fd: RawFd, interest: Interest) -> io::Result<()> {
        let i = self
            .find(fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
        self.fds[i].events = interest_bits(interest);
        Ok(())
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        let i = self
            .find(fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
        self.fds.swap_remove(i);
        self.tokens.swap_remove(i);
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: sys::CInt) -> io::Result<usize> {
        let n = sys::sys_poll(&mut self.fds, timeout_ms)?;
        if n > 0 {
            for (p, &token) in self.fds.iter().zip(&self.tokens) {
                let r = p.revents;
                if r == 0 {
                    continue;
                }
                events.push(Event {
                    token,
                    readable: r & (sys::POLLIN | sys::POLLHUP) != 0,
                    writable: r & sys::POLLOUT != 0,
                    closed: r & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0,
                });
            }
        }
        Ok(events.len())
    }
}

fn interest_bits(interest: Interest) -> sys::CShort {
    let mut bits: sys::CShort = 0;
    if interest.readable {
        bits |= sys::POLLIN;
    }
    if interest.writable {
        bits |= sys::POLLOUT;
    }
    bits
}
