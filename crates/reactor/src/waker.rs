//! Cross-thread reactor wakeup: the classic self-pipe.
//!
//! A reactor thread parked in [`crate::Poller::wait`] only notices fd
//! readiness — a [`Waker`] gives every other thread (combiner, drain,
//! shutdown) an fd to make ready. The write end is nonblocking and a
//! full pipe is treated as success: one pending byte already guarantees
//! the next `wait` returns, which is the only contract wakeups need
//! (wakes coalesce exactly like condvar notifies on a held lock).

use std::io;
use std::os::fd::RawFd;

use crate::sys;

/// A self-pipe wakeup handle. Cheap to share behind an `Arc`: `wake`
/// takes `&self` and is async-signal-safe in spirit (one `write`).
pub struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
}

// SAFETY: both ends are plain fds; `write`/`read` on them are
// thread-safe syscalls and the struct is never mutated after creation.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

impl Waker {
    /// Builds the pipe pair (both ends nonblocking, close-on-exec).
    ///
    /// # Errors
    ///
    /// I/O error if the kernel refuses a pipe.
    pub fn new() -> io::Result<Waker> {
        let (read_fd, write_fd) = sys::sys_pipe_nonblocking()?;
        Ok(Waker { read_fd, write_fd })
    }

    /// The fd to register (read interest) with the reactor's poller.
    #[must_use]
    pub fn fd(&self) -> RawFd {
        self.read_fd
    }

    /// Makes the reactor's next (or current) `wait` return. Never
    /// blocks; a full pipe already is a pending wakeup.
    pub fn wake(&self) {
        let _ = sys::sys_write(self.write_fd, &[1u8]);
    }

    /// Drains pending wakeup bytes; the reactor calls this on every
    /// waker-token readiness so level triggering does not spin.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while let Ok(n) = sys::sys_read(self.read_fd, &mut buf) {
            if n < buf.len() {
                break;
            }
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        sys::sys_close(self.read_fd);
        sys::sys_close(self.write_fd);
    }
}
