//! File-descriptor pressure: limits and graceful `EMFILE` shedding.
//!
//! A C10k server meets `RLIMIT_NOFILE` before it meets any algorithmic
//! wall. Two tools live here:
//!
//! * [`nofile_limits`] / [`raise_nofile_soft`] — read and raise the
//!   soft fd limit toward the hard one, so an experiment asking for
//!   10k+ sockets is not silently capped at the usual 1024 soft
//!   default.
//! * [`FdReserve`] — the classic reserve-descriptor trick. `accept(2)`
//!   failing with `EMFILE` leaves the pending connection *in the
//!   queue*: there is no fd to answer on, so the client would hang
//!   until its own timeout. Holding one spare descriptor open lets the
//!   server momentarily release it, accept the waiting connection,
//!   tell the client to back off (a `Busy` frame), close it, and
//!   re-arm the spare — shedding with an answer instead of a stall.

use std::fs::File;
use std::io;
use std::net::{TcpListener, TcpStream};

use crate::sys;

/// `(soft, hard)` of `RLIMIT_NOFILE` for this process.
///
/// # Errors
///
/// I/O error if the kernel refuses `getrlimit`.
pub fn nofile_limits() -> io::Result<(u64, u64)> {
    sys::sys_get_nofile()
}

/// Raises the soft `RLIMIT_NOFILE` to `min(want, hard)` and returns the
/// resulting soft limit. Lowering is refused (no-op returning the
/// current soft limit) — this helper exists to *gain* headroom.
///
/// # Errors
///
/// I/O error if the kernel refuses `setrlimit`.
pub fn raise_nofile_soft(want: u64) -> io::Result<u64> {
    let (soft, hard) = sys::sys_get_nofile()?;
    let target = want.min(hard);
    if target <= soft {
        return Ok(soft);
    }
    sys::sys_set_nofile_soft(target)?;
    Ok(target)
}

/// One spare descriptor held open so `EMFILE` can be answered; see the
/// module docs. The reserve is `/dev/null` — always openable, costs
/// nothing.
pub struct FdReserve {
    spare: Option<File>,
}

impl FdReserve {
    /// Arms the reserve. A failure to open the spare (itself an fd
    /// exhaustion symptom) yields an unarmed reserve that
    /// [`FdReserve::shed_one`] reports as unavailable.
    #[must_use]
    pub fn new() -> FdReserve {
        FdReserve { spare: File::open("/dev/null").ok() }
    }

    /// Whether a spare descriptor is currently held.
    #[must_use]
    pub fn armed(&self) -> bool {
        self.spare.is_some()
    }

    /// Releases the spare, accepts one pending connection from
    /// `listener`, hands it to `answer` (which should write a `Busy`
    /// frame and may fail freely), closes it, and re-arms. Returns
    /// `true` if a connection was shed.
    pub fn shed_one(
        &mut self,
        listener: &TcpListener,
        answer: impl FnOnce(&mut TcpStream),
    ) -> bool {
        if self.spare.take().is_none() {
            // Nothing to release; try to re-arm for next time.
            self.spare = File::open("/dev/null").ok();
            return false;
        }
        let shed = match listener.accept() {
            Ok((mut stream, _)) => {
                answer(&mut stream);
                true
            }
            Err(_) => false,
        };
        // The shed connection's fd is closed by now; re-arm.
        self.spare = File::open("/dev/null").ok();
        shed
    }
}

impl Default for FdReserve {
    fn default() -> Self {
        FdReserve::new()
    }
}

/// Whether an `accept(2)` failure is descriptor exhaustion (`EMFILE` /
/// `ENFILE`), the condition [`FdReserve`] exists for.
#[must_use]
pub fn is_fd_exhaustion(e: &io::Error) -> bool {
    // EMFILE == 24, ENFILE == 23 on Linux; raw codes because the io
    // ErrorKind for these stabilized only recently.
    matches!(e.raw_os_error(), Some(23 | 24))
}
