//! Direct `extern "C"` bindings to the handful of kernel interfaces the
//! reactor needs: `epoll` on Linux, `poll(2)` everywhere, a pipe for
//! cross-thread wakeups, and the `RLIMIT_NOFILE` pair for fd-pressure
//! experiments. This environment is offline — no `libc` crate — so the
//! declarations live here, kept to the minimal stable subset of the
//! POSIX/Linux ABI (x86_64/aarch64 LP64 layouts).
//!
//! Everything unsafe in the workspace's serving stack is confined to
//! this module; [`crate::poller`] and [`crate::waker`] wrap it in safe
//! owned types.

#![allow(clippy::missing_safety_doc)]

use std::io;
use std::os::fd::RawFd;

pub(crate) type CInt = i32;
pub(crate) type CShort = i16;
pub(crate) type NfdsT = u64; // c_ulong on LP64

// --- epoll (Linux) ---------------------------------------------------

/// `EPOLL_CTL_ADD`.
pub(crate) const EPOLL_CTL_ADD: CInt = 1;
/// `EPOLL_CTL_DEL`.
pub(crate) const EPOLL_CTL_DEL: CInt = 2;
/// `EPOLL_CTL_MOD`.
pub(crate) const EPOLL_CTL_MOD: CInt = 3;
/// `EPOLLIN`.
pub(crate) const EPOLLIN: u32 = 0x001;
/// `EPOLLOUT`.
pub(crate) const EPOLLOUT: u32 = 0x004;
/// `EPOLLERR` — always reported, never requested.
pub(crate) const EPOLLERR: u32 = 0x008;
/// `EPOLLHUP` — always reported, never requested.
pub(crate) const EPOLLHUP: u32 = 0x010;
/// `EPOLLRDHUP` — peer shut down its write half.
pub(crate) const EPOLLRDHUP: u32 = 0x2000;
/// `EPOLL_CLOEXEC` (== `O_CLOEXEC`).
pub(crate) const EPOLL_CLOEXEC: CInt = 0o2000000;

/// `struct epoll_event`. On x86_64 the kernel ABI packs this to 12
/// bytes (`__EPOLL_PACKED`); `repr(C, packed)` reproduces that layout
/// and is also correct (if overaligned-in-spirit) on aarch64, where
/// glibc declares the same packed struct.
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub(crate) struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

#[cfg(target_os = "linux")]
extern "C" {
    fn epoll_create1(flags: CInt) -> CInt;
    fn epoll_ctl(epfd: CInt, op: CInt, fd: CInt, event: *mut EpollEvent) -> CInt;
    fn epoll_wait(epfd: CInt, events: *mut EpollEvent, maxevents: CInt, timeout: CInt) -> CInt;
}

/// Creates a close-on-exec epoll instance.
#[cfg(target_os = "linux")]
pub(crate) fn sys_epoll_create() -> io::Result<RawFd> {
    // SAFETY: no pointers involved; the return value is checked.
    let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(fd)
}

/// One `epoll_ctl` call; `event` is ignored by the kernel for `DEL`.
#[cfg(target_os = "linux")]
pub(crate) fn sys_epoll_ctl(
    epfd: RawFd,
    op: CInt,
    fd: RawFd,
    events: u32,
    data: u64,
) -> io::Result<()> {
    let mut ev = EpollEvent { events, data };
    // SAFETY: `ev` is a live stack value for the duration of the call.
    let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Blocks until readiness, filling `events`; returns the ready count.
#[cfg(target_os = "linux")]
pub(crate) fn sys_epoll_wait(
    epfd: RawFd,
    events: &mut [EpollEvent],
    timeout_ms: CInt,
) -> io::Result<usize> {
    // SAFETY: the pointer/length pair describes the caller's live slice.
    let rc = unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as CInt, timeout_ms) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(rc as usize)
}

// --- poll(2) (POSIX) -------------------------------------------------

/// `POLLIN`.
pub(crate) const POLLIN: CShort = 0x001;
/// `POLLOUT`.
pub(crate) const POLLOUT: CShort = 0x004;
/// `POLLERR`.
pub(crate) const POLLERR: CShort = 0x008;
/// `POLLHUP`.
pub(crate) const POLLHUP: CShort = 0x010;
/// `POLLNVAL` — fd was not open.
pub(crate) const POLLNVAL: CShort = 0x020;

/// `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy)]
pub(crate) struct PollFd {
    pub fd: CInt,
    pub events: CShort,
    pub revents: CShort,
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: CInt) -> CInt;
    fn pipe(fds: *mut CInt) -> CInt;
    fn fcntl(fd: CInt, cmd: CInt, arg: CInt) -> CInt;
    fn close(fd: CInt) -> CInt;
    fn read(fd: CInt, buf: *mut u8, count: usize) -> isize;
    fn write(fd: CInt, buf: *const u8, count: usize) -> isize;
    fn getrlimit(resource: CInt, rlim: *mut Rlimit) -> CInt;
    fn setrlimit(resource: CInt, rlim: *const Rlimit) -> CInt;
}

/// One `poll(2)` call over the caller's `pollfd` table.
pub(crate) fn sys_poll(fds: &mut [PollFd], timeout_ms: CInt) -> io::Result<usize> {
    // SAFETY: the pointer/length pair describes the caller's live slice.
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NfdsT, timeout_ms) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(rc as usize)
}

const F_GETFL: CInt = 3;
const F_SETFL: CInt = 4;
const F_GETFD: CInt = 1;
const F_SETFD: CInt = 2;
const FD_CLOEXEC: CInt = 1;
const O_NONBLOCK: CInt = 0o4000;

/// A nonblocking close-on-exec pipe `(read end, write end)`. Built from
/// the portable `pipe` + `fcntl` pair rather than `pipe2` so the same
/// code serves the `poll(2)` fallback targets.
pub(crate) fn sys_pipe_nonblocking() -> io::Result<(RawFd, RawFd)> {
    let mut fds: [CInt; 2] = [-1, -1];
    // SAFETY: `fds` is a live 2-element array, exactly what pipe expects.
    let rc = unsafe { pipe(fds.as_mut_ptr()) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    for &fd in &fds {
        // SAFETY: `fd` is a freshly created, owned descriptor.
        unsafe {
            let flags = fcntl(fd, F_GETFL, 0);
            if flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0 {
                let e = io::Error::last_os_error();
                close(fds[0]);
                close(fds[1]);
                return Err(e);
            }
            let fdflags = fcntl(fd, F_GETFD, 0);
            if fdflags < 0 || fcntl(fd, F_SETFD, fdflags | FD_CLOEXEC) < 0 {
                let e = io::Error::last_os_error();
                close(fds[0]);
                close(fds[1]);
                return Err(e);
            }
        }
    }
    Ok((fds[0], fds[1]))
}

/// Closes an owned descriptor (errors ignored: nothing sensible to do).
pub(crate) fn sys_close(fd: RawFd) {
    // SAFETY: the caller owns `fd` and never uses it again.
    unsafe {
        close(fd);
    }
}

/// One nonblocking `read` into `buf`.
pub(crate) fn sys_read(fd: RawFd, buf: &mut [u8]) -> io::Result<usize> {
    // SAFETY: the pointer/length pair describes the caller's live slice.
    let n = unsafe { read(fd, buf.as_mut_ptr(), buf.len()) };
    if n < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(n as usize)
}

/// One nonblocking `write` of `buf`.
pub(crate) fn sys_write(fd: RawFd, buf: &[u8]) -> io::Result<usize> {
    // SAFETY: the pointer/length pair describes the caller's live slice.
    let n = unsafe { write(fd, buf.as_ptr(), buf.len()) };
    if n < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(n as usize)
}

// --- RLIMIT_NOFILE ---------------------------------------------------

const RLIMIT_NOFILE: CInt = 7;

/// `struct rlimit` (LP64: both fields are `unsigned long`).
#[repr(C)]
#[derive(Clone, Copy)]
pub(crate) struct Rlimit {
    pub cur: u64,
    pub max: u64,
}

/// Reads `(soft, hard)` for `RLIMIT_NOFILE`.
pub(crate) fn sys_get_nofile() -> io::Result<(u64, u64)> {
    let mut r = Rlimit { cur: 0, max: 0 };
    // SAFETY: `r` is a live stack value for the duration of the call.
    let rc = unsafe { getrlimit(RLIMIT_NOFILE, &mut r) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok((r.cur, r.max))
}

/// Sets the `RLIMIT_NOFILE` soft limit (hard limit unchanged).
pub(crate) fn sys_set_nofile_soft(soft: u64) -> io::Result<()> {
    let (_, hard) = sys_get_nofile()?;
    let r = Rlimit { cur: soft.min(hard), max: hard };
    // SAFETY: `r` is a live stack value for the duration of the call.
    let rc = unsafe { setrlimit(RLIMIT_NOFILE, &r) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}
