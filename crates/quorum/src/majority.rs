//! The majority quorum system (Garcia-Molina & Barbara / Thomas).
//!
//! Quorums are all subsets of size `⌊n/2⌋ + 1`. Any two majorities
//! intersect, the quorums are as small as possible for that resilience,
//! but the uniform load is ~1/2 — the grid and wall systems beat it by an
//! order of magnitude, which is the quorum-side analogue of the paper's
//! bottleneck story.

use crate::system::QuorumSystem;

/// All-majorities quorum system over `n` elements.
///
/// The number of quorums is `C(n, ⌊n/2⌋+1)`, so this type is intended for
/// small universes (tests and demonstrations); construction rejects
/// `n > 24` to keep enumeration bounded.
///
/// # Examples
///
/// ```
/// use distctr_quorum::{Majority, QuorumSystem};
/// let m = Majority::new(5).expect("n = 5");
/// assert_eq!(m.quorum(0), vec![0, 1, 2]);
/// assert!(m.verify_intersection(usize::MAX));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Majority {
    n: usize,
    size: usize,
    count: usize,
}

impl Majority {
    /// Creates the majority system over `n` elements.
    ///
    /// # Errors
    ///
    /// Returns an error message if `n == 0` or `n > 24` (enumeration
    /// bound).
    pub fn new(n: usize) -> Result<Self, String> {
        if n == 0 {
            return Err("majority system needs at least one element".to_string());
        }
        if n > 24 {
            return Err(format!("majority enumeration bounded at n <= 24, got {n}"));
        }
        let size = n / 2 + 1;
        Ok(Majority { n, size, count: binomial(n, size) })
    }

    /// The quorum size `⌊n/2⌋ + 1`.
    #[must_use]
    pub fn quorum_size(&self) -> usize {
        self.size
    }
}

impl QuorumSystem for Majority {
    fn universe(&self) -> usize {
        self.n
    }

    fn quorum_count(&self) -> usize {
        self.count
    }

    fn quorum(&self, i: usize) -> Vec<usize> {
        assert!(i < self.count, "quorum index {i} out of range");
        // Unrank the i-th k-combination of 0..n in lexicographic order.
        let mut result = Vec::with_capacity(self.size);
        let mut rank = i;
        let mut next = 0usize;
        let mut remaining = self.size;
        while remaining > 0 {
            let with_next = binomial(self.n - next - 1, remaining - 1);
            if rank < with_next {
                result.push(next);
                remaining -= 1;
            } else {
                rank -= with_next;
            }
            next += 1;
        }
        result
    }

    fn name(&self) -> &'static str {
        "majority"
    }
}

/// Binomial coefficient `C(n, k)` (0 when `k > n`).
#[must_use]
pub fn binomial(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc * (n - i) as u128 / (i + 1) as u128;
    }
    usize::try_from(acc).expect("binomial fits usize for bounded n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn binomial_table() {
        assert_eq!(binomial(5, 3), 10);
        assert_eq!(binomial(4, 0), 1);
        assert_eq!(binomial(4, 4), 1);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(24, 13), 2_496_144);
    }

    #[test]
    fn enumerates_all_majorities_exactly_once() {
        let m = Majority::new(5).expect("n = 5");
        assert_eq!(m.quorum_count(), 10);
        let mut seen = HashSet::new();
        for i in 0..10 {
            let q = m.quorum(i);
            assert_eq!(q.len(), 3);
            assert!(q.windows(2).all(|w| w[0] < w[1]), "sorted");
            assert!(seen.insert(q), "distinct");
        }
    }

    #[test]
    fn intersection_and_load() {
        let m = Majority::new(7).expect("n = 7");
        assert!(m.verify_intersection(usize::MAX));
        assert_eq!(m.min_quorum_size(usize::MAX), 4);
        // Symmetric system: every element is in C(n-1, s-1) quorums.
        let expected = binomial(6, 3) as f64 / m.quorum_count() as f64;
        assert!((m.uniform_load() - expected).abs() < 1e-12);
        // Majority load is ~1/2 — high.
        assert!(m.uniform_load() > 0.5);
    }

    #[test]
    fn bounds_enforced() {
        assert!(Majority::new(0).is_err());
        assert!(Majority::new(25).is_err());
        assert!(Majority::new(24).is_ok());
    }

    #[test]
    fn single_element_universe() {
        let m = Majority::new(1).expect("n = 1");
        assert_eq!(m.quorum_count(), 1);
        assert_eq!(m.quorum(0), vec![0]);
        assert!((m.uniform_load() - 1.0).abs() < 1e-12);
    }
}
