//! Crumbling walls (Peleg & Wool 1995).
//!
//! Elements are arranged in rows of given widths. A quorum is one *full*
//! row `i` plus one representative element from every row **below** `i`.
//! Two quorums with full rows `i <= i'` intersect because the first
//! quorum's representative in row `i'` lies inside the second quorum's
//! full row (or they share row `i = i'`). Triangular walls (row widths
//! 1, 2, 3, ...) give quorums and loads of size `O(√n)`-ish with very
//! simple structure.

use crate::system::QuorumSystem;

/// A crumbling-wall quorum system with the given row widths (top first).
///
/// # Examples
///
/// ```
/// use distctr_quorum::{QuorumSystem, Wall};
/// let w = Wall::new(vec![1, 2, 3]).expect("triangular wall");
/// assert_eq!(w.universe(), 6);
/// assert!(w.verify_intersection(usize::MAX));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Wall {
    widths: Vec<usize>,
    /// Starting element index of each row.
    row_starts: Vec<usize>,
    /// `choices[i]` = number of quorums whose full row is `i`
    /// (product of widths below row `i`).
    choices: Vec<usize>,
    total: usize,
}

impl Wall {
    /// Builds a wall with the given row widths, top row first.
    ///
    /// # Errors
    ///
    /// Returns an error message if there are no rows, any row is empty,
    /// or the total quorum count overflows the enumeration bound (2^24).
    pub fn new(widths: Vec<usize>) -> Result<Self, String> {
        if widths.is_empty() {
            return Err("wall needs at least one row".to_string());
        }
        if widths.contains(&0) {
            return Err("wall rows must be nonempty".to_string());
        }
        let mut row_starts = Vec::with_capacity(widths.len());
        let mut acc = 0usize;
        for &w in &widths {
            row_starts.push(acc);
            acc += w;
        }
        let mut choices = Vec::with_capacity(widths.len());
        let mut total = 0usize;
        for i in 0..widths.len() {
            let mut c: usize = 1;
            for &w in &widths[i + 1..] {
                c = c.checked_mul(w).ok_or("quorum count overflow")?;
                if c > (1 << 24) {
                    return Err("wall enumeration bounded at 2^24 quorums".to_string());
                }
            }
            total += c;
            if total > (1 << 24) {
                return Err("wall enumeration bounded at 2^24 quorums".to_string());
            }
            choices.push(c);
        }
        Ok(Wall { widths, row_starts, choices, total })
    }

    /// The triangular wall with rows 1, 2, ..., `rows`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Wall::new`].
    pub fn triangular(rows: usize) -> Result<Self, String> {
        Wall::new((1..=rows).collect())
    }

    /// Row widths, top first.
    #[must_use]
    pub fn widths(&self) -> &[usize] {
        &self.widths
    }
}

impl QuorumSystem for Wall {
    fn universe(&self) -> usize {
        self.widths.iter().sum()
    }

    fn quorum_count(&self) -> usize {
        self.total
    }

    fn quorum(&self, i: usize) -> Vec<usize> {
        assert!(i < self.total, "quorum index {i} out of range");
        // Decompose i into (full row r, representative choices below).
        let mut rank = i;
        let mut row = 0usize;
        while rank >= self.choices[row] {
            rank -= self.choices[row];
            row += 1;
        }
        let mut q: Vec<usize> = (0..self.widths[row]).map(|c| self.row_starts[row] + c).collect();
        // Unrank the representatives in mixed radix over rows below.
        for below in row + 1..self.widths.len() {
            let w = self.widths[below];
            q.push(self.row_starts[below] + rank % w);
            rank /= w;
        }
        q.sort_unstable();
        q
    }

    fn name(&self) -> &'static str {
        "wall"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_count_formula() {
        // Rows 1,2,3: counts 2*3 + 3 + 1 = 10.
        let w = Wall::triangular(3).expect("wall");
        assert_eq!(w.quorum_count(), 10);
        assert_eq!(w.universe(), 6);
    }

    #[test]
    fn every_pair_intersects() {
        for rows in 1..=4usize {
            let w = Wall::triangular(rows).expect("wall");
            assert!(w.verify_intersection(usize::MAX), "rows = {rows}");
        }
        let uneven = Wall::new(vec![2, 1, 4, 3]).expect("wall");
        assert!(uneven.verify_intersection(usize::MAX));
    }

    #[test]
    fn quorums_are_distinct_and_well_formed() {
        let w = Wall::triangular(4).expect("wall");
        let mut seen = std::collections::HashSet::new();
        for i in 0..w.quorum_count() {
            let q = w.quorum(i);
            assert!(q.windows(2).all(|p| p[0] < p[1]), "sorted, distinct elements");
            assert!(q.iter().all(|&e| e < w.universe()));
            assert!(seen.insert(q), "quorum {i} duplicated");
        }
    }

    #[test]
    fn quorum_structure_row_plus_representatives() {
        let w = Wall::new(vec![1, 2]).expect("wall");
        // Full top row (element 0) + one of row 2 -> {0,1}, {0,2};
        // full bottom row -> {1,2}.
        let quorums: Vec<Vec<usize>> = (0..w.quorum_count()).map(|i| w.quorum(i)).collect();
        assert_eq!(quorums.len(), 3);
        assert!(quorums.contains(&vec![0, 1]));
        assert!(quorums.contains(&vec![0, 2]));
        assert!(quorums.contains(&vec![1, 2]));
    }

    #[test]
    fn validation() {
        assert!(Wall::new(vec![]).is_err());
        assert!(Wall::new(vec![2, 0, 1]).is_err());
        assert!(Wall::triangular(0).is_err());
    }

    #[test]
    fn wall_quorums_are_smaller_than_majorities() {
        // What walls buy over majorities: much smaller quorums (a bottom
        // row alone is one). Under the *uniform* strategy implemented by
        // `uniform_load` the top row is over-weighted — Peleg-Wool's load
        // results assume the optimal strategy, which favours low rows —
        // so we assert the size advantage plus where the uniform
        // strategy's hot spot sits.
        use crate::majority::Majority;
        let w = Wall::triangular(5).expect("wall"); // n = 15
        let m = Majority::new(15).expect("majority");
        assert!(w.min_quorum_size(usize::MAX) < m.quorum_size());
        // Uniform-strategy hot spot is the single top-row element: it is
        // in every full-row-0 quorum, the most numerous kind.
        let mut counts = vec![0usize; w.universe()];
        for i in 0..w.quorum_count() {
            for e in w.quorum(i) {
                counts[e] += 1;
            }
        }
        assert_eq!(counts.iter().copied().max(), Some(counts[0]));
    }
}
