//! Finite-projective-plane quorum system (Maekawa's √N construction).
//!
//! For a prime `q`, the projective plane `PG(2, q)` has `q² + q + 1`
//! points and as many lines; every line carries `q + 1` points and **any
//! two lines meet in exactly one point** — the ideal quorum system:
//! quorum size `O(√n)`, uniform load `(q+1)/(q²+q+1) ≈ 1/√n`, and
//! minimal intersections (one element, against the grid's up-to-two).
//!
//! Points and lines are the nonzero vectors of `GF(q)³` up to scaling,
//! with incidence `L · P ≡ 0 (mod q)`.

use crate::system::QuorumSystem;

/// The line-quorums of a projective plane of prime order `q`.
///
/// # Examples
///
/// ```
/// use distctr_quorum::{Fpp, QuorumSystem};
/// let fano = Fpp::new(2).expect("the Fano plane");
/// assert_eq!(fano.universe(), 7);
/// assert_eq!(fano.quorum_count(), 7);
/// assert_eq!(fano.quorum(0).len(), 3);
/// assert!(fano.verify_intersection(usize::MAX));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fpp {
    q: u32,
    points: Vec<[u32; 3]>,
    lines: Vec<Vec<usize>>,
}

impl Fpp {
    /// Builds the plane of prime order `q` (supported: q ≤ 31, keeping
    /// the plane below ~1000 elements).
    ///
    /// # Errors
    ///
    /// Returns an error message if `q` is not a prime in `2..=31`.
    pub fn new(q: u32) -> Result<Self, String> {
        if !(2..=31).contains(&q) || !is_prime(q) {
            return Err(format!("projective plane order must be a prime in 2..=31, got {q}"));
        }
        let reps = normalized_triples(q);
        let mut lines = Vec::with_capacity(reps.len());
        for line in &reps {
            let members: Vec<usize> = reps
                .iter()
                .enumerate()
                .filter(|(_, p)| dot_mod(line, p, q) == 0)
                .map(|(i, _)| i)
                .collect();
            lines.push(members);
        }
        Ok(Fpp { q, points: reps, lines })
    }

    /// The plane order `q`.
    #[must_use]
    pub fn order(&self) -> u32 {
        self.q
    }

    /// The largest prime `q` with `q² + q + 1 <= n`, if any.
    #[must_use]
    pub fn largest_within(n: usize) -> Option<Fpp> {
        (2..=31u32)
            .rev()
            .filter(|&q| is_prime(q))
            .find(|&q| (q * q + q + 1) as usize <= n)
            .and_then(|q| Fpp::new(q).ok())
    }
}

impl QuorumSystem for Fpp {
    fn universe(&self) -> usize {
        self.points.len()
    }

    fn quorum_count(&self) -> usize {
        self.lines.len()
    }

    fn quorum(&self, i: usize) -> Vec<usize> {
        self.lines[i].clone()
    }

    fn name(&self) -> &'static str {
        "fpp"
    }
}

/// Normalized projective representatives over `GF(q)`: `(1, a, b)`,
/// `(0, 1, b)`, `(0, 0, 1)`.
fn normalized_triples(q: u32) -> Vec<[u32; 3]> {
    let mut reps = Vec::with_capacity((q * q + q + 1) as usize);
    for a in 0..q {
        for b in 0..q {
            reps.push([1, a, b]);
        }
    }
    for b in 0..q {
        reps.push([0, 1, b]);
    }
    reps.push([0, 0, 1]);
    reps
}

fn dot_mod(a: &[u32; 3], b: &[u32; 3], q: u32) -> u32 {
    (a[0] * b[0] + a[1] * b[1] + a[2] * b[2]) % q
}

fn is_prime(n: u32) -> bool {
    if n < 2 {
        return false;
    }
    (2..=n / 2).all(|d| !n.is_multiple_of(d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_sizes_follow_the_formula() {
        for q in [2u32, 3, 5, 7] {
            let plane = Fpp::new(q).expect("prime order");
            let expected = (q * q + q + 1) as usize;
            assert_eq!(plane.universe(), expected, "points of PG(2,{q})");
            assert_eq!(plane.quorum_count(), expected, "lines of PG(2,{q})");
            for i in 0..plane.quorum_count() {
                assert_eq!(plane.quorum(i).len(), (q + 1) as usize, "line size q+1");
            }
        }
    }

    #[test]
    fn any_two_lines_meet_in_exactly_one_point() {
        for q in [2u32, 3, 5] {
            let plane = Fpp::new(q).expect("prime order");
            for a in 0..plane.quorum_count() {
                for b in (a + 1)..plane.quorum_count() {
                    let qa = plane.quorum(a);
                    let qb = plane.quorum(b);
                    let common = qa.iter().filter(|e| qb.contains(e)).count();
                    assert_eq!(common, 1, "lines {a},{b} of PG(2,{q})");
                }
            }
        }
    }

    #[test]
    fn fpp_load_is_inverse_square_root() {
        let plane = Fpp::new(5).expect("q=5"); // n = 31
        let expected = 6.0 / 31.0;
        assert!((plane.uniform_load() - expected).abs() < 1e-12);
        // Beats majority by a wide margin on a similar universe.
        use crate::majority::Majority;
        let m = Majority::new(24).expect("majority");
        assert!(plane.uniform_load() < m.uniform_load() / 2.0);
    }

    #[test]
    fn non_prime_orders_rejected() {
        for q in [0u32, 1, 4, 6, 8, 9, 32] {
            assert!(Fpp::new(q).is_err(), "q={q}");
        }
    }

    #[test]
    fn largest_within_picks_the_right_prime() {
        assert_eq!(Fpp::largest_within(7).map(|p| p.order()), Some(2));
        assert_eq!(Fpp::largest_within(12).map(|p| p.order()), Some(2));
        assert_eq!(Fpp::largest_within(13).map(|p| p.order()), Some(3));
        assert_eq!(Fpp::largest_within(100).map(|p| p.order()), Some(7)); // 57 <= 100 < 111
        assert_eq!(Fpp::largest_within(6), None);
    }

    #[test]
    fn primality_helper() {
        let primes: Vec<u32> = (0..32).filter(|&n| is_prime(n)).collect();
        assert_eq!(primes, vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31]);
    }
}
