//! The Hot Spot Lemma as a trace checker, and the "dynamic quorum
//! system" view of a counter execution.
//!
//! "Let p and q be two processors that increment the counter in direct
//! succession. Then I_p ∩ I_q ≠ ∅ must hold." The paper notes its
//! approach "might be called a Dynamic Quorum System": the contact sets
//! of consecutive operations form a chain-intersecting family. This
//! module checks that property on recorded traces of *any* counter and
//! summarizes the family the way quorum systems are summarized (sizes,
//! per-element load).

use distctr_sim::{ContactSet, ProcessorId};

/// Result of checking the Hot Spot Lemma over a trace sequence.
#[derive(Debug, Clone, PartialEq)]
pub enum HotSpotVerdict {
    /// Every consecutive pair intersects.
    Holds,
    /// The first violating pair (indices into the sequence).
    ViolatedAt(usize, usize),
}

impl HotSpotVerdict {
    /// Whether the lemma held.
    #[must_use]
    pub fn holds(&self) -> bool {
        matches!(self, HotSpotVerdict::Holds)
    }
}

/// Checks `I_i ∩ I_{i+1} ≠ ∅` for every consecutive pair.
#[must_use]
pub fn check_chain(contacts: &[&ContactSet]) -> HotSpotVerdict {
    for (i, pair) in contacts.windows(2).enumerate() {
        if !pair[0].intersects(pair[1]) {
            return HotSpotVerdict::ViolatedAt(i, i + 1);
        }
    }
    HotSpotVerdict::Holds
}

/// Summary of an execution's contact-set family, read as a dynamic
/// quorum system.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicQuorumView {
    /// Number of operations (quorums).
    pub operations: usize,
    /// Smallest contact-set size.
    pub min_size: usize,
    /// Largest contact-set size.
    pub max_size: usize,
    /// Mean contact-set size.
    pub mean_size: f64,
    /// The processor appearing in the most contact sets, with its count.
    pub busiest: Option<(ProcessorId, usize)>,
    /// Fraction of operations touching the busiest processor — the
    /// dynamic analogue of quorum load.
    pub load: f64,
    /// The chain-intersection verdict.
    pub verdict: HotSpotVerdict,
}

/// Builds the dynamic-quorum view of an execution from its per-op
/// contact sets, over a network of `processors` processors.
#[must_use]
pub fn dynamic_view(contacts: &[&ContactSet], processors: usize) -> DynamicQuorumView {
    let operations = contacts.len();
    let sizes: Vec<usize> = contacts.iter().map(|c| c.len()).collect();
    let min_size = sizes.iter().copied().min().unwrap_or(0);
    let max_size = sizes.iter().copied().max().unwrap_or(0);
    let mean_size =
        if operations == 0 { 0.0 } else { sizes.iter().sum::<usize>() as f64 / operations as f64 };
    let mut counts = vec![0usize; processors];
    for c in contacts {
        for p in c.iter() {
            if p.index() < processors {
                counts[p.index()] += 1;
            }
        }
    }
    let busiest = counts
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .filter(|&(_, &c)| c > 0)
        .map(|(i, &c)| (ProcessorId::new(i), c));
    let load = match (busiest, operations) {
        (Some((_, c)), n) if n > 0 => c as f64 / n as f64,
        _ => 0.0,
    };
    DynamicQuorumView {
        operations,
        min_size,
        max_size,
        mean_size,
        busiest,
        load,
        verdict: check_chain(contacts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[usize]) -> ContactSet {
        ids.iter().map(|&i| ProcessorId::new(i)).collect()
    }

    #[test]
    fn chain_holds_for_overlapping_sequence() {
        let a = set(&[0, 1]);
        let b = set(&[1, 2]);
        let c = set(&[2, 3]);
        assert!(check_chain(&[&a, &b, &c]).holds());
    }

    #[test]
    fn chain_violation_is_located() {
        let a = set(&[0, 1]);
        let b = set(&[1, 2]);
        let c = set(&[5, 6]);
        assert_eq!(check_chain(&[&a, &b, &c]), HotSpotVerdict::ViolatedAt(1, 2));
    }

    #[test]
    fn chain_trivially_holds_for_short_sequences() {
        assert!(check_chain(&[]).holds());
        let a = set(&[0]);
        assert!(check_chain(&[&a]).holds());
    }

    #[test]
    fn nonadjacent_sets_may_be_disjoint() {
        // The lemma only constrains *consecutive* operations.
        let a = set(&[0, 1]);
        let b = set(&[1, 5]);
        let c = set(&[5, 9]);
        assert!(check_chain(&[&a, &b, &c]).holds());
        assert!(!a.intersects(&c));
    }

    #[test]
    fn dynamic_view_statistics() {
        let a = set(&[0, 1, 2]);
        let b = set(&[2, 3]);
        let c = set(&[2]);
        let v = dynamic_view(&[&a, &b, &c], 8);
        assert_eq!(v.operations, 3);
        assert_eq!(v.min_size, 1);
        assert_eq!(v.max_size, 3);
        assert!((v.mean_size - 2.0).abs() < 1e-12);
        assert_eq!(v.busiest, Some((ProcessorId::new(2), 3)));
        assert!((v.load - 1.0).abs() < 1e-12, "P2 is in every contact set");
        assert!(v.verdict.holds());
    }

    #[test]
    fn dynamic_view_empty_execution() {
        let v = dynamic_view(&[], 4);
        assert_eq!(v.operations, 0);
        assert_eq!(v.busiest, None);
        assert_eq!(v.load, 0.0);
        assert!(v.verdict.holds());
    }
}
