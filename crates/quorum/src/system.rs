//! The quorum-system abstraction.
//!
//! "A quorum system is a collection of sets of elements where every two
//! sets in the collection intersect." The paper's Hot Spot Lemma is
//! exactly a *dynamic* intersection requirement on the contact sets of
//! consecutive operations, which is why quorum machinery appears here as
//! a substrate.

/// A quorum system over the universe `0..universe()`.
///
/// Implementations materialize quorums on demand ([`QuorumSystem::quorum`])
/// so that structured systems (grid, wall, tree) stay cheap even when the
/// number of quorums is large.
pub trait QuorumSystem {
    /// Size of the element universe.
    fn universe(&self) -> usize;

    /// Number of quorums in the collection.
    fn quorum_count(&self) -> usize;

    /// The `i`-th quorum, as sorted element indices.
    ///
    /// # Panics
    ///
    /// Implementations panic if `i >= quorum_count()`.
    fn quorum(&self, i: usize) -> Vec<usize>;

    /// A short stable name for reports.
    fn name(&self) -> &'static str;

    /// Checks pairwise intersection over (up to) the first `limit`
    /// quorums — the defining property.
    fn verify_intersection(&self, limit: usize) -> bool {
        let m = self.quorum_count().min(limit);
        let quorums: Vec<Vec<usize>> = (0..m).map(|i| self.quorum(i)).collect();
        for a in 0..m {
            for b in (a + 1)..m {
                if !sorted_intersects(&quorums[a], &quorums[b]) {
                    return false;
                }
            }
        }
        true
    }

    /// Size of the smallest quorum among the first `limit`.
    fn min_quorum_size(&self, limit: usize) -> usize {
        (0..self.quorum_count().min(limit)).map(|i| self.quorum(i).len()).min().unwrap_or(0)
    }

    /// The *uniform-strategy load*: pick quorums uniformly at random; the
    /// load of an element is the fraction of quorums containing it, and
    /// the system's load is the maximum over elements. (The optimal-
    /// strategy load of Naor-Wool is an LP; the uniform strategy upper-
    /// bounds it and is exact for the symmetric systems built here.)
    fn uniform_load(&self) -> f64 {
        let m = self.quorum_count();
        if m == 0 || self.universe() == 0 {
            return 0.0;
        }
        let mut counts = vec![0u64; self.universe()];
        for i in 0..m {
            for e in self.quorum(i) {
                counts[e] += 1;
            }
        }
        counts.into_iter().max().unwrap_or(0) as f64 / m as f64
    }
}

/// Whether two sorted slices share an element.
#[must_use]
pub fn sorted_intersects(a: &[usize], b: &[usize]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-rolled three-quorum system for exercising the defaults.
    struct Toy;
    impl QuorumSystem for Toy {
        fn universe(&self) -> usize {
            4
        }
        fn quorum_count(&self) -> usize {
            3
        }
        fn quorum(&self, i: usize) -> Vec<usize> {
            match i {
                0 => vec![0, 1],
                1 => vec![1, 2],
                2 => vec![1, 3],
                _ => panic!("quorum index out of range"),
            }
        }
        fn name(&self) -> &'static str {
            "toy"
        }
    }

    /// Two disjoint sets: not a quorum system.
    struct Broken;
    impl QuorumSystem for Broken {
        fn universe(&self) -> usize {
            4
        }
        fn quorum_count(&self) -> usize {
            2
        }
        fn quorum(&self, i: usize) -> Vec<usize> {
            if i == 0 {
                vec![0, 1]
            } else {
                vec![2, 3]
            }
        }
        fn name(&self) -> &'static str {
            "broken"
        }
    }

    #[test]
    fn sorted_intersects_cases() {
        assert!(sorted_intersects(&[1, 3, 5], &[5, 7]));
        assert!(!sorted_intersects(&[1, 3], &[2, 4]));
        assert!(!sorted_intersects(&[], &[1]));
        assert!(sorted_intersects(&[2], &[2]));
    }

    #[test]
    fn toy_system_properties() {
        let s = Toy;
        assert!(s.verify_intersection(10), "element 1 is in every quorum");
        assert_eq!(s.min_quorum_size(10), 2);
        // Element 1 is in 3 of 3 quorums: uniform load 1.0.
        assert!((s.uniform_load() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn broken_system_detected() {
        assert!(!Broken.verify_intersection(10));
    }

    #[test]
    fn limits_respected() {
        // With limit 1 there are no pairs, so the check passes trivially.
        assert!(Broken.verify_intersection(1));
    }
}
