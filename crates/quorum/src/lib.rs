//! # distctr-quorum
//!
//! The quorum-system substrate the paper's reasoning leans on: the Hot
//! Spot Lemma is an intersection requirement on consecutive operations'
//! contact sets, and the related-work section frames the counter as a
//! *dynamic quorum system*.
//!
//! * Static constructions: [`Majority`], [`Grid`] (Maekawa), [`Fpp`]
//!   (finite projective planes), [`TreeQuorum`] (Agrawal-El Abbadi),
//!   [`Wall`] (Peleg-Wool crumbling walls) — all
//!   implementing [`QuorumSystem`] with intersection verification and
//!   uniform-strategy load.
//! * Dynamic checking: [`hotspot`] verifies the Hot Spot Lemma on real
//!   counter traces and summarizes an execution's contact-set family as
//!   a quorum system (experiment E6/E10).
//!
//! ```
//! use distctr_quorum::{Grid, Majority, QuorumSystem};
//!
//! let grid = Grid::new(4).expect("4x4 grid");
//! let majority = Majority::new(16).expect("n = 16");
//! assert!(grid.verify_intersection(usize::MAX));
//! // The load story in miniature: structured beats majority.
//! assert!(grid.uniform_load() < majority.uniform_load());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fpp;
pub mod grid;
pub mod hotspot;
pub mod majority;
pub mod system;
pub mod tree;
pub mod walls;

pub use fpp::Fpp;
pub use grid::Grid;
pub use hotspot::{check_chain, dynamic_view, DynamicQuorumView, HotSpotVerdict};
pub use majority::Majority;
pub use system::{sorted_intersects, QuorumSystem};
pub use tree::TreeQuorum;
pub use walls::Wall;
