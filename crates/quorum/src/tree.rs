//! The tree quorum system (Agrawal & El Abbadi).
//!
//! Elements are the nodes of a complete binary tree. A quorum is built
//! recursively: take the root together with a quorum of either subtree,
//! or — modelling an unavailable root — quorums of *both* subtrees. Any
//! two quorums intersect, and small quorums (a root-to-leaf path, size
//! `O(log n)`) exist, at the price of higher load on nodes near the root
//! — a structural cousin of the paper's communication tree, which
//! motivates why retirement is needed to spread that load.

use crate::system::QuorumSystem;

/// Tree quorum system over a complete binary tree of the given depth
/// (depth 0 = single node). All quorums are materialized at construction,
/// so depth is capped at 4 (65 535 quorums).
///
/// # Examples
///
/// ```
/// use distctr_quorum::{QuorumSystem, TreeQuorum};
/// let t = TreeQuorum::new(2).expect("depth 2");
/// assert_eq!(t.universe(), 7);
/// assert!(t.verify_intersection(usize::MAX));
/// assert_eq!(t.min_quorum_size(usize::MAX), 3, "a root-to-leaf path");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeQuorum {
    depth: u32,
    quorums: Vec<Vec<usize>>,
}

impl TreeQuorum {
    /// Builds the system for a complete binary tree of `depth`.
    ///
    /// # Errors
    ///
    /// Returns an error message if `depth > 4` (enumeration bound).
    pub fn new(depth: u32) -> Result<Self, String> {
        if depth > 4 {
            return Err(format!("tree quorum enumeration bounded at depth <= 4, got {depth}"));
        }
        let mut quorums = Self::build(1, depth);
        for q in &mut quorums {
            q.sort_unstable();
        }
        Ok(TreeQuorum { depth, quorums })
    }

    /// Tree depth.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Quorums of the subtree rooted at heap index `node` with `depth`
    /// levels below it. Elements are heap indices minus one.
    fn build(node: usize, depth: u32) -> Vec<Vec<usize>> {
        if depth == 0 {
            return vec![vec![node - 1]];
        }
        let left = Self::build(node * 2, depth - 1);
        let right = Self::build(node * 2 + 1, depth - 1);
        let mut out = Vec::new();
        // Root plus a quorum of either child.
        for q in left.iter().chain(right.iter()) {
            let mut with_root = q.clone();
            with_root.push(node - 1);
            out.push(with_root);
        }
        // Or quorums of both children (root unavailable).
        for ql in &left {
            for qr in &right {
                let mut q = ql.clone();
                q.extend_from_slice(qr);
                out.push(q);
            }
        }
        out
    }
}

impl QuorumSystem for TreeQuorum {
    fn universe(&self) -> usize {
        (1 << (self.depth + 1)) - 1
    }

    fn quorum_count(&self) -> usize {
        self.quorums.len()
    }

    fn quorum(&self, i: usize) -> Vec<usize> {
        self.quorums[i].clone()
    }

    fn name(&self) -> &'static str {
        "tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_counts_follow_recurrence() {
        // |Q(d)| = 2|Q(d-1)| + |Q(d-1)|^2.
        let counts: Vec<usize> =
            (0..=3).map(|d| TreeQuorum::new(d).expect("tree").quorum_count()).collect();
        assert_eq!(counts, vec![1, 3, 15, 255]);
    }

    #[test]
    fn all_quorums_intersect() {
        for depth in 0..=3u32 {
            let t = TreeQuorum::new(depth).expect("tree");
            assert!(t.verify_intersection(usize::MAX), "depth {depth}");
        }
    }

    #[test]
    fn smallest_quorum_is_a_path() {
        for depth in 0..=3u32 {
            let t = TreeQuorum::new(depth).expect("tree");
            assert_eq!(t.min_quorum_size(usize::MAX), depth as usize + 1, "depth {depth}");
        }
    }

    #[test]
    fn every_minimum_quorum_passes_through_the_root() {
        // The cheap quorums are root-to-leaf paths; a client preferring
        // them makes the root the hot spot — the load concentration the
        // paper's retirement mechanism exists to break.
        let t = TreeQuorum::new(3).expect("tree");
        let min = t.min_quorum_size(usize::MAX);
        for i in 0..t.quorum_count() {
            let q = t.quorum(i);
            if q.len() == min {
                assert!(q.contains(&0), "minimum quorum {q:?} must contain the root");
            }
        }
        // Root participation count follows the recurrence 2|Q(d-1)|.
        let root_count = (0..t.quorum_count()).filter(|&i| t.quorum(i).contains(&0)).count();
        assert_eq!(root_count, 30, "2 * |Q(2)| = 30 quorums use the root");
    }

    #[test]
    fn depth_bound_enforced() {
        assert!(TreeQuorum::new(5).is_err());
        assert!(TreeQuorum::new(4).is_ok());
    }

    #[test]
    fn elements_stay_in_universe() {
        let t = TreeQuorum::new(3).expect("tree");
        for i in 0..t.quorum_count() {
            for e in t.quorum(i) {
                assert!(e < t.universe());
            }
        }
    }
}
