//! The grid quorum system (Maekawa-style).
//!
//! Elements arranged in a `d × d` grid; quorum `(r, c)` is the union of
//! row `r` and column `c`. Any two quorums intersect (row of one crosses
//! column of the other), quorum size is `2d − 1 = O(√n)` and the uniform
//! load is `O(1/√n)` — the classic low-load construction the related-work
//! section points to.

use crate::system::QuorumSystem;

/// A `d × d` grid quorum system (`n = d²` elements, `n` quorums).
///
/// # Examples
///
/// ```
/// use distctr_quorum::{Grid, QuorumSystem};
/// let g = Grid::new(3).expect("3x3");
/// assert_eq!(g.universe(), 9);
/// assert_eq!(g.quorum(0).len(), 5); // 2d - 1
/// assert!(g.verify_intersection(usize::MAX));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid {
    d: usize,
}

impl Grid {
    /// Creates a `d × d` grid.
    ///
    /// # Errors
    ///
    /// Returns an error message if `d == 0`.
    pub fn new(d: usize) -> Result<Self, String> {
        if d == 0 {
            return Err("grid side must be at least 1".to_string());
        }
        Ok(Grid { d })
    }

    /// The grid side `d`.
    #[must_use]
    pub fn side(&self) -> usize {
        self.d
    }

    /// The largest grid fitting within `n` elements.
    #[must_use]
    pub fn largest_within(n: usize) -> Option<Grid> {
        let d = (n as f64).sqrt().floor() as usize;
        (d >= 1).then_some(Grid { d })
    }
}

impl QuorumSystem for Grid {
    fn universe(&self) -> usize {
        self.d * self.d
    }

    fn quorum_count(&self) -> usize {
        self.d * self.d
    }

    fn quorum(&self, i: usize) -> Vec<usize> {
        assert!(i < self.quorum_count(), "quorum index {i} out of range");
        let (r, c) = (i / self.d, i % self.d);
        let mut q: Vec<usize> = (0..self.d)
            .map(|col| r * self.d + col)
            .chain((0..self.d).map(|row| row * self.d + c))
            .collect();
        q.sort_unstable();
        q.dedup();
        q
    }

    fn name(&self) -> &'static str {
        "grid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_shape() {
        let g = Grid::new(4).expect("grid");
        for i in 0..16 {
            let q = g.quorum(i);
            assert_eq!(q.len(), 7, "2d - 1 elements");
            assert!(q.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
        }
    }

    #[test]
    fn any_two_quorums_intersect() {
        for d in 1..=5 {
            let g = Grid::new(d).expect("grid");
            assert!(g.verify_intersection(usize::MAX), "d = {d}");
        }
    }

    #[test]
    fn load_is_inverse_square_root() {
        // Element (r, c) is in a quorum (r', c') iff r' == r or c' == c:
        // 2d - 1 of d^2 quorums.
        for d in [2usize, 4, 8] {
            let g = Grid::new(d).expect("grid");
            let expected = (2 * d - 1) as f64 / (d * d) as f64;
            assert!((g.uniform_load() - expected).abs() < 1e-12, "d = {d}");
        }
    }

    #[test]
    fn grid_beats_majority_load() {
        use crate::majority::Majority;
        let g = Grid::new(4).expect("grid"); // n = 16
        let m = Majority::new(16).expect("majority");
        assert!(
            g.uniform_load() < m.uniform_load(),
            "grid load {} < majority load {}",
            g.uniform_load(),
            m.uniform_load()
        );
    }

    #[test]
    fn largest_within() {
        assert_eq!(Grid::largest_within(81).map(|g| g.side()), Some(9));
        assert_eq!(Grid::largest_within(80).map(|g| g.side()), Some(8));
        assert_eq!(Grid::largest_within(0), None);
    }

    #[test]
    fn degenerate_one_by_one() {
        let g = Grid::new(1).expect("grid");
        assert_eq!(g.quorum(0), vec![0]);
        assert!((g.uniform_load() - 1.0).abs() < 1e-12);
    }
}
