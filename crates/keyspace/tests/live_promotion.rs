//! The keyspace behind a real TCP server: keyed sessions, live
//! promotion under concurrent load, exactly-once across reconnects
//! that straddle a migration, and the single-counter fallback.

use std::time::Duration;

use distctr_keyspace::{Keyspace, KeyspaceConfig, PromotionPolicy};
use distctr_server::{run_load, CounterServer, ErrCode, LoadConfig, RemoteCounter, ServerError};

/// A policy that promotes on the faintest contention signal: any
/// sustained rate above ~1 op/s or a single queued combiner waiter.
/// Demotion never fires (infinite cooldown would need a clock; an
/// impossible rate floor does the same job).
fn eager() -> PromotionPolicy {
    PromotionPolicy {
        window: Duration::from_millis(50),
        promote_rate: 1.0,
        promote_depth: 1,
        demote_rate: 0.0,
        cooldown: Duration::from_secs(3600),
        ..PromotionPolicy::default()
    }
}

fn keyspace(n: usize, policy: PromotionPolicy) -> Keyspace<distctr_core::TreeCounter> {
    Keyspace::sim(KeyspaceConfig { policy, ..KeyspaceConfig::new(n) })
}

#[test]
fn keyed_sessions_drive_independent_counters_over_tcp() {
    let mut server = CounterServer::serve(keyspace(27, PromotionPolicy::default())).unwrap();
    let addr = server.local_addr();

    let mut alice = RemoteCounter::connect_keyed(addr, 3).unwrap();
    let mut bob = RemoteCounter::connect_keyed(addr, 8).unwrap();
    for expect in 0..20u64 {
        // A keyed session's plain `inc` drives the session's counter.
        assert_eq!(alice.inc().unwrap(), expect, "key 3 counts alone");
        assert_eq!(bob.inc().unwrap(), expect, "key 8 counts alone");
    }
    // Explicit per-request keys work from any session, and reads see
    // every grant.
    assert_eq!(alice.inc_key(8).unwrap(), 20, "cross-session keyed inc lands on key 8");
    assert_eq!(alice.read(3).unwrap(), 20);
    assert_eq!(alice.read(8).unwrap(), 21);
    assert_eq!(alice.read(999).unwrap(), 0, "an untouched key reads zero");

    let stats = server.stats();
    assert!(stats.keys_hosted >= 2, "both keys hosted: {}", stats.keys_hosted);
    server.shutdown().unwrap();
}

#[test]
fn live_promotion_under_concurrent_load_preserves_per_key_sequences() {
    let mut server = CounterServer::serve_combining(keyspace(27, eager())).unwrap();
    let cfg = LoadConfig::closed(8, 1200).with_keys(5, 1.3, 0xBEEF);
    let report = run_load(server.local_addr(), &cfg).unwrap();

    assert_eq!(report.failed, 0, "no operation lost its retry budget");
    assert!(
        report.values_are_sequential_per_key(),
        "every key's acked values are exactly 0..ops_k across promotions"
    );
    let stats = server.stats();
    assert!(stats.promotions >= 1, "the eager policy promoted under load: {stats:?}");
    assert_eq!(stats.migrations_inflight, 0, "the run drained every pending migration");
    server.shutdown().unwrap();
}

#[test]
fn a_resumed_session_replays_exactly_once_across_a_migration() {
    let mut server = CounterServer::serve(keyspace(27, eager())).unwrap();
    let addr = server.local_addr();

    let mut client = RemoteCounter::connect_keyed(addr, 7).unwrap();
    let session = client.session();
    // Enough traffic to trip the eager policy: the promotion marks
    // itself pending on the first op and settles mid-burst, so the
    // early grants' cache entries must survive the move to the tree.
    let mut last = 0;
    for _ in 0..10 {
        last = client.inc().unwrap();
    }
    assert_eq!(last, 9);
    drop(client);

    // Reconnect-and-resume keeps the original key (the hello's key is
    // ignored on resume) and replaying an acked request id answers
    // from the caches — never a second grant.
    let mut resumed = RemoteCounter::resume(addr, session).unwrap();
    let replayed = resumed.inc_key_with_id(7, 9, None).unwrap();
    assert_eq!(replayed, 9, "the replay answered the original grant, not a new one");
    assert_eq!(resumed.inc().unwrap(), 10, "fresh ops continue where the sequence left off");
    assert_eq!(resumed.read(7).unwrap(), 11);

    let stats = server.stats();
    assert!(stats.promotions >= 1, "the burst promoted key 7: {stats:?}");
    assert!(stats.deduped >= 1, "the replay was deduplicated: {stats:?}");
    server.shutdown().unwrap();
}

#[test]
fn single_counter_backends_reject_foreign_keys_with_no_such_key() {
    let backend = distctr_core::TreeCounter::new(27).unwrap();
    let mut server = CounterServer::serve(backend).unwrap();
    let addr = server.local_addr();

    let mut client = RemoteCounter::connect(addr).unwrap();
    assert_eq!(client.inc().unwrap(), 0, "the default counter still serves");
    assert_eq!(client.inc_key(0).unwrap(), 1, "key 0 aliases the default counter");
    assert!(
        matches!(client.inc_key(5), Err(ServerError::Remote(ErrCode::NoSuchKey))),
        "a single-counter backend routes no other key"
    );
    server.shutdown().unwrap();
}

#[test]
fn keyed_serving_rides_the_readiness_loop_with_live_promotion() {
    // The whole keyed story — keyed handshakes, per-request keys,
    // reads, and eager promotion under concurrent Zipf load — served
    // by the single-reactor async core instead of a thread per
    // connection. Per-key exactly-once must hold across promotions
    // exactly as it does on the threaded path.
    let mut server = CounterServer::serve_async_combining(keyspace(27, eager())).unwrap();
    let addr = server.local_addr();

    // Warm-up keys sit outside the load mix below (keys 0..5), so the
    // per-key sequence check sees each mixed key from zero.
    let mut alice = RemoteCounter::connect_keyed(addr, 7).unwrap();
    let mut bob = RemoteCounter::connect_keyed(addr, 8).unwrap();
    assert_eq!(alice.inc().unwrap(), 0, "key 7 counts alone on the reactor");
    assert_eq!(bob.inc().unwrap(), 0, "key 8 counts alone on the reactor");
    assert_eq!(alice.inc_key(8).unwrap(), 1, "cross-session keyed inc lands on key 8");
    assert_eq!(alice.read(8).unwrap(), 2);
    drop(alice);
    drop(bob);

    let cfg = LoadConfig::closed(8, 1200).with_keys(5, 1.3, 0xBEEF);
    let report = run_load(addr, &cfg).unwrap();
    assert_eq!(report.failed, 0, "no operation lost its retry budget");
    assert!(
        report.values_are_sequential_per_key(),
        "every key's acked values are exactly 0..ops_k across promotions on the async path"
    );
    // The warm-up keys tripped the eager policy too; one more op each
    // settles their pending migrations before the drain check.
    let mut settle = RemoteCounter::connect(addr).unwrap();
    assert_eq!(settle.inc_key(7).unwrap(), 1);
    assert_eq!(settle.inc_key(8).unwrap(), 2);
    drop(settle);

    let stats = server.stats();
    assert!(stats.promotions >= 1, "the eager policy promoted under load: {stats:?}");
    assert_eq!(stats.migrations_inflight, 0, "the run drained every pending migration");
    server.shutdown().unwrap();
}
