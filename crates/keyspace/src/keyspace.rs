//! The keyed namespace router: many counters behind one backend, each
//! placed adaptively and migrated live between placements.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::time::{Duration, Instant};

use distctr_core::kmath::order_for;
use distctr_core::{CounterBackend, KeyedReply, KeyspaceStats, TreeCounter};
use distctr_sim::ProcessorId;

use crate::central::CentralBackend;
use crate::policy::{PlacementPin, PromotionPolicy};
use crate::ContentionMonitor;

/// Errors a [`Keyspace`] (or its [`CentralBackend`]) can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyspaceError {
    /// The initiating processor is outside the hosted network.
    BadInitiator {
        /// The offending initiator index.
        initiator: usize,
        /// The network size.
        n: usize,
    },
    /// The underlying tree backend failed (construction or traversal).
    Backend(String),
}

impl fmt::Display for KeyspaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyspaceError::BadInitiator { initiator, n } => {
                write!(f, "initiator {initiator} out of range for a network of {n}")
            }
            KeyspaceError::Backend(msg) => write!(f, "backend error: {msg}"),
        }
    }
}

impl std::error::Error for KeyspaceError {}

/// Which way a key is migrating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationDirection {
    /// Centralized backend → retirement tree (the key got hot).
    Promote,
    /// Retirement tree → centralized backend (the key cooled off).
    Demote,
}

/// Configuration for a [`Keyspace`].
#[derive(Debug, Clone)]
pub struct KeyspaceConfig {
    /// Network size shared by every hosted counter.
    pub processors: usize,
    /// Cap on hosted keys; ops on keys beyond it are
    /// [`KeyedReply::Unrouted`].
    pub max_keys: usize,
    /// The promotion/demotion policy (or a baseline pin).
    pub policy: PromotionPolicy,
    /// Modeled per-message service time, realized as busy-work under
    /// the serving lock: a centralized grant of `count` values costs
    /// `count` messages at the center, one tree traversal costs `k+1`.
    /// [`Duration::ZERO`] (the default) disables the model.
    pub per_message: Duration,
    /// Per-key reply-cache capacity (dedup tokens remembered).
    pub dedup_window: usize,
}

impl KeyspaceConfig {
    /// A keyspace over a network of `n` processors with the default
    /// adaptive policy, no cost model, and a 256-token reply cache.
    #[must_use]
    pub fn new(n: usize) -> Self {
        KeyspaceConfig {
            processors: n,
            max_keys: 1024,
            policy: PromotionPolicy::default(),
            per_message: Duration::ZERO,
            dedup_window: 256,
        }
    }
}

/// Where one key currently lives.
enum Placement<B> {
    Central(CentralBackend),
    Tree(B),
}

/// One hosted counter: its placement plus everything that must survive
/// a migration — the grant count, the reply cache, and the contention
/// monitor all live *outside* the placement, so swapping the placement
/// carries them implicitly.
struct KeyEntry<B> {
    placement: Placement<B>,
    /// Values granted so far; the next grant is exactly this.
    granted: u64,
    /// A migration decided at the end of the previous op, to be settled
    /// at the start of the next one (the drain barrier: the serving
    /// lock guarantees no op is in flight at that point).
    pending: Option<MigrationDirection>,
    /// `(session, request)` → first granted value, for exactly-once.
    answers: HashMap<(u64, u64), u64>,
    /// Insertion order of `answers`, for window eviction.
    order: VecDeque<(u64, u64)>,
    monitor: ContentionMonitor,
}

impl<B> KeyEntry<B> {
    fn central(n: usize, window: Duration) -> Self {
        KeyEntry {
            placement: Placement::Central(CentralBackend::new(n)),
            granted: 0,
            pending: None,
            answers: HashMap::new(),
            order: VecDeque::new(),
            monitor: ContentionMonitor::new(window),
        }
    }

    fn on_tree(tree: B, window: Duration) -> Self {
        KeyEntry {
            placement: Placement::Tree(tree),
            granted: 0,
            pending: None,
            answers: HashMap::new(),
            order: VecDeque::new(),
            monitor: ContentionMonitor::new(window),
        }
    }
}

/// A sharded multi-counter keyspace.
///
/// Every key starts on a [`CentralBackend`] (one message per op at the
/// center — optimal while cold). A per-key [`ContentionMonitor`] feeds
/// the [`PromotionPolicy`]; when a key crosses the thresholds it is
/// marked for migration and **settled at the start of its next op**:
/// the serving lock serializes ops per backend, so at that instant the
/// key has no op in flight — that is the drain barrier. Promotion
/// builds a fresh retirement tree and warms it to the granted value
/// with one batch traversal; demotion resumes a centralized backend at
/// the tree's value. The reply cache and grant count live on the key
/// entry, outside the placement, so exactly-once retry survives the
/// swap by construction.
///
/// # Examples
///
/// ```
/// use distctr_core::{CounterBackend, KeyedReply};
/// use distctr_keyspace::{Keyspace, KeyspaceConfig};
/// use distctr_sim::ProcessorId;
///
/// let mut ks = Keyspace::sim(KeyspaceConfig::new(8));
/// let p = ProcessorId::new(0);
/// assert_eq!(ks.inc_key(7, p, None).unwrap(), KeyedReply::Fresh(0));
/// assert_eq!(ks.inc_key(9, p, None).unwrap(), KeyedReply::Fresh(0));
/// assert_eq!(ks.inc_key(7, p, None).unwrap(), KeyedReply::Fresh(1));
/// assert_eq!(ks.read_key(7), Some(2));
/// assert_eq!(ks.keyspace_stats().keys_hosted, 2);
/// ```
pub struct Keyspace<B: CounterBackend> {
    cfg: KeyspaceConfig,
    /// Reference instant for the monitors' microsecond clock.
    epoch: Instant,
    keys: HashMap<u64, KeyEntry<B>>,
    /// Builds a tree backend for `n` processors on each promotion.
    make_tree: Box<dyn FnMut(usize) -> Result<B, String> + Send>,
    promotions: u64,
    demotions: u64,
    /// `k = order_for(n)`: a tree traversal costs `k + 1` messages.
    tree_order: u32,
}

impl<B: CounterBackend> fmt::Debug for Keyspace<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Keyspace")
            .field("cfg", &self.cfg)
            .field("keys_hosted", &self.keys.len())
            .field("promotions", &self.promotions)
            .field("demotions", &self.demotions)
            .finish_non_exhaustive()
    }
}

impl<B: CounterBackend> Keyspace<B> {
    /// A keyspace that builds tree backends with `make_tree` on each
    /// promotion (and on first touch under
    /// [`PlacementPin::Tree`]).
    pub fn new<F>(cfg: KeyspaceConfig, make_tree: F) -> Self
    where
        F: FnMut(usize) -> Result<B, String> + Send + 'static,
    {
        let tree_order = order_for(cfg.processors as u64);
        Keyspace {
            cfg,
            epoch: Instant::now(),
            keys: HashMap::new(),
            make_tree: Box::new(make_tree),
            promotions: 0,
            demotions: 0,
            tree_order,
        }
    }

    /// The configuration this keyspace was built with.
    #[must_use]
    pub fn config(&self) -> &KeyspaceConfig {
        &self.cfg
    }

    /// Keys promoted centralized → tree so far.
    #[must_use]
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Keys demoted tree → centralized so far.
    #[must_use]
    pub fn demotions(&self) -> u64 {
        self.demotions
    }

    /// Whether `key` currently lives on a tree backend.
    #[must_use]
    pub fn is_on_tree(&self, key: u64) -> bool {
        matches!(self.keys.get(&key), Some(KeyEntry { placement: Placement::Tree(_), .. }))
    }

    /// The single serving path: route `key`, replay or apply a batch of
    /// `count` incs, and run the migration state machine around it.
    fn serve(
        &mut self,
        key: u64,
        initiator: ProcessorId,
        count: u64,
        token: Option<(u64, u64)>,
    ) -> Result<KeyedReply, KeyspaceError> {
        let now_us = self.epoch.elapsed().as_micros() as u64;
        if !self.keys.contains_key(&key) {
            if self.keys.len() >= self.cfg.max_keys {
                return Ok(KeyedReply::Unrouted);
            }
            let entry = if self.cfg.policy.pin == PlacementPin::Tree {
                // Pinned-tree keys are born on the tree: a baseline, not
                // a migration, so it does not count as a promotion.
                let tree = (self.make_tree)(self.cfg.processors).map_err(KeyspaceError::Backend)?;
                KeyEntry::on_tree(tree, self.cfg.policy.window)
            } else {
                KeyEntry::central(self.cfg.processors, self.cfg.policy.window)
            };
            self.keys.insert(key, entry);
        }
        let Keyspace { cfg, keys, make_tree, promotions, demotions, tree_order, .. } = self;
        let entry = keys.get_mut(&key).expect("entry ensured above");

        // Exactly-once: a replayed token answers from the reply cache
        // without touching the placement at all — which is also why the
        // cache can never be stranded by a migration.
        if let Some(tok) = token {
            if let Some(&first) = entry.answers.get(&tok) {
                return Ok(KeyedReply::Replay(first));
            }
        }

        // Settle a pending migration. This op has not started and the
        // serving lock admits one op per backend at a time, so the key
        // is drained right now: swap the placement, carrying the value;
        // the reply cache sits outside the placement and needs no copy.
        if let Some(direction) = entry.pending.take() {
            match direction {
                MigrationDirection::Promote => {
                    let mut tree = (make_tree)(cfg.processors).map_err(KeyspaceError::Backend)?;
                    if entry.granted > 0 {
                        // Warm the fresh tree to the carried value with
                        // one batch traversal charged to the center's
                        // former owner.
                        tree.inc_batch(ProcessorId::new(0), entry.granted)
                            .map_err(|e| KeyspaceError::Backend(e.to_string()))?;
                    }
                    entry.placement = Placement::Tree(tree);
                    *promotions += 1;
                }
                MigrationDirection::Demote => {
                    entry.placement = Placement::Central(CentralBackend::resuming_at(
                        cfg.processors,
                        entry.granted,
                    ));
                    *demotions += 1;
                }
            }
        }

        // Apply, and charge the modeled message cost: the center sees
        // every one of the batch's `count` ops; the tree serves the
        // whole batch in one `k + 1`-message traversal.
        let first = match &mut entry.placement {
            Placement::Central(central) => {
                let first = central.inc_batch(initiator, count)?;
                spin_for(scaled(cfg.per_message, count));
                first
            }
            Placement::Tree(tree) => {
                let first = tree
                    .inc_batch(initiator, count)
                    .map_err(|e| KeyspaceError::Backend(e.to_string()))?;
                spin_for(scaled(cfg.per_message, u64::from(*tree_order) + 1));
                first
            }
        };
        debug_assert_eq!(first, entry.granted, "placements grant in lock-step with the entry");
        entry.granted += count;

        if let Some(tok) = token {
            entry.answers.insert(tok, first);
            entry.order.push_back(tok);
            while entry.order.len() > cfg.dedup_window {
                if let Some(evicted) = entry.order.pop_front() {
                    entry.answers.remove(&evicted);
                }
            }
        }

        entry.monitor.record(now_us, count);
        let on_tree = matches!(entry.placement, Placement::Tree(_));
        entry.pending = cfg.policy.decide(&mut entry.monitor, now_us, on_tree);
        Ok(KeyedReply::Fresh(first))
    }
}

impl Keyspace<TreeCounter> {
    /// A keyspace whose hot keys are served by the discrete-event
    /// simulator's [`TreeCounter`].
    #[must_use]
    pub fn sim(cfg: KeyspaceConfig) -> Self {
        Keyspace::new(cfg, |n| TreeCounter::new(n).map_err(|e| e.to_string()))
    }
}

impl<B: CounterBackend> CounterBackend for Keyspace<B> {
    type Error = KeyspaceError;

    fn processors(&self) -> usize {
        self.cfg.processors
    }

    fn inc(&mut self, initiator: ProcessorId) -> Result<u64, Self::Error> {
        self.inc_batch(initiator, 1)
    }

    fn inc_batch(&mut self, initiator: ProcessorId, count: u64) -> Result<u64, Self::Error> {
        match self.serve(distctr_core::DEFAULT_KEY, initiator, count, None)? {
            KeyedReply::Fresh(first) | KeyedReply::Replay(first) => Ok(first),
            KeyedReply::Unrouted => {
                Err(KeyspaceError::Backend("keyspace is at its key limit".into()))
            }
        }
    }

    fn inc_key(
        &mut self,
        key: u64,
        initiator: ProcessorId,
        token: Option<(u64, u64)>,
    ) -> Result<KeyedReply, Self::Error> {
        self.serve(key, initiator, 1, token)
    }

    fn inc_batch_key(
        &mut self,
        key: u64,
        initiator: ProcessorId,
        count: u64,
        token: Option<(u64, u64)>,
    ) -> Result<KeyedReply, Self::Error> {
        self.serve(key, initiator, count, token)
    }

    fn read_key(&self, key: u64) -> Option<u64> {
        Some(self.keys.get(&key).map_or(0, |entry| entry.granted))
    }

    fn keyspace_stats(&self) -> KeyspaceStats {
        KeyspaceStats {
            keys_hosted: self.keys.len() as u64,
            promotions: self.promotions,
            demotions: self.demotions,
            migrations_inflight: self.keys.values().filter(|e| e.pending.is_some()).count() as u64,
        }
    }

    fn bottleneck(&self) -> u64 {
        self.keys
            .values()
            .map(|entry| match &entry.placement {
                Placement::Central(central) => central.bottleneck(),
                Placement::Tree(tree) => tree.bottleneck(),
            })
            .max()
            .unwrap_or(0)
    }

    fn retirements(&self) -> u64 {
        self.keys
            .values()
            .map(|entry| match &entry.placement {
                Placement::Central(central) => central.retirements(),
                Placement::Tree(tree) => tree.retirements(),
            })
            .sum()
    }
}

/// `base × messages`, saturating.
fn scaled(base: Duration, messages: u64) -> Duration {
    base.saturating_mul(u32::try_from(messages).unwrap_or(u32::MAX))
}

/// Busy-waits for `d` — the modeled service time must hold the serving
/// lock (that is the bottleneck being modeled), so sleeping would be
/// wrong even if it were precise enough.
fn spin_for(d: Duration) {
    if d.is_zero() {
        return;
    }
    let end = Instant::now() + d;
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distctr_core::DEFAULT_KEY;

    /// Instant promote on any touch, instant demote on the next: runs
    /// the whole migration cycle deterministically in three ops.
    fn thrash_policy() -> PromotionPolicy {
        PromotionPolicy {
            promote_depth: 1,
            demote_rate: f64::INFINITY,
            cooldown: Duration::ZERO,
            ..PromotionPolicy::default()
        }
    }

    #[test]
    fn keys_count_independently() {
        let mut ks = Keyspace::sim(KeyspaceConfig::new(8));
        let p = ProcessorId::new(0);
        for i in 0..4u64 {
            assert_eq!(ks.inc_key(10, p, None).expect("inc"), KeyedReply::Fresh(i));
            assert_eq!(ks.inc_key(20, p, None).expect("inc"), KeyedReply::Fresh(i));
        }
        assert_eq!(ks.inc_batch_key(10, p, 5, None).expect("batch"), KeyedReply::Fresh(4));
        assert_eq!(ks.read_key(10), Some(9));
        assert_eq!(ks.read_key(20), Some(4));
        assert_eq!(ks.read_key(999), Some(0), "an untouched key reads as zero");
        assert_eq!(ks.keyspace_stats().keys_hosted, 2);
    }

    #[test]
    fn the_full_migration_cycle_keeps_values_sequential() {
        let mut cfg = KeyspaceConfig::new(8);
        cfg.policy = thrash_policy();
        let mut ks = Keyspace::sim(cfg);
        let p = ProcessorId::new(3);

        // Op 1 on the center fires the promotion (depth 1 >= 1)...
        assert_eq!(ks.inc_key(5, p, None).expect("inc"), KeyedReply::Fresh(0));
        assert!(!ks.is_on_tree(5), "marked, not yet settled");
        assert_eq!(ks.keyspace_stats().migrations_inflight, 1, "draining is observable");

        // ...op 2 settles it (value carried to the tree) and fires the
        // demotion (rate below +inf, zero cooldown)...
        assert_eq!(ks.inc_key(5, p, None).expect("inc"), KeyedReply::Fresh(1));
        assert!(ks.is_on_tree(5));
        assert_eq!(ks.promotions(), 1);

        // ...and op 3 settles the demotion, value carried back.
        assert_eq!(ks.inc_key(5, p, None).expect("inc"), KeyedReply::Fresh(2));
        assert!(!ks.is_on_tree(5));
        assert_eq!(ks.demotions(), 1);
        assert_eq!(ks.read_key(5), Some(3));
    }

    #[test]
    fn replayed_tokens_answer_from_the_cache_across_a_migration() {
        let mut cfg = KeyspaceConfig::new(8);
        cfg.policy = thrash_policy();
        let mut ks = Keyspace::sim(cfg);
        let p = ProcessorId::new(0);

        let tok = (7, 1);
        assert_eq!(ks.inc_key(5, p, Some(tok)).expect("inc"), KeyedReply::Fresh(0));
        // The retry lands while the promotion is still pending…
        assert_eq!(ks.inc_key(5, p, Some(tok)).expect("retry"), KeyedReply::Replay(0));
        // …and again after another op has settled it onto the tree.
        assert_eq!(ks.inc_key(5, p, Some((7, 2))).expect("inc"), KeyedReply::Fresh(1));
        assert!(ks.is_on_tree(5));
        assert_eq!(ks.inc_key(5, p, Some(tok)).expect("retry"), KeyedReply::Replay(0));
        assert_eq!(ks.read_key(5), Some(2), "replays granted nothing");
    }

    #[test]
    fn the_reply_cache_evicts_beyond_its_window() {
        let mut cfg = KeyspaceConfig::new(8);
        cfg.dedup_window = 2;
        let mut ks = Keyspace::sim(cfg);
        let p = ProcessorId::new(0);
        for r in 0..3u64 {
            assert_eq!(ks.inc_key(1, p, Some((9, r))).expect("inc"), KeyedReply::Fresh(r));
        }
        assert_eq!(
            ks.inc_key(1, p, Some((9, 0))).expect("inc"),
            KeyedReply::Fresh(3),
            "token 0 was evicted, so this is a fresh grant"
        );
        assert_eq!(ks.inc_key(1, p, Some((9, 2))).expect("inc"), KeyedReply::Replay(2));
    }

    #[test]
    fn the_key_limit_unroutes_new_keys_but_not_existing_ones() {
        let mut cfg = KeyspaceConfig::new(8);
        cfg.max_keys = 2;
        let mut ks = Keyspace::sim(cfg);
        let p = ProcessorId::new(0);
        assert_eq!(ks.inc_key(1, p, None).expect("inc"), KeyedReply::Fresh(0));
        assert_eq!(ks.inc_key(2, p, None).expect("inc"), KeyedReply::Fresh(0));
        assert_eq!(ks.inc_key(3, p, None).expect("inc"), KeyedReply::Unrouted);
        assert_eq!(ks.inc_key(1, p, None).expect("inc"), KeyedReply::Fresh(1));
    }

    #[test]
    fn pins_fix_the_placement_from_birth() {
        let mut cfg = KeyspaceConfig::new(8);
        cfg.policy = PromotionPolicy::pinned_tree();
        let mut ks = Keyspace::sim(cfg);
        let p = ProcessorId::new(0);
        assert_eq!(ks.inc_key(1, p, None).expect("inc"), KeyedReply::Fresh(0));
        assert!(ks.is_on_tree(1), "pinned-tree keys are born on the tree");
        assert_eq!(ks.promotions(), 0, "birth placement is not a promotion");

        let mut cfg = KeyspaceConfig::new(8);
        cfg.policy = PromotionPolicy::pinned_central();
        let mut ks = Keyspace::sim(cfg);
        for _ in 0..50 {
            ks.inc_batch_key(1, p, 20, None).expect("batch");
        }
        assert!(!ks.is_on_tree(1), "pinned-central keys never promote");
        assert_eq!(ks.promotions(), 0);
    }

    #[test]
    fn a_keyspace_is_itself_a_legacy_backend_on_the_default_key() {
        let mut ks = Keyspace::sim(KeyspaceConfig::new(8));
        let p = ProcessorId::new(2);
        assert_eq!(CounterBackend::inc(&mut ks, p).expect("inc"), 0);
        assert_eq!(CounterBackend::inc_batch(&mut ks, p, 4).expect("batch"), 1);
        assert_eq!(ks.read_key(DEFAULT_KEY), Some(5));
        assert!(ks.bottleneck() >= 5, "the default key's center saw every op");
    }

    #[test]
    fn bad_initiators_are_rejected_on_both_placements() {
        let mut cfg = KeyspaceConfig::new(8);
        cfg.policy = PromotionPolicy::pinned_tree();
        let mut ks = Keyspace::sim(cfg);
        assert!(ks.inc_key(1, ProcessorId::new(8), None).is_err());
        let mut ks = Keyspace::sim(KeyspaceConfig::new(8));
        assert_eq!(
            ks.inc_key(1, ProcessorId::new(8), None),
            Err(KeyspaceError::BadInitiator { initiator: 8, n: 8 })
        );
    }
}
