//! The cheap centralized backend every cold key starts on.

use distctr_core::CounterBackend;
use distctr_sim::ProcessorId;

use crate::keyspace::KeyspaceError;

/// A centralized counter object: one processor (the center) owns the
/// value and hands it out in order. Every increment is one message at
/// the center, so its [`CounterBackend::bottleneck`] grows linearly
/// with the ops — the exact load profile the paper's lower bound says a
/// *contended* counter cannot escape, and the exact profile that is
/// **optimal** for an uncontended one (the tree pays `k+1` messages per
/// cold traversal where the center pays 1).
///
/// # Examples
///
/// ```
/// use distctr_core::CounterBackend;
/// use distctr_keyspace::CentralBackend;
/// use distctr_sim::ProcessorId;
///
/// let mut c = CentralBackend::new(8);
/// assert_eq!(c.inc(ProcessorId::new(3)).unwrap(), 0);
/// assert_eq!(c.inc_batch(ProcessorId::new(5), 4).unwrap(), 1);
/// assert_eq!(c.bottleneck(), 5, "the center saw every op");
/// ```
#[derive(Debug, Clone)]
pub struct CentralBackend {
    processors: usize,
    next: u64,
    /// Messages handled at the center — one per granted value.
    handled: u64,
}

impl CentralBackend {
    /// A fresh centralized counter for a network of `n` processors.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a network needs at least one processor");
        CentralBackend { processors: n, next: 0, handled: 0 }
    }

    /// A centralized counter resuming from `value` grants already made
    /// elsewhere — the demotion path's state carry.
    #[must_use]
    pub fn resuming_at(n: usize, value: u64) -> Self {
        let mut c = Self::new(n);
        c.next = value;
        c
    }

    /// The next value this counter will grant (== grants so far).
    #[must_use]
    pub fn value(&self) -> u64 {
        self.next
    }

    fn check(&self, initiator: ProcessorId) -> Result<(), KeyspaceError> {
        if initiator.index() < self.processors {
            Ok(())
        } else {
            Err(KeyspaceError::BadInitiator { initiator: initiator.index(), n: self.processors })
        }
    }
}

impl CounterBackend for CentralBackend {
    type Error = KeyspaceError;

    fn processors(&self) -> usize {
        self.processors
    }

    fn inc(&mut self, initiator: ProcessorId) -> Result<u64, Self::Error> {
        self.inc_batch(initiator, 1)
    }

    fn inc_batch(&mut self, initiator: ProcessorId, count: u64) -> Result<u64, Self::Error> {
        self.check(initiator)?;
        let first = self.next;
        self.next += count;
        // The center cannot amortize: each of the batch's increments is
        // its own message from the modeled deployment's remote clients.
        self.handled += count;
        Ok(first)
    }

    fn bottleneck(&self) -> u64 {
        self.handled
    }

    fn retirements(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_are_sequential_and_the_center_is_the_bottleneck() {
        let mut c = CentralBackend::new(4);
        for i in 0..10u64 {
            assert_eq!(c.inc(ProcessorId::new((i % 4) as usize)).expect("inc"), i);
        }
        assert_eq!(c.bottleneck(), 10);
        assert_eq!(c.retirements(), 0);
        assert_eq!(c.value(), 10);
    }

    #[test]
    fn batches_grant_contiguous_ranges_without_amortizing_the_center() {
        let mut c = CentralBackend::new(4);
        assert_eq!(c.inc_batch(ProcessorId::new(0), 5).expect("batch"), 0);
        assert_eq!(c.inc(ProcessorId::new(1)).expect("inc"), 5);
        assert_eq!(c.bottleneck(), 6, "a batch of 5 is 5 messages at the center");
    }

    #[test]
    fn resuming_carries_the_value() {
        let mut c = CentralBackend::resuming_at(4, 42);
        assert_eq!(c.inc(ProcessorId::new(0)).expect("inc"), 42);
    }

    #[test]
    fn out_of_range_initiators_fail() {
        let mut c = CentralBackend::new(4);
        assert!(c.inc(ProcessorId::new(4)).is_err());
    }
}
