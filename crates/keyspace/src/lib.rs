//! # distctr-keyspace
//!
//! A sharded multi-counter **keyspace**: one [`Keyspace`] hosts many
//! independent counters, addressed by a `u64` key, behind the same
//! [`CounterBackend`](distctr_core::CounterBackend) interface the TCP
//! server (`distctr-server`) already serves — so a single listener
//! hosts the whole namespace with keyed sessions, per-key flat
//! combining and exactly-once retries.
//!
//! The paper's result is the reason this crate exists: the retirement
//! tree's O(k) bottleneck bound only pays for itself **under
//! contention**. A cold counter is served strictly cheaper by a
//! centralized object (one message at the center per op, versus a
//! `k+1`-message traversal), while a hot counter batched to `m` ops per
//! traversal amortizes the tree to `(k+1)/m` messages per op — below
//! the center's unavoidable 1 as soon as `m > k+1`. The crossover is a
//! function of *measured traffic*, not configuration, so each key
//! starts on a cheap [`CentralBackend`] and a per-key
//! [`ContentionMonitor`] promotes it **live** to a retirement-tree
//! backend when its windowed inc-rate or combiner batch depth crosses
//! the [`PromotionPolicy`] thresholds; demotion on cooldown is the
//! reverse path. Migration drains in-flight ops at a settle barrier and
//! carries both the counter value and the key's reply-cache entries
//! across, so exactly-once survives a key changing placement between a
//! request and its retry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod central;
mod keyspace;
mod policy;

pub use central::CentralBackend;
pub use keyspace::{Keyspace, KeyspaceConfig, KeyspaceError, MigrationDirection};
pub use policy::{ContentionMonitor, PlacementPin, PromotionPolicy};
