//! Per-key contention measurement and the promotion/demotion policy.

use std::collections::VecDeque;
use std::time::Duration;

use crate::keyspace::MigrationDirection;

/// A sliding-window contention monitor for one key: the windowed
/// increment rate plus the depth of the most recent combiner batch.
/// Time is injected as microseconds-since-epoch, so the policy is unit
/// testable without a clock.
#[derive(Debug, Clone)]
pub struct ContentionMonitor {
    window_us: u64,
    /// `(time_us, count)` events inside the window, oldest first.
    events: VecDeque<(u64, u64)>,
    in_window: u64,
    /// Ops in the most recent single batch (combiner round depth).
    last_depth: u64,
    /// Since when the rate has been continuously below the demotion
    /// threshold (tree-placed keys only), for the cooldown clock.
    cool_since: Option<u64>,
}

impl ContentionMonitor {
    /// A monitor with the given rate window.
    #[must_use]
    pub fn new(window: Duration) -> Self {
        ContentionMonitor {
            window_us: (window.as_micros() as u64).max(1),
            events: VecDeque::new(),
            in_window: 0,
            last_depth: 0,
            cool_since: None,
        }
    }

    /// Records a batch of `count` incs observed at `now_us`.
    pub fn record(&mut self, now_us: u64, count: u64) {
        self.events.push_back((now_us, count));
        self.in_window += count;
        self.last_depth = count;
        self.prune(now_us);
    }

    fn prune(&mut self, now_us: u64) {
        let horizon = now_us.saturating_sub(self.window_us);
        while let Some(&(t, c)) = self.events.front() {
            if t >= horizon {
                break;
            }
            self.events.pop_front();
            self.in_window -= c;
        }
    }

    /// The windowed increment rate in ops/second as of `now_us`.
    #[must_use]
    pub fn rate(&mut self, now_us: u64) -> f64 {
        self.prune(now_us);
        self.in_window as f64 / (self.window_us as f64 / 1_000_000.0)
    }

    /// Depth of the most recent batch.
    #[must_use]
    pub fn last_depth(&self) -> u64 {
        self.last_depth
    }
}

/// Pins a keyspace to one placement for baseline configurations; the
/// adaptive policy is the point of the crate, the pins are what it is
/// benchmarked against (E24).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPin {
    /// Decide per key from measured contention.
    Adaptive,
    /// Every key stays on its centralized backend forever.
    Central,
    /// Every key is promoted to a tree backend on first touch.
    Tree,
}

/// When a key moves between the centralized backend and the retirement
/// tree.
///
/// Promotion fires when the windowed rate reaches `promote_rate` *or* a
/// single combiner batch reaches `promote_depth` — the latter is the
/// direct observation that batching would amortize a traversal below
/// the center's per-op cost (the crossover is at depth `k+1`).
/// Demotion fires when a tree-placed key's rate stays below
/// `demote_rate` for a full `cooldown`.
#[derive(Debug, Clone, PartialEq)]
pub struct PromotionPolicy {
    /// The contention monitor's rate window.
    pub window: Duration,
    /// Windowed ops/second at which a central key is promoted.
    pub promote_rate: f64,
    /// A single batch this deep promotes immediately (set near `k+1`,
    /// the amortization crossover).
    pub promote_depth: u64,
    /// Windowed ops/second below which a tree key starts cooling.
    pub demote_rate: f64,
    /// How long a tree key must stay cool before it is demoted.
    pub cooldown: Duration,
    /// Baseline pinning; [`PlacementPin::Adaptive`] for real use.
    pub pin: PlacementPin,
}

impl Default for PromotionPolicy {
    fn default() -> Self {
        PromotionPolicy {
            window: Duration::from_millis(100),
            promote_rate: 500.0,
            promote_depth: 4,
            demote_rate: 50.0,
            cooldown: Duration::from_millis(250),
            pin: PlacementPin::Adaptive,
        }
    }
}

impl PromotionPolicy {
    /// The all-central baseline: no key ever leaves its centralized
    /// backend.
    #[must_use]
    pub fn pinned_central() -> Self {
        PromotionPolicy { pin: PlacementPin::Central, ..PromotionPolicy::default() }
    }

    /// The all-tree baseline: every key is promoted on first touch.
    #[must_use]
    pub fn pinned_tree() -> Self {
        PromotionPolicy { pin: PlacementPin::Tree, ..PromotionPolicy::default() }
    }

    /// Decides whether a key should migrate, given its monitor, the
    /// time, and its current placement. Returns `None` to stay put.
    #[must_use]
    pub fn decide(
        &self,
        monitor: &mut ContentionMonitor,
        now_us: u64,
        on_tree: bool,
    ) -> Option<MigrationDirection> {
        match self.pin {
            PlacementPin::Central => {
                return (on_tree).then_some(MigrationDirection::Demote);
            }
            PlacementPin::Tree => {
                return (!on_tree).then_some(MigrationDirection::Promote);
            }
            PlacementPin::Adaptive => {}
        }
        let rate = monitor.rate(now_us);
        if on_tree {
            if rate >= self.demote_rate {
                monitor.cool_since = None;
                return None;
            }
            let since = *monitor.cool_since.get_or_insert(now_us);
            (now_us.saturating_sub(since) >= self.cooldown.as_micros() as u64)
                .then_some(MigrationDirection::Demote)
        } else {
            monitor.cool_since = None;
            (rate >= self.promote_rate || monitor.last_depth() >= self.promote_depth)
                .then_some(MigrationDirection::Promote)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000;

    #[test]
    fn the_window_forgets_old_traffic() {
        let mut m = ContentionMonitor::new(Duration::from_millis(100));
        m.record(0, 50);
        assert!((m.rate(0) - 500.0).abs() < 1e-9, "50 ops over a 100 ms window");
        assert_eq!(m.rate(SEC) as u64, 0, "a second later the window is empty");
        assert_eq!(m.last_depth(), 50, "depth is the last batch, not windowed");
    }

    #[test]
    fn adaptive_promotes_on_rate_or_depth_and_demotes_after_cooldown() {
        let p = PromotionPolicy {
            promote_rate: 1000.0,
            promote_depth: 8,
            demote_rate: 100.0,
            window: Duration::from_millis(100),
            cooldown: Duration::from_millis(200),
            pin: PlacementPin::Adaptive,
        };
        // Rate path: 150 ops in the window is 1500/s >= 1000/s.
        let mut m = ContentionMonitor::new(p.window);
        for t in 0..150 {
            m.record(t * 100, 1);
        }
        assert_eq!(p.decide(&mut m, 15_000, false), Some(MigrationDirection::Promote));
        // Depth path: one deep batch promotes a quiet key immediately.
        let mut m = ContentionMonitor::new(p.window);
        m.record(0, 8);
        assert_eq!(p.decide(&mut m, 0, false), Some(MigrationDirection::Promote));
        // A cold key on the tree must stay cool for the whole cooldown.
        let mut m = ContentionMonitor::new(p.window);
        m.record(0, 1);
        assert_eq!(p.decide(&mut m, SEC, true), None, "cooldown starts now");
        assert_eq!(p.decide(&mut m, SEC + 100_000, true), None, "still cooling");
        assert_eq!(
            p.decide(&mut m, SEC + 250_000, true),
            Some(MigrationDirection::Demote),
            "cooldown elapsed"
        );
        // Hot traffic resets the cooldown clock.
        let mut m = ContentionMonitor::new(p.window);
        assert_eq!(p.decide(&mut m, 0, true), None);
        for t in 0..50 {
            m.record(100_000 + t * 1000, 1);
        }
        assert_eq!(p.decide(&mut m, 150_000, true), None, "rate 500/s >= 100/s resets cooling");
        assert!(m.cool_since.is_none());
    }

    #[test]
    fn pins_override_measurement() {
        let mut m = ContentionMonitor::new(Duration::from_millis(100));
        m.record(0, 1000);
        assert_eq!(PromotionPolicy::pinned_central().decide(&mut m, 0, false), None);
        assert_eq!(
            PromotionPolicy::pinned_central().decide(&mut m, 0, true),
            Some(MigrationDirection::Demote)
        );
        assert_eq!(
            PromotionPolicy::pinned_tree().decide(&mut m, 0, false),
            Some(MigrationDirection::Promote)
        );
        assert_eq!(PromotionPolicy::pinned_tree().decide(&mut m, 0, true), None);
    }
}
