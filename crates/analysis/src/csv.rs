//! Minimal CSV writing (RFC-4180-style quoting) for experiment exports.

use std::fmt::Write as _;

/// A CSV document builder.
///
/// # Examples
///
/// ```
/// use distctr_analysis::Csv;
/// let mut csv = Csv::new(vec!["algo", "n", "load"]);
/// csv.row(vec!["tree".into(), "81".into(), "52".into()]);
/// let s = csv.render();
/// assert_eq!(s.lines().next(), Some("algo,n,load"));
/// ```
#[derive(Debug, Clone)]
pub struct Csv {
    columns: usize,
    body: String,
}

impl Csv {
    /// Starts a document with a header row.
    #[must_use]
    pub fn new<S: AsRef<str>>(headers: Vec<S>) -> Self {
        let mut csv = Csv { columns: headers.len(), body: String::new() };
        csv.write_row(headers.iter().map(AsRef::as_ref));
        csv
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.columns, "row width must match header width");
        self.write_row(cells.iter().map(String::as_str));
        self
    }

    fn write_row<'a>(&mut self, cells: impl Iterator<Item = &'a str>) {
        let mut first = true;
        for cell in cells {
            if !first {
                self.body.push(',');
            }
            first = false;
            let _ = write!(self.body, "{}", escape(cell));
        }
        self.body.push('\n');
    }

    /// The rendered document.
    #[must_use]
    pub fn render(&self) -> String {
        self.body.clone()
    }
}

/// Quotes a field if it contains separators, quotes or newlines.
#[must_use]
pub fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fields_unquoted() {
        assert_eq!(escape("abc"), "abc");
        assert_eq!(escape("1.5"), "1.5");
    }

    #[test]
    fn special_fields_quoted() {
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(escape("line\nbreak"), "\"line\nbreak\"");
    }

    #[test]
    fn document_structure() {
        let mut csv = Csv::new(vec!["a", "b"]);
        csv.row(vec!["1".into(), "x,y".into()]);
        csv.row(vec!["2".into(), "plain".into()]);
        let s = csv.render();
        assert_eq!(s, "a,b\n1,\"x,y\"\n2,plain\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut csv = Csv::new(vec!["a"]);
        csv.row(vec!["1".into(), "2".into()]);
    }
}
