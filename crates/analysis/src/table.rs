//! Plain-text table rendering for experiment reports.

use std::fmt;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Align {
    /// Left-aligned (labels).
    #[default]
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// An ASCII table builder.
///
/// # Examples
///
/// ```
/// use distctr_analysis::Table;
/// let mut t = Table::new(vec!["algo", "n", "bottleneck"]);
/// t.row(vec!["central".into(), "81".into(), "164".into()]);
/// t.row(vec!["tree".into(), "81".into(), "52".into()]);
/// let s = t.render();
/// assert!(s.contains("central"));
/// assert!(s.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers. Columns default to
    /// left alignment for the first column, right for the rest (the usual
    /// label + numbers layout).
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = headers
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Table { headers, aligns, rows: Vec::new() }
    }

    /// Overrides the column alignments.
    ///
    /// # Panics
    ///
    /// Panics if the number of alignments differs from the number of
    /// columns.
    pub fn set_aligns(&mut self, aligns: Vec<Align>) -> &mut Self {
        assert_eq!(aligns.len(), self.headers.len(), "one alignment per column");
        self.aligns = aligns;
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width must match header width");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a header separator.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for i in 0..cols {
                if i > 0 {
                    out.push_str("  ");
                }
                let cell = &cells[i];
                let pad = widths[i] - cell.len();
                match self.aligns[i] {
                    Align::Left => {
                        out.push_str(cell);
                        if i + 1 < cols {
                            out.push_str(&" ".repeat(pad));
                        }
                    }
                    Align::Right => {
                        out.push_str(&" ".repeat(pad));
                        out.push_str(cell);
                    }
                }
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float with a sensible number of digits for tables.
#[must_use]
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows the same rendered width (modulo trailing trim of left
        // last column).
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with('a'));
        assert!(lines[3].contains("12345"));
        // Numbers right-aligned: "1" ends at same column as "12345".
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn alignment_override() {
        let mut t = Table::new(vec!["x", "y"]);
        t.set_aligns(vec![Align::Right, Align::Left]);
        t.row(vec!["1".into(), "abc".into()]);
        let s = t.render();
        assert!(s.contains("1  abc"));
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(vec!["h1", "h2"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.render().lines().count(), 2);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1234.5), "1234");
        assert_eq!(fmt_f64(12.345), "12.35");
        assert_eq!(fmt_f64(0.01234), "0.0123");
        assert_eq!(fmt_f64(-42.0), "-42.00");
    }
}
