//! Summary statistics for experiment reports.

/// Running mean/variance accumulator (Welford's algorithm), plus extrema.
///
/// # Examples
///
/// ```
/// use distctr_analysis::Stats;
/// let mut s = Stats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_stddev() - 2.0).abs() < 1e-12);
/// assert_eq!(s.min(), Some(2.0));
/// assert_eq!(s.max(), Some(9.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stats {
    count: u64,
    mean: f64,
    m2: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl Stats {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Stats::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0.0 when fewer than 2 observations).
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn population_stddev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest observation.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest observation.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Stats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = (self.count + other.count) as f64;
        let delta = other.mean - self.mean;
        self.m2 += other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total;
        self.mean += delta * other.count as f64 / total;
        self.count += other.count;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

impl FromIterator<f64> for Stats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Stats::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

/// The `q`-th percentile (0.0..=100.0) of a sample, by linear
/// interpolation on the sorted values. Returns `None` for an empty
/// sample.
///
/// # Panics
///
/// Panics if `q` is outside `0.0..=100.0` or any value is NaN.
#[must_use]
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&q), "percentile must be within 0..=100");
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("values must not be NaN"));
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Geometric mean of strictly positive values (`None` if empty or any
/// value is not positive).
#[must_use]
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = Stats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_observation() {
        let s: Stats = [3.5].into_iter().collect();
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), Some(3.5));
    }

    #[test]
    fn merge_equals_sequential() {
        let all: Stats = (0..100).map(f64::from).collect();
        let mut a: Stats = (0..37).map(f64::from).collect();
        let b: Stats = (37..100).map(f64::from).collect();
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.population_variance() - all.population_variance()).abs() < 1e-6);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: Stats = [1.0, 2.0].into_iter().collect();
        let before = a.clone();
        a.merge(&Stats::new());
        assert_eq!(a, before);
        let mut e = Stats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), Some(10.0));
        assert_eq!(percentile(&v, 100.0), Some(40.0));
        assert_eq!(percentile(&v, 50.0), Some(25.0));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    #[should_panic(expected = "within 0..=100")]
    fn percentile_range_checked() {
        let _ = percentile(&[1.0], 101.0);
    }

    #[test]
    fn geometric_mean_cases() {
        let g = geometric_mean(&[1.0, 4.0, 16.0]).expect("positive");
        assert!((g - 4.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), None);
        assert_eq!(geometric_mean(&[1.0, 0.0]), None);
        assert_eq!(geometric_mean(&[1.0, -2.0]), None);
    }
}
