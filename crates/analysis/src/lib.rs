//! # distctr-analysis
//!
//! Statistics and plain-text reporting shared by the distctr experiment
//! harness: Welford accumulators and percentiles ([`stats`]), aligned
//! ASCII tables ([`table`]), CSV export ([`csv`]) and load-distribution
//! histograms ([`hist`]).
//!
//! ```
//! use distctr_analysis::{Stats, Table};
//!
//! let loads: Stats = [2.0, 2.0, 52.0].into_iter().collect();
//! let mut t = Table::new(vec!["metric", "value"]);
//! t.row(vec!["max load".into(), format!("{}", loads.max().unwrap_or(0.0))]);
//! assert!(t.render().contains("52"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod fit;
pub mod hist;
pub mod plot;
pub mod stats;
pub mod table;

pub use csv::Csv;
pub use fit::{linear_fit, loglog_fit, LineFit};
pub use hist::Histogram;
pub use plot::{Plot, Scale};
pub use stats::{geometric_mean, percentile, Stats};
pub use table::{fmt_f64, Align, Table};
