//! Text histograms of per-processor load distributions.
//!
//! The bottleneck story is a story about the *tail* of the load
//! distribution; a quick horizontal-bar histogram makes it visible in
//! terminal reports. The same applies to the serving layer's
//! client-observed latencies, so [`Histogram::from_durations`] buckets
//! wall-clock samples in microseconds.

use std::fmt::Write as _;
use std::time::Duration;

/// A fixed-bin histogram over `u64` samples.
///
/// # Examples
///
/// ```
/// use distctr_analysis::Histogram;
/// let h = Histogram::from_samples(&[1, 2, 2, 3, 50], 5);
/// assert_eq!(h.total(), 5);
/// assert!(h.render(20).contains('#'));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bins: Vec<u64>,
    lo: u64,
    hi: u64,
    width: u64,
}

impl Histogram {
    /// Builds a histogram with `bins` equal-width bins spanning the
    /// sample range.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    #[must_use]
    pub fn from_samples(samples: &[u64], bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        let lo = samples.iter().copied().min().unwrap_or(0);
        let hi = samples.iter().copied().max().unwrap_or(0);
        let width = ((hi - lo) / bins as u64 + 1).max(1);
        let mut h = Histogram { bins: vec![0; bins], lo, hi, width };
        for &s in samples {
            let idx = (((s - lo) / width) as usize).min(bins - 1);
            h.bins[idx] += 1;
        }
        h
    }

    /// Builds a histogram over wall-clock durations, bucketed in
    /// microseconds — the latency companion to
    /// [`Histogram::from_samples`].
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::time::Duration;
    /// use distctr_analysis::Histogram;
    /// let lat = [Duration::from_micros(120), Duration::from_micros(95), Duration::from_millis(2)];
    /// let h = Histogram::from_durations(&lat, 4);
    /// assert_eq!(h.total(), 3);
    /// assert_eq!(h.range(), (95, 2000));
    /// ```
    #[must_use]
    pub fn from_durations(samples: &[Duration], bins: usize) -> Self {
        let us: Vec<u64> = samples.iter().map(|d| d.as_micros() as u64).collect();
        Self::from_samples(&us, bins)
    }

    /// Total samples.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// The bin counts.
    #[must_use]
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Sample range `(min, max)`.
    #[must_use]
    pub fn range(&self) -> (u64, u64) {
        (self.lo, self.hi)
    }

    /// Renders horizontal bars scaled to `max_bar` characters.
    #[must_use]
    pub fn render(&self, max_bar: usize) -> String {
        let peak = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &count) in self.bins.iter().enumerate() {
            let start = self.lo + i as u64 * self.width;
            let end = start + self.width - 1;
            let bar = (count as usize * max_bar).div_ceil(peak as usize).min(max_bar);
            let bar = if count == 0 { 0 } else { bar.max(1) };
            let _ = writeln!(
                out,
                "  [{start:>8} ..{end:>9}] {:<width$} {count}",
                "#".repeat(bar),
                width = max_bar
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_cover_all_samples() {
        let h = Histogram::from_samples(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9], 5);
        assert_eq!(h.total(), 10);
        assert_eq!(h.bins(), &[2, 2, 2, 2, 2]);
        assert_eq!(h.range(), (0, 9));
    }

    #[test]
    fn outlier_lands_in_last_bin() {
        let h = Histogram::from_samples(&[1, 1, 1, 100], 4);
        assert_eq!(h.total(), 4);
        assert_eq!(*h.bins().last().expect("bins"), 1, "the bottleneck outlier");
        assert_eq!(h.bins()[0], 3);
    }

    #[test]
    fn empty_samples() {
        let h = Histogram::from_samples(&[], 3);
        assert_eq!(h.total(), 0);
        assert_eq!(h.bins(), &[0, 0, 0]);
    }

    #[test]
    fn constant_samples_single_bin() {
        let h = Histogram::from_samples(&[7, 7, 7], 4);
        assert_eq!(h.total(), 3);
        assert_eq!(h.bins()[0], 3);
    }

    #[test]
    fn render_shows_counts() {
        let h = Histogram::from_samples(&[1, 2, 2, 9], 3);
        let s = h.render(10);
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains('#'));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = Histogram::from_samples(&[1], 0);
    }
}
