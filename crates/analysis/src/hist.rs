//! Text histograms of per-processor load distributions.
//!
//! The bottleneck story is a story about the *tail* of the load
//! distribution; a quick horizontal-bar histogram makes it visible in
//! terminal reports. The same applies to the serving layer's
//! client-observed latencies, so [`Histogram::from_durations`] buckets
//! wall-clock samples in microseconds.

use std::fmt::Write as _;
use std::time::Duration;

/// A fixed-bin histogram over `u64` samples.
///
/// # Examples
///
/// ```
/// use distctr_analysis::Histogram;
/// let h = Histogram::from_samples(&[1, 2, 2, 3, 50], 5);
/// assert_eq!(h.total(), 5);
/// assert!(h.render(20).contains('#'));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bins: Vec<u64>,
    lo: u64,
    hi: u64,
    width: u64,
}

impl Histogram {
    /// Builds a histogram with `bins` equal-width bins spanning the
    /// sample range.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    #[must_use]
    pub fn from_samples(samples: &[u64], bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        let lo = samples.iter().copied().min().unwrap_or(0);
        let hi = samples.iter().copied().max().unwrap_or(0);
        let width = ((hi - lo) / bins as u64 + 1).max(1);
        let mut h = Histogram { bins: vec![0; bins], lo, hi, width };
        for &s in samples {
            let idx = (((s - lo) / width) as usize).min(bins - 1);
            h.bins[idx] += 1;
        }
        h
    }

    /// Builds a histogram over wall-clock durations, bucketed in
    /// microseconds — the latency companion to
    /// [`Histogram::from_samples`].
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::time::Duration;
    /// use distctr_analysis::Histogram;
    /// let lat = [Duration::from_micros(120), Duration::from_micros(95), Duration::from_millis(2)];
    /// let h = Histogram::from_durations(&lat, 4);
    /// assert_eq!(h.total(), 3);
    /// assert_eq!(h.range(), (95, 2000));
    /// ```
    #[must_use]
    pub fn from_durations(samples: &[Duration], bins: usize) -> Self {
        let us: Vec<u64> = samples.iter().map(|d| d.as_micros() as u64).collect();
        Self::from_samples(&us, bins)
    }

    /// Builds an **empty** histogram with an explicit layout: `bins`
    /// equal-width bins spanning `[lo, hi]`. Unlike
    /// [`Histogram::from_samples`], whose layout is derived from the
    /// data (and therefore differs between two sample sets), an explicit
    /// layout makes histograms *mergeable*: give every recording thread
    /// its own `with_layout` histogram and fold them with
    /// [`Histogram::merge`] afterwards — no shared mutex on the hot
    /// path.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi < lo`.
    #[must_use]
    pub fn with_layout(lo: u64, hi: u64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(hi >= lo, "hi must not be below lo");
        let width = ((hi - lo) / bins as u64 + 1).max(1);
        Histogram { bins: vec![0; bins], lo, hi, width }
    }

    /// Records one sample. Samples below `lo` clamp into the first bin,
    /// samples above `hi` into the last — the layout is fixed at
    /// construction so merged histograms stay bin-compatible.
    pub fn record(&mut self, sample: u64) {
        let s = sample.max(self.lo);
        let idx = (((s - self.lo) / self.width) as usize).min(self.bins.len() - 1);
        self.bins[idx] += 1;
    }

    /// Folds `other` into `self` bin by bin.
    ///
    /// # Panics
    ///
    /// Panics if the layouts differ (bin count, `lo`, or width): merging
    /// is only meaningful for histograms created with the same
    /// [`Histogram::with_layout`] parameters.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.bins.len() == other.bins.len() && self.lo == other.lo && self.width == other.width,
            "histogram layouts differ: merge requires identical with_layout parameters"
        );
        for (b, o) in self.bins.iter_mut().zip(&other.bins) {
            *b += o;
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper edge of the bin
    /// containing the `ceil(q * total)`-th smallest sample (a
    /// conservative estimate — true p99 is at or below it). `None` for
    /// an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &count) in self.bins.iter().enumerate() {
            seen += count;
            if seen >= target {
                return Some(self.lo + (i as u64 + 1) * self.width - 1);
            }
        }
        Some(self.hi)
    }

    /// Total samples.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// The bin counts.
    #[must_use]
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Sample range `(min, max)`.
    #[must_use]
    pub fn range(&self) -> (u64, u64) {
        (self.lo, self.hi)
    }

    /// Renders horizontal bars scaled to `max_bar` characters.
    #[must_use]
    pub fn render(&self, max_bar: usize) -> String {
        let peak = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &count) in self.bins.iter().enumerate() {
            let start = self.lo + i as u64 * self.width;
            let end = start + self.width - 1;
            let bar = (count as usize * max_bar).div_ceil(peak as usize).min(max_bar);
            let bar = if count == 0 { 0 } else { bar.max(1) };
            let _ = writeln!(
                out,
                "  [{start:>8} ..{end:>9}] {:<width$} {count}",
                "#".repeat(bar),
                width = max_bar
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_cover_all_samples() {
        let h = Histogram::from_samples(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9], 5);
        assert_eq!(h.total(), 10);
        assert_eq!(h.bins(), &[2, 2, 2, 2, 2]);
        assert_eq!(h.range(), (0, 9));
    }

    #[test]
    fn outlier_lands_in_last_bin() {
        let h = Histogram::from_samples(&[1, 1, 1, 100], 4);
        assert_eq!(h.total(), 4);
        assert_eq!(*h.bins().last().expect("bins"), 1, "the bottleneck outlier");
        assert_eq!(h.bins()[0], 3);
    }

    #[test]
    fn empty_samples() {
        let h = Histogram::from_samples(&[], 3);
        assert_eq!(h.total(), 0);
        assert_eq!(h.bins(), &[0, 0, 0]);
    }

    #[test]
    fn constant_samples_single_bin() {
        let h = Histogram::from_samples(&[7, 7, 7], 4);
        assert_eq!(h.total(), 3);
        assert_eq!(h.bins()[0], 3);
    }

    #[test]
    fn render_shows_counts() {
        let h = Histogram::from_samples(&[1, 2, 2, 9], 3);
        let s = h.render(10);
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains('#'));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = Histogram::from_samples(&[1], 0);
    }

    #[test]
    fn per_thread_histograms_merge_into_the_pooled_distribution() {
        // The multi-thread recorder pattern: identical layouts recorded
        // independently, merged afterwards, equal to recording pooled.
        let mut a = Histogram::with_layout(0, 99, 10);
        let mut b = Histogram::with_layout(0, 99, 10);
        let mut pooled = Histogram::with_layout(0, 99, 10);
        for s in [3u64, 15, 27, 42] {
            a.record(s);
            pooled.record(s);
        }
        for s in [8u64, 15, 88, 1000] {
            b.record(s);
            pooled.record(s);
        }
        a.merge(&b);
        assert_eq!(a, pooled);
        assert_eq!(a.total(), 8);
        assert_eq!(*a.bins().last().expect("bins"), 1, "the clamped 1000");
        assert_eq!(a.bins()[8], 1, "88 in [80, 90)");
    }

    #[test]
    #[should_panic(expected = "layouts differ")]
    fn merging_mismatched_layouts_is_rejected() {
        let mut a = Histogram::with_layout(0, 99, 10);
        a.merge(&Histogram::with_layout(0, 99, 5));
    }

    #[test]
    fn quantiles_read_the_tail() {
        let mut h = Histogram::with_layout(0, 999, 100);
        for i in 0..100u64 {
            h.record(i * 10);
        }
        assert_eq!(h.quantile(0.0), Some(9), "first sample's bin edge");
        assert_eq!(h.quantile(0.5), Some(499));
        assert_eq!(h.quantile(0.99), Some(989));
        assert_eq!(h.quantile(1.0), Some(999));
        assert_eq!(Histogram::with_layout(0, 9, 2).quantile(0.5), None, "empty");
    }
}
