//! Least-squares line fitting, used by experiments to turn "looks
//! linear/logarithmic" into a checked verdict.
//!
//! The headline experiment fits `log(bottleneck)` against `log(n)`: the
//! centralized counter's slope is ≈ 1 (linear growth), the retirement
//! tree's is far below (the O(log n / log log n) bound), and the tests
//! assert that separation numerically.

/// A fitted line `y = slope * x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination (1.0 = perfect fit; 1.0 for
    /// degenerate inputs with zero variance).
    pub r_squared: f64,
}

/// Ordinary least squares over `(x, y)` pairs.
///
/// Returns `None` for fewer than two points or zero variance in `x`.
///
/// # Examples
///
/// ```
/// use distctr_analysis::fit::linear_fit;
/// let pts = [(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)];
/// let fit = linear_fit(&pts).expect("well-posed");
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 1.0).abs() < 1e-12);
/// assert!(fit.r_squared > 0.999);
/// ```
#[must_use]
pub fn linear_fit(points: &[(f64, f64)]) -> Option<LineFit> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = points.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points.iter().map(|p| (p.1 - (slope * p.0 + intercept)).powi(2)).sum();
    let r_squared = if ss_tot == 0.0 { 1.0 } else { 1.0 - ss_res / ss_tot };
    Some(LineFit { slope, intercept, r_squared })
}

/// Fits `log y` against `log x`: the returned slope is the growth
/// exponent (`y ~ x^slope`). All coordinates must be strictly positive.
///
/// Returns `None` on non-positive inputs or a degenerate fit.
#[must_use]
pub fn loglog_fit(points: &[(f64, f64)]) -> Option<LineFit> {
    if points.iter().any(|&(x, y)| x <= 0.0 || y <= 0.0) {
        return None;
    }
    let logged: Vec<(f64, f64)> = points.iter().map(|&(x, y)| (x.ln(), y.ln())).collect();
    linear_fit(&logged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line_is_recovered() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 - 2.0)).collect();
        let fit = linear_fit(&pts).expect("fit");
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept + 2.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_r_squared_below_one() {
        let pts = [(0.0, 0.0), (1.0, 1.2), (2.0, 1.8), (3.0, 3.1)];
        let fit = linear_fit(&pts).expect("fit");
        assert!(fit.r_squared < 1.0);
        assert!(fit.r_squared > 0.9);
        assert!((fit.slope - 1.0).abs() < 0.2);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(linear_fit(&[]).is_none());
        assert!(linear_fit(&[(1.0, 2.0)]).is_none());
        assert!(linear_fit(&[(1.0, 2.0), (1.0, 3.0)]).is_none(), "zero x-variance");
    }

    #[test]
    fn loglog_recovers_power_laws() {
        // y = 5 x^2
        let pts: Vec<(f64, f64)> = (1..20).map(|i| (i as f64, 5.0 * (i as f64).powi(2))).collect();
        let fit = loglog_fit(&pts).expect("fit");
        assert!((fit.slope - 2.0).abs() < 1e-9);
        // y = c (constant): slope 0.
        let flat: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, 7.0)).collect();
        let fit = loglog_fit(&flat).expect("fit");
        assert!(fit.slope.abs() < 1e-12);
    }

    #[test]
    fn loglog_rejects_nonpositive() {
        assert!(loglog_fit(&[(1.0, 0.0), (2.0, 1.0)]).is_none());
        assert!(loglog_fit(&[(-1.0, 1.0), (2.0, 1.0)]).is_none());
    }
}
