//! Terminal scatter/line plots for experiment reports.
//!
//! The paper's headline figure — bottleneck load against n per algorithm
//! — is a log-log plot. [`Plot`] renders multiple series onto a character
//! grid with optional log-scaled axes, so `report` output shows the
//! *shape* (flat vs linear growth) at a glance without leaving the
//! terminal.

use std::fmt::Write as _;

/// Axis scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Linear axis.
    #[default]
    Linear,
    /// Base-10 logarithmic axis (requires strictly positive coordinates).
    Log,
}

#[derive(Debug, Clone)]
struct Series {
    marker: char,
    label: String,
    points: Vec<(f64, f64)>,
}

/// A multi-series character plot.
///
/// # Examples
///
/// ```
/// use distctr_analysis::plot::{Plot, Scale};
/// let mut plot = Plot::new(40, 12, Scale::Log, Scale::Log);
/// plot.series('c', "central", &[(8.0, 18.0), (81.0, 164.0), (1024.0, 2050.0)]);
/// plot.series('t', "tree", &[(8.0, 30.0), (81.0, 52.0), (1024.0, 68.0)]);
/// let s = plot.render();
/// assert!(s.contains('c') && s.contains('t'));
/// ```
#[derive(Debug, Clone)]
pub struct Plot {
    width: usize,
    height: usize,
    x_scale: Scale,
    y_scale: Scale,
    series: Vec<Series>,
}

impl Plot {
    /// Creates an empty plot grid of `width` x `height` characters.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is below 2.
    #[must_use]
    pub fn new(width: usize, height: usize, x_scale: Scale, y_scale: Scale) -> Self {
        assert!(width >= 2 && height >= 2, "plot grid must be at least 2x2");
        Plot { width, height, x_scale, y_scale, series: Vec::new() }
    }

    /// Adds a series drawn with `marker`.
    ///
    /// # Panics
    ///
    /// Panics if a log axis receives a non-positive coordinate.
    pub fn series(&mut self, marker: char, label: &str, points: &[(f64, f64)]) -> &mut Self {
        for &(x, y) in points {
            if self.x_scale == Scale::Log {
                assert!(x > 0.0, "log x-axis requires positive x, got {x}");
            }
            if self.y_scale == Scale::Log {
                assert!(y > 0.0, "log y-axis requires positive y, got {y}");
            }
        }
        self.series.push(Series { marker, label: label.to_string(), points: points.to_vec() });
        self
    }

    fn transform(scale: Scale, v: f64) -> f64 {
        match scale {
            Scale::Linear => v,
            Scale::Log => v.log10(),
        }
    }

    /// Renders the plot with axis annotations and a legend.
    #[must_use]
    pub fn render(&self) -> String {
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| {
                s.points.iter().map(|&(x, y)| {
                    (Self::transform(self.x_scale, x), Self::transform(self.y_scale, y))
                })
            })
            .collect();
        let mut out = String::new();
        if all.is_empty() {
            let _ = writeln!(out, "(empty plot)");
            return out;
        }
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &all {
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        let span = |lo: f64, hi: f64| if hi > lo { hi - lo } else { 1.0 };
        let (sx, sy) = (span(min_x, max_x), span(min_y, max_y));

        let mut grid = vec![vec![' '; self.width]; self.height];
        for s in &self.series {
            for &(x, y) in &s.points {
                let tx = Self::transform(self.x_scale, x);
                let ty = Self::transform(self.y_scale, y);
                let col = (((tx - min_x) / sx) * (self.width - 1) as f64).round() as usize;
                let row = (((ty - min_y) / sy) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - row; // y grows upward
                grid[row][col] = s.marker;
            }
        }

        let untransform = |scale: Scale, v: f64| match scale {
            Scale::Linear => v,
            Scale::Log => 10f64.powf(v),
        };
        let y_hi = untransform(self.y_scale, max_y);
        let y_lo = untransform(self.y_scale, min_y);
        for (i, row) in grid.iter().enumerate() {
            let label = if i == 0 {
                format!("{y_hi:>9.6}", y_hi = trim(y_hi))
            } else if i == self.height - 1 {
                format!("{:>9}", trim(y_lo))
            } else {
                " ".repeat(9)
            };
            let _ = writeln!(out, "{label} |{}", row.iter().collect::<String>());
        }
        let _ = writeln!(out, "{} +{}", " ".repeat(9), "-".repeat(self.width));
        let x_lo = untransform(self.x_scale, min_x);
        let x_hi = untransform(self.x_scale, max_x);
        let _ = writeln!(
            out,
            "{} {}{}{}",
            " ".repeat(9),
            trim(x_lo),
            " ".repeat(self.width.saturating_sub(trim(x_lo).len() + trim(x_hi).len())),
            trim(x_hi)
        );
        let legend: Vec<String> =
            self.series.iter().map(|s| format!("{}={}", s.marker, s.label)).collect();
        let _ = writeln!(out, "{} [{}]", " ".repeat(9), legend.join("  "));
        out
    }
}

fn trim(v: f64) -> String {
    if v.abs() >= 10.0 || v.fract().abs() < 1e-9 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markers_land_in_expected_corners() {
        let mut p = Plot::new(21, 11, Scale::Linear, Scale::Linear);
        p.series('a', "low-left", &[(0.0, 0.0)]);
        p.series('b', "high-right", &[(10.0, 10.0)]);
        let s = p.render();
        let lines: Vec<&str> = s.lines().collect();
        // 'b' in the top grid row, 'a' in the bottom grid row.
        assert!(lines[0].ends_with('b'), "top-right: {:?}", lines[0]);
        assert!(lines[10].contains('a'), "bottom-left: {:?}", lines[10]);
    }

    #[test]
    fn log_axes_flatten_power_laws() {
        // y = x on log-log should be the diagonal; y = const the bottom
        // row. Check const series stays in one row.
        let mut p = Plot::new(20, 10, Scale::Log, Scale::Log);
        let flat: Vec<(f64, f64)> = (1..=3).map(|i| (10f64.powi(i), 5.0)).collect();
        let linear: Vec<(f64, f64)> = (1..=3).map(|i| (10f64.powi(i), 10f64.powi(i))).collect();
        p.series('f', "flat", &flat);
        p.series('l', "linear", &linear);
        let s = p.render();
        // Only grid rows (containing the axis '|'), not the legend.
        let grid_rows_with =
            |c: char| -> usize { s.lines().filter(|l| l.contains('|') && l.contains(c)).count() };
        assert_eq!(grid_rows_with('f'), 1, "flat series occupies a single row:\n{s}");
        assert!(grid_rows_with('l') >= 3, "linear series spans rows:\n{s}");
    }

    #[test]
    fn legend_and_axis_labels_present() {
        let mut p = Plot::new(10, 4, Scale::Linear, Scale::Linear);
        p.series('x', "demo", &[(1.0, 2.0), (3.0, 4.0)]);
        let s = p.render();
        assert!(s.contains("x=demo"));
        assert!(s.contains('2'), "y-low label");
        assert!(s.contains('4'), "y-high label");
    }

    #[test]
    fn empty_plot_renders_placeholder() {
        let p = Plot::new(10, 4, Scale::Linear, Scale::Linear);
        assert!(p.render().contains("empty"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn log_axis_rejects_zero() {
        let mut p = Plot::new(10, 4, Scale::Log, Scale::Linear);
        p.series('x', "bad", &[(0.0, 1.0)]);
    }

    #[test]
    fn single_point_series_degenerate_span() {
        let mut p = Plot::new(10, 4, Scale::Linear, Scale::Linear);
        p.series('o', "dot", &[(5.0, 5.0)]);
        let s = p.render();
        assert!(s.contains('o'));
    }
}
