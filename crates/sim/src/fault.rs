//! Seeded fault injection: message drops, duplication and processor
//! crashes.
//!
//! The paper's model assumes a failure-free network; this module is the
//! controlled departure from that assumption used by the robustness
//! experiments (E18). A [`FaultPlan`] describes *what* may go wrong —
//! per-message drop and duplication probabilities plus a schedule of
//! processor crashes — and a seed that makes every probabilistic choice
//! deterministic. The network consults the plan at well-defined points:
//!
//! * **drops / duplicates** are decided at *send* time (the sender is
//!   still charged for the send, mirroring a message lost in transit);
//! * **crashes** fire between deliveries, once the network has delivered
//!   the scheduled number of messages; a crashed processor's pending
//!   inbox is discarded and later sends to it become dead letters.
//!
//! Every injected fault is recorded as a [`FaultEvent`], so a run is
//! fully replayable from `(policy seed, FaultPlan)` alone and the fault
//! log can be diffed across replays.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::id::{OpId, ProcessorId};
use crate::time::SimTime;

/// One scheduled processor crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// The processor that halts.
    pub processor: ProcessorId,
    /// The crash fires once this many messages have been delivered
    /// network-wide (counted over the network's whole lifetime,
    /// duplicates included).
    pub after_deliveries: u64,
}

/// A deterministic description of the faults to inject into one run.
///
/// Plans are built fluently:
///
/// ```
/// use distctr_sim::{FaultPlan, ProcessorId};
/// let plan = FaultPlan::new(0xFA11)
///     .drop_prob(0.05)
///     .dup_prob(0.02)
///     .crash(ProcessorId::new(3), 40);
/// assert_eq!(plan.crashes.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the dedicated fault RNG (independent of the delivery
    /// policy's RNG, so adding faults never perturbs delivery delays).
    pub seed: u64,
    /// Probability in `[0, 1]` that any given send is lost in transit.
    pub drop_prob: f64,
    /// Probability in `[0, 1]` that any given send is delivered twice.
    pub dup_prob: f64,
    /// Scheduled crashes, applied in `after_deliveries` order.
    pub crashes: Vec<CrashPoint>,
}

impl FaultPlan {
    /// A plan that injects nothing yet; combine with the builder methods.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, drop_prob: 0.0, dup_prob: 0.0, crashes: Vec::new() }
    }

    /// Sets the per-send drop probability (clamped to `[0, 1]`).
    #[must_use]
    pub fn drop_prob(mut self, p: f64) -> Self {
        self.drop_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-send duplication probability (clamped to `[0, 1]`).
    #[must_use]
    pub fn dup_prob(mut self, p: f64) -> Self {
        self.dup_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Schedules `processor` to crash after `after_deliveries` total
    /// network deliveries.
    #[must_use]
    pub fn crash(mut self, processor: ProcessorId, after_deliveries: u64) -> Self {
        self.crashes.push(CrashPoint { processor, after_deliveries });
        self
    }

    /// Whether the plan injects any fault at all.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0 || self.dup_prob > 0.0 || !self.crashes.is_empty()
    }
}

/// One injected fault, in the order it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// A send was lost in transit (sender charged, nothing enqueued).
    Dropped {
        /// Operation the message belonged to.
        op: OpId,
        /// Sender (charged for the send).
        from: ProcessorId,
        /// Intended recipient.
        to: ProcessorId,
        /// Simulated time of the send.
        at: SimTime,
    },
    /// A send was delivered twice; the second copy got its own delivery
    /// rank from the policy.
    Duplicated {
        /// Operation the message belonged to.
        op: OpId,
        /// Sender.
        from: ProcessorId,
        /// Recipient (receives the message twice).
        to: ProcessorId,
        /// Scheduled arrival of the duplicate copy.
        at: SimTime,
    },
    /// A processor halted; it no longer receives or sends.
    Crashed {
        /// The halted processor.
        processor: ProcessorId,
        /// Network-wide delivery count at which the crash fired.
        after_deliveries: u64,
        /// Simulated time when the crash was applied.
        at: SimTime,
    },
    /// A message addressed to an already-crashed processor was discarded
    /// (either purged from its inbox at crash time or sent afterwards).
    DeadLetter {
        /// Operation the message belonged to.
        op: OpId,
        /// Sender.
        from: ProcessorId,
        /// The crashed recipient.
        to: ProcessorId,
        /// Simulated time of the discard.
        at: SimTime,
    },
}

/// Aggregate counts over a fault log, for load-bound accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Sends lost in transit.
    pub drops: u64,
    /// Sends delivered twice.
    pub dups: u64,
    /// Messages discarded because their recipient had crashed.
    pub dead_letters: u64,
    /// Crashes applied so far.
    pub crashes: u64,
}

/// Live fault-injection state carried by a network.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: StdRng,
    crashed: Vec<bool>,
    /// Crashes not yet applied, sorted by descending `after_deliveries`
    /// so the next due crash is last (popped cheaply).
    pending_crashes: Vec<CrashPoint>,
    /// Real deliveries over the network's lifetime (dup copies count,
    /// dead letters do not).
    total_delivered: u64,
    log: Vec<FaultEvent>,
    stats: FaultStats,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, processors: usize) -> Self {
        let mut pending_crashes = plan.crashes.clone();
        pending_crashes.sort_by(|a, b| {
            b.after_deliveries
                .cmp(&a.after_deliveries)
                .then(b.processor.index().cmp(&a.processor.index()))
        });
        FaultState {
            rng: StdRng::seed_from_u64(plan.seed),
            plan,
            crashed: vec![false; processors],
            pending_crashes,
            total_delivered: 0,
            log: Vec::new(),
            stats: FaultStats::default(),
        }
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub(crate) fn log(&self) -> &[FaultEvent] {
        &self.log
    }

    pub(crate) fn stats(&self) -> FaultStats {
        self.stats
    }

    pub(crate) fn is_crashed(&self, p: ProcessorId) -> bool {
        self.crashed.get(p.index()).copied().unwrap_or(false)
    }

    pub(crate) fn crashed_processors(&self) -> Vec<ProcessorId> {
        self.crashed
            .iter()
            .enumerate()
            .filter_map(|(i, &dead)| dead.then_some(ProcessorId::new(i)))
            .collect()
    }

    pub(crate) fn note_delivered(&mut self) {
        self.total_delivered += 1;
    }

    /// Rolls the drop die for one send.
    pub(crate) fn roll_drop(&mut self) -> bool {
        self.plan.drop_prob > 0.0 && self.rng.gen_bool(self.plan.drop_prob)
    }

    /// Rolls the duplication die for one send.
    pub(crate) fn roll_dup(&mut self) -> bool {
        self.plan.dup_prob > 0.0 && self.rng.gen_bool(self.plan.dup_prob)
    }

    pub(crate) fn note_drop(&mut self, op: OpId, from: ProcessorId, to: ProcessorId, at: SimTime) {
        self.stats.drops += 1;
        self.log.push(FaultEvent::Dropped { op, from, to, at });
    }

    pub(crate) fn note_dup(&mut self, op: OpId, from: ProcessorId, to: ProcessorId, at: SimTime) {
        self.stats.dups += 1;
        self.log.push(FaultEvent::Duplicated { op, from, to, at });
    }

    pub(crate) fn note_dead_letter(
        &mut self,
        op: OpId,
        from: ProcessorId,
        to: ProcessorId,
        at: SimTime,
    ) {
        self.stats.dead_letters += 1;
        self.log.push(FaultEvent::DeadLetter { op, from, to, at });
    }

    /// Marks `p` crashed immediately (used both by the schedule and by
    /// direct [`Network::crash`](crate::Network::crash) calls). Returns
    /// false if it was already down.
    pub(crate) fn mark_crashed(&mut self, p: ProcessorId, at: SimTime) -> bool {
        if self.crashed[p.index()] {
            return false;
        }
        self.crashed[p.index()] = true;
        self.stats.crashes += 1;
        self.log.push(FaultEvent::Crashed {
            processor: p,
            after_deliveries: self.total_delivered,
            at,
        });
        true
    }

    /// Pops every scheduled crash whose delivery threshold has been
    /// reached, marking the processors crashed. Returns the processors
    /// that just went down (already-down ones are skipped).
    pub(crate) fn take_due_crashes(&mut self, at: SimTime) -> Vec<ProcessorId> {
        let mut downed = Vec::new();
        while self
            .pending_crashes
            .last()
            .is_some_and(|c| c.after_deliveries <= self.total_delivered)
        {
            let point = self.pending_crashes.pop().expect("checked nonempty");
            if self.mark_crashed(point.processor, at) {
                downed.push(point.processor);
            }
        }
        downed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    #[test]
    fn plan_builder_clamps_and_accumulates() {
        let plan = FaultPlan::new(7).drop_prob(2.0).dup_prob(-1.0).crash(p(1), 5).crash(p(2), 3);
        assert_eq!(plan.drop_prob, 1.0);
        assert_eq!(plan.dup_prob, 0.0);
        assert_eq!(plan.crashes.len(), 2);
        assert!(plan.is_active());
        assert!(!FaultPlan::new(7).is_active());
    }

    #[test]
    fn rolls_are_deterministic_per_seed() {
        let plan = FaultPlan::new(99).drop_prob(0.5);
        let mut a = FaultState::new(plan.clone(), 4);
        let mut b = FaultState::new(plan, 4);
        let ra: Vec<bool> = (0..256).map(|_| a.roll_drop()).collect();
        let rb: Vec<bool> = (0..256).map(|_| b.roll_drop()).collect();
        assert_eq!(ra, rb);
        assert!(ra.iter().any(|&x| x) && ra.iter().any(|&x| !x), "p=0.5 hits both outcomes");
    }

    #[test]
    fn zero_probabilities_never_fire() {
        let mut s = FaultState::new(FaultPlan::new(1), 4);
        for _ in 0..100 {
            assert!(!s.roll_drop());
            assert!(!s.roll_dup());
        }
    }

    #[test]
    fn crashes_fire_in_delivery_order() {
        let plan = FaultPlan::new(0).crash(p(2), 10).crash(p(0), 3).crash(p(1), 3);
        let mut s = FaultState::new(plan, 4);
        assert!(s.take_due_crashes(SimTime::ZERO).is_empty(), "nothing due at 0 deliveries");
        for _ in 0..3 {
            s.note_delivered();
        }
        let downed = s.take_due_crashes(SimTime::ZERO);
        assert_eq!(downed, vec![p(0), p(1)], "both threshold-3 crashes, index order");
        assert!(s.is_crashed(p(0)) && s.is_crashed(p(1)) && !s.is_crashed(p(2)));
        for _ in 0..7 {
            s.note_delivered();
        }
        assert_eq!(s.take_due_crashes(SimTime::ZERO), vec![p(2)]);
        assert_eq!(s.stats().crashes, 3);
        assert_eq!(s.crashed_processors(), vec![p(0), p(1), p(2)]);
    }

    #[test]
    fn double_crash_is_logged_once() {
        let mut s = FaultState::new(FaultPlan::new(0), 2);
        assert!(s.mark_crashed(p(1), SimTime::ZERO));
        assert!(!s.mark_crashed(p(1), SimTime::ZERO));
        assert_eq!(s.stats().crashes, 1);
        assert_eq!(s.log().len(), 1);
    }
}
