//! Per-operation communication traces.
//!
//! An `inc` operation "initiates a process, i.e. a partially ordered set
//! of events in the distributed system" (paper §2). The tracer records
//! that process for each operation:
//!
//! * the **contact set** `I_p` — every processor that sends or receives a
//!   message during the operation (the object of the Hot Spot Lemma);
//! * the **communication DAG** (paper Figure 1) — a node per communication
//!   event labelled with its processor, an arc per message;
//! * the message count of the operation.

use std::collections::{BTreeSet, HashMap};

use crate::dag::CommDag;
use crate::id::{OpId, ProcessorId};
use crate::time::SimTime;

/// How much per-operation information the network records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Record nothing per-op (cheapest; global loads still tracked).
    Off,
    /// Record contact sets and message counts but no DAG.
    #[default]
    Contacts,
    /// Record contact sets, message counts and the full communication DAG.
    Full,
}

/// The set `I_p` of processors that communicated during one operation.
///
/// # Examples
///
/// ```
/// use distctr_sim::{ContactSet, ProcessorId};
/// let a: ContactSet = [0, 1, 2].into_iter().map(ProcessorId::new).collect();
/// let b: ContactSet = [2, 3].into_iter().map(ProcessorId::new).collect();
/// assert!(a.intersects(&b), "Hot Spot Lemma requires a shared processor");
/// assert_eq!(a.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ContactSet {
    members: BTreeSet<ProcessorId>,
}

impl ContactSet {
    /// Creates an empty contact set.
    #[must_use]
    pub fn new() -> Self {
        ContactSet::default()
    }

    /// Adds a processor to the set.
    pub fn insert(&mut self, p: ProcessorId) {
        self.members.insert(p);
    }

    /// Whether `p` communicated during the operation.
    #[must_use]
    pub fn contains(&self, p: ProcessorId) -> bool {
        self.members.contains(&p)
    }

    /// Number of distinct processors involved.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether no processor communicated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether the two sets share at least one processor — the conclusion
    /// of the Hot Spot Lemma for consecutive operations.
    #[must_use]
    pub fn intersects(&self, other: &ContactSet) -> bool {
        let (small, large) = if self.len() <= other.len() { (self, other) } else { (other, self) };
        small.members.iter().any(|p| large.members.contains(p))
    }

    /// The processors in both sets, in id order.
    #[must_use]
    pub fn intersection(&self, other: &ContactSet) -> Vec<ProcessorId> {
        self.members.intersection(&other.members).copied().collect()
    }

    /// Iterates over members in id order.
    pub fn iter(&self) -> impl Iterator<Item = ProcessorId> + '_ {
        self.members.iter().copied()
    }
}

impl FromIterator<ProcessorId> for ContactSet {
    fn from_iter<I: IntoIterator<Item = ProcessorId>>(iter: I) -> Self {
        ContactSet { members: iter.into_iter().collect() }
    }
}

impl Extend<ProcessorId> for ContactSet {
    fn extend<I: IntoIterator<Item = ProcessorId>>(&mut self, iter: I) {
        self.members.extend(iter);
    }
}

/// Everything recorded about one operation's process.
#[derive(Debug, Clone, PartialEq)]
pub struct OpTrace {
    /// The operation.
    pub op: OpId,
    /// The processor that initiated it.
    pub initiator: ProcessorId,
    /// Messages sent during the operation (each counted once).
    pub messages: u64,
    /// The contact set `I_p`.
    pub contacts: ContactSet,
    /// The communication DAG, if [`TraceMode::Full`].
    pub dag: Option<CommDag>,
    /// Simulated time the operation was initiated.
    pub started_at: SimTime,
    /// Simulated time of the operation's last recorded delivery (its
    /// completion under run-to-quiescence semantics).
    pub completed_at: SimTime,
}

impl OpTrace {
    /// Length of the operation's communication list measured as the paper
    /// does — "the number of arcs in the list", which equals the number of
    /// messages of the operation.
    #[must_use]
    pub fn list_len(&self) -> u64 {
        self.messages
    }
}

#[derive(Debug, Clone)]
struct OpBuilder {
    initiator: ProcessorId,
    messages: u64,
    contacts: ContactSet,
    dag: Option<CommDag>,
    started_at: SimTime,
    last_event_at: SimTime,
}

/// Records per-operation traces as the network runs.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    mode: TraceMode,
    open: HashMap<OpId, OpBuilder>,
}

impl TraceRecorder {
    /// Creates a recorder in the given mode.
    #[must_use]
    pub fn new(mode: TraceMode) -> Self {
        TraceRecorder { mode, open: HashMap::new() }
    }

    /// The recording mode.
    #[must_use]
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// Begins recording operation `op` initiated at `initiator` at
    /// simulated time `now`; returns the DAG node id of the initiation
    /// event (the DAG's source) when a full trace is kept.
    pub fn begin_op(&mut self, op: OpId, initiator: ProcessorId, now: SimTime) -> Option<u32> {
        if self.mode == TraceMode::Off {
            return None;
        }
        let mut dag = None;
        let mut source = None;
        if self.mode == TraceMode::Full {
            let mut d = CommDag::new();
            source = Some(d.add_node(initiator));
            dag = Some(d);
        }
        let mut contacts = ContactSet::new();
        contacts.insert(initiator);
        self.open.insert(
            op,
            OpBuilder {
                initiator,
                messages: 0,
                contacts,
                dag,
                started_at: now,
                last_event_at: now,
            },
        );
        source
    }

    /// Whether `op` is currently being recorded.
    #[must_use]
    pub fn is_open(&self, op: OpId) -> bool {
        self.open.contains_key(&op)
    }

    /// Records a message of `op` sent by `from`. Returns nothing; the arc
    /// is completed by [`TraceRecorder::record_delivery`].
    pub fn record_send(&mut self, op: OpId, from: ProcessorId) {
        if let Some(b) = self.open.get_mut(&op) {
            b.messages += 1;
            b.contacts.insert(from);
        }
    }

    /// Records delivery of a message of `op` to `to` at time `now`, sent
    /// from the DAG event `from_event` (None when the op is untraced or
    /// the send predates tracing). Returns the new event's DAG node id
    /// under [`TraceMode::Full`].
    pub fn record_delivery(
        &mut self,
        op: OpId,
        from: ProcessorId,
        to: ProcessorId,
        from_event: Option<u32>,
        now: SimTime,
    ) -> Option<u32> {
        let b = self.open.get_mut(&op)?;
        b.contacts.insert(to);
        b.last_event_at = b.last_event_at.max_with(now);
        let dag = b.dag.as_mut()?;
        // A message whose send event is unknown (sent before tracing began
        // for this op) gets a fresh source node so the arc still exists.
        let src = from_event.unwrap_or_else(|| dag.add_node(from));
        let node = dag.add_node(to);
        dag.add_arc(src, node);
        Some(node)
    }

    /// Finishes recording `op` and returns its trace, if it was recorded.
    pub fn finish_op(&mut self, op: OpId) -> Option<OpTrace> {
        self.open.remove(&op).map(|b| OpTrace {
            op,
            initiator: b.initiator,
            messages: b.messages,
            contacts: b.contacts,
            dag: b.dag,
            started_at: b.started_at,
            completed_at: b.last_event_at,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    #[test]
    fn contact_set_basics() {
        let mut c = ContactSet::new();
        assert!(c.is_empty());
        c.insert(p(2));
        c.insert(p(0));
        c.insert(p(2));
        assert_eq!(c.len(), 2);
        assert!(c.contains(p(0)) && c.contains(p(2)) && !c.contains(p(1)));
        let order: Vec<_> = c.iter().collect();
        assert_eq!(order, vec![p(0), p(2)], "iteration is id-ordered");
    }

    #[test]
    fn contact_set_intersection() {
        let a: ContactSet = [0, 1, 5].into_iter().map(p).collect();
        let b: ContactSet = [5, 9].into_iter().map(p).collect();
        let c: ContactSet = [2, 3].into_iter().map(p).collect();
        assert!(a.intersects(&b));
        assert!(b.intersects(&a), "intersection is symmetric");
        assert!(!a.intersects(&c));
        assert_eq!(a.intersection(&b), vec![p(5)]);
        assert!(a.intersection(&c).is_empty());
    }

    #[test]
    fn recorder_off_records_nothing() {
        let mut r = TraceRecorder::new(TraceMode::Off);
        assert_eq!(r.begin_op(OpId::new(0), p(0), SimTime::ZERO), None);
        r.record_send(OpId::new(0), p(0));
        assert_eq!(r.finish_op(OpId::new(0)), None);
    }

    #[test]
    fn recorder_contacts_mode_tracks_sets_without_dag() {
        let mut r = TraceRecorder::new(TraceMode::Contacts);
        let op = OpId::new(1);
        assert_eq!(r.begin_op(op, p(0), SimTime::ZERO), None, "no DAG source in contacts mode");
        r.record_send(op, p(0));
        r.record_delivery(op, p(0), p(1), None, SimTime::from_ticks(4));
        let t = r.finish_op(op).expect("trace recorded");
        assert_eq!(t.messages, 1);
        assert_eq!(t.list_len(), 1);
        assert!(t.contacts.contains(p(0)) && t.contacts.contains(p(1)));
        assert!(t.dag.is_none());
        assert_eq!(t.initiator, p(0));
    }

    #[test]
    fn recorder_full_mode_builds_dag() {
        let mut r = TraceRecorder::new(TraceMode::Full);
        let op = OpId::new(2);
        let src = r.begin_op(op, p(0), SimTime::ZERO).expect("source node");
        r.record_send(op, p(0));
        let e1 =
            r.record_delivery(op, p(0), p(1), Some(src), SimTime::from_ticks(1)).expect("event");
        r.record_send(op, p(1));
        let _e2 =
            r.record_delivery(op, p(1), p(2), Some(e1), SimTime::from_ticks(2)).expect("event");
        let t = r.finish_op(op).expect("trace");
        let dag = t.dag.expect("full mode keeps DAG");
        assert_eq!(dag.node_count(), 3);
        assert_eq!(dag.arc_count(), 2);
        assert_eq!(t.messages, 2);
    }

    #[test]
    fn delivery_without_known_sender_event_synthesizes_source() {
        let mut r = TraceRecorder::new(TraceMode::Full);
        let op = OpId::new(3);
        r.begin_op(op, p(0), SimTime::ZERO);
        r.record_send(op, p(5));
        r.record_delivery(op, p(5), p(6), None, SimTime::from_ticks(3));
        let t = r.finish_op(op).expect("trace");
        let dag = t.dag.expect("dag");
        // source + delivery node + synthesized sender node
        assert_eq!(dag.node_count(), 3);
        assert_eq!(dag.arc_count(), 1);
    }

    #[test]
    fn unknown_op_is_ignored() {
        let mut r = TraceRecorder::new(TraceMode::Full);
        r.record_send(OpId::new(9), p(0));
        assert_eq!(r.record_delivery(OpId::new(9), p(0), p(1), None, SimTime::ZERO), None);
        assert!(!r.is_open(OpId::new(9)));
    }
}
