//! Per-processor message-load accounting.
//!
//! The paper's central quantity: `m_p`, the number of messages processor
//! `p` sends **or** receives during an operation sequence, and the
//! *bottleneck processor* `b` with `m_b = max_p m_p`. The tracker counts
//! every scheduled send and every delivery exactly once.

use std::fmt;

use crate::id::ProcessorId;

/// Five-number-plus summary of a load distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSummary {
    /// Mean load.
    pub mean: f64,
    /// Median load.
    pub p50: u64,
    /// 90th-percentile load.
    pub p90: u64,
    /// 99th-percentile load.
    pub p99: u64,
    /// Maximum load (the bottleneck).
    pub max: u64,
    /// Load imbalance `max / mean` (0.0 when no traffic).
    pub imbalance: f64,
    /// Gini coefficient of the distribution.
    pub gini: f64,
}

impl std::fmt::Display for LoadSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mean {:.1}, p50 {}, p90 {}, p99 {}, max {}, imbalance {:.2}, gini {:.3}",
            self.mean, self.p50, self.p90, self.p99, self.max, self.imbalance, self.gini
        )
    }
}

/// Running sent/received counters for every processor in a network.
///
/// # Examples
///
/// ```
/// use distctr_sim::{LoadTracker, ProcessorId};
/// let mut loads = LoadTracker::new(3);
/// loads.record_send(ProcessorId::new(0));
/// loads.record_receive(ProcessorId::new(1));
/// assert_eq!(loads.load_of(ProcessorId::new(0)), 1);
/// assert_eq!(loads.max_load(), 1);
/// assert_eq!(loads.total_messages(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadTracker {
    sent: Vec<u64>,
    received: Vec<u64>,
}

impl LoadTracker {
    /// Creates a tracker for `processors` processors, all loads zero.
    #[must_use]
    pub fn new(processors: usize) -> Self {
        LoadTracker { sent: vec![0; processors], received: vec![0; processors] }
    }

    /// Number of processors tracked.
    #[must_use]
    pub fn processors(&self) -> usize {
        self.sent.len()
    }

    /// Records one message sent by `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn record_send(&mut self, p: ProcessorId) {
        self.sent[p.index()] += 1;
    }

    /// Records one message received by `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn record_receive(&mut self, p: ProcessorId) {
        self.received[p.index()] += 1;
    }

    /// Messages sent by `p` so far.
    #[must_use]
    pub fn sent_by(&self, p: ProcessorId) -> u64 {
        self.sent[p.index()]
    }

    /// Messages received by `p` so far.
    #[must_use]
    pub fn received_by(&self, p: ProcessorId) -> u64 {
        self.received[p.index()]
    }

    /// The paper's message load `m_p = sent + received`.
    #[must_use]
    pub fn load_of(&self, p: ProcessorId) -> u64 {
        self.sent_by(p) + self.received_by(p)
    }

    /// Iterator over `(processor, load)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessorId, u64)> + '_ {
        (0..self.processors()).map(|i| {
            let p = ProcessorId::new(i);
            (p, self.load_of(p))
        })
    }

    /// Load vector indexed by processor.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u64> {
        (0..self.processors()).map(|i| self.load_of(ProcessorId::new(i))).collect()
    }

    /// The bottleneck load `m_b = max_p m_p` (0 for an empty tracker).
    #[must_use]
    pub fn max_load(&self) -> u64 {
        self.iter().map(|(_, l)| l).max().unwrap_or(0)
    }

    /// The bottleneck processor: the smallest-index processor attaining
    /// [`LoadTracker::max_load`]. `None` for an empty tracker.
    #[must_use]
    pub fn bottleneck(&self) -> Option<(ProcessorId, u64)> {
        self.iter().max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
    }

    /// Total messages exchanged so far. Every message is counted once
    /// (sends are counted; each send is eventually received).
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.sent.iter().sum()
    }

    /// Average load `2 * total / n`: each message contributes to two
    /// processors' loads. Returns 0.0 for an empty tracker.
    #[must_use]
    pub fn average_load(&self) -> f64 {
        if self.processors() == 0 {
            return 0.0;
        }
        let total: u64 = self.iter().map(|(_, l)| l).sum();
        total as f64 / self.processors() as f64
    }

    /// Load imbalance `max / avg` — 1.0 for perfectly spread load, `n/2`
    /// for a single hot processor handling everything. Returns 0.0 when
    /// no messages have been exchanged.
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        let avg = self.average_load();
        if avg == 0.0 {
            0.0
        } else {
            self.max_load() as f64 / avg
        }
    }

    /// The Gini coefficient of the load distribution: 0.0 = perfectly
    /// equal, approaching 1.0 as all load concentrates on one processor.
    /// The scalar the paper's "degree of distribution" intuition asks
    /// for.
    #[must_use]
    pub fn gini(&self) -> f64 {
        let mut loads: Vec<u64> = self.to_vec();
        loads.sort_unstable();
        let n = loads.len() as f64;
        let total: u64 = loads.iter().sum();
        if n == 0.0 || total == 0 {
            return 0.0;
        }
        // Gini = (2 * Σ i*x_i) / (n * Σ x_i) - (n + 1) / n, 1-based ranks.
        let weighted: f64 =
            loads.iter().enumerate().map(|(i, &x)| (i as f64 + 1.0) * x as f64).sum();
        (2.0 * weighted) / (n * total as f64) - (n + 1.0) / n
    }

    /// Summarizes the current load distribution.
    #[must_use]
    pub fn summary(&self) -> LoadSummary {
        let mut loads = self.to_vec();
        loads.sort_unstable();
        let pct = |q: f64| -> u64 {
            if loads.is_empty() {
                0
            } else {
                let rank = (q * (loads.len() - 1) as f64).round() as usize;
                loads[rank.min(loads.len() - 1)]
            }
        };
        LoadSummary {
            mean: self.average_load(),
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
            max: self.max_load(),
            imbalance: self.imbalance(),
            gini: self.gini(),
        }
    }

    /// Resets every counter to zero, keeping the processor count.
    pub fn reset(&mut self) {
        self.sent.iter_mut().for_each(|c| *c = 0);
        self.received.iter_mut().for_each(|c| *c = 0);
    }

    /// Element-wise difference `self - earlier`, used to isolate the load
    /// contributed by a span of operations.
    ///
    /// # Panics
    ///
    /// Panics if the trackers have different sizes or `earlier` exceeds
    /// `self` anywhere (i.e. it is not actually an earlier snapshot).
    #[must_use]
    pub fn delta_since(&self, earlier: &LoadTracker) -> LoadTracker {
        assert_eq!(
            self.processors(),
            earlier.processors(),
            "snapshots must cover the same network"
        );
        let diff = |a: &[u64], b: &[u64]| {
            a.iter()
                .zip(b)
                .map(|(x, y)| x.checked_sub(*y).expect("snapshot is not earlier"))
                .collect()
        };
        LoadTracker {
            sent: diff(&self.sent, &earlier.sent),
            received: diff(&self.received, &earlier.received),
        }
    }
}

impl fmt::Display for LoadTracker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (b, m) = self.bottleneck().map_or((ProcessorId::new(0), 0), |x| x);
        write!(
            f,
            "loads(n={}, total_msgs={}, bottleneck={b}:{m}, avg={:.2})",
            self.processors(),
            self.total_messages(),
            self.average_load()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    #[test]
    fn counts_send_and_receive_separately() {
        let mut t = LoadTracker::new(2);
        t.record_send(p(0));
        t.record_send(p(0));
        t.record_receive(p(1));
        assert_eq!(t.sent_by(p(0)), 2);
        assert_eq!(t.received_by(p(0)), 0);
        assert_eq!(t.received_by(p(1)), 1);
        assert_eq!(t.load_of(p(0)), 2);
        assert_eq!(t.load_of(p(1)), 1);
    }

    #[test]
    fn bottleneck_picks_max_then_smallest_index() {
        let mut t = LoadTracker::new(3);
        t.record_send(p(1));
        t.record_send(p(2));
        assert_eq!(t.bottleneck(), Some((p(1), 1)), "tie broken toward smaller index");
        t.record_receive(p(2));
        assert_eq!(t.bottleneck(), Some((p(2), 2)));
        assert_eq!(t.max_load(), 2);
    }

    #[test]
    fn totals_and_average() {
        let mut t = LoadTracker::new(4);
        // Two complete messages: 0->1, 2->3.
        t.record_send(p(0));
        t.record_receive(p(1));
        t.record_send(p(2));
        t.record_receive(p(3));
        assert_eq!(t.total_messages(), 2);
        // Each message adds 2 load units; 4 units over 4 processors.
        assert!((t.average_load() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn delta_since_isolates_a_span() {
        let mut t = LoadTracker::new(2);
        t.record_send(p(0));
        let snap = t.clone();
        t.record_send(p(0));
        t.record_receive(p(1));
        let d = t.delta_since(&snap);
        assert_eq!(d.load_of(p(0)), 1);
        assert_eq!(d.load_of(p(1)), 1);
    }

    #[test]
    #[should_panic(expected = "not earlier")]
    fn delta_since_rejects_later_snapshot() {
        let t = LoadTracker::new(1);
        let mut later = t.clone();
        later.record_send(p(0));
        let _ = t.delta_since(&later);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut t = LoadTracker::new(2);
        t.record_send(p(0));
        t.record_receive(p(1));
        t.reset();
        assert_eq!(t.max_load(), 0);
        assert_eq!(t.total_messages(), 0);
        assert_eq!(t.processors(), 2);
    }

    #[test]
    fn empty_tracker_degenerate_cases() {
        let t = LoadTracker::new(0);
        assert_eq!(t.max_load(), 0);
        assert_eq!(t.bottleneck(), None);
        assert_eq!(t.average_load(), 0.0);
    }

    #[test]
    fn imbalance_and_gini_extremes() {
        // Perfectly equal: each of 4 processors sends and receives once.
        let mut even = LoadTracker::new(4);
        for i in 0..4 {
            even.record_send(p(i));
            even.record_receive(p(i));
        }
        assert!((even.imbalance() - 1.0).abs() < 1e-12);
        assert!(even.gini().abs() < 1e-12);

        // Fully concentrated: one processor does everything.
        let mut hot = LoadTracker::new(4);
        for _ in 0..10 {
            hot.record_send(p(0));
            hot.record_receive(p(0));
        }
        assert!((hot.imbalance() - 4.0).abs() < 1e-12, "max/avg = n for one hot spot");
        assert!((hot.gini() - 0.75).abs() < 1e-12, "gini = (n-1)/n");

        // Empty tracker.
        let empty = LoadTracker::new(3);
        assert_eq!(empty.imbalance(), 0.0);
        assert_eq!(empty.gini(), 0.0);
    }

    #[test]
    fn gini_orders_known_distributions() {
        let make = |loads: &[u64]| {
            let mut t = LoadTracker::new(loads.len());
            for (i, &l) in loads.iter().enumerate() {
                for _ in 0..l {
                    t.record_send(p(i));
                }
            }
            t
        };
        let flat = make(&[5, 5, 5, 5]);
        let mild = make(&[2, 4, 6, 8]);
        let steep = make(&[1, 1, 1, 17]);
        assert!(flat.gini() < mild.gini());
        assert!(mild.gini() < steep.gini());
    }

    #[test]
    fn summary_percentiles_and_display() {
        let mut t = LoadTracker::new(10);
        // Loads 0..9 via sends.
        for i in 0..10 {
            for _ in 0..i {
                t.record_send(p(i));
            }
        }
        let s = t.summary();
        assert_eq!(s.max, 9);
        assert!((4..=5).contains(&s.p50), "median of 0..9: {}", s.p50);
        assert_eq!(s.p99, 9);
        assert!((s.mean - 4.5).abs() < 1e-12);
        assert!(s.imbalance > 1.9 && s.imbalance < 2.1);
        let text = s.to_string();
        assert!(text.contains("max 9") && text.contains("gini"));
        // Empty tracker summary is all zeros.
        let empty = LoadTracker::new(0).summary();
        assert_eq!(empty.max, 0);
        assert_eq!(empty.p50, 0);
    }

    #[test]
    fn display_mentions_bottleneck() {
        let mut t = LoadTracker::new(2);
        t.record_send(p(1));
        let s = t.to_string();
        assert!(s.contains("P1"), "display shows bottleneck processor: {s}");
    }
}
