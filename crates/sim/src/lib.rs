//! # distctr-sim
//!
//! A deterministic discrete-event simulator of the asynchronous
//! message-passing network model used by Wattenhofer & Widmayer,
//! *An Inherent Bottleneck in Distributed Counting* (1997).
//!
//! The model: `n` processors, each uniquely identified, unbounded local
//! memory, no shared memory, any processor may send a message directly to
//! any other, messages arrive an unbounded but finite time after being
//! sent, and no failures occur. The quantities of interest are **message
//! loads**: the number of messages each processor sends plus receives over
//! a sequence of operations. A simulator (rather than a real network)
//! makes those counts exact and every run reproducible.
//!
//! ## Architecture
//!
//! * [`Network`] — the event queue, delivery policies and accounting.
//!   Protocols are state machines implementing [`Protocol`]; the network
//!   delivers envelopes to them and collects the messages they emit.
//! * [`LoadTracker`] — per-processor sent/received counts; identifies the
//!   *bottleneck processor* (`argmax` of load).
//! * [`trace`] — per-operation communication DAGs (paper Figure 1), their
//!   topologically sorted communication lists (Figure 2) and contact sets
//!   `I_p` used by the Hot Spot Lemma.
//! * [`Counter`] — the abstract distributed-counter interface every
//!   implementation in this workspace provides, plus sequential and
//!   concurrent drivers.
//!
//! ## Example
//!
//! ```
//! use distctr_sim::{Network, Protocol, Outbox, ProcessorId, OpId, TraceMode};
//!
//! /// A trivial protocol: processor 0 answers pings.
//! #[derive(Clone)]
//! struct PingPong;
//! impl Protocol for PingPong {
//!     type Msg = &'static str;
//!     fn on_deliver(&mut self, out: &mut Outbox<'_, Self::Msg>,
//!                   from: ProcessorId, msg: Self::Msg) {
//!         if msg == "ping" {
//!             out.send(from, "pong");
//!         }
//!     }
//! }
//!
//! let mut net = Network::new(2, TraceMode::Full).expect("two processors");
//! let op = OpId::new(0);
//! net.inject(op, ProcessorId::new(1), ProcessorId::new(0), "ping");
//! let mut proto = PingPong;
//! net.run_to_quiescence(&mut proto);
//! assert_eq!(net.loads().load_of(ProcessorId::new(0)), 2); // ping in, pong out
//! assert_eq!(net.loads().load_of(ProcessorId::new(1)), 2); // ping out, pong in
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod dag;
pub mod drivers;
pub mod error;
pub mod explore;
pub mod fault;
pub mod id;
pub mod linearize;
pub mod list;
pub mod load;
pub mod network;
pub mod policy;
pub mod queue;
pub mod time;
pub mod trace;
pub mod workloads;

pub use counter::{CompletedOp, ConcurrentCounter, Counter, IncResult, OverlappedCounter};
pub use dag::{ArcId, CommDag, DagNodeId};
pub use drivers::{ConcurrentDriver, SequenceOutcome, SequentialDriver};
pub use error::SimError;
pub use explore::{explore, ExploreOutcome, Injection};
pub use fault::{CrashPoint, FaultEvent, FaultPlan, FaultStats};
pub use id::{OpId, ProcessorId};
pub use linearize::{counter_history_linearizable, LinearizabilityVerdict, OpRecord};
pub use list::CommList;
pub use load::{LoadSummary, LoadTracker};
pub use network::{Network, Outbox, Protocol, RunStats, DEFAULT_MESSAGE_CAP};
pub use policy::DeliveryPolicy;
pub use queue::{Envelope, EventQueue};
pub use time::SimTime;
pub use trace::{ContactSet, OpTrace, TraceMode, TraceRecorder};
pub use workloads::{Workload, ZipfSampler};
