//! The communication DAG of a single operation (paper Figure 1).
//!
//! "We can visualize the process of an inc operation as a directed acyclic
//! graph. A node with label q of the DAG represents processor q performing
//! some communication. An arc from a node labelled p1 to a node labelled
//! p2 denotes the sending of a message from processor p1 to processor p2."
//!
//! Nodes are created in delivery order, and arcs always point from an
//! earlier-created node to a later one, so the structure is acyclic by
//! construction.

use std::fmt;

use crate::id::ProcessorId;

/// Index of an event node within one [`CommDag`].
pub type DagNodeId = u32;
/// Index of an arc (message) within one [`CommDag`].
pub type ArcId = u32;

/// A directed acyclic graph of communication events.
///
/// # Examples
///
/// ```
/// use distctr_sim::{CommDag, ProcessorId};
/// let mut dag = CommDag::new();
/// let a = dag.add_node(ProcessorId::new(0));
/// let b = dag.add_node(ProcessorId::new(7));
/// dag.add_arc(a, b);
/// assert_eq!(dag.node_count(), 2);
/// assert_eq!(dag.arc_count(), 1);
/// assert_eq!(dag.label(b), ProcessorId::new(7));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CommDag {
    labels: Vec<ProcessorId>,
    arcs: Vec<(DagNodeId, DagNodeId)>,
}

impl CommDag {
    /// Creates an empty DAG.
    #[must_use]
    pub fn new() -> Self {
        CommDag::default()
    }

    /// Adds an event node labelled with processor `p`, returning its id.
    pub fn add_node(&mut self, p: ProcessorId) -> DagNodeId {
        let id = u32::try_from(self.labels.len()).expect("DAG node count fits in u32");
        self.labels.push(p);
        id
    }

    /// Adds an arc (message) from event `from` to event `to`.
    ///
    /// # Panics
    ///
    /// Panics if either node id is unknown, or if `from >= to` (which
    /// would break acyclicity — events only send to later events).
    pub fn add_arc(&mut self, from: DagNodeId, to: DagNodeId) {
        let n = self.node_count() as u32;
        assert!(from < n && to < n, "arc endpoints must be existing nodes");
        assert!(from < to, "arcs must point from earlier to later events");
        self.arcs.push((from, to));
    }

    /// Number of event nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of arcs (messages).
    #[must_use]
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// The processor label of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn label(&self, id: DagNodeId) -> ProcessorId {
        self.labels[id as usize]
    }

    /// All arcs as `(from, to)` node-id pairs, in insertion order.
    #[must_use]
    pub fn arcs(&self) -> &[(DagNodeId, DagNodeId)] {
        &self.arcs
    }

    /// All node labels, indexed by node id.
    #[must_use]
    pub fn labels(&self) -> &[ProcessorId] {
        &self.labels
    }

    /// In-degree of every node.
    #[must_use]
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.node_count()];
        for &(_, to) in &self.arcs {
            deg[to as usize] += 1;
        }
        deg
    }

    /// Out-degree of every node.
    #[must_use]
    pub fn out_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.node_count()];
        for &(from, _) in &self.arcs {
            deg[from as usize] += 1;
        }
        deg
    }

    /// Node ids with no incoming arc (the op initiator's start event, plus
    /// any synthesized senders).
    #[must_use]
    pub fn sources(&self) -> Vec<DagNodeId> {
        self.in_degrees()
            .iter()
            .enumerate()
            .filter(|&(_, d)| *d == 0)
            .map(|(i, _)| i as DagNodeId)
            .collect()
    }

    /// Number of incoming arcs to nodes labelled `p` — the per-processor
    /// receive count the Lower Bound proof compares between DAG and list.
    #[must_use]
    pub fn in_arcs_of_label(&self, p: ProcessorId) -> usize {
        self.arcs.iter().filter(|&&(_, to)| self.label(to) == p).count()
    }

    /// A topological order of the node ids. Because arcs always point from
    /// lower ids to higher ids, `0..n` is already topological; this is
    /// exposed for clarity and verified by tests.
    #[must_use]
    pub fn topological_order(&self) -> Vec<DagNodeId> {
        (0..self.node_count() as u32).collect()
    }

    /// Exports the DAG in Graphviz DOT format: one node per event
    /// (labelled with its processor), one edge per message. Render with
    /// `dot -Tsvg`.
    #[must_use]
    pub fn to_dot(&self, name: &str) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph {name} {{");
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  node [shape=circle, fontsize=10];");
        for (i, label) in self.labels.iter().enumerate() {
            let _ = writeln!(out, "  e{i} [label=\"{label}\"];");
        }
        for &(from, to) in &self.arcs {
            let _ = writeln!(out, "  e{from} -> e{to};");
        }
        let _ = writeln!(out, "}}");
        out
    }

    /// Renders the DAG as indented ASCII in the spirit of paper Figure 1:
    /// one line per arc, grouped by sending event.
    #[must_use]
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        use fmt::Write as _;
        let _ = writeln!(
            out,
            "communication DAG: {} events, {} messages",
            self.node_count(),
            self.arc_count()
        );
        for (i, label) in self.labels.iter().enumerate() {
            let outgoing: Vec<String> = self
                .arcs
                .iter()
                .filter(|&&(from, _)| from as usize == i)
                .map(|&(_, to)| format!("{}@e{}", self.label(to), to))
                .collect();
            let _ = writeln!(
                out,
                "  e{i}:{label}{}",
                if outgoing.is_empty() {
                    String::new()
                } else {
                    format!(" -> {}", outgoing.join(", "))
                }
            );
        }
        out
    }
}

impl fmt::Display for CommDag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CommDag(nodes={}, arcs={})", self.node_count(), self.arc_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    /// Builds the shape of paper Figure 1: processor 3 initiates, fans out
    /// to 11 and 7, 7 reaches 17, both 11 and 17 converge on 27, and 3 is
    /// informed at the end.
    fn figure_one() -> CommDag {
        let mut d = CommDag::new();
        let e3 = d.add_node(p(3));
        let e11 = d.add_node(p(11));
        let e7 = d.add_node(p(7));
        let e17 = d.add_node(p(17));
        let e27 = d.add_node(p(27));
        let e3b = d.add_node(p(3));
        d.add_arc(e3, e11);
        d.add_arc(e3, e7);
        d.add_arc(e7, e17);
        d.add_arc(e11, e27);
        d.add_arc(e17, e27);
        d.add_arc(e27, e3b);
        d
    }

    #[test]
    fn figure_one_shape() {
        let d = figure_one();
        assert_eq!(d.node_count(), 6);
        assert_eq!(d.arc_count(), 6);
        assert_eq!(d.sources(), vec![0], "single source: the initiator");
        assert_eq!(d.in_degrees(), vec![0, 1, 1, 1, 2, 1]);
        assert_eq!(d.out_degrees(), vec![2, 1, 1, 1, 1, 0]);
    }

    #[test]
    fn initiator_appears_twice() {
        // "the initiating processor p appears as the source of the DAG and
        // somewhere else in the DAG where p is informed of the current
        // counter value" (paper §2).
        let d = figure_one();
        let occurrences = d.labels().iter().filter(|&&l| l == p(3)).count();
        assert_eq!(occurrences, 2);
    }

    #[test]
    fn in_arcs_of_label_counts_converging_messages() {
        let d = figure_one();
        assert_eq!(d.in_arcs_of_label(p(27)), 2);
        assert_eq!(d.in_arcs_of_label(p(3)), 1);
        assert_eq!(d.in_arcs_of_label(p(99)), 0);
    }

    #[test]
    fn topological_order_respects_arcs() {
        let d = figure_one();
        let order = d.topological_order();
        let pos: Vec<usize> = {
            let mut v = vec![0; order.len()];
            for (i, &n) in order.iter().enumerate() {
                v[n as usize] = i;
            }
            v
        };
        for &(from, to) in d.arcs() {
            assert!(pos[from as usize] < pos[to as usize]);
        }
    }

    #[test]
    #[should_panic(expected = "earlier to later")]
    fn back_arc_rejected() {
        let mut d = CommDag::new();
        let a = d.add_node(p(0));
        let b = d.add_node(p(1));
        d.add_arc(b, a);
    }

    #[test]
    #[should_panic(expected = "existing nodes")]
    fn arc_to_missing_node_rejected() {
        let mut d = CommDag::new();
        let a = d.add_node(p(0));
        d.add_arc(a, 5);
    }

    #[test]
    fn render_lists_every_event() {
        let d = figure_one();
        let s = d.render_ascii();
        for i in 0..6 {
            assert!(s.contains(&format!("e{i}:")), "event e{i} rendered:\n{s}");
        }
        assert!(s.contains("6 messages"));
    }

    #[test]
    fn dot_export_contains_nodes_and_edges() {
        let d = figure_one();
        let dot = d.to_dot("fig1");
        assert!(dot.starts_with("digraph fig1 {"));
        assert!(dot.trim_end().ends_with('}'));
        assert_eq!(dot.matches(" -> ").count(), 6, "one edge per arc");
        for i in 0..6 {
            assert!(dot.contains(&format!("e{i} [label=")), "node e{i}");
        }
        assert!(dot.contains("label=\"P27\""));
    }

    #[test]
    fn empty_dag() {
        let d = CommDag::new();
        assert_eq!(d.node_count(), 0);
        assert_eq!(d.arc_count(), 0);
        assert!(d.sources().is_empty());
        assert_eq!(d.to_string(), "CommDag(nodes=0, arcs=0)");
    }
}
