//! Workload generators: who initiates which operation, in what order.
//!
//! The paper's lower bound is stated for the *canonical* workload — a
//! sequence of `n` operations with every processor initiating exactly
//! once. The experiments also probe what happens outside it (skew,
//! locality, multi-round). This module centralizes the generators so
//! every experiment and test draws from the same, seeded, documented
//! distributions.

use rand::distributions::Distribution;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::id::ProcessorId;

/// A named initiator-sequence generator.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// The paper's canonical workload: a uniformly random permutation of
    /// all processors.
    Canonical {
        /// Shuffle seed.
        seed: u64,
    },
    /// Processors in id order (0, 1, ..., n-1) — maximal locality for
    /// tree structures.
    Identity,
    /// `rounds` canonical permutations back to back (n·rounds ops).
    MultiRound {
        /// Number of rounds.
        rounds: u32,
        /// Shuffle seed (varied per round).
        seed: u64,
    },
    /// `ops` operations drawn from a Zipf-like distribution over the
    /// processors (exponent `s`): a heavy-hitter workload. `s = 0` is
    /// uniform-with-replacement; larger `s` concentrates on few
    /// initiators.
    Zipf {
        /// Number of operations.
        ops: usize,
        /// Skew exponent (>= 0).
        s: f64,
        /// Sampling seed.
        seed: u64,
    },
    /// All `ops` operations from one processor — the extreme the paper's
    /// §3 remark covers.
    SingleInitiator {
        /// The lone initiator.
        initiator: usize,
        /// Number of operations.
        ops: usize,
    },
}

impl Workload {
    /// A short stable name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Canonical { .. } => "canonical",
            Workload::Identity => "identity",
            Workload::MultiRound { .. } => "multi-round",
            Workload::Zipf { .. } => "zipf",
            Workload::SingleInitiator { .. } => "single-initiator",
        }
    }

    /// Generates the initiator sequence for a network of `n` processors.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, or if a referenced initiator is out of range.
    #[must_use]
    pub fn generate(&self, n: usize) -> Vec<ProcessorId> {
        assert!(n > 0, "workloads need at least one processor");
        match self {
            Workload::Canonical { seed } => {
                let mut order: Vec<ProcessorId> = (0..n).map(ProcessorId::new).collect();
                let mut rng = rand::rngs::StdRng::seed_from_u64(*seed);
                order.shuffle(&mut rng);
                order
            }
            Workload::Identity => (0..n).map(ProcessorId::new).collect(),
            Workload::MultiRound { rounds, seed } => {
                let mut all = Vec::with_capacity(n * *rounds as usize);
                for round in 0..*rounds {
                    all.extend(
                        Workload::Canonical { seed: seed.wrapping_add(round.into()) }.generate(n),
                    );
                }
                all
            }
            Workload::Zipf { ops, s, seed } => {
                let mut rng = rand::rngs::StdRng::seed_from_u64(*seed);
                let zipf = ZipfSampler::new(n, *s);
                (0..*ops).map(|_| ProcessorId::new(zipf.sample(&mut rng))).collect()
            }
            Workload::SingleInitiator { initiator, ops } => {
                assert!(*initiator < n, "initiator out of range");
                vec![ProcessorId::new(*initiator); *ops]
            }
        }
    }
}

/// Inverse-CDF sampler for the Zipf distribution over ranks `0..n`
/// (probability of rank r proportional to `1/(r+1)^s`).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with exponent `s >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/NaN.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(s >= 0.0, "zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Draws a rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).expect("finite cdf")) {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

impl Distribution<usize> for ZipfSampler {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        ZipfSampler::sample(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    #[test]
    fn canonical_is_a_permutation() {
        let order = Workload::Canonical { seed: 9 }.generate(50);
        let mut seen = vec![false; 50];
        for p in &order {
            assert!(!seen[p.index()], "no repeats");
            seen[p.index()] = true;
        }
        assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn canonical_is_seed_deterministic() {
        let a = Workload::Canonical { seed: 4 }.generate(20);
        let b = Workload::Canonical { seed: 4 }.generate(20);
        let c = Workload::Canonical { seed: 5 }.generate(20);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds differ (overwhelmingly)");
    }

    #[test]
    fn identity_and_single_initiator() {
        let id = Workload::Identity.generate(4);
        assert_eq!(id, (0..4).map(ProcessorId::new).collect::<Vec<_>>());
        let single = Workload::SingleInitiator { initiator: 2, ops: 5 }.generate(4);
        assert_eq!(single.len(), 5);
        assert!(single.iter().all(|&p| p == ProcessorId::new(2)));
    }

    #[test]
    fn multi_round_covers_everyone_each_round() {
        let seq = Workload::MultiRound { rounds: 3, seed: 1 }.generate(10);
        assert_eq!(seq.len(), 30);
        for round in 0..3 {
            let mut seen = vec![false; 10];
            for p in &seq[round * 10..(round + 1) * 10] {
                seen[p.index()] = true;
            }
            assert!(seen.into_iter().all(|b| b), "round {round} is a permutation");
        }
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let z = ZipfSampler::new(10, 0.0);
        let mut counts = vec![0u32; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "roughly uniform: {counts:?}");
        }
    }

    #[test]
    fn zipf_large_exponent_concentrates_on_rank_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        let z = ZipfSampler::new(100, 2.5);
        let mut zero = 0u32;
        for _ in 0..5_000 {
            if z.sample(&mut rng) == 0 {
                zero += 1;
            }
        }
        assert!(zero > 3_000, "rank 0 dominates: {zero}/5000");
    }

    #[test]
    fn zipf_workload_respects_bounds() {
        let seq = Workload::Zipf { ops: 200, s: 1.0, seed: 7 }.generate(16);
        assert_eq!(seq.len(), 200);
        assert!(seq.iter().all(|p| p.index() < 16));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Workload::Identity.name(), "identity");
        assert_eq!(Workload::Canonical { seed: 0 }.name(), "canonical");
        assert_eq!(Workload::Zipf { ops: 1, s: 1.0, seed: 0 }.name(), "zipf");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn single_initiator_bounds_checked() {
        let _ = Workload::SingleInitiator { initiator: 9, ops: 1 }.generate(4);
    }
}
