//! The abstract distributed counter interface.
//!
//! The paper's data type: "a distributed counter encapsulates an integer
//! value `val` and supports the operation `inc`: for any processor, `inc`
//! returns the current counter value `val` to the requesting processor and
//! increments the counter by one."
//!
//! Every counter in this workspace — the paper's retirement tree and all
//! baselines — implements [`Counter`], so drivers, auditors, the
//! lower-bound adversary and the benchmark harness are generic over the
//! implementation.

use crate::error::SimError;
use crate::id::ProcessorId;
use crate::load::LoadTracker;
use crate::time::SimTime;
use crate::trace::OpTrace;

/// Result of one `inc` operation.
#[derive(Debug, Clone, PartialEq)]
pub struct IncResult {
    /// The counter value returned to the initiator (the value *before*
    /// the increment, as in the paper).
    pub value: u64,
    /// Messages exchanged during the operation (including any
    /// retirement/maintenance traffic it triggered).
    pub messages: u64,
    /// Simulated completion time of the operation.
    pub completed_at: SimTime,
    /// Per-operation trace, when the implementation records one.
    pub trace: Option<OpTrace>,
}

impl IncResult {
    /// Length of the operation's communication list (= message count).
    #[must_use]
    pub fn list_len(&self) -> u64 {
        self.messages
    }
}

/// A distributed counter running on a simulated network.
///
/// Operations follow the paper's sequential model: `inc` runs the entire
/// process (including maintenance messages "sent in order to prepare for
/// future operations") to network quiescence before returning, mirroring
/// the assumption that "enough time elapses in between any two inc
/// requests".
pub trait Counter {
    /// Short stable implementation name, e.g. `"retirement-tree"`.
    fn name(&self) -> &'static str;

    /// Number of processors in the network.
    fn processors(&self) -> usize;

    /// Executes one `inc` initiated by `initiator`.
    ///
    /// # Errors
    ///
    /// * [`SimError::UnknownProcessor`] if `initiator` is out of range.
    /// * [`SimError::Livelock`] if the protocol fails to
    ///   quiesce.
    fn inc(&mut self, initiator: ProcessorId) -> Result<IncResult, SimError>;

    /// Cumulative per-processor message loads since construction.
    fn loads(&self) -> &LoadTracker;

    /// The current bottleneck load `m_b = max_p m_p`.
    fn bottleneck_load(&self) -> u64 {
        self.loads().max_load()
    }
}

/// A completed operation of an overlapped (staged) execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedOp {
    /// The operation.
    pub op: crate::id::OpId,
    /// Its initiator.
    pub initiator: ProcessorId,
    /// The value it received.
    pub value: u64,
    /// When it was initiated.
    pub started_at: SimTime,
    /// When the value reached the initiator.
    pub completed_at: SimTime,
}

impl CompletedOp {
    /// Converts to a record for the linearizability checker.
    #[must_use]
    pub fn to_record(self) -> crate::linearize::OpRecord {
        crate::linearize::OpRecord {
            op: self.op,
            started_at: self.started_at,
            completed_at: self.completed_at,
            value: self.value,
        }
    }
}

/// Counters that support *overlapping* operations under explicit time
/// control: start operations at chosen instants, let simulated time pass,
/// and collect per-operation (start, end, value) records — the raw
/// material of linearizability checking.
///
/// Implementations require per-op tracing ([`crate::TraceMode::Contacts`]
/// or better) to recover operation timings.
pub trait OverlappedCounter: Counter {
    /// Initiates an `inc` *now* without waiting for it to complete.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownProcessor`] if `initiator` is out of range.
    fn start_inc(&mut self, initiator: ProcessorId) -> Result<crate::id::OpId, SimError>;

    /// Delivers every message due by `deadline` and advances the clock to
    /// it.
    ///
    /// # Errors
    ///
    /// [`SimError::Livelock`] if the protocol livelocks.
    fn advance_until(&mut self, deadline: SimTime) -> Result<(), SimError>;

    /// Runs the network to quiescence and returns every operation started
    /// via [`OverlappedCounter::start_inc`] since the last call, with its
    /// timing and value.
    ///
    /// # Errors
    ///
    /// [`SimError::Livelock`] if the protocol livelocks.
    fn finish_all(&mut self) -> Result<Vec<CompletedOp>, SimError>;
}

/// Counters that also support several operations in flight at once.
///
/// This extends the paper's model (which explicitly serializes
/// operations); combining trees, diffracting trees and counting networks
/// are designed for exactly this regime, so the comparison experiments
/// need it.
pub trait ConcurrentCounter: Counter {
    /// Starts one `inc` per initiator simultaneously, runs the network to
    /// quiescence, and returns the values handed to each initiator, in
    /// input order.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Counter::inc`].
    fn inc_batch(&mut self, initiators: &[ProcessorId]) -> Result<Vec<u64>, SimError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inc_result_list_len_equals_messages() {
        let r =
            IncResult { value: 3, messages: 11, completed_at: SimTime::from_ticks(4), trace: None };
        assert_eq!(r.list_len(), 11);
    }

    // Counter implementations are tested in their own crates; here we only
    // verify the trait is object-safe enough for heterogeneous harnesses.
    #[test]
    fn counter_trait_is_object_safe() {
        fn _takes_dyn(_c: &mut dyn Counter) {}
    }
}
