//! Error type for simulator construction and driving.

use std::error::Error;
use std::fmt;

/// Errors reported by the simulator's public API.
///
/// Message-level faults (sending to an out-of-range processor from inside a
/// protocol) are programmer errors and panic instead; see the `Panics`
/// sections on the relevant methods.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A network or counter was requested with zero processors.
    EmptyNetwork,
    /// A driver was given an initiator outside `0..n`.
    UnknownProcessor {
        /// The offending processor index.
        index: usize,
        /// The network size.
        processors: usize,
    },
    /// A driver was asked to run an operation sequence that does not
    /// satisfy the paper's "each processor increments exactly once"
    /// requirement.
    NotAPermutation,
    /// The run exceeded the configured safety cap on delivered messages,
    /// which almost always indicates a protocol that fails to quiesce.
    /// Carries enough diagnostics to see *what* was ping-ponging when
    /// the cap was hit.
    Livelock {
        /// The cap that was hit.
        cap: u64,
        /// Messages delivered by this run call before giving up.
        delivered: u64,
        /// Messages still queued when the cap was hit.
        queue_depth: usize,
        /// Summaries of the last few deliveries before the cap.
        recent_deliveries: Vec<String>,
        /// Summaries of the next few messages that were due.
        next_pending: Vec<String>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EmptyNetwork => write!(f, "network must contain at least one processor"),
            SimError::UnknownProcessor { index, processors } => write!(
                f,
                "processor index {index} out of range for a network of {processors} processors"
            ),
            SimError::NotAPermutation => {
                write!(f, "operation sequence is not a permutation of all processors")
            }
            SimError::Livelock { cap, delivered, queue_depth, recent_deliveries, next_pending } => {
                write!(
                    f,
                    "delivered-message cap of {cap} exceeded after {delivered} deliveries \
                     with {queue_depth} still queued; protocol may not quiesce"
                )?;
                if !recent_deliveries.is_empty() {
                    write!(f, "; last deliveries: [{}]", recent_deliveries.join("; "))?;
                }
                if !next_pending.is_empty() {
                    write!(f, "; next due: [{}]", next_pending.join("; "))?;
                }
                Ok(())
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = SimError::UnknownProcessor { index: 9, processors: 4 };
        let s = e.to_string();
        assert!(s.contains('9') && s.contains('4'));
        assert!(s.starts_with(char::is_lowercase));
        assert!(SimError::EmptyNetwork.to_string().contains("at least one"));
        assert!(SimError::NotAPermutation.to_string().contains("permutation"));
        let livelock = SimError::Livelock {
            cap: 7,
            delivered: 7,
            queue_depth: 2,
            recent_deliveries: vec!["t=3 P1 -> P2 (op0): ping".into()],
            next_pending: vec!["t=4 P2 -> P1 (op0): pong".into()],
        };
        let s = livelock.to_string();
        assert!(s.contains('7') && s.contains("ping") && s.contains("pong"));
    }

    #[test]
    fn error_trait_object() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<SimError>();
    }
}
