//! Error type for simulator construction and driving.

use std::error::Error;
use std::fmt;

/// Errors reported by the simulator's public API.
///
/// Message-level faults (sending to an out-of-range processor from inside a
/// protocol) are programmer errors and panic instead; see the `Panics`
/// sections on the relevant methods.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A network or counter was requested with zero processors.
    EmptyNetwork,
    /// A driver was given an initiator outside `0..n`.
    UnknownProcessor {
        /// The offending processor index.
        index: usize,
        /// The network size.
        processors: usize,
    },
    /// A driver was asked to run an operation sequence that does not
    /// satisfy the paper's "each processor increments exactly once"
    /// requirement.
    NotAPermutation,
    /// The run exceeded the configured safety cap on delivered messages,
    /// which almost always indicates a protocol that fails to quiesce.
    MessageCapExceeded {
        /// The cap that was hit.
        cap: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EmptyNetwork => write!(f, "network must contain at least one processor"),
            SimError::UnknownProcessor { index, processors } => write!(
                f,
                "processor index {index} out of range for a network of {processors} processors"
            ),
            SimError::NotAPermutation => {
                write!(f, "operation sequence is not a permutation of all processors")
            }
            SimError::MessageCapExceeded { cap } => {
                write!(f, "delivered-message cap of {cap} exceeded; protocol may not quiesce")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = SimError::UnknownProcessor { index: 9, processors: 4 };
        let s = e.to_string();
        assert!(s.contains('9') && s.contains('4'));
        assert!(s.starts_with(char::is_lowercase));
        assert!(SimError::EmptyNetwork.to_string().contains("at least one"));
        assert!(SimError::NotAPermutation.to_string().contains("permutation"));
        assert!(SimError::MessageCapExceeded { cap: 7 }.to_string().contains('7'));
    }

    #[test]
    fn error_trait_object() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<SimError>();
    }
}
