//! Simulated time.
//!
//! The paper's model is asynchronous: a message arrives "an unbounded but
//! finite amount of time after it has been sent". The simulator realizes a
//! particular (policy-chosen) arrival time for every message; [`SimTime`]
//! is the discrete clock those arrival times live on. None of the paper's
//! results depend on time — only on message counts — but exposing the
//! clock lets experiments also report hop-latency.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (discrete ticks since the start of the run).
///
/// # Examples
///
/// ```
/// use distctr_sim::SimTime;
/// let t = SimTime::ZERO + 5;
/// assert_eq!(t.ticks(), 5);
/// assert_eq!((t + 2) - t, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw ticks.
    #[must_use]
    pub fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// The number of ticks since simulation start.
    #[must_use]
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// The later of two times.
    #[must_use]
    pub fn max_with(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, delay: u64) -> SimTime {
        SimTime(self.0.checked_add(delay).expect("simulated clock overflow"))
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, delay: u64) {
        *self = *self + delay;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    fn sub(self, earlier: SimTime) -> u64 {
        self.0.checked_sub(earlier.0).expect("subtracting a later SimTime from an earlier one")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + 10;
        assert_eq!(t.ticks(), 10);
        assert_eq!(t - SimTime::ZERO, 10);
        let mut u = t;
        u += 5;
        assert_eq!(u.ticks(), 15);
        assert_eq!(u.max_with(t), u);
        assert_eq!(t.max_with(u), u);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_ticks(3) < SimTime::from_ticks(4));
        assert_eq!(SimTime::from_ticks(7).to_string(), "t7");
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn underflow_panics() {
        let _ = SimTime::ZERO - SimTime::from_ticks(1);
    }
}
