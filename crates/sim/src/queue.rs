//! The pending-message priority queue.
//!
//! Messages wait here between being sent and being delivered, ordered by
//! their `DeliveryRank` (arrival time, then
//! a policy-chosen tiebreak). The queue is a min-heap; `pop` yields the
//! next message the network should deliver.
//!
//! ## Storage layout
//!
//! The heap orders bare `(rank, slot)` pairs while the envelopes live in
//! a slot arena beside it. Cancelling a message (a crash purging its
//! victim's inbox) *tombstones* its slot — the heap entry stays behind
//! and is discarded lazily when it surfaces — instead of rebuilding the
//! whole heap per cancellation. `settle` keeps the head live after every
//! mutation, so `peek_rank` stays a borrow and the delivery loop never
//! observes a tombstone.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::id::{OpId, ProcessorId};
use crate::policy::DeliveryRank;

/// A message in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sender.
    pub from: ProcessorId,
    /// Recipient.
    pub to: ProcessorId,
    /// The operation whose process this message belongs to.
    pub op: OpId,
    /// Protocol payload.
    pub msg: M,
    /// Trace node id of the *send* event, if tracing is on.
    pub(crate) sent_from_event: Option<u32>,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    rank: DeliveryRank,
    slot: u32,
}

// Min-heap semantics: reverse the natural rank order.
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.rank == other.rank
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other.rank.cmp(&self.rank)
    }
}

/// Priority queue of in-flight messages, ordered by delivery rank.
///
/// Not exposed mutably outside the crate; the [`Network`](crate::Network)
/// is the only producer and consumer. Public so that diagnostics can
/// report queue depth.
#[derive(Debug, Clone, Default)]
pub struct EventQueue<M> {
    heap: BinaryHeap<Entry>,
    /// Slot arena: `None` marks a tombstone whose heap entry has not
    /// surfaced yet. A slot is recycled only after its heap entry is
    /// discarded, so a stale entry can never resolve to a new message.
    slots: Vec<Option<Envelope<M>>>,
    free: Vec<u32>,
    live: usize,
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), slots: Vec::new(), free: Vec::new(), live: 0 }
    }

    /// Number of messages currently in flight.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no messages are in flight (the network is quiescent).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    pub(crate) fn push(&mut self, rank: DeliveryRank, envelope: Envelope<M>) {
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(envelope);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("queue slots fit u32");
                self.slots.push(Some(envelope));
                slot
            }
        };
        self.heap.push(Entry { rank, slot });
        self.live += 1;
    }

    pub(crate) fn pop(&mut self) -> Option<(DeliveryRank, Envelope<M>)> {
        // `settle` keeps the head live, so one pop suffices.
        let entry = self.heap.pop()?;
        let envelope = self.slots[entry.slot as usize].take().expect("head entry is live");
        self.free.push(entry.slot);
        self.live -= 1;
        self.settle();
        Some((entry.rank, envelope))
    }

    /// Rank of the next message to be delivered, if any.
    pub(crate) fn peek_rank(&self) -> Option<DeliveryRank> {
        self.heap.peek().map(|e| e.rank)
    }

    /// Discards tombstoned entries at the heap head so the next
    /// `peek_rank`/`pop` sees a live message (or an empty queue).
    fn settle(&mut self) {
        while let Some(head) = self.heap.peek() {
            if self.slots[head.slot as usize].is_some() {
                break;
            }
            let entry = self.heap.pop().expect("peeked above");
            self.free.push(entry.slot);
        }
    }

    /// Removes every message addressed to `to`, returning them in
    /// delivery order. Used when `to` crashes: its inbox becomes dead
    /// letters. The matching envelopes are tombstoned in place — their
    /// heap entries are skipped lazily on pop — so a cancellation costs
    /// one scan, not a heap rebuild.
    pub(crate) fn drain_for(&mut self, to: ProcessorId) -> Vec<(DeliveryRank, Envelope<M>)> {
        let mut purged: Vec<(DeliveryRank, Envelope<M>)> = Vec::new();
        for entry in &self.heap {
            let slot = &mut self.slots[entry.slot as usize];
            if slot.as_ref().is_some_and(|e| e.to == to) {
                purged.push((entry.rank, slot.take().expect("matched above")));
            }
        }
        self.live -= purged.len();
        self.settle();
        purged.sort_by_key(|(rank, _)| *rank);
        purged
    }

    /// Short human-readable summaries of the next messages due, in
    /// delivery order. Used by livelock diagnostics.
    pub(crate) fn head_summaries(&self, limit: usize) -> Vec<String>
    where
        M: std::fmt::Debug,
    {
        let mut entries: Vec<(DeliveryRank, &Envelope<M>)> = self
            .heap
            .iter()
            .filter_map(|e| self.slots[e.slot as usize].as_ref().map(|env| (e.rank, env)))
            .collect();
        entries.sort_by_key(|(rank, _)| *rank);
        entries
            .into_iter()
            .take(limit)
            .map(|(rank, e)| format!("{} {} -> {} ({}): {:?}", rank.at, e.from, e.to, e.op, e.msg))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn env(tag: u8) -> Envelope<u8> {
        Envelope {
            from: ProcessorId::new(0),
            to: ProcessorId::new(1),
            op: OpId::new(0),
            msg: tag,
            sent_from_event: None,
        }
    }

    fn rank(at: u64, tiebreak: u64) -> DeliveryRank {
        DeliveryRank { at: SimTime::from_ticks(at), tiebreak }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(rank(5, 0), env(5));
        q.push(rank(1, 0), env(1));
        q.push(rank(3, 0), env(3));
        let order: Vec<u8> = std::iter::from_fn(|| q.pop().map(|(_, e)| e.msg)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn tiebreak_orders_equal_times() {
        let mut q = EventQueue::new();
        q.push(rank(2, 9), env(9));
        q.push(rank(2, 1), env(1));
        q.push(rank(2, 4), env(4));
        let order: Vec<u8> = std::iter::from_fn(|| q.pop().map(|(_, e)| e.msg)).collect();
        assert_eq!(order, vec![1, 4, 9]);
    }

    #[test]
    fn len_and_quiescence() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(rank(1, 0), env(0));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_rank(), Some(rank(1, 0)));
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_rank(), None);
    }

    #[test]
    fn drain_for_splits_by_recipient() {
        let mut q = EventQueue::new();
        let mut to = |i: usize, tag: u8, at: u64| {
            let mut e = env(tag);
            e.to = ProcessorId::new(i);
            q.push(rank(at, u64::from(tag)), e);
        };
        to(1, 1, 5);
        to(2, 2, 1);
        to(1, 3, 2);
        let purged = q.drain_for(ProcessorId::new(1));
        assert_eq!(
            purged.iter().map(|(_, e)| e.msg).collect::<Vec<_>>(),
            vec![3, 1],
            "purged in delivery order"
        );
        assert_eq!(q.len(), 1, "other recipients keep their messages");
        assert_eq!(q.pop().map(|(_, e)| e.msg), Some(2));
        assert!(q.drain_for(ProcessorId::new(1)).is_empty(), "nothing left to purge");
    }

    #[test]
    fn cancellation_tombstones_skip_on_pop_without_reordering_survivors() {
        // Interleave three recipients, cancel one mid-stream, and verify
        // the survivors pop in exactly the order they would have without
        // the cancellation — the tombstoned entries are skipped, never
        // reordered, and len/peek stay consistent throughout.
        fn send(q: &mut EventQueue<u8>, i: usize, tag: u8, at: u64) {
            let mut e = env(tag);
            e.to = ProcessorId::new(i);
            q.push(rank(at, u64::from(tag)), e);
        }
        let mut q = EventQueue::new();
        send(&mut q, 1, 1, 1);
        send(&mut q, 2, 2, 2);
        send(&mut q, 1, 3, 3);
        send(&mut q, 3, 4, 4);
        send(&mut q, 1, 5, 5);
        send(&mut q, 2, 6, 6);
        assert_eq!(q.len(), 6);
        // P1's inbox dies: 1, 3 and 5 become dead letters, in delivery
        // order.
        let purged = q.drain_for(ProcessorId::new(1));
        assert_eq!(purged.iter().map(|(_, e)| e.msg).collect::<Vec<_>>(), vec![1, 3, 5]);
        assert_eq!(q.len(), 3, "live count excludes tombstones");
        // The head was a tombstone (msg 1 at t1); peek must already see
        // the next live message.
        assert_eq!(q.peek_rank(), Some(rank(2, 2)));
        let order: Vec<u8> = std::iter::from_fn(|| q.pop().map(|(_, e)| e.msg)).collect();
        assert_eq!(order, vec![2, 4, 6], "survivors deliver in unchanged order");
        assert!(q.is_empty());
        // Slots are recycled: push after heavy cancellation still works.
        send(&mut q, 2, 9, 9);
        assert_eq!(q.pop().map(|(_, e)| e.msg), Some(9));
    }

    #[test]
    fn head_summaries_are_in_delivery_order_and_bounded() {
        let mut q = EventQueue::new();
        q.push(rank(9, 0), env(9));
        q.push(rank(1, 0), env(1));
        q.push(rank(4, 0), env(4));
        let heads = q.head_summaries(2);
        assert_eq!(heads.len(), 2);
        assert!(heads[0].contains("t1") && heads[0].contains("P0 -> P1"), "{heads:?}");
        assert!(heads[1].contains("t4"), "{heads:?}");
    }

    #[test]
    fn clone_preserves_contents() {
        let mut q = EventQueue::new();
        q.push(rank(1, 1), env(1));
        q.push(rank(1, 0), env(0));
        let mut c = q.clone();
        assert_eq!(c.pop().map(|(_, e)| e.msg), Some(0));
        assert_eq!(c.pop().map(|(_, e)| e.msg), Some(1));
        assert_eq!(q.len(), 2, "original untouched");
    }
}
