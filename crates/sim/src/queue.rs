//! The pending-message priority queue.
//!
//! Messages wait here between being sent and being delivered, ordered by
//! their `DeliveryRank` (arrival time, then
//! a policy-chosen tiebreak). The queue is a min-heap; `pop` yields the
//! next message the network should deliver.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::id::{OpId, ProcessorId};
use crate::policy::DeliveryRank;

/// A message in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sender.
    pub from: ProcessorId,
    /// Recipient.
    pub to: ProcessorId,
    /// The operation whose process this message belongs to.
    pub op: OpId,
    /// Protocol payload.
    pub msg: M,
    /// Trace node id of the *send* event, if tracing is on.
    pub(crate) sent_from_event: Option<u32>,
}

#[derive(Debug, Clone)]
struct Entry<M> {
    rank: DeliveryRank,
    envelope: Envelope<M>,
}

// Min-heap semantics: reverse the natural rank order.
impl<M> PartialEq for Entry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.rank == other.rank
    }
}
impl<M> Eq for Entry<M> {}
impl<M> PartialOrd for Entry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Entry<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.rank.cmp(&self.rank)
    }
}

/// Priority queue of in-flight messages, ordered by delivery rank.
///
/// Not exposed mutably outside the crate; the [`Network`](crate::Network)
/// is the only producer and consumer. Public so that diagnostics can
/// report queue depth.
#[derive(Debug, Clone, Default)]
pub struct EventQueue<M> {
    heap: BinaryHeap<Entry<M>>,
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new() }
    }

    /// Number of messages currently in flight.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no messages are in flight (the network is quiescent).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub(crate) fn push(&mut self, rank: DeliveryRank, envelope: Envelope<M>) {
        self.heap.push(Entry { rank, envelope });
    }

    pub(crate) fn pop(&mut self) -> Option<(DeliveryRank, Envelope<M>)> {
        self.heap.pop().map(|e| (e.rank, e.envelope))
    }

    /// Rank of the next message to be delivered, if any.
    pub(crate) fn peek_rank(&self) -> Option<DeliveryRank> {
        self.heap.peek().map(|e| e.rank)
    }

    /// Removes every message addressed to `to`, returning them in
    /// delivery order. Used when `to` crashes: its inbox becomes dead
    /// letters.
    pub(crate) fn drain_for(&mut self, to: ProcessorId) -> Vec<(DeliveryRank, Envelope<M>)> {
        if self.heap.iter().all(|e| e.envelope.to != to) {
            return Vec::new();
        }
        let mut kept = BinaryHeap::with_capacity(self.heap.len());
        let mut purged = Vec::new();
        for entry in std::mem::take(&mut self.heap) {
            if entry.envelope.to == to {
                purged.push((entry.rank, entry.envelope));
            } else {
                kept.push(entry);
            }
        }
        self.heap = kept;
        purged.sort_by_key(|(rank, _)| *rank);
        purged
    }

    /// Short human-readable summaries of the next messages due, in
    /// delivery order. Used by livelock diagnostics.
    pub(crate) fn head_summaries(&self, limit: usize) -> Vec<String>
    where
        M: std::fmt::Debug,
    {
        let mut entries: Vec<&Entry<M>> = self.heap.iter().collect();
        entries.sort_by_key(|e| e.rank);
        entries
            .into_iter()
            .take(limit)
            .map(|e| {
                format!(
                    "{} {} -> {} ({}): {:?}",
                    e.rank.at, e.envelope.from, e.envelope.to, e.envelope.op, e.envelope.msg
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn env(tag: u8) -> Envelope<u8> {
        Envelope {
            from: ProcessorId::new(0),
            to: ProcessorId::new(1),
            op: OpId::new(0),
            msg: tag,
            sent_from_event: None,
        }
    }

    fn rank(at: u64, tiebreak: u64) -> DeliveryRank {
        DeliveryRank { at: SimTime::from_ticks(at), tiebreak }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(rank(5, 0), env(5));
        q.push(rank(1, 0), env(1));
        q.push(rank(3, 0), env(3));
        let order: Vec<u8> = std::iter::from_fn(|| q.pop().map(|(_, e)| e.msg)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn tiebreak_orders_equal_times() {
        let mut q = EventQueue::new();
        q.push(rank(2, 9), env(9));
        q.push(rank(2, 1), env(1));
        q.push(rank(2, 4), env(4));
        let order: Vec<u8> = std::iter::from_fn(|| q.pop().map(|(_, e)| e.msg)).collect();
        assert_eq!(order, vec![1, 4, 9]);
    }

    #[test]
    fn len_and_quiescence() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(rank(1, 0), env(0));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_rank(), Some(rank(1, 0)));
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_rank(), None);
    }

    #[test]
    fn drain_for_splits_by_recipient() {
        let mut q = EventQueue::new();
        let mut to = |i: usize, tag: u8, at: u64| {
            let mut e = env(tag);
            e.to = ProcessorId::new(i);
            q.push(rank(at, u64::from(tag)), e);
        };
        to(1, 1, 5);
        to(2, 2, 1);
        to(1, 3, 2);
        let purged = q.drain_for(ProcessorId::new(1));
        assert_eq!(
            purged.iter().map(|(_, e)| e.msg).collect::<Vec<_>>(),
            vec![3, 1],
            "purged in delivery order"
        );
        assert_eq!(q.len(), 1, "other recipients keep their messages");
        assert_eq!(q.pop().map(|(_, e)| e.msg), Some(2));
        assert!(q.drain_for(ProcessorId::new(1)).is_empty(), "nothing left to purge");
    }

    #[test]
    fn head_summaries_are_in_delivery_order_and_bounded() {
        let mut q = EventQueue::new();
        q.push(rank(9, 0), env(9));
        q.push(rank(1, 0), env(1));
        q.push(rank(4, 0), env(4));
        let heads = q.head_summaries(2);
        assert_eq!(heads.len(), 2);
        assert!(heads[0].contains("t1") && heads[0].contains("P0 -> P1"), "{heads:?}");
        assert!(heads[1].contains("t4"), "{heads:?}");
    }

    #[test]
    fn clone_preserves_contents() {
        let mut q = EventQueue::new();
        q.push(rank(1, 1), env(1));
        q.push(rank(1, 0), env(0));
        let mut c = q.clone();
        assert_eq!(c.pop().map(|(_, e)| e.msg), Some(0));
        assert_eq!(c.pop().map(|(_, e)| e.msg), Some(1));
        assert_eq!(q.len(), 2, "original untouched");
    }
}
