//! Linearizability checking for counter histories.
//!
//! The paper's model serializes operations, where linearizability is
//! automatic. Under *overlapping* operations the implementations differ:
//! a centralized counter is linearizable, while counting networks are
//! only **quiescently consistent** — a famous observation formalized in
//! Herlihy-Shavit-Waarts, *Linearizable Counting Networks* (cited by the
//! paper). For increment-only counters handing out distinct values the
//! general Wing-Gong check collapses to a pairwise real-time test:
//!
//! > a history is linearizable **iff** whenever operation A completes
//! > before operation B starts, `value(A) < value(B)`.
//!
//! ("Only if" is immediate; "if" holds because ordering operations by
//! value is then a legal linearization: it extends the real-time partial
//! order, and a counter's sequential semantics is exactly "values in
//! increasing order".)

use crate::id::OpId;
use crate::time::SimTime;

/// One completed operation of a counter history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRecord {
    /// The operation.
    pub op: OpId,
    /// When it was initiated.
    pub started_at: SimTime,
    /// When its value was delivered to the initiator.
    pub completed_at: SimTime,
    /// The value it received.
    pub value: u64,
}

/// Outcome of a linearizability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinearizabilityVerdict {
    /// The history has a legal linearization.
    Linearizable,
    /// A real-time-ordered pair got out-of-order values: the first
    /// operation finished before the second started, yet received the
    /// larger value.
    Violation {
        /// The earlier (completed-first) operation.
        earlier: OpRecord,
        /// The later (started-after) operation with the smaller value.
        later: OpRecord,
    },
}

impl LinearizabilityVerdict {
    /// Whether the history is linearizable.
    #[must_use]
    pub fn is_linearizable(&self) -> bool {
        matches!(self, LinearizabilityVerdict::Linearizable)
    }
}

/// Checks an increment-only counter history for linearizability.
///
/// Values must be distinct (they are, for a correct counter: each `inc`
/// observes a unique pre-increment value).
///
/// # Panics
///
/// Panics if two records carry the same value or if any record completes
/// before it starts — both indicate a broken history, not a
/// non-linearizable one.
///
/// # Examples
///
/// ```
/// use distctr_sim::{counter_history_linearizable, OpId, OpRecord, SimTime};
/// let t = SimTime::from_ticks;
/// let history = [
///     OpRecord { op: OpId::new(0), started_at: t(0), completed_at: t(5), value: 0 },
///     OpRecord { op: OpId::new(1), started_at: t(6), completed_at: t(9), value: 1 },
/// ];
/// assert!(counter_history_linearizable(&history).is_linearizable());
/// ```
#[must_use]
pub fn counter_history_linearizable(records: &[OpRecord]) -> LinearizabilityVerdict {
    let mut by_value: Vec<OpRecord> = records.to_vec();
    for r in &by_value {
        assert!(r.started_at <= r.completed_at, "operation {} completes before it starts", r.op);
    }
    by_value.sort_by_key(|r| r.value);
    for w in by_value.windows(2) {
        assert_ne!(w[0].value, w[1].value, "counter values must be distinct");
    }
    // Sorted by value, linearizability requires: no later-valued op
    // completes before an earlier-valued op starts. Equivalently, scan
    // in value order and remember the earliest start seen *from the
    // right*; any completion beating a later start is a violation.
    //
    // O(m^2) pairwise scan kept simple (histories here are small);
    // sufficient and obviously correct.
    for (i, a) in by_value.iter().enumerate() {
        for b in &by_value[..i] {
            // b has the smaller value; if a (larger value) completed
            // before b started, value order contradicts real time.
            if a.completed_at < b.started_at {
                return LinearizabilityVerdict::Violation { earlier: *a, later: *b };
            }
        }
    }
    LinearizabilityVerdict::Linearizable
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(op: usize, start: u64, end: u64, value: u64) -> OpRecord {
        OpRecord {
            op: OpId::new(op),
            started_at: SimTime::from_ticks(start),
            completed_at: SimTime::from_ticks(end),
            value,
        }
    }

    #[test]
    fn sequential_history_is_linearizable() {
        let h = [rec(0, 0, 5, 0), rec(1, 6, 9, 1), rec(2, 10, 12, 2)];
        assert!(counter_history_linearizable(&h).is_linearizable());
    }

    #[test]
    fn overlapping_out_of_order_values_are_fine() {
        // A and B overlap; either value order is linearizable.
        let h = [rec(0, 0, 10, 1), rec(1, 2, 8, 0)];
        assert!(counter_history_linearizable(&h).is_linearizable());
    }

    #[test]
    fn the_classic_violation_is_caught() {
        // A completes (value 1) before B starts; B gets value 0.
        let a = rec(0, 0, 5, 1);
        let b = rec(1, 10, 12, 0);
        match counter_history_linearizable(&[a, b]) {
            LinearizabilityVerdict::Violation { earlier, later } => {
                assert_eq!(earlier, a);
                assert_eq!(later, b);
            }
            LinearizabilityVerdict::Linearizable => panic!("must detect the violation"),
        }
    }

    #[test]
    fn empty_and_singleton_histories() {
        assert!(counter_history_linearizable(&[]).is_linearizable());
        assert!(counter_history_linearizable(&[rec(0, 3, 4, 7)]).is_linearizable());
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_values_rejected() {
        let h = [rec(0, 0, 1, 5), rec(1, 2, 3, 5)];
        let _ = counter_history_linearizable(&h);
    }

    #[test]
    #[should_panic(expected = "completes before it starts")]
    fn time_travel_rejected() {
        let _ = counter_history_linearizable(&[rec(0, 5, 3, 0)]);
    }

    #[test]
    fn long_chain_with_one_violation_deep_inside() {
        let mut h: Vec<OpRecord> =
            (0..20).map(|i| rec(i, i as u64 * 10, i as u64 * 10 + 5, i as u64)).collect();
        // Swap values of ops 7 and 12 (non-overlapping): violation.
        let (v7, v12) = (h[7].value, h[12].value);
        h[7].value = v12;
        h[12].value = v7;
        assert!(!counter_history_linearizable(&h).is_linearizable());
    }
}
