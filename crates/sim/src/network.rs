//! The discrete-event network engine.
//!
//! A [`Network`] delivers messages between `n` processors according to a
//! [`DeliveryPolicy`], charging every send and receive to the
//! [`LoadTracker`] and (optionally) recording per-operation traces.
//! Protocol logic lives outside the network in a [`Protocol`]
//! implementation: a state machine that reacts to deliveries by emitting
//! further messages into an [`Outbox`].

use std::collections::VecDeque;
use std::fmt;

use crate::error::SimError;
use crate::fault::{FaultEvent, FaultPlan, FaultState, FaultStats};
use crate::id::{OpId, ProcessorId};
use crate::load::LoadTracker;
use crate::policy::DeliveryPolicy;
use crate::queue::{Envelope, EventQueue};
use crate::time::SimTime;
use crate::trace::{OpTrace, TraceMode, TraceRecorder};

/// Default cap on deliveries per [`Network::run_to_quiescence`] call;
/// hitting it means the protocol almost certainly livelocks.
pub const DEFAULT_MESSAGE_CAP: u64 = 1 << 30;

/// How many trailing deliveries and pending heads a
/// [`SimError::Livelock`] report captures.
const LIVELOCK_RECENT: usize = 4;

/// A distributed protocol: the state of all processors plus the reaction
/// to message deliveries.
///
/// The protocol owns every processor's local state (the simulator is
/// single-threaded, so a single struct holding a vector of per-processor
/// states is both simple and fast). The network calls
/// [`Protocol::on_deliver`] once per delivered message; any messages the
/// handler emits through the [`Outbox`] are sent *by the receiving
/// processor* (`out.me()`).
pub trait Protocol {
    /// The protocol's message type.
    type Msg: Clone + fmt::Debug;

    /// Handles delivery of `msg` from `from` to `out.me()`.
    fn on_deliver(&mut self, out: &mut Outbox<'_, Self::Msg>, from: ProcessorId, msg: Self::Msg);
}

/// Collects the messages a processor emits while handling one delivery.
#[derive(Debug)]
pub struct Outbox<'a, M> {
    me: ProcessorId,
    op: OpId,
    now: SimTime,
    sends: &'a mut Vec<(ProcessorId, M)>,
}

impl<'a, M> Outbox<'a, M> {
    /// The processor currently handling a delivery.
    #[must_use]
    pub fn me(&self) -> ProcessorId {
        self.me
    }

    /// The operation the delivered message belongs to.
    #[must_use]
    pub fn op(&self) -> OpId {
        self.op
    }

    /// Simulated time of the delivery being handled (protocols with
    /// timer logic stamp deadlines relative to this).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends `msg` from [`Outbox::me`] to `to`. Delivery time is chosen by
    /// the network's policy; the send is charged to `me` immediately.
    pub fn send(&mut self, to: ProcessorId, msg: M) {
        self.sends.push((to, msg));
    }

    /// Number of messages queued in this outbox so far.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.sends.len()
    }

    /// Constructor for the schedule explorer (crate-internal).
    pub(crate) fn for_explorer(
        me: ProcessorId,
        op: OpId,
        now: SimTime,
        sends: &'a mut Vec<(ProcessorId, M)>,
    ) -> Outbox<'a, M> {
        Outbox { me, op, now, sends }
    }
}

/// Statistics of one call to [`Network::run_to_quiescence`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Messages delivered during the call.
    pub delivered: u64,
    /// Simulated time at quiescence.
    pub end_time: SimTime,
}

/// An asynchronous message-passing network of `n` processors.
///
/// See the crate-level docs for a complete example.
#[derive(Debug, Clone)]
pub struct Network<M> {
    processors: usize,
    queue: EventQueue<M>,
    policy: DeliveryPolicy,
    loads: LoadTracker,
    recorder: TraceRecorder,
    op_sources: OpSourceTable,
    now: SimTime,
    seq: u64,
    message_cap: u64,
    faults: Option<FaultState>,
}

/// Dense per-operation trace-source table, keyed by [`OpId::index`].
///
/// Op ids are sequential driver counters, so a flat `Vec` replaces the
/// former `HashMap<OpId, Option<u32>>`: one byte per op ever injected,
/// no hashing on the hot path, and the slot distinguishes "never
/// injected" from "injected without a trace source" exactly as map
/// absence vs `None` did.
#[derive(Debug, Clone, Default)]
struct OpSourceTable {
    slots: Vec<OpSlot>,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
enum OpSlot {
    /// The op was never injected (former map absence).
    #[default]
    Unseen,
    /// Injected; tracing recorded no source event (former `None` value).
    NoSource,
    /// Injected with the trace node id of the source event.
    Source(u32),
}

impl OpSourceTable {
    /// Whether `op` was injected already (former `contains_key`).
    fn seen(&self, op: OpId) -> bool {
        self.slots.get(op.index()).is_some_and(|s| *s != OpSlot::Unseen)
    }

    /// Records the source event of `op`'s injection.
    fn set(&mut self, op: OpId, source: Option<u32>) {
        if self.slots.len() <= op.index() {
            self.slots.resize(op.index() + 1, OpSlot::Unseen);
        }
        self.slots[op.index()] = match source {
            None => OpSlot::NoSource,
            Some(id) => OpSlot::Source(id),
        };
    }

    /// The source event of `op`, if one was recorded.
    fn get(&self, op: OpId) -> Option<u32> {
        match self.slots.get(op.index()) {
            Some(OpSlot::Source(id)) => Some(*id),
            _ => None,
        }
    }

    /// Forgets `op` (former `remove`); its slot is reusable.
    fn clear(&mut self, op: OpId) {
        if let Some(slot) = self.slots.get_mut(op.index()) {
            *slot = OpSlot::Unseen;
        }
    }
}

impl<M: Clone + fmt::Debug> Network<M> {
    /// Creates a network of `processors` processors with FIFO delivery.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyNetwork`] if `processors == 0`.
    pub fn new(processors: usize, trace: TraceMode) -> Result<Self, SimError> {
        Self::with_policy(processors, trace, DeliveryPolicy::default())
    }

    /// Creates a network with an explicit delivery policy.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyNetwork`] if `processors == 0`.
    pub fn with_policy(
        processors: usize,
        trace: TraceMode,
        policy: DeliveryPolicy,
    ) -> Result<Self, SimError> {
        if processors == 0 {
            return Err(SimError::EmptyNetwork);
        }
        Ok(Network {
            processors,
            queue: EventQueue::new(),
            policy,
            loads: LoadTracker::new(processors),
            recorder: TraceRecorder::new(trace),
            op_sources: OpSourceTable::default(),
            now: SimTime::ZERO,
            seq: 0,
            message_cap: DEFAULT_MESSAGE_CAP,
            faults: None,
        })
    }

    /// Creates a network with an explicit delivery policy and a seeded
    /// [`FaultPlan`]. Every probabilistic fault decision comes from the
    /// plan's own RNG, so the run replays exactly from
    /// `(policy, plan)`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyNetwork`] if `processors == 0`, or
    /// [`SimError::UnknownProcessor`] if the plan schedules a crash for
    /// a processor outside the network.
    pub fn with_faults(
        processors: usize,
        trace: TraceMode,
        policy: DeliveryPolicy,
        plan: FaultPlan,
    ) -> Result<Self, SimError> {
        let mut net = Self::with_policy(processors, trace, policy)?;
        for point in &plan.crashes {
            if point.processor.index() >= processors {
                return Err(SimError::UnknownProcessor {
                    index: point.processor.index(),
                    processors,
                });
            }
        }
        net.faults = Some(FaultState::new(plan, processors));
        Ok(net)
    }

    /// Number of processors.
    #[must_use]
    pub fn processors(&self) -> usize {
        self.processors
    }

    /// The per-processor load accounting so far.
    #[must_use]
    pub fn loads(&self) -> &LoadTracker {
        &self.loads
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Messages currently in flight.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Whether no messages are in flight.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.queue.is_empty()
    }

    /// Replaces the livelock-protection cap on deliveries per run call.
    pub fn set_message_cap(&mut self, cap: u64) {
        self.message_cap = cap.max(1);
    }

    /// The fault plan in force, if the network was built with one.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(FaultState::plan)
    }

    /// Every fault injected so far, in order (empty without a plan).
    #[must_use]
    pub fn fault_log(&self) -> &[FaultEvent] {
        self.faults.as_ref().map_or(&[], FaultState::log)
    }

    /// Aggregate fault counts (all zero without a plan).
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map_or_else(FaultStats::default, FaultState::stats)
    }

    /// Whether `p` has crashed.
    #[must_use]
    pub fn is_crashed(&self, p: ProcessorId) -> bool {
        self.faults.as_ref().is_some_and(|f| f.is_crashed(p))
    }

    /// The processors that have crashed so far, in index order.
    #[must_use]
    pub fn crashed_processors(&self) -> Vec<ProcessorId> {
        self.faults.as_ref().map_or_else(Vec::new, FaultState::crashed_processors)
    }

    /// Crashes `p` immediately: its pending inbox is discarded as dead
    /// letters and later sends to it are dropped on the floor. Works
    /// with or without a configured [`FaultPlan`] (tests use this to
    /// stage precise crash scenarios without probability machinery).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside the network.
    pub fn crash(&mut self, p: ProcessorId) {
        self.check_processor(p);
        let faults =
            self.faults.get_or_insert_with(|| FaultState::new(FaultPlan::new(0), self.processors));
        if faults.mark_crashed(p, self.now) {
            for (rank, env) in self.queue.drain_for(p) {
                faults.note_dead_letter(env.op, env.from, env.to, rank.at);
            }
        }
    }

    /// Injects the first message of operation `op`: `from` (the initiator
    /// or a processor acting for it) sends `msg` to `to`. Begins trace
    /// recording for `op` if it is not already open.
    ///
    /// # Panics
    ///
    /// Panics if `from` or `to` is outside the network — sending to an
    /// unknown processor is a protocol bug, not a recoverable condition.
    pub fn inject(&mut self, op: OpId, from: ProcessorId, to: ProcessorId, msg: M) {
        self.check_processor(from);
        self.check_processor(to);
        // With tracing off there are no trace events and no per-op
        // bookkeeping: the hot injection path allocates nothing.
        let source = if self.recorder.mode() == TraceMode::Off {
            None
        } else {
            if !self.recorder.is_open(op) && !self.op_sources.seen(op) {
                let source = self.recorder.begin_op(op, from, self.now);
                self.op_sources.set(op, source);
            }
            self.op_sources.get(op)
        };
        self.schedule_send(op, from, to, msg, source);
    }

    /// Delivers messages until none are in flight, handing each to
    /// `protocol`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Livelock`] (with delivery and queue
    /// diagnostics) if more than the configured cap of messages is
    /// delivered in this single call.
    pub fn run_to_quiescence<P: Protocol<Msg = M>>(
        &mut self,
        protocol: &mut P,
    ) -> Result<RunStats, SimError> {
        self.run_while(protocol, None)
    }

    /// Delivers every message due at or before `deadline`, then advances
    /// the clock to `deadline` (simulated time passes even if nothing was
    /// in flight). Messages scheduled after `deadline` stay queued —
    /// this is how overlapping-operation schedules are constructed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Livelock`] (with delivery and queue
    /// diagnostics) if more than the configured cap of messages is
    /// delivered in this single call.
    pub fn run_until<P: Protocol<Msg = M>>(
        &mut self,
        protocol: &mut P,
        deadline: SimTime,
    ) -> Result<RunStats, SimError> {
        let stats = self.run_while(protocol, Some(deadline))?;
        self.now = self.now.max_with(deadline);
        Ok(stats)
    }

    fn run_while<P: Protocol<Msg = M>>(
        &mut self,
        protocol: &mut P,
        deadline: Option<SimTime>,
    ) -> Result<RunStats, SimError> {
        let mut delivered: u64 = 0;
        let mut sends: Vec<(ProcessorId, M)> = Vec::new();
        let mut recent: VecDeque<String> = VecDeque::new();
        loop {
            self.apply_due_crashes();
            match self.queue.peek_rank() {
                None => break,
                Some(rank) if deadline.is_some_and(|d| rank.at > d) => break,
                Some(_) => {}
            }
            if delivered >= self.message_cap {
                return Err(SimError::Livelock {
                    cap: self.message_cap,
                    delivered,
                    queue_depth: self.queue.len(),
                    recent_deliveries: recent.into_iter().collect(),
                    next_pending: self.queue.head_summaries(LIVELOCK_RECENT),
                });
            }
            let (rank, env) = self.queue.pop().expect("peeked nonempty");
            // Messages whose recipient crashed after they were queued are
            // discarded, never delivered (the scheduled-crash path purges
            // the inbox eagerly; this covers direct `crash` calls racing
            // a deadline-bounded run).
            if let Some(faults) = &mut self.faults {
                if faults.is_crashed(env.to) {
                    faults.note_dead_letter(env.op, env.from, env.to, rank.at);
                    continue;
                }
            }
            delivered += 1;
            self.now = self.now.max_with(rank.at);
            self.loads.record_receive(env.to);
            if let Some(faults) = &mut self.faults {
                faults.note_delivered();
            }
            if delivered + LIVELOCK_RECENT as u64 > self.message_cap {
                if recent.len() == LIVELOCK_RECENT {
                    recent.pop_front();
                }
                recent.push_back(format!(
                    "{} {} -> {} ({}): {:?}",
                    rank.at, env.from, env.to, env.op, env.msg
                ));
            }
            let event = self.recorder.record_delivery(
                env.op,
                env.from,
                env.to,
                env.sent_from_event,
                self.now,
            );
            sends.clear();
            let mut outbox = Outbox { me: env.to, op: env.op, now: self.now, sends: &mut sends };
            protocol.on_deliver(&mut outbox, env.from, env.msg);
            for (to, msg) in sends.drain(..) {
                self.check_processor(to);
                self.schedule_send(env.op, env.to, to, msg, event);
            }
        }
        Ok(RunStats { delivered, end_time: self.now })
    }

    /// Applies every scheduled crash whose delivery threshold has been
    /// reached, purging the downed processors' inboxes as dead letters.
    fn apply_due_crashes(&mut self) {
        let Some(faults) = &mut self.faults else { return };
        for p in faults.take_due_crashes(self.now) {
            for (rank, env) in self.queue.drain_for(p) {
                faults.note_dead_letter(env.op, env.from, env.to, rank.at);
            }
        }
    }

    /// Ends trace recording for `op`, returning what was recorded (always
    /// `None` under [`TraceMode::Off`]).
    pub fn finish_op(&mut self, op: OpId) -> Option<OpTrace> {
        self.op_sources.clear(op);
        self.recorder.finish_op(op)
    }

    fn schedule_send(
        &mut self,
        op: OpId,
        from: ProcessorId,
        to: ProcessorId,
        msg: M,
        sent_from_event: Option<u32>,
    ) {
        self.loads.record_send(from);
        self.recorder.record_send(op, from);
        if let Some(faults) = &mut self.faults {
            // Fault decisions happen at send time: the sender has paid
            // for the send either way.
            if faults.is_crashed(to) {
                faults.note_dead_letter(op, from, to, self.now);
                return;
            }
            if faults.roll_drop() {
                faults.note_drop(op, from, to, self.now);
                return;
            }
            if faults.roll_dup() {
                let rank = self.policy.schedule(
                    self.now,
                    self.seq,
                    from.index() as u32,
                    to.index() as u32,
                );
                self.seq += 1;
                faults.note_dup(op, from, to, rank.at);
                self.queue.push(rank, Envelope { from, to, op, msg: msg.clone(), sent_from_event });
            }
        }
        let rank = self.policy.schedule(self.now, self.seq, from.index() as u32, to.index() as u32);
        self.seq += 1;
        self.queue.push(rank, Envelope { from, to, op, msg, sent_from_event });
    }

    fn check_processor(&self, p: ProcessorId) {
        assert!(
            p.index() < self.processors,
            "processor {p} out of range for a network of {} processors",
            self.processors
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    /// A relay ring: processor i forwards a token to i+1 until it has made
    /// `hops` hops.
    #[derive(Clone)]
    struct Ring {
        n: usize,
    }
    impl Protocol for Ring {
        type Msg = u32; // remaining hops
        fn on_deliver(&mut self, out: &mut Outbox<'_, u32>, _from: ProcessorId, hops: u32) {
            if hops > 0 {
                let next = (out.me().index() + 1) % self.n;
                out.send(p(next), hops - 1);
            }
        }
    }

    #[test]
    fn token_ring_loads_and_time() {
        let mut net = Network::new(4, TraceMode::Full).expect("net");
        let op = OpId::new(0);
        net.inject(op, p(0), p(1), 6);
        let stats = net.run_to_quiescence(&mut Ring { n: 4 }).expect("quiesce");
        assert_eq!(stats.delivered, 7, "inject + 6 forwards");
        assert_eq!(stats.end_time, SimTime::from_ticks(7), "unit delays");
        // 7 messages, each charged to one sender and one receiver.
        assert_eq!(net.loads().total_messages(), 7);
        // Every processor touched: ring of 4 over 7 hops -> loads 3..4.
        assert_eq!(net.loads().max_load(), 4);
        let trace = net.finish_op(op).expect("trace recorded");
        assert_eq!(trace.messages, 7);
        assert_eq!(trace.contacts.len(), 4);
        let dag = trace.dag.expect("full trace");
        assert_eq!(dag.arc_count(), 7);
        assert_eq!(dag.sources().len(), 1);
    }

    #[test]
    fn quiescent_network_runs_are_empty() {
        let mut net: Network<u32> = Network::new(1, TraceMode::Off).expect("net");
        assert!(net.is_quiescent());
        let stats = net.run_to_quiescence(&mut Ring { n: 1 }).expect("quiesce");
        assert_eq!(stats.delivered, 0);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn zero_processors_rejected() {
        assert_eq!(Network::<u32>::new(0, TraceMode::Off).unwrap_err(), SimError::EmptyNetwork);
    }

    #[test]
    fn message_cap_detects_livelock() {
        /// Ping-pong forever.
        #[derive(Clone)]
        struct Forever;
        impl Protocol for Forever {
            type Msg = ();
            fn on_deliver(&mut self, out: &mut Outbox<'_, ()>, from: ProcessorId, (): ()) {
                out.send(from, ());
            }
        }
        let mut net = Network::new(2, TraceMode::Off).expect("net");
        net.set_message_cap(100);
        net.inject(OpId::new(0), p(0), p(1), ());
        let err = net.run_to_quiescence(&mut Forever).unwrap_err();
        match err {
            SimError::Livelock { cap, delivered, queue_depth, recent_deliveries, next_pending } => {
                assert_eq!(cap, 100);
                assert_eq!(delivered, 100);
                assert_eq!(queue_depth, 1, "the ping-pong message is still in flight");
                assert_eq!(recent_deliveries.len(), 4, "last few deliveries captured");
                assert_eq!(next_pending.len(), 1);
                assert!(
                    recent_deliveries.iter().all(|s| s.contains("op0")),
                    "summaries name the op: {recent_deliveries:?}"
                );
            }
            other => panic!("expected livelock, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sending_to_unknown_processor_panics() {
        let mut net: Network<u32> = Network::new(2, TraceMode::Off).expect("net");
        net.inject(OpId::new(0), p(0), p(7), 1);
    }

    #[test]
    fn policies_agree_on_loads() {
        // Loads are delay-independent: run the same protocol under every
        // policy and compare load vectors.
        let mut reference: Option<Vec<u64>> = None;
        for policy in DeliveryPolicy::test_suite() {
            let mut net = Network::with_policy(5, TraceMode::Contacts, policy).expect("net");
            net.inject(OpId::new(0), p(0), p(1), 9);
            net.run_to_quiescence(&mut Ring { n: 5 }).expect("quiesce");
            let loads = net.loads().to_vec();
            match &reference {
                None => reference = Some(loads),
                Some(r) => assert_eq!(&loads, r, "loads must not depend on delivery policy"),
            }
        }
    }

    #[test]
    fn trace_contacts_only_has_no_dag() {
        let mut net = Network::new(3, TraceMode::Contacts).expect("net");
        let op = OpId::new(5);
        net.inject(op, p(0), p(1), 2);
        net.run_to_quiescence(&mut Ring { n: 3 }).expect("quiesce");
        let t = net.finish_op(op).expect("trace");
        assert!(t.dag.is_none());
        assert_eq!(t.contacts.len(), 3);
    }

    #[test]
    fn multiple_ops_attribute_contacts_separately() {
        let mut net = Network::new(6, TraceMode::Contacts).expect("net");
        let a = OpId::new(0);
        let b = OpId::new(1);
        net.inject(a, p(0), p(1), 0);
        net.inject(b, p(3), p(4), 0);
        net.run_to_quiescence(&mut Ring { n: 6 }).expect("quiesce");
        let ta = net.finish_op(a).expect("a");
        let tb = net.finish_op(b).expect("b");
        assert!(ta.contacts.contains(p(0)) && ta.contacts.contains(p(1)));
        assert!(!ta.contacts.contains(p(3)));
        assert!(tb.contacts.contains(p(3)) && tb.contacts.contains(p(4)));
        assert!(!tb.contacts.contains(p(0)));
    }

    #[test]
    fn clock_is_monotone_across_runs() {
        let mut net = Network::new(2, TraceMode::Off).expect("net");
        net.inject(OpId::new(0), p(0), p(1), 0);
        let s1 = net.run_to_quiescence(&mut Ring { n: 2 }).expect("run");
        net.inject(OpId::new(1), p(0), p(1), 0);
        let s2 = net.run_to_quiescence(&mut Ring { n: 2 }).expect("run");
        assert!(s2.end_time >= s1.end_time);
    }

    #[test]
    fn run_until_delivers_only_due_messages_and_advances_clock() {
        let mut net = Network::new(4, TraceMode::Contacts).expect("net");
        let op = OpId::new(0);
        net.inject(op, p(0), p(1), 6); // 7 unit-delay hops total
        let stats = net.run_until(&mut Ring { n: 4 }, SimTime::from_ticks(3)).expect("runs");
        assert_eq!(stats.delivered, 3, "hops due by t=3");
        assert_eq!(net.in_flight(), 1, "the rest stays queued");
        assert_eq!(net.now(), SimTime::from_ticks(3));
        // Time passes even with nothing due.
        let stats = net.run_until(&mut Ring { n: 4 }, SimTime::from_ticks(3)).expect("runs");
        assert_eq!(stats.delivered, 0);
        let _ = net.run_until(&mut Ring { n: 4 }, SimTime::from_ticks(10)).expect("runs");
        assert!(net.is_quiescent());
        assert_eq!(net.now(), SimTime::from_ticks(10));
        let trace = net.finish_op(op).expect("trace");
        assert_eq!(trace.started_at, SimTime::ZERO);
        assert_eq!(trace.completed_at, SimTime::from_ticks(7), "last delivery stamped");
    }

    #[test]
    fn scripted_policy_stalls_a_chosen_message() {
        let mut net = Network::with_policy(3, TraceMode::Off, DeliveryPolicy::scripted([1, 50]))
            .expect("net");
        net.inject(OpId::new(0), p(0), p(1), 2); // 3 sends total
        let stats = net.run_until(&mut Ring { n: 3 }, SimTime::from_ticks(10)).expect("runs");
        assert_eq!(stats.delivered, 1, "second hop is stalled until t=51");
        net.run_to_quiescence(&mut Ring { n: 3 }).expect("drains");
        assert_eq!(net.now(), SimTime::from_ticks(52), "1 + 50 + 1");
    }

    #[test]
    fn dropped_messages_charge_the_sender_only() {
        // drop_prob = 1: the injected message is lost; sender charged,
        // receiver untouched, fault logged.
        let plan = FaultPlan::new(11).drop_prob(1.0);
        let mut net =
            Network::with_faults(2, TraceMode::Off, DeliveryPolicy::Fifo, plan).expect("net");
        net.inject(OpId::new(0), p(0), p(1), 3);
        let stats = net.run_to_quiescence(&mut Ring { n: 2 }).expect("quiesce");
        assert_eq!(stats.delivered, 0);
        assert_eq!(net.loads().load_of(p(0)), 1, "send was charged");
        assert_eq!(net.loads().load_of(p(1)), 0);
        assert_eq!(net.fault_stats().drops, 1);
        assert!(matches!(net.fault_log()[0], FaultEvent::Dropped { .. }));
    }

    #[test]
    fn duplicated_messages_deliver_twice() {
        let plan = FaultPlan::new(11).dup_prob(1.0);
        let mut net =
            Network::with_faults(2, TraceMode::Off, DeliveryPolicy::Fifo, plan).expect("net");
        // hops = 0: the token stops at p(1), so only the injected send
        // duplicates.
        net.inject(OpId::new(0), p(0), p(1), 0);
        let stats = net.run_to_quiescence(&mut Ring { n: 2 }).expect("quiesce");
        assert_eq!(stats.delivered, 2, "original + duplicate");
        assert_eq!(net.loads().load_of(p(0)), 1, "one send charged");
        assert_eq!(net.loads().load_of(p(1)), 2, "two receives charged");
        assert_eq!(net.fault_stats().dups, 1);
    }

    #[test]
    fn scheduled_crash_dead_letters_the_inbox() {
        // p(2) crashes after the very first delivery; the ring token dies
        // when it reaches p(2)'s inbox.
        let plan = FaultPlan::new(0).crash(p(2), 1);
        let mut net =
            Network::with_faults(3, TraceMode::Off, DeliveryPolicy::Fifo, plan).expect("net");
        net.inject(OpId::new(0), p(0), p(1), 9);
        let stats = net.run_to_quiescence(&mut Ring { n: 3 }).expect("quiesce");
        assert_eq!(stats.delivered, 1, "p(1) got the token; the forward to p(2) died");
        assert!(net.is_crashed(p(2)));
        assert_eq!(net.crashed_processors(), vec![p(2)]);
        assert_eq!(net.fault_stats().dead_letters, 1);
        assert!(net.is_quiescent(), "dead letters drain the queue");
    }

    #[test]
    fn direct_crash_purges_pending_messages() {
        let mut net = Network::new(4, TraceMode::Off).expect("net");
        net.inject(OpId::new(0), p(0), p(1), 6);
        net.crash(p(1));
        let stats = net.run_to_quiescence(&mut Ring { n: 4 }).expect("quiesce");
        assert_eq!(stats.delivered, 0, "inbox purged at crash time");
        assert_eq!(net.fault_stats().dead_letters, 1);
        assert_eq!(net.fault_stats().crashes, 1);
        // Sends to a dead processor after the crash are dead letters too.
        net.inject(OpId::new(1), p(0), p(1), 1);
        assert!(net.is_quiescent(), "nothing was enqueued");
        assert_eq!(net.fault_stats().dead_letters, 2);
    }

    #[test]
    fn fault_runs_replay_exactly_from_seed_and_plan() {
        let run = |policy_seed: u64, plan: FaultPlan| {
            let mut net = Network::with_faults(
                5,
                TraceMode::Off,
                DeliveryPolicy::random_delay(policy_seed, 8),
                plan,
            )
            .expect("net");
            for op in 0..20 {
                net.inject(OpId::new(op), p(op % 5), p((op + 1) % 5), 12);
                net.run_to_quiescence(&mut Ring { n: 5 }).expect("quiesce");
            }
            (net.loads().to_vec(), net.fault_log().to_vec(), net.fault_stats())
        };
        let plan = FaultPlan::new(0xFA11).drop_prob(0.1).dup_prob(0.05).crash(p(4), 60);
        let (loads_a, log_a, stats_a) = run(7, plan.clone());
        let (loads_b, log_b, stats_b) = run(7, plan.clone());
        assert_eq!(loads_a, loads_b, "same (seed, plan) => same loads");
        assert_eq!(log_a, log_b, "same (seed, plan) => same fault log");
        assert_eq!(stats_a, stats_b);
        assert!(stats_a.drops > 0 && stats_a.dups > 0, "faults actually fired: {stats_a:?}");
        let (_, log_c, _) = run(7, FaultPlan::new(0xFA12).drop_prob(0.1).dup_prob(0.05));
        assert_ne!(log_a, log_c, "a different fault seed gives a different run");
    }

    #[test]
    fn fault_plan_crash_out_of_range_is_rejected() {
        let plan = FaultPlan::new(0).crash(p(9), 1);
        let err =
            Network::<u32>::with_faults(3, TraceMode::Off, DeliveryPolicy::Fifo, plan).unwrap_err();
        assert_eq!(err, SimError::UnknownProcessor { index: 9, processors: 3 });
    }

    #[test]
    fn faults_do_not_perturb_delivery_delays() {
        // An inactive plan must leave the schedule identical to a
        // fault-free run: the fault RNG is separate from the policy RNG.
        let mut plain = Network::with_policy(3, TraceMode::Off, DeliveryPolicy::random_delay(5, 9))
            .expect("net");
        let mut faulty = Network::with_faults(
            3,
            TraceMode::Off,
            DeliveryPolicy::random_delay(5, 9),
            FaultPlan::new(123),
        )
        .expect("net");
        plain.inject(OpId::new(0), p(0), p(1), 20);
        faulty.inject(OpId::new(0), p(0), p(1), 20);
        let sp = plain.run_to_quiescence(&mut Ring { n: 3 }).expect("run");
        let sf = faulty.run_to_quiescence(&mut Ring { n: 3 }).expect("run");
        assert_eq!(sp, sf, "identical stats with an empty plan");
        assert_eq!(plain.loads().to_vec(), faulty.loads().to_vec());
    }

    #[test]
    fn cloned_network_diverges_independently() {
        let mut net = Network::new(3, TraceMode::Off).expect("net");
        net.inject(OpId::new(0), p(0), p(1), 1);
        let mut fork = net.clone();
        net.run_to_quiescence(&mut Ring { n: 3 }).expect("run");
        assert!(net.is_quiescent());
        assert_eq!(fork.in_flight(), 1, "fork kept the pending message");
        fork.run_to_quiescence(&mut Ring { n: 3 }).expect("run");
        assert_eq!(fork.loads().to_vec(), net.loads().to_vec());
    }
}
