//! The discrete-event network engine.
//!
//! A [`Network`] delivers messages between `n` processors according to a
//! [`DeliveryPolicy`], charging every send and receive to the
//! [`LoadTracker`] and (optionally) recording per-operation traces.
//! Protocol logic lives outside the network in a [`Protocol`]
//! implementation: a state machine that reacts to deliveries by emitting
//! further messages into an [`Outbox`].

use std::collections::HashMap;
use std::fmt;

use crate::error::SimError;
use crate::id::{OpId, ProcessorId};
use crate::load::LoadTracker;
use crate::policy::DeliveryPolicy;
use crate::queue::{Envelope, EventQueue};
use crate::time::SimTime;
use crate::trace::{OpTrace, TraceMode, TraceRecorder};

/// Default cap on deliveries per [`Network::run_to_quiescence`] call;
/// hitting it means the protocol almost certainly livelocks.
pub const DEFAULT_MESSAGE_CAP: u64 = 1 << 30;

/// A distributed protocol: the state of all processors plus the reaction
/// to message deliveries.
///
/// The protocol owns every processor's local state (the simulator is
/// single-threaded, so a single struct holding a vector of per-processor
/// states is both simple and fast). The network calls
/// [`Protocol::on_deliver`] once per delivered message; any messages the
/// handler emits through the [`Outbox`] are sent *by the receiving
/// processor* (`out.me()`).
pub trait Protocol {
    /// The protocol's message type.
    type Msg: Clone + fmt::Debug;

    /// Handles delivery of `msg` from `from` to `out.me()`.
    fn on_deliver(&mut self, out: &mut Outbox<'_, Self::Msg>, from: ProcessorId, msg: Self::Msg);
}

/// Collects the messages a processor emits while handling one delivery.
#[derive(Debug)]
pub struct Outbox<'a, M> {
    me: ProcessorId,
    op: OpId,
    sends: &'a mut Vec<(ProcessorId, M)>,
}

impl<'a, M> Outbox<'a, M> {
    /// The processor currently handling a delivery.
    #[must_use]
    pub fn me(&self) -> ProcessorId {
        self.me
    }

    /// The operation the delivered message belongs to.
    #[must_use]
    pub fn op(&self) -> OpId {
        self.op
    }

    /// Sends `msg` from [`Outbox::me`] to `to`. Delivery time is chosen by
    /// the network's policy; the send is charged to `me` immediately.
    pub fn send(&mut self, to: ProcessorId, msg: M) {
        self.sends.push((to, msg));
    }

    /// Number of messages queued in this outbox so far.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.sends.len()
    }

    /// Constructor for the schedule explorer (crate-internal).
    pub(crate) fn for_explorer(
        me: ProcessorId,
        op: OpId,
        sends: &'a mut Vec<(ProcessorId, M)>,
    ) -> Outbox<'a, M> {
        Outbox { me, op, sends }
    }
}

/// Statistics of one call to [`Network::run_to_quiescence`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Messages delivered during the call.
    pub delivered: u64,
    /// Simulated time at quiescence.
    pub end_time: SimTime,
}

/// An asynchronous message-passing network of `n` processors.
///
/// See the crate-level docs for a complete example.
#[derive(Debug, Clone)]
pub struct Network<M> {
    processors: usize,
    queue: EventQueue<M>,
    policy: DeliveryPolicy,
    loads: LoadTracker,
    recorder: TraceRecorder,
    op_sources: HashMap<OpId, Option<u32>>,
    now: SimTime,
    seq: u64,
    message_cap: u64,
}

impl<M: Clone + fmt::Debug> Network<M> {
    /// Creates a network of `processors` processors with FIFO delivery.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyNetwork`] if `processors == 0`.
    pub fn new(processors: usize, trace: TraceMode) -> Result<Self, SimError> {
        Self::with_policy(processors, trace, DeliveryPolicy::default())
    }

    /// Creates a network with an explicit delivery policy.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyNetwork`] if `processors == 0`.
    pub fn with_policy(
        processors: usize,
        trace: TraceMode,
        policy: DeliveryPolicy,
    ) -> Result<Self, SimError> {
        if processors == 0 {
            return Err(SimError::EmptyNetwork);
        }
        Ok(Network {
            processors,
            queue: EventQueue::new(),
            policy,
            loads: LoadTracker::new(processors),
            recorder: TraceRecorder::new(trace),
            op_sources: HashMap::new(),
            now: SimTime::ZERO,
            seq: 0,
            message_cap: DEFAULT_MESSAGE_CAP,
        })
    }

    /// Number of processors.
    #[must_use]
    pub fn processors(&self) -> usize {
        self.processors
    }

    /// The per-processor load accounting so far.
    #[must_use]
    pub fn loads(&self) -> &LoadTracker {
        &self.loads
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Messages currently in flight.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Whether no messages are in flight.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.queue.is_empty()
    }

    /// Replaces the livelock-protection cap on deliveries per run call.
    pub fn set_message_cap(&mut self, cap: u64) {
        self.message_cap = cap.max(1);
    }

    /// Injects the first message of operation `op`: `from` (the initiator
    /// or a processor acting for it) sends `msg` to `to`. Begins trace
    /// recording for `op` if it is not already open.
    ///
    /// # Panics
    ///
    /// Panics if `from` or `to` is outside the network — sending to an
    /// unknown processor is a protocol bug, not a recoverable condition.
    pub fn inject(&mut self, op: OpId, from: ProcessorId, to: ProcessorId, msg: M) {
        self.check_processor(from);
        self.check_processor(to);
        if !self.recorder.is_open(op) && !self.op_sources.contains_key(&op) {
            let source = self.recorder.begin_op(op, from, self.now);
            self.op_sources.insert(op, source);
        }
        let source = self.op_sources.get(&op).copied().flatten();
        self.schedule_send(op, from, to, msg, source);
    }

    /// Delivers messages until none are in flight, handing each to
    /// `protocol`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MessageCapExceeded`] if more than the
    /// configured cap of messages is delivered in this single call.
    pub fn run_to_quiescence<P: Protocol<Msg = M>>(
        &mut self,
        protocol: &mut P,
    ) -> Result<RunStats, SimError> {
        self.run_while(protocol, None)
    }

    /// Delivers every message due at or before `deadline`, then advances
    /// the clock to `deadline` (simulated time passes even if nothing was
    /// in flight). Messages scheduled after `deadline` stay queued —
    /// this is how overlapping-operation schedules are constructed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MessageCapExceeded`] if more than the
    /// configured cap of messages is delivered in this single call.
    pub fn run_until<P: Protocol<Msg = M>>(
        &mut self,
        protocol: &mut P,
        deadline: SimTime,
    ) -> Result<RunStats, SimError> {
        let stats = self.run_while(protocol, Some(deadline))?;
        self.now = self.now.max_with(deadline);
        Ok(stats)
    }

    fn run_while<P: Protocol<Msg = M>>(
        &mut self,
        protocol: &mut P,
        deadline: Option<SimTime>,
    ) -> Result<RunStats, SimError> {
        let mut delivered: u64 = 0;
        let mut sends: Vec<(ProcessorId, M)> = Vec::new();
        loop {
            match self.queue.peek_rank() {
                None => break,
                Some(rank) if deadline.is_some_and(|d| rank.at > d) => break,
                Some(_) => {}
            }
            let (rank, env) = self.queue.pop().expect("peeked nonempty");
            if delivered >= self.message_cap {
                return Err(SimError::MessageCapExceeded { cap: self.message_cap });
            }
            delivered += 1;
            self.now = self.now.max_with(rank.at);
            self.loads.record_receive(env.to);
            let event = self.recorder.record_delivery(
                env.op,
                env.from,
                env.to,
                env.sent_from_event,
                self.now,
            );
            sends.clear();
            let mut outbox = Outbox { me: env.to, op: env.op, sends: &mut sends };
            protocol.on_deliver(&mut outbox, env.from, env.msg);
            for (to, msg) in sends.drain(..) {
                self.check_processor(to);
                self.schedule_send(env.op, env.to, to, msg, event);
            }
        }
        Ok(RunStats { delivered, end_time: self.now })
    }

    /// Ends trace recording for `op`, returning what was recorded (always
    /// `None` under [`TraceMode::Off`]).
    pub fn finish_op(&mut self, op: OpId) -> Option<OpTrace> {
        self.op_sources.remove(&op);
        self.recorder.finish_op(op)
    }

    fn schedule_send(
        &mut self,
        op: OpId,
        from: ProcessorId,
        to: ProcessorId,
        msg: M,
        sent_from_event: Option<u32>,
    ) {
        self.loads.record_send(from);
        self.recorder.record_send(op, from);
        let rank = self.policy.schedule(self.now, self.seq, from.index() as u32, to.index() as u32);
        self.seq += 1;
        self.queue.push(rank, Envelope { from, to, op, msg, sent_from_event });
    }

    fn check_processor(&self, p: ProcessorId) {
        assert!(
            p.index() < self.processors,
            "processor {p} out of range for a network of {} processors",
            self.processors
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    /// A relay ring: processor i forwards a token to i+1 until it has made
    /// `hops` hops.
    #[derive(Clone)]
    struct Ring {
        n: usize,
    }
    impl Protocol for Ring {
        type Msg = u32; // remaining hops
        fn on_deliver(&mut self, out: &mut Outbox<'_, u32>, _from: ProcessorId, hops: u32) {
            if hops > 0 {
                let next = (out.me().index() + 1) % self.n;
                out.send(p(next), hops - 1);
            }
        }
    }

    #[test]
    fn token_ring_loads_and_time() {
        let mut net = Network::new(4, TraceMode::Full).expect("net");
        let op = OpId::new(0);
        net.inject(op, p(0), p(1), 6);
        let stats = net.run_to_quiescence(&mut Ring { n: 4 }).expect("quiesce");
        assert_eq!(stats.delivered, 7, "inject + 6 forwards");
        assert_eq!(stats.end_time, SimTime::from_ticks(7), "unit delays");
        // 7 messages, each charged to one sender and one receiver.
        assert_eq!(net.loads().total_messages(), 7);
        // Every processor touched: ring of 4 over 7 hops -> loads 3..4.
        assert_eq!(net.loads().max_load(), 4);
        let trace = net.finish_op(op).expect("trace recorded");
        assert_eq!(trace.messages, 7);
        assert_eq!(trace.contacts.len(), 4);
        let dag = trace.dag.expect("full trace");
        assert_eq!(dag.arc_count(), 7);
        assert_eq!(dag.sources().len(), 1);
    }

    #[test]
    fn quiescent_network_runs_are_empty() {
        let mut net: Network<u32> = Network::new(1, TraceMode::Off).expect("net");
        assert!(net.is_quiescent());
        let stats = net.run_to_quiescence(&mut Ring { n: 1 }).expect("quiesce");
        assert_eq!(stats.delivered, 0);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn zero_processors_rejected() {
        assert_eq!(Network::<u32>::new(0, TraceMode::Off).unwrap_err(), SimError::EmptyNetwork);
    }

    #[test]
    fn message_cap_detects_livelock() {
        /// Ping-pong forever.
        #[derive(Clone)]
        struct Forever;
        impl Protocol for Forever {
            type Msg = ();
            fn on_deliver(&mut self, out: &mut Outbox<'_, ()>, from: ProcessorId, (): ()) {
                out.send(from, ());
            }
        }
        let mut net = Network::new(2, TraceMode::Off).expect("net");
        net.set_message_cap(100);
        net.inject(OpId::new(0), p(0), p(1), ());
        let err = net.run_to_quiescence(&mut Forever).unwrap_err();
        assert_eq!(err, SimError::MessageCapExceeded { cap: 100 });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sending_to_unknown_processor_panics() {
        let mut net: Network<u32> = Network::new(2, TraceMode::Off).expect("net");
        net.inject(OpId::new(0), p(0), p(7), 1);
    }

    #[test]
    fn policies_agree_on_loads() {
        // Loads are delay-independent: run the same protocol under every
        // policy and compare load vectors.
        let mut reference: Option<Vec<u64>> = None;
        for policy in DeliveryPolicy::test_suite() {
            let mut net = Network::with_policy(5, TraceMode::Contacts, policy).expect("net");
            net.inject(OpId::new(0), p(0), p(1), 9);
            net.run_to_quiescence(&mut Ring { n: 5 }).expect("quiesce");
            let loads = net.loads().to_vec();
            match &reference {
                None => reference = Some(loads),
                Some(r) => assert_eq!(&loads, r, "loads must not depend on delivery policy"),
            }
        }
    }

    #[test]
    fn trace_contacts_only_has_no_dag() {
        let mut net = Network::new(3, TraceMode::Contacts).expect("net");
        let op = OpId::new(5);
        net.inject(op, p(0), p(1), 2);
        net.run_to_quiescence(&mut Ring { n: 3 }).expect("quiesce");
        let t = net.finish_op(op).expect("trace");
        assert!(t.dag.is_none());
        assert_eq!(t.contacts.len(), 3);
    }

    #[test]
    fn multiple_ops_attribute_contacts_separately() {
        let mut net = Network::new(6, TraceMode::Contacts).expect("net");
        let a = OpId::new(0);
        let b = OpId::new(1);
        net.inject(a, p(0), p(1), 0);
        net.inject(b, p(3), p(4), 0);
        net.run_to_quiescence(&mut Ring { n: 6 }).expect("quiesce");
        let ta = net.finish_op(a).expect("a");
        let tb = net.finish_op(b).expect("b");
        assert!(ta.contacts.contains(p(0)) && ta.contacts.contains(p(1)));
        assert!(!ta.contacts.contains(p(3)));
        assert!(tb.contacts.contains(p(3)) && tb.contacts.contains(p(4)));
        assert!(!tb.contacts.contains(p(0)));
    }

    #[test]
    fn clock_is_monotone_across_runs() {
        let mut net = Network::new(2, TraceMode::Off).expect("net");
        net.inject(OpId::new(0), p(0), p(1), 0);
        let s1 = net.run_to_quiescence(&mut Ring { n: 2 }).expect("run");
        net.inject(OpId::new(1), p(0), p(1), 0);
        let s2 = net.run_to_quiescence(&mut Ring { n: 2 }).expect("run");
        assert!(s2.end_time >= s1.end_time);
    }

    #[test]
    fn run_until_delivers_only_due_messages_and_advances_clock() {
        let mut net = Network::new(4, TraceMode::Contacts).expect("net");
        let op = OpId::new(0);
        net.inject(op, p(0), p(1), 6); // 7 unit-delay hops total
        let stats = net.run_until(&mut Ring { n: 4 }, SimTime::from_ticks(3)).expect("runs");
        assert_eq!(stats.delivered, 3, "hops due by t=3");
        assert_eq!(net.in_flight(), 1, "the rest stays queued");
        assert_eq!(net.now(), SimTime::from_ticks(3));
        // Time passes even with nothing due.
        let stats = net.run_until(&mut Ring { n: 4 }, SimTime::from_ticks(3)).expect("runs");
        assert_eq!(stats.delivered, 0);
        let _ = net.run_until(&mut Ring { n: 4 }, SimTime::from_ticks(10)).expect("runs");
        assert!(net.is_quiescent());
        assert_eq!(net.now(), SimTime::from_ticks(10));
        let trace = net.finish_op(op).expect("trace");
        assert_eq!(trace.started_at, SimTime::ZERO);
        assert_eq!(trace.completed_at, SimTime::from_ticks(7), "last delivery stamped");
    }

    #[test]
    fn scripted_policy_stalls_a_chosen_message() {
        let mut net = Network::with_policy(
            3,
            TraceMode::Off,
            DeliveryPolicy::scripted([1, 50]),
        )
        .expect("net");
        net.inject(OpId::new(0), p(0), p(1), 2); // 3 sends total
        let stats = net.run_until(&mut Ring { n: 3 }, SimTime::from_ticks(10)).expect("runs");
        assert_eq!(stats.delivered, 1, "second hop is stalled until t=51");
        net.run_to_quiescence(&mut Ring { n: 3 }).expect("drains");
        assert_eq!(net.now(), SimTime::from_ticks(52), "1 + 50 + 1");
    }

    #[test]
    fn cloned_network_diverges_independently() {
        let mut net = Network::new(3, TraceMode::Off).expect("net");
        net.inject(OpId::new(0), p(0), p(1), 1);
        let mut fork = net.clone();
        net.run_to_quiescence(&mut Ring { n: 3 }).expect("run");
        assert!(net.is_quiescent());
        assert_eq!(fork.in_flight(), 1, "fork kept the pending message");
        fork.run_to_quiescence(&mut Ring { n: 3 }).expect("run");
        assert_eq!(fork.loads().to_vec(), net.loads().to_vec());
    }
}
