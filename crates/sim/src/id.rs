//! Strongly typed identifiers for processors and operations.
//!
//! The paper identifies each of the `n` processors "with one of the
//! integers from 1 to n"; internally we use zero-based indices so that a
//! [`ProcessorId`] doubles as a direct index into per-processor tables.
//! [`ProcessorId::display_one_based`] recovers the paper's numbering.

use std::fmt;

/// Identifier of one of the `n` processors in the network.
///
/// Zero-based. Construction is unchecked against any particular network
/// size; the [`Network`](crate::Network) validates destinations on send.
///
/// # Examples
///
/// ```
/// use distctr_sim::ProcessorId;
/// let p = ProcessorId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.display_one_based(), 4);
/// assert_eq!(p.to_string(), "P3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessorId(u32);

impl ProcessorId {
    /// Creates a processor id from a zero-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32` (the simulator supports at
    /// most `u32::MAX` processors, far above the paper's `n = k^(k+1)`
    /// experiment sizes).
    #[must_use]
    pub fn new(index: usize) -> Self {
        ProcessorId(u32::try_from(index).expect("processor index fits in u32"))
    }

    /// The zero-based index of this processor.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The paper's one-based numbering (processors 1..=n).
    #[must_use]
    pub fn display_one_based(self) -> usize {
        self.0 as usize + 1
    }
}

impl fmt::Display for ProcessorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<ProcessorId> for usize {
    fn from(p: ProcessorId) -> usize {
        p.index()
    }
}

/// Identifier of a single `inc` operation within a run.
///
/// Operations are numbered in initiation order: in the paper's canonical
/// sequence, operation `i` is the `i`-th `inc` performed. Envelopes carry
/// the op id of the operation whose process they belong to, which is how
/// the tracer attributes messages to contact sets `I_p`.
///
/// # Examples
///
/// ```
/// use distctr_sim::OpId;
/// let op = OpId::new(7);
/// assert_eq!(op.index(), 7);
/// assert_eq!(op.to_string(), "op7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct OpId(u32);

impl OpId {
    /// Creates an operation id from a zero-based sequence number.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[must_use]
    pub fn new(index: usize) -> Self {
        OpId(u32::try_from(index).expect("op index fits in u32"))
    }

    /// Zero-based sequence number of this operation.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn processor_id_roundtrip() {
        for i in [0usize, 1, 41, 1 << 20] {
            let p = ProcessorId::new(i);
            assert_eq!(p.index(), i);
            assert_eq!(p.display_one_based(), i + 1);
            assert_eq!(usize::from(p), i);
        }
    }

    #[test]
    fn processor_id_ordering_matches_index() {
        let a = ProcessorId::new(3);
        let b = ProcessorId::new(9);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn ids_are_hashable_and_distinct() {
        let set: HashSet<ProcessorId> = (0..100).map(ProcessorId::new).collect();
        assert_eq!(set.len(), 100);
        let ops: HashSet<OpId> = (0..100).map(OpId::new).collect();
        assert_eq!(ops.len(), 100);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ProcessorId::new(12).to_string(), "P12");
        assert_eq!(OpId::new(3).to_string(), "op3");
        assert_eq!(format!("{:?}", ProcessorId::new(0)), "ProcessorId(0)");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(ProcessorId::default(), ProcessorId::new(0));
        assert_eq!(OpId::default(), OpId::new(0));
    }
}
