//! The communication list (paper Figure 2).
//!
//! The Lower Bound proof replaces each operation's communication DAG "by a
//! topologically sorted linear list of the nodes of the DAG. This
//! communication list models the DAG so that each message along an arc in
//! the DAG corresponds to a sequence of messages along a path in the list.
//! By counting each arc in the list just once we get a lower bound on the
//! number of messages per processor in the DAG because no processor has
//! more incoming arcs to nodes with its label in the list than in the
//! DAG."

use std::fmt;

use crate::dag::CommDag;
use crate::id::ProcessorId;

/// A topologically sorted linearization of a [`CommDag`].
///
/// # Examples
///
/// ```
/// use distctr_sim::{CommDag, CommList, ProcessorId};
/// let mut dag = CommDag::new();
/// let a = dag.add_node(ProcessorId::new(3));
/// let b = dag.add_node(ProcessorId::new(11));
/// dag.add_arc(a, b);
/// let list = CommList::from_dag(&dag);
/// assert_eq!(list.len_arcs(), 1);
/// assert_eq!(list.labels()[0], ProcessorId::new(3));
/// assert!(list.models(&dag));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CommList {
    labels: Vec<ProcessorId>,
}

impl CommList {
    /// Builds the list by linearizing `dag` in topological (event) order.
    #[must_use]
    pub fn from_dag(dag: &CommDag) -> Self {
        let labels = dag.topological_order().into_iter().map(|n| dag.label(n)).collect();
        CommList { labels }
    }

    /// Builds a list directly from processor labels (head first).
    #[must_use]
    pub fn from_labels(labels: Vec<ProcessorId>) -> Self {
        CommList { labels }
    }

    /// The node labels, head (initiating event) first.
    #[must_use]
    pub fn labels(&self) -> &[ProcessorId] {
        &self.labels
    }

    /// The paper's list length: "the number of arcs in the list", i.e. one
    /// less than the number of nodes (zero for an empty or singleton
    /// list).
    #[must_use]
    pub fn len_arcs(&self) -> u64 {
        self.labels.len().saturating_sub(1) as u64
    }

    /// Whether the list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The processor whose event heads the list (the initiator), if any.
    #[must_use]
    pub fn head(&self) -> Option<ProcessorId> {
        self.labels.first().copied()
    }

    /// Number of incoming list arcs to nodes labelled `p`: every position
    /// except the head has exactly one incoming arc.
    #[must_use]
    pub fn in_arcs_of_label(&self, p: ProcessorId) -> usize {
        self.labels.iter().skip(1).filter(|&&l| l == p).count()
    }

    /// Verifies the modelling property quoted in the module docs: for
    /// every processor, its incoming-arc count in the list does not exceed
    /// its incoming-arc count in the DAG. Holds whenever the DAG has a
    /// single source (one start event).
    #[must_use]
    pub fn models(&self, dag: &CommDag) -> bool {
        let mut distinct: Vec<ProcessorId> = self.labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        distinct.into_iter().all(|p| self.in_arcs_of_label(p) <= dag.in_arcs_of_label(p))
    }

    /// Renders the list in the style of paper Figure 2:
    /// `3 -> 11 -> 7 -> 17 -> 27 -> 3`.
    #[must_use]
    pub fn render_ascii(&self) -> String {
        self.labels.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(" -> ")
    }
}

impl fmt::Display for CommList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CommList[{}]", self.render_ascii())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    /// Paper Figure 1 / Figure 2 example DAG.
    fn figure_one() -> CommDag {
        let mut d = CommDag::new();
        let nodes: Vec<_> = [3, 11, 7, 17, 27, 3].iter().map(|&i| d.add_node(p(i))).collect();
        d.add_arc(nodes[0], nodes[1]);
        d.add_arc(nodes[0], nodes[2]);
        d.add_arc(nodes[2], nodes[3]);
        d.add_arc(nodes[1], nodes[4]);
        d.add_arc(nodes[3], nodes[4]);
        d.add_arc(nodes[4], nodes[5]);
        d
    }

    #[test]
    fn figure_two_linearization() {
        let list = CommList::from_dag(&figure_one());
        assert_eq!(
            list.labels(),
            &[p(3), p(11), p(7), p(17), p(27), p(3)],
            "Figure 2: 3 -> 11 -> 7 -> 17 -> 27 -> 3"
        );
        assert_eq!(list.len_arcs(), 5);
        assert_eq!(list.head(), Some(p(3)));
    }

    #[test]
    fn list_models_single_source_dag() {
        let dag = figure_one();
        let list = CommList::from_dag(&dag);
        assert!(list.models(&dag));
        // Spot-check the inequality the proof uses.
        assert!(list.in_arcs_of_label(p(27)) <= dag.in_arcs_of_label(p(27)));
        assert_eq!(list.in_arcs_of_label(p(27)), 1);
        assert_eq!(dag.in_arcs_of_label(p(27)), 2);
    }

    #[test]
    fn modelling_can_fail_for_forged_lists() {
        let dag = figure_one();
        // A fake list where 27 appears twice as a non-head: more in-arcs
        // than the DAG grants it? The DAG gives 27 two in-arcs, so use a
        // label with only one: 11.
        let fake = CommList::from_labels(vec![p(3), p(11), p(11)]);
        assert!(!fake.models(&dag));
    }

    #[test]
    fn empty_and_singleton_lists() {
        let empty = CommList::from_labels(vec![]);
        assert!(empty.is_empty());
        assert_eq!(empty.len_arcs(), 0);
        assert_eq!(empty.head(), None);
        let single = CommList::from_labels(vec![p(4)]);
        assert_eq!(single.len_arcs(), 0);
        assert_eq!(single.in_arcs_of_label(p(4)), 0, "head has no incoming arc");
    }

    #[test]
    fn render_matches_paper_style() {
        let list = CommList::from_dag(&figure_one());
        assert_eq!(list.render_ascii(), "P3 -> P11 -> P7 -> P17 -> P27 -> P3");
        assert!(list.to_string().starts_with("CommList["));
    }
}
