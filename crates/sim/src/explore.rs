//! Exhaustive schedule exploration (bounded model checking).
//!
//! The delivery policies sample a handful of message orderings; for small
//! operations this module checks **all** of them: a DFS over "which
//! in-flight message is delivered next", forking the protocol state at
//! every branch, and evaluating an invariant at every quiescent leaf.
//! This is how the test suite shows the tree counter's lemmas are not
//! artifacts of a particular schedule but hold on *every* asynchronous
//! delivery order the model admits.
//!
//! This explorer is now the thin, generic adapter: it works for any
//! [`Protocol`] implementor but explores redundant interleavings (no
//! partial-order reduction) and cannot inject crashes at branch points.
//! The engine-level model checker in the `distctr-check` crate is the
//! primary exhaustive tool for the tree counter — sleep-set DPOR,
//! crash-point exploration with a bounded budget, a pluggable invariant
//! set at every quiescent state, and delta-debugged replayable
//! counterexamples.

use std::collections::VecDeque;

use crate::id::{OpId, ProcessorId};
use crate::network::{Outbox, Protocol};
use crate::time::SimTime;

/// One message to inject before exploration starts.
#[derive(Debug, Clone)]
pub struct Injection<M> {
    /// The operation the message belongs to.
    pub op: OpId,
    /// Sender.
    pub from: ProcessorId,
    /// Recipient.
    pub to: ProcessorId,
    /// Payload.
    pub msg: M,
}

/// In-flight message during exploration.
#[derive(Debug, Clone)]
struct Flight<M> {
    op: OpId,
    from: ProcessorId,
    to: ProcessorId,
    msg: M,
}

/// Result of an exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreOutcome {
    /// Complete schedules (quiescent leaves) explored.
    pub schedules: u64,
    /// Whether the schedule budget was exhausted before completing the
    /// search.
    pub truncated: bool,
    /// The first invariant violation found, with the invariant's message.
    pub violation: Option<String>,
}

impl ExploreOutcome {
    /// Whether every explored schedule satisfied the invariant.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.violation.is_none()
    }
}

/// Explores delivery orders of `injections` against clones of `protocol`,
/// checking `invariant` at every quiescent leaf. Stops at the first
/// violation or after `max_schedules` complete schedules.
///
/// The search is exact (no partial-order reduction), so it is meant for
/// small instances: the number of schedules grows factorially with the
/// number of concurrently in-flight messages.
pub fn explore<P, F>(
    protocol: &P,
    injections: &[Injection<P::Msg>],
    max_schedules: u64,
    invariant: &F,
) -> ExploreOutcome
where
    P: Protocol + Clone,
    F: Fn(&P) -> Result<(), String>,
{
    let in_flight: VecDeque<Flight<P::Msg>> = injections
        .iter()
        .map(|i| Flight { op: i.op, from: i.from, to: i.to, msg: i.msg.clone() })
        .collect();
    let mut outcome = ExploreOutcome { schedules: 0, truncated: false, violation: None };
    dfs(protocol.clone(), in_flight, max_schedules, invariant, &mut outcome);
    outcome
}

fn dfs<P, F>(
    protocol: P,
    in_flight: VecDeque<Flight<P::Msg>>,
    max_schedules: u64,
    invariant: &F,
    outcome: &mut ExploreOutcome,
) where
    P: Protocol + Clone,
    F: Fn(&P) -> Result<(), String>,
{
    if outcome.violation.is_some() || outcome.truncated {
        return;
    }
    if in_flight.is_empty() {
        outcome.schedules += 1;
        if let Err(msg) = invariant(&protocol) {
            outcome.violation = Some(msg);
        }
        if outcome.schedules >= max_schedules {
            outcome.truncated = true;
        }
        return;
    }
    for pick in 0..in_flight.len() {
        let mut proto = protocol.clone();
        let mut flights = in_flight.clone();
        let chosen = flights.remove(pick).expect("index in range");
        let mut sends: Vec<(ProcessorId, P::Msg)> = Vec::new();
        let mut outbox = Outbox::for_explorer(chosen.to, chosen.op, SimTime::ZERO, &mut sends);
        proto.on_deliver(&mut outbox, chosen.from, chosen.msg);
        for (to, msg) in sends {
            flights.push_back(Flight { op: chosen.op, from: chosen.to, to, msg });
        }
        dfs(proto, flights, max_schedules, invariant, outcome);
        if outcome.violation.is_some() || outcome.truncated {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    /// A protocol that relays a token along a fixed chain; the final
    /// holder records the hop count.
    #[derive(Clone)]
    struct Chain {
        hops_seen: u32,
    }
    impl Protocol for Chain {
        type Msg = u32; // remaining hops
        fn on_deliver(&mut self, out: &mut Outbox<'_, u32>, _from: ProcessorId, hops: u32) {
            self.hops_seen += 1;
            if hops > 0 {
                let next = (out.me().index() + 1) % 4;
                out.send(p(next), hops - 1);
            }
        }
    }

    #[test]
    fn single_chain_has_one_schedule() {
        let outcome = explore(
            &Chain { hops_seen: 0 },
            &[Injection { op: OpId::new(0), from: p(0), to: p(1), msg: 3 }],
            1000,
            &|c: &Chain| {
                if c.hops_seen == 4 {
                    Ok(())
                } else {
                    Err(format!("expected 4 hops, saw {}", c.hops_seen))
                }
            },
        );
        assert!(outcome.holds(), "{outcome:?}");
        assert_eq!(outcome.schedules, 1, "a chain admits exactly one order");
        assert!(!outcome.truncated);
    }

    #[test]
    fn two_independent_chains_interleave_factorially() {
        // Two 2-hop chains: messages A1 A2 A3 and B1 B2 B3, constrained
        // only by per-chain causality: C(6,3) = 20 interleavings.
        let injections = vec![
            Injection { op: OpId::new(0), from: p(0), to: p(1), msg: 2 },
            Injection { op: OpId::new(1), from: p(2), to: p(3), msg: 2 },
        ];
        let outcome = explore(&Chain { hops_seen: 0 }, &injections, 10_000, &|c: &Chain| {
            if c.hops_seen == 6 {
                Ok(())
            } else {
                Err("wrong hop count".into())
            }
        });
        assert!(outcome.holds());
        assert_eq!(outcome.schedules, 20, "C(6,3) interleavings");
    }

    /// An order-sensitive protocol: processor 1 must hear "a" before "b".
    #[derive(Clone)]
    struct OrderSensitive {
        saw_a: bool,
        broken: bool,
    }
    impl Protocol for OrderSensitive {
        type Msg = char;
        fn on_deliver(&mut self, _out: &mut Outbox<'_, char>, _from: ProcessorId, msg: char) {
            match msg {
                'a' => self.saw_a = true,
                'b' if !self.saw_a => self.broken = true,
                _ => {}
            }
        }
    }

    #[test]
    fn explorer_finds_order_bugs() {
        let injections = vec![
            Injection { op: OpId::new(0), from: p(0), to: p(1), msg: 'a' },
            Injection { op: OpId::new(1), from: p(0), to: p(1), msg: 'b' },
        ];
        let outcome = explore(
            &OrderSensitive { saw_a: false, broken: false },
            &injections,
            100,
            &|s: &OrderSensitive| {
                if s.broken {
                    Err("b arrived before a".into())
                } else {
                    Ok(())
                }
            },
        );
        assert!(!outcome.holds(), "the bad interleaving must be found");
        assert_eq!(outcome.violation.as_deref(), Some("b arrived before a"));
    }

    #[test]
    fn budget_truncates_the_search() {
        let injections: Vec<Injection<u32>> = (0..4)
            .map(|i| Injection { op: OpId::new(i), from: p(0), to: p(i % 4), msg: 0 })
            .collect();
        let outcome = explore(&Chain { hops_seen: 0 }, &injections, 5, &|_| Ok(()));
        assert!(outcome.truncated);
        assert_eq!(outcome.schedules, 5);
    }
}
