//! Message delivery policies.
//!
//! The paper's network is asynchronous: message delays are unbounded but
//! finite and chosen nondeterministically. A [`DeliveryPolicy`] resolves
//! that nondeterminism into a concrete, reproducible schedule. All of the
//! paper's claims are delay-independent (they count messages), which the
//! test suite exercises by running every experiment under every policy.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::time::SimTime;

/// The rank at which a message is delivered: primary key is arrival time,
/// secondary key breaks ties deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct DeliveryRank {
    pub(crate) at: SimTime,
    pub(crate) tiebreak: u64,
}

/// Strategy for assigning an arrival time to each sent message.
///
/// The policy is an enum rather than a trait object so that entire
/// simulations (including their scheduling state) are `Clone` — the
/// lower-bound adversary in `distctr-bound` relies on cheaply forking a
/// run to explore hypothetical operations.
///
/// # Examples
///
/// ```
/// use distctr_sim::DeliveryPolicy;
/// let fifo = DeliveryPolicy::Fifo;
/// let random = DeliveryPolicy::random_delay(0xC0FFEE, 16);
/// let lifo = DeliveryPolicy::Lifo;
/// assert_ne!(format!("{fifo:?}"), format!("{lifo:?}"));
/// # let _ = random;
/// ```
#[derive(Debug, Clone)]
pub enum DeliveryPolicy {
    /// Every message takes exactly one tick; ties are delivered in send
    /// order. This makes every channel FIFO and runs fully synchronous.
    Fifo,
    /// Every message takes a uniformly random delay in `1..=max_delay`
    /// drawn from a seeded RNG. Reorders messages (also within a single
    /// channel), exercising genuine asynchrony while staying reproducible.
    RandomDelay {
        /// Seeded generator supplying delays.
        rng: StdRng,
        /// Largest possible per-message delay, in ticks (`>= 1`).
        max_delay: u64,
    },
    /// Every message takes one tick but simultaneous deliveries happen in
    /// *reverse* send order — an adversarial schedule that maximally
    /// perturbs protocols relying on implicit send ordering.
    Lifo,
    /// Targeted asynchrony: the i-th send (in global send order) takes
    /// the i-th scripted delay; sends beyond the script take
    /// `default_delay`. Used to construct specific interleavings, e.g.
    /// the classic execution showing counting networks are not
    /// linearizable.
    Scripted {
        /// Remaining scripted per-send delays, consumed front to back.
        delays: std::collections::VecDeque<u64>,
        /// Delay for sends once the script is exhausted (`>= 1`).
        default_delay: u64,
    },
    /// TCP-like links: random per-message delays, but each ordered pair
    /// of processors is a FIFO channel — a message never overtakes an
    /// earlier message on the same link (cross-link reordering still
    /// happens freely).
    ChannelFifo {
        /// Seeded generator supplying delays.
        rng: StdRng,
        /// Largest possible per-message delay, in ticks (`>= 1`).
        max_delay: u64,
        /// Last scheduled arrival per (from, to) link.
        last_on_link: LinkTable,
    },
}

/// Flat per-link arrival floors for [`DeliveryPolicy::ChannelFifo`],
/// indexed by sender.
///
/// In a tree network every processor talks to O(k) distinct peers, so
/// the former `HashMap<(u32, u32), SimTime>` is replaced by one short
/// sorted `(to, floor)` run per sender: cache-friendly, no hashing, and
/// memory proportional to links actually used rather than `n²`.
#[derive(Debug, Clone, Default)]
pub struct LinkTable {
    /// `by_sender[from]` holds that sender's links, sorted by `to`.
    by_sender: Vec<Vec<(u32, SimTime)>>,
}

impl LinkTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        LinkTable::default()
    }

    /// The scheduled-arrival floor for the link `from -> to`.
    fn floor(&self, from: u32, to: u32) -> SimTime {
        self.by_sender
            .get(from as usize)
            .and_then(|links| links.binary_search_by_key(&to, |&(t, _)| t).ok().map(|i| links[i].1))
            .unwrap_or(SimTime::ZERO)
    }

    /// Raises the floor of the link `from -> to` to `at`.
    fn set(&mut self, from: u32, to: u32, at: SimTime) {
        if self.by_sender.len() <= from as usize {
            self.by_sender.resize(from as usize + 1, Vec::new());
        }
        let links = &mut self.by_sender[from as usize];
        match links.binary_search_by_key(&to, |&(t, _)| t) {
            Ok(i) => links[i].1 = at,
            Err(i) => links.insert(i, (to, at)),
        }
    }
}

impl DeliveryPolicy {
    /// Convenience constructor for [`DeliveryPolicy::RandomDelay`].
    ///
    /// `max_delay` is clamped up to 1 so the policy always makes progress.
    #[must_use]
    pub fn random_delay(seed: u64, max_delay: u64) -> Self {
        DeliveryPolicy::RandomDelay {
            rng: StdRng::seed_from_u64(seed),
            max_delay: max_delay.max(1),
        }
    }

    /// Convenience constructor for [`DeliveryPolicy::ChannelFifo`].
    ///
    /// `max_delay` is clamped up to 1 so the policy always makes progress.
    #[must_use]
    pub fn channel_fifo(seed: u64, max_delay: u64) -> Self {
        DeliveryPolicy::ChannelFifo {
            rng: StdRng::seed_from_u64(seed),
            max_delay: max_delay.max(1),
            last_on_link: LinkTable::new(),
        }
    }

    /// Convenience constructor for [`DeliveryPolicy::Scripted`].
    ///
    /// Delays are clamped up to 1 so the policy always makes progress.
    #[must_use]
    pub fn scripted<I: IntoIterator<Item = u64>>(delays: I) -> Self {
        DeliveryPolicy::Scripted {
            delays: delays.into_iter().map(|d| d.max(1)).collect(),
            default_delay: 1,
        }
    }

    /// All policy variants used by the exhaustive portions of the test
    /// suite, with a representative seed for the random one.
    #[must_use]
    pub fn test_suite() -> Vec<DeliveryPolicy> {
        vec![
            DeliveryPolicy::Fifo,
            DeliveryPolicy::random_delay(0xDEC0DE, 8),
            DeliveryPolicy::Lifo,
            DeliveryPolicy::channel_fifo(0xBEEF, 8),
        ]
    }

    /// A short stable name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            DeliveryPolicy::Fifo => "fifo",
            DeliveryPolicy::RandomDelay { .. } => "random",
            DeliveryPolicy::Lifo => "lifo",
            DeliveryPolicy::Scripted { .. } => "scripted",
            DeliveryPolicy::ChannelFifo { .. } => "channel-fifo",
        }
    }

    /// Computes the delivery rank for a message sent at `now` with global
    /// send sequence number `seq` on the link `from -> to`.
    pub(crate) fn schedule(&mut self, now: SimTime, seq: u64, from: u32, to: u32) -> DeliveryRank {
        match self {
            DeliveryPolicy::Fifo => DeliveryRank { at: now + 1, tiebreak: seq },
            DeliveryPolicy::RandomDelay { rng, max_delay } => {
                let delay = rng.gen_range(1..=*max_delay);
                DeliveryRank { at: now + delay, tiebreak: seq }
            }
            DeliveryPolicy::Lifo => DeliveryRank { at: now + 1, tiebreak: u64::MAX - seq },
            DeliveryPolicy::Scripted { delays, default_delay } => {
                let delay = delays.pop_front().unwrap_or(*default_delay).max(1);
                DeliveryRank { at: now + delay, tiebreak: seq }
            }
            DeliveryPolicy::ChannelFifo { rng, max_delay, last_on_link } => {
                let delay = rng.gen_range(1..=*max_delay);
                let at = (now + delay).max_with(last_on_link.floor(from, to));
                last_on_link.set(from, to, at);
                DeliveryRank { at, tiebreak: seq }
            }
        }
    }
}

impl Default for DeliveryPolicy {
    /// The default policy is [`DeliveryPolicy::Fifo`], the fully
    /// deterministic synchronous schedule.
    fn default() -> Self {
        DeliveryPolicy::Fifo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_preserves_send_order() {
        let mut p = DeliveryPolicy::Fifo;
        let a = p.schedule(SimTime::ZERO, 0, 0, 1);
        let b = p.schedule(SimTime::ZERO, 1, 0, 1);
        assert_eq!(a.at, b.at);
        assert!(a < b, "earlier send delivered first on ties");
    }

    #[test]
    fn lifo_reverses_send_order() {
        let mut p = DeliveryPolicy::Lifo;
        let a = p.schedule(SimTime::ZERO, 0, 0, 1);
        let b = p.schedule(SimTime::ZERO, 1, 0, 1);
        assert_eq!(a.at, b.at);
        assert!(b < a, "later send delivered first on ties");
    }

    #[test]
    fn random_delay_is_reproducible_and_bounded() {
        let mut p1 = DeliveryPolicy::random_delay(42, 10);
        let mut p2 = DeliveryPolicy::random_delay(42, 10);
        for seq in 0..1000 {
            let r1 = p1.schedule(SimTime::ZERO, seq, 0, 1);
            let r2 = p2.schedule(SimTime::ZERO, seq, 0, 1);
            assert_eq!(r1, r2, "same seed, same schedule");
            let delay = r1.at - SimTime::ZERO;
            assert!((1..=10).contains(&delay), "delay {delay} within bounds");
        }
    }

    #[test]
    fn random_delay_differs_across_seeds() {
        let mut p1 = DeliveryPolicy::random_delay(1, 1000);
        let mut p2 = DeliveryPolicy::random_delay(2, 1000);
        let same = (0..100)
            .filter(|&s| p1.schedule(SimTime::ZERO, s, 0, 1) == p2.schedule(SimTime::ZERO, s, 0, 1))
            .count();
        assert!(same < 100, "different seeds should diverge somewhere");
    }

    #[test]
    fn zero_max_delay_is_clamped() {
        let mut p = DeliveryPolicy::random_delay(7, 0);
        let r = p.schedule(SimTime::ZERO, 0, 0, 1);
        assert_eq!(r.at - SimTime::ZERO, 1);
    }

    #[test]
    fn clone_forks_rng_state() {
        let mut p = DeliveryPolicy::random_delay(9, 50);
        let mut q = p.clone();
        for seq in 0..64 {
            assert_eq!(p.schedule(SimTime::ZERO, seq, 0, 1), q.schedule(SimTime::ZERO, seq, 0, 1));
        }
    }

    #[test]
    fn names_and_default() {
        assert_eq!(DeliveryPolicy::default().name(), "fifo");
        assert_eq!(DeliveryPolicy::test_suite().len(), 4);
        assert_eq!(DeliveryPolicy::scripted([5]).name(), "scripted");
    }

    #[test]
    fn scripted_consumes_then_defaults() {
        let mut p = DeliveryPolicy::scripted([3, 100, 1]);
        let delays: Vec<u64> =
            (0..5).map(|seq| p.schedule(SimTime::ZERO, seq, 0, 1).at - SimTime::ZERO).collect();
        assert_eq!(delays, vec![3, 100, 1, 1, 1], "script then default");
    }

    #[test]
    fn channel_fifo_never_reorders_within_a_link() {
        let mut p = DeliveryPolicy::channel_fifo(3, 50);
        let mut last = SimTime::ZERO;
        for seq in 0..200 {
            let r = p.schedule(SimTime::ZERO, seq, 2, 5);
            assert!(r.at >= last, "link 2->5 stays FIFO");
            last = r.at;
        }
    }

    #[test]
    fn channel_fifo_reorders_across_links() {
        let mut p = DeliveryPolicy::channel_fifo(7, 1000);
        let mut inversions = 0;
        let mut prev = SimTime::ZERO;
        for seq in 0..100 {
            // Alternate links; arrival times need not be monotone.
            let r = p.schedule(SimTime::ZERO, seq, (seq % 4) as u32, 9);
            if r.at < prev {
                inversions += 1;
            }
            prev = r.at;
        }
        assert!(inversions > 0, "cross-link reordering happens");
    }

    #[test]
    fn scripted_clamps_zero_delays() {
        let mut p = DeliveryPolicy::scripted([0]);
        assert_eq!(p.schedule(SimTime::ZERO, 0, 0, 1).at - SimTime::ZERO, 1);
    }
}
