//! Operation-sequence drivers.
//!
//! The lower bound is stated for "a sequence of n counting operations
//! spread over n processors ... each processor initiates exactly one inc
//! operation". [`SequentialDriver`] runs exactly such permutations (or any
//! other initiator sequence) against a [`Counter`] and collects the
//! quantities the experiments report. [`ConcurrentDriver`] runs batched
//! workloads against [`ConcurrentCounter`]s for the extension experiments.

use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::counter::{ConcurrentCounter, Counter, IncResult};
use crate::error::SimError;
use crate::id::ProcessorId;

/// Outcome of driving a full operation sequence.
#[derive(Debug, Clone)]
pub struct SequenceOutcome {
    /// Per-operation results, in execution order.
    pub results: Vec<IncResult>,
    /// Bottleneck load after the sequence.
    pub bottleneck: u64,
    /// Total messages exchanged over the sequence.
    pub total_messages: u64,
}

impl SequenceOutcome {
    /// The values returned to initiators, in execution order.
    #[must_use]
    pub fn values(&self) -> Vec<u64> {
        self.results.iter().map(|r| r.value).collect()
    }

    /// Whether the counter behaved correctly under sequential semantics:
    /// operation `i` observed value `i`.
    #[must_use]
    pub fn values_are_sequential(&self) -> bool {
        self.results.iter().enumerate().all(|(i, r)| r.value == i as u64)
    }

    /// Average messages per operation.
    #[must_use]
    pub fn messages_per_op(&self) -> f64 {
        if self.results.is_empty() {
            0.0
        } else {
            self.total_messages as f64 / self.results.len() as f64
        }
    }
}

/// Drives sequential operation sequences against any [`Counter`].
///
/// # Examples
///
/// ```no_run
/// use distctr_sim::{Counter, SequentialDriver};
/// fn demo<C: Counter>(counter: &mut C) {
///     let outcome = SequentialDriver::run_identity(counter).expect("sequence runs");
///     assert!(outcome.values_are_sequential());
/// }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialDriver;

impl SequentialDriver {
    /// Runs one `inc` per processor in id order (0, 1, ..., n-1).
    ///
    /// # Errors
    ///
    /// Propagates any error from [`Counter::inc`].
    pub fn run_identity<C: Counter + ?Sized>(counter: &mut C) -> Result<SequenceOutcome, SimError> {
        let order: Vec<ProcessorId> = (0..counter.processors()).map(ProcessorId::new).collect();
        Self::run_order(counter, &order)
    }

    /// Runs one `inc` per processor in a seeded random order — the
    /// canonical "each processor increments exactly once" workload.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`Counter::inc`].
    pub fn run_shuffled<C: Counter + ?Sized>(
        counter: &mut C,
        seed: u64,
    ) -> Result<SequenceOutcome, SimError> {
        let mut order: Vec<ProcessorId> = (0..counter.processors()).map(ProcessorId::new).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        Self::run_order(counter, &order)
    }

    /// Runs `inc` operations with the given initiators, in order. The
    /// sequence need not be a permutation (use
    /// [`SequentialDriver::run_permutation`] to enforce the paper's
    /// workload).
    ///
    /// # Errors
    ///
    /// Propagates any error from [`Counter::inc`].
    pub fn run_order<C: Counter + ?Sized>(
        counter: &mut C,
        order: &[ProcessorId],
    ) -> Result<SequenceOutcome, SimError> {
        let before = counter.loads().total_messages();
        let mut results = Vec::with_capacity(order.len());
        for &p in order {
            results.push(counter.inc(p)?);
        }
        Ok(SequenceOutcome {
            results,
            bottleneck: counter.loads().max_load(),
            total_messages: counter.loads().total_messages() - before,
        })
    }

    /// Runs the initiator sequence produced by a
    /// [`Workload`](crate::workloads::Workload) generator.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`Counter::inc`].
    pub fn run_workload<C: Counter + ?Sized>(
        counter: &mut C,
        workload: &crate::workloads::Workload,
    ) -> Result<SequenceOutcome, SimError> {
        let order = workload.generate(counter.processors());
        Self::run_order(counter, &order)
    }

    /// Like [`SequentialDriver::run_order`], but first checks that `order`
    /// is a permutation of all processors.
    ///
    /// # Errors
    ///
    /// [`SimError::NotAPermutation`] if some processor is missing or
    /// repeated; otherwise propagates errors from [`Counter::inc`].
    pub fn run_permutation<C: Counter + ?Sized>(
        counter: &mut C,
        order: &[ProcessorId],
    ) -> Result<SequenceOutcome, SimError> {
        let n = counter.processors();
        let mut seen = vec![false; n];
        if order.len() != n {
            return Err(SimError::NotAPermutation);
        }
        for &p in order {
            if p.index() >= n || seen[p.index()] {
                return Err(SimError::NotAPermutation);
            }
            seen[p.index()] = true;
        }
        Self::run_order(counter, order)
    }
}

/// Drives batched concurrent workloads against a [`ConcurrentCounter`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ConcurrentDriver;

impl ConcurrentDriver {
    /// Partitions a shuffled permutation of all processors into batches of
    /// `batch` simultaneous initiators and runs them. Returns all values
    /// handed out, in initiation order.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`ConcurrentCounter::inc_batch`].
    pub fn run_batches<C: ConcurrentCounter + ?Sized>(
        counter: &mut C,
        batch: usize,
        seed: u64,
    ) -> Result<Vec<u64>, SimError> {
        let mut order: Vec<ProcessorId> = (0..counter.processors()).map(ProcessorId::new).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        let mut values = Vec::with_capacity(order.len());
        for chunk in order.chunks(batch.max(1)) {
            values.extend(counter.inc_batch(chunk)?);
        }
        Ok(values)
    }

    /// Checks quiescent counting correctness: after all batches complete,
    /// exactly the values `0..m` were handed out, each once (in any
    /// order). This is the guarantee counting networks provide.
    #[must_use]
    pub fn values_are_gap_free(values: &[u64]) -> bool {
        let mut sorted: Vec<u64> = values.to_vec();
        sorted.sort_unstable();
        sorted.iter().enumerate().all(|(i, &v)| v == i as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::LoadTracker;
    use crate::time::SimTime;

    /// A direct in-memory counter used to test the drivers themselves.
    struct Local {
        n: usize,
        val: u64,
        loads: LoadTracker,
    }
    impl Local {
        fn new(n: usize) -> Self {
            Local { n, val: 0, loads: LoadTracker::new(n) }
        }
    }
    impl Counter for Local {
        fn name(&self) -> &'static str {
            "local"
        }
        fn processors(&self) -> usize {
            self.n
        }
        fn inc(&mut self, initiator: ProcessorId) -> Result<IncResult, SimError> {
            if initiator.index() >= self.n {
                return Err(SimError::UnknownProcessor {
                    index: initiator.index(),
                    processors: self.n,
                });
            }
            let value = self.val;
            self.val += 1;
            // Pretend one message each way to a fixed coordinator.
            self.loads.record_send(initiator);
            self.loads.record_receive(ProcessorId::new(0));
            self.loads.record_send(ProcessorId::new(0));
            self.loads.record_receive(initiator);
            Ok(IncResult {
                value,
                messages: 2,
                completed_at: SimTime::from_ticks(self.val),
                trace: None,
            })
        }
        fn loads(&self) -> &LoadTracker {
            &self.loads
        }
    }
    impl ConcurrentCounter for Local {
        fn inc_batch(&mut self, initiators: &[ProcessorId]) -> Result<Vec<u64>, SimError> {
            initiators.iter().map(|&p| self.inc(p).map(|r| r.value)).collect()
        }
    }

    #[test]
    fn identity_run_is_sequential() {
        let mut c = Local::new(5);
        let out = SequentialDriver::run_identity(&mut c).expect("runs");
        assert!(out.values_are_sequential());
        assert_eq!(out.values(), vec![0, 1, 2, 3, 4]);
        assert_eq!(out.total_messages, 10);
        assert!((out.messages_per_op() - 2.0).abs() < 1e-12);
        // Coordinator handled 2 messages per op, plus 2 more for the op
        // it initiated itself.
        assert_eq!(out.bottleneck, 12);
    }

    #[test]
    fn shuffled_run_is_reproducible_and_complete() {
        let mut c1 = Local::new(16);
        let mut c2 = Local::new(16);
        let o1 = SequentialDriver::run_shuffled(&mut c1, 99).expect("runs");
        let o2 = SequentialDriver::run_shuffled(&mut c2, 99).expect("runs");
        assert_eq!(o1.values(), o2.values());
        assert!(o1.values_are_sequential());
    }

    #[test]
    fn permutation_validation() {
        let mut c = Local::new(3);
        let bad = [ProcessorId::new(0), ProcessorId::new(0), ProcessorId::new(2)];
        assert_eq!(
            SequentialDriver::run_permutation(&mut c, &bad).unwrap_err(),
            SimError::NotAPermutation
        );
        let short = [ProcessorId::new(0)];
        assert_eq!(
            SequentialDriver::run_permutation(&mut c, &short).unwrap_err(),
            SimError::NotAPermutation
        );
        let good = [ProcessorId::new(2), ProcessorId::new(0), ProcessorId::new(1)];
        assert!(SequentialDriver::run_permutation(&mut c, &good).is_ok());
    }

    #[test]
    fn unknown_initiator_propagates() {
        let mut c = Local::new(2);
        let err = SequentialDriver::run_order(&mut c, &[ProcessorId::new(9)]).unwrap_err();
        assert_eq!(err, SimError::UnknownProcessor { index: 9, processors: 2 });
    }

    #[test]
    fn run_workload_uses_the_generator() {
        use crate::workloads::Workload;
        let mut c = Local::new(6);
        let out = SequentialDriver::run_workload(&mut c, &Workload::Identity).expect("runs");
        assert!(out.values_are_sequential());
        assert_eq!(out.results.len(), 6);
        let mut c = Local::new(6);
        let out = SequentialDriver::run_workload(
            &mut c,
            &Workload::SingleInitiator { initiator: 2, ops: 9 },
        )
        .expect("runs");
        assert_eq!(out.results.len(), 9);
    }

    #[test]
    fn concurrent_batches_cover_all_processors() {
        let mut c = Local::new(10);
        let values = ConcurrentDriver::run_batches(&mut c, 4, 7).expect("runs");
        assert_eq!(values.len(), 10);
        assert!(ConcurrentDriver::values_are_gap_free(&values));
    }

    #[test]
    fn gap_free_detects_duplicates_and_gaps() {
        assert!(ConcurrentDriver::values_are_gap_free(&[2, 0, 1]));
        assert!(!ConcurrentDriver::values_are_gap_free(&[0, 0, 1]));
        assert!(!ConcurrentDriver::values_are_gap_free(&[0, 2, 3]));
        assert!(ConcurrentDriver::values_are_gap_free(&[]));
    }

    #[test]
    fn empty_outcome_messages_per_op_is_zero() {
        let out = SequenceOutcome { results: vec![], bottleneck: 0, total_messages: 0 };
        assert_eq!(out.messages_per_op(), 0.0);
        assert!(out.values_are_sequential());
    }
}
