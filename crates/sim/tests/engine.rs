//! Integration tests of the simulator engine through its public API:
//! a multi-phase protocol exercised across every delivery policy, with
//! trace, load and timing accounting checked end to end.

use distctr_sim::{
    explore, DeliveryPolicy, Injection, Network, OpId, Outbox, ProcessorId, Protocol, SimTime,
    TraceMode, Workload,
};

/// A scatter-gather protocol: the coordinator fans a request out to every
/// worker and collects one ack per worker; when all acks are in, it
/// notifies the initiator.
#[derive(Clone)]
struct ScatterGather {
    n: usize,
    acks: usize,
    done: Vec<ProcessorId>,
}

#[derive(Clone, Debug)]
enum SgMsg {
    Start { coordinator: usize },
    Work,
    Ack,
    Done,
}

impl Protocol for ScatterGather {
    type Msg = SgMsg;
    fn on_deliver(&mut self, out: &mut Outbox<'_, SgMsg>, from: ProcessorId, msg: SgMsg) {
        match msg {
            SgMsg::Start { coordinator } => {
                debug_assert_eq!(out.me().index(), coordinator);
                for w in 0..self.n {
                    if w != out.me().index() {
                        out.send(ProcessorId::new(w), SgMsg::Work);
                    }
                }
            }
            SgMsg::Work => out.send(from, SgMsg::Ack),
            SgMsg::Ack => {
                self.acks += 1;
                if self.acks == self.n - 1 {
                    out.send(out.me(), SgMsg::Done);
                }
            }
            SgMsg::Done => self.done.push(out.me()),
        }
    }
}

fn scatter_gather(n: usize) -> ScatterGather {
    ScatterGather { n, acks: 0, done: Vec::new() }
}

#[test]
fn scatter_gather_under_every_policy() {
    for policy in DeliveryPolicy::test_suite() {
        let n = 9usize;
        let mut net = Network::with_policy(n, TraceMode::Full, policy.clone()).expect("net");
        let op = OpId::new(0);
        let coordinator = ProcessorId::new(4);
        net.inject(op, coordinator, coordinator, SgMsg::Start { coordinator: 4 });
        let mut proto = scatter_gather(n);
        let stats = net.run_to_quiescence(&mut proto).expect("quiesces");
        // start + (n-1) work + (n-1) acks + done = 2n messages.
        assert_eq!(stats.delivered, 2 * n as u64, "policy {}", policy.name());
        assert_eq!(proto.done, vec![coordinator]);
        let trace = net.finish_op(op).expect("trace");
        assert_eq!(trace.contacts.len(), n, "everyone participated");
        assert_eq!(trace.messages, 2 * n as u64);
        let dag = trace.dag.expect("full trace");
        assert_eq!(dag.arc_count(), 2 * n);
        assert_eq!(dag.sources().len(), 1);
        // Coordinator load: 1 start recv + (n-1) sends + (n-1) ack recvs
        // + done send + done recv + start send (self-injection counts the
        // send at the coordinator too).
        assert_eq!(
            net.loads().load_of(coordinator),
            2 + 2 * (n as u64 - 1) + 2,
            "policy {}",
            policy.name()
        );
        // Every worker: 1 recv + 1 send.
        for w in 0..n {
            if w != 4 {
                assert_eq!(net.loads().load_of(ProcessorId::new(w)), 2);
            }
        }
    }
}

#[test]
fn timing_is_policy_dependent_but_counts_are_not() {
    let mut end_times = Vec::new();
    for policy in [DeliveryPolicy::Fifo, DeliveryPolicy::random_delay(5, 20)] {
        let mut net = Network::with_policy(5, TraceMode::Contacts, policy).expect("net");
        let op = OpId::new(0);
        net.inject(op, ProcessorId::new(0), ProcessorId::new(0), SgMsg::Start { coordinator: 0 });
        let mut proto = scatter_gather(5);
        let stats = net.run_to_quiescence(&mut proto).expect("quiesces");
        assert_eq!(stats.delivered, 10);
        end_times.push(stats.end_time);
    }
    assert_eq!(end_times[0], SimTime::from_ticks(4), "fifo: 4 synchronous rounds");
    assert!(end_times[1] > end_times[0], "random delays stretch wall time");
}

#[test]
fn exploration_agrees_with_the_queue_based_engine() {
    // Every delivery order of the scatter-gather must complete with the
    // same ack count — cross-validating the explorer against the engine.
    let proto = scatter_gather(4);
    let injection = Injection {
        op: OpId::new(0),
        from: ProcessorId::new(0),
        to: ProcessorId::new(0),
        msg: SgMsg::Start { coordinator: 0 },
    };
    let outcome = explore(&proto, &[injection], 50_000, &|p: &ScatterGather| {
        if p.done.len() == 1 && p.acks == 3 {
            Ok(())
        } else {
            Err(format!("incomplete: acks {} done {:?}", p.acks, p.done))
        }
    });
    assert!(outcome.holds(), "{outcome:?}");
    assert!(outcome.schedules > 1, "fan-out admits many orders: {}", outcome.schedules);
}

#[test]
fn workload_driven_contact_sets_compose() {
    // Drive one scatter-gather per initiator from a workload generator
    // and check per-op contact attribution stays separate.
    let n = 6usize;
    let mut net = Network::new(n, TraceMode::Contacts).expect("net");
    let mut proto = scatter_gather(n);
    for (i, p) in Workload::Identity.generate(n).into_iter().enumerate() {
        proto.acks = 0;
        let op = OpId::new(i);
        net.inject(op, p, p, SgMsg::Start { coordinator: p.index() });
        net.run_to_quiescence(&mut proto).expect("quiesces");
        let trace = net.finish_op(op).expect("trace");
        assert_eq!(trace.initiator, p);
        assert_eq!(trace.contacts.len(), n);
        assert!(trace.completed_at >= trace.started_at);
    }
    assert_eq!(proto.done.len(), n);
    // 2n messages per op, n ops.
    assert_eq!(net.loads().total_messages(), (2 * n * n) as u64);
}
