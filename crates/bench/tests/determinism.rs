//! Report determinism: every experiment function is a pure function of
//! its seed — two invocations in the same process produce byte-identical
//! output. This is what makes EXPERIMENTS.md reproducible.

use distctr_bench::{exp_ablation, exp_bottleneck, exp_bound, exp_hotspot, exp_lemmas};

#[test]
fn experiment_tables_are_deterministic() {
    assert_eq!(
        exp_bottleneck::e2_bottleneck_vs_n(&[8, 81]),
        exp_bottleneck::e2_bottleneck_vs_n(&[8, 81]),
        "E2"
    );
    assert_eq!(exp_bottleneck::e2_csv(&[8, 81]), exp_bottleneck::e2_csv(&[8, 81]), "E2 CSV");
    assert_eq!(
        exp_lemmas::e3_retirements_per_level(&[2, 3]),
        exp_lemmas::e3_retirements_per_level(&[2, 3]),
        "E3"
    );
    assert_eq!(
        exp_bound::e1_adversarial_lower_bound(8, None),
        exp_bound::e1_adversarial_lower_bound(8, None),
        "E1"
    );
    assert_eq!(exp_hotspot::e10_quorums(), exp_hotspot::e10_quorums(), "E10");
    assert_eq!(exp_ablation::e12_skewed_workloads(2), exp_ablation::e12_skewed_workloads(2), "E12");
}
