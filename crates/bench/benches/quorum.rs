//! Criterion bench for E10: quorum construction, intersection
//! verification and load computation.

use criterion::{criterion_group, criterion_main, Criterion};
use distctr_quorum::{Grid, Majority, QuorumSystem, TreeQuorum, Wall};

fn bench_quorums(c: &mut Criterion) {
    let mut group = c.benchmark_group("quorum");
    group.bench_function("grid16/verify+load", |b| {
        b.iter(|| {
            let g = Grid::new(16).expect("grid");
            assert!(g.verify_intersection(256));
            g.uniform_load()
        });
    });
    group.bench_function("majority15/verify+load", |b| {
        b.iter(|| {
            let m = Majority::new(15).expect("majority");
            assert!(m.verify_intersection(500));
            m.uniform_load()
        });
    });
    group.bench_function("tree-depth3/build+verify", |b| {
        b.iter(|| {
            let t = TreeQuorum::new(3).expect("tree");
            assert!(t.verify_intersection(255));
            t.quorum_count()
        });
    });
    group.bench_function("wall-tri6/verify+load", |b| {
        b.iter(|| {
            let w = Wall::triangular(6).expect("wall");
            assert!(w.verify_intersection(500));
            w.uniform_load()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_quorums);
criterion_main!(benches);
