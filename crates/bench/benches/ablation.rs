//! Criterion bench for E11: cost of the canonical workload under
//! different retirement thresholds (retirement traffic vs hot-worker
//! dwell time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distctr_core::{RetirementPolicy, TreeCounter};
use distctr_sim::{Counter, SequentialDriver, TraceMode};

fn bench_thresholds(c: &mut Criterion) {
    let mut group = c.benchmark_group("retirement-threshold");
    group.sample_size(10);
    let n = 1024usize; // k = 4
    let policies = [
        ("age-k", RetirementPolicy::AfterAge(4)),
        ("paper-4k", RetirementPolicy::PaperDefault),
        ("age-32k", RetirementPolicy::AfterAge(128)),
        ("never", RetirementPolicy::Never),
    ];
    for (name, policy) in policies {
        group.bench_function(BenchmarkId::new(name, n), |b| {
            b.iter(|| {
                let mut counter = TreeCounter::builder(n)
                    .expect("builder")
                    .trace(TraceMode::Off)
                    .retirement(policy)
                    .build()
                    .expect("tree");
                let out = SequentialDriver::run_shuffled(&mut counter, 3).expect("runs");
                assert!(out.values_are_sequential());
                counter.loads().max_load()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_thresholds);
criterion_main!(benches);
