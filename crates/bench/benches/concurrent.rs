//! Criterion bench for E9: batched concurrent workloads on the
//! concurrency-capable structures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distctr_bench::Algo;
use distctr_sim::{ConcurrentDriver, DeliveryPolicy, TraceMode};

fn bench_batches(c: &mut Criterion) {
    let mut group = c.benchmark_group("concurrent-batches");
    group.sample_size(10);
    let n = 64usize;
    let width = 8usize;
    let algos = [
        Algo::Central,
        Algo::Combining,
        Algo::CountingNetwork { width },
        Algo::Diffracting { depth: 3 },
    ];
    for algo in algos {
        for batch in [1usize, 64] {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), format!("batch{batch}")),
                &batch,
                |b, &batch| {
                    b.iter(|| {
                        let mut counter = algo
                            .build_concurrent(n, TraceMode::Off, DeliveryPolicy::Fifo)
                            .expect("builds");
                        let values = ConcurrentDriver::run_batches(counter.as_mut(), batch, 3)
                            .expect("runs");
                        assert!(ConcurrentDriver::values_are_gap_free(&values));
                        counter.loads().max_load()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_batches);
criterion_main!(benches);
