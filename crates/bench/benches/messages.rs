//! Criterion bench for E8: single-operation latency (messages are
//! counted by the report; here we measure the simulator's per-op cost,
//! which is proportional to the op's message count).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distctr_bench::Algo;
use distctr_sim::{DeliveryPolicy, ProcessorId, TraceMode};

fn bench_single_inc(c: &mut Criterion) {
    let mut group = c.benchmark_group("single-inc");
    let n = 1024usize;
    for algo in Algo::comparison_set(n) {
        group.bench_function(BenchmarkId::new(algo.name(), n), |b| {
            let mut counter = algo.build(n, TraceMode::Off, DeliveryPolicy::Fifo).expect("builds");
            let mut next = 0usize;
            b.iter(|| {
                let p = ProcessorId::new(next % counter.processors());
                next += 1;
                counter.inc(p).expect("inc runs").messages
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_inc);
criterion_main!(benches);
