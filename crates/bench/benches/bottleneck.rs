//! Criterion bench for E2: wall-clock cost of running the full canonical
//! workload on each algorithm (the report binary measures message loads;
//! this measures simulator throughput).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distctr_bench::{run_canonical, Algo};
use distctr_sim::DeliveryPolicy;

fn bench_canonical_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("canonical-workload");
    group.sample_size(10);
    for n in [81usize, 1024] {
        for algo in Algo::comparison_set(n) {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), n),
                &(algo, n),
                |b, &(algo, n)| {
                    b.iter(|| {
                        let summary = run_canonical(algo, n, DeliveryPolicy::Fifo, 7)
                            .expect("canonical run succeeds");
                        assert!(summary.correct);
                        summary.bottleneck
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_canonical_workload);
criterion_main!(benches);
