//! Criterion bench for E16: wall-clock cost of the canonical workload on
//! the real-threads backend vs the simulator (same protocol, different
//! executor).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distctr_core::TreeCounter;
use distctr_net::ThreadedTreeCounter;
use distctr_sim::{Counter, ProcessorId, SequentialDriver, TraceMode};

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend");
    group.sample_size(10);
    let n = 81usize;
    group.bench_function(BenchmarkId::new("simulator", n), |b| {
        b.iter(|| {
            let mut counter = TreeCounter::builder(n)
                .expect("builder")
                .trace(TraceMode::Off)
                .build()
                .expect("tree");
            let out = SequentialDriver::run_identity(&mut counter).expect("runs");
            assert!(out.values_are_sequential());
            counter.loads().max_load()
        });
    });
    group.bench_function(BenchmarkId::new("threads", n), |b| {
        b.iter(|| {
            let mut counter = ThreadedTreeCounter::new(n).expect("threads");
            for i in 0..n {
                counter.inc(ProcessorId::new(i)).expect("inc");
            }
            let bottleneck = counter.bottleneck();
            counter.shutdown().expect("shutdown");
            bottleneck
        });
    });
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
