//! Criterion bench for E1: cost of the greedy longest-list adversary
//! (probe-heavy: O(n·s) cloned operations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distctr_baselines::CentralCounter;
use distctr_bound::Adversary;
use distctr_core::TreeCounter;

fn bench_adversary(c: &mut Criterion) {
    let mut group = c.benchmark_group("adversary");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("exhaustive/tree", 8), |b| {
        b.iter(|| {
            let mut counter = TreeCounter::new(8).expect("tree builds");
            Adversary::exhaustive().run(&mut counter).expect("adversary runs").bottleneck
        });
    });
    group.bench_function(BenchmarkId::new("exhaustive/central", 8), |b| {
        b.iter(|| {
            let mut counter = CentralCounter::new(8).expect("central builds");
            Adversary::exhaustive().run(&mut counter).expect("adversary runs").bottleneck
        });
    });
    group.bench_function(BenchmarkId::new("sampled8/tree", 81), |b| {
        b.iter(|| {
            let mut counter = TreeCounter::new(81).expect("tree builds");
            Adversary::sampled(8, 1).run(&mut counter).expect("adversary runs").bottleneck
        });
    });
    group.finish();
}

criterion_group!(benches, bench_adversary);
criterion_main!(benches);
