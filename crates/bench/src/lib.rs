//! # distctr-bench
//!
//! The experiment harness: every figure and theorem/lemma of the paper
//! regenerated as a text report (the paper has no numeric tables; its
//! "evaluation" is theorems, which the experiments make falsifiable).
//!
//! * `report` binary — `cargo run -p distctr-bench --bin report [--all | e1 e2 ...]`
//!   regenerates the experiment tables recorded in `EXPERIMENTS.md`.
//! * Criterion benches (`benches/`) — wall-clock cost of operations,
//!   sequences, adversaries and quorum machinery.
//!
//! The experiment index (E1-E10, F1-F4) is documented in `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algos;
pub mod exp_ablation;
pub mod exp_arrow;
pub mod exp_async;
pub mod exp_backend;
pub mod exp_batching;
pub mod exp_bottleneck;
pub mod exp_bound;
pub mod exp_chaos;
pub mod exp_concurrent;
pub mod exp_hotspot;
pub mod exp_keyspace;
pub mod exp_lemmas;
pub mod exp_linearizable;
pub mod exp_scale;
pub mod exp_serve;
pub mod exp_shm;
pub mod figures;

pub use algos::{run_canonical, run_shuffled_dyn, Algo, RunSummary, REPORT_SEED};
