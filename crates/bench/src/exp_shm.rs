//! Experiment E26 — the shared-memory bake-off: retirement tree vs.
//! flat combining vs. counting network vs. one `fetch_add` cell, on
//! real threads.
//!
//! The paper's bound lives in the message-passing model; `crates/shm`
//! ports the contenders to hardware atomics behind one surface, and E26
//! sweeps thread counts over all four, recording throughput, p99
//! latency, per-thread fairness, and each backend's own
//! hottest-location traffic. Every cell also carries a correctness
//! verdict from `distctr-check`'s fetch&increment history checker:
//!
//! * **gap-free** (`0..ops`, each value exactly once) is *gated* for
//!   every backend — a counting structure that loses or duplicates
//!   values is broken, full stop;
//! * **linearizable** is gated for the tree, combining, and central
//!   backends, which promise it; the counting network is quiescently
//!   consistent by design, so its real-time violations are *reported*
//!   (seeing a nonzero count there is the theory working, not a bug).
//!
//! Numbers are machine-relative (the sweep records the host's core
//! count; past the core count the cells measure oversubscription), but
//! the verdicts are absolute, which is what the `report e26 --smoke` CI
//! gate runs.

use distctr_analysis::{fmt_f64, Table};
use distctr_shm::{run_cell, BackendKind, BakeoffRow};

/// Thread counts swept per backend. Smoke stops at 8 (seconds, the CI
/// gate — still ≥ 4 counts per backend); quick adds 16; the full sweep
/// runs to 64.
#[must_use]
pub fn e26_threads(quick: bool, smoke: bool) -> Vec<usize> {
    if smoke {
        vec![1, 2, 4, 8]
    } else if quick {
        vec![1, 2, 4, 8, 16]
    } else {
        vec![1, 2, 4, 8, 16, 32, 64]
    }
}

/// Operations each thread performs in one cell.
#[must_use]
pub fn e26_ops_per_thread(quick: bool, smoke: bool) -> u64 {
    if smoke {
        100
    } else if quick {
        500
    } else {
        1000
    }
}

/// Runs the full grid: every backend at every thread count.
#[must_use]
pub fn e26_measure(threads: &[usize], ops_per_thread: u64) -> Vec<BakeoffRow> {
    BackendKind::ALL
        .iter()
        .flat_map(|&kind| threads.iter().map(move |&t| run_cell(kind, t, ops_per_thread)))
        .collect()
}

/// The gate: returns one message per violated promise (empty = pass).
/// Gap-freedom is required everywhere; linearizability only where the
/// backend promises it.
#[must_use]
pub fn e26_gate_violations(rows: &[BakeoffRow]) -> Vec<String> {
    let mut out = Vec::new();
    for r in rows {
        if !r.gap_free {
            out.push(format!(
                "{} at {} threads lost exactness: the value multiset is not 0..{}",
                r.backend, r.threads, r.ops
            ));
        }
        if r.backend != BackendKind::Network.name() && !r.linearizable {
            out.push(format!(
                "{} at {} threads violated linearizability {} time(s) despite promising it",
                r.backend, r.threads, r.lin_violations
            ));
        }
    }
    out
}

/// Renders the E26 table.
#[must_use]
pub fn e26_render(rows: &[BakeoffRow]) -> String {
    let cores = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    let mut out = String::new();
    out.push_str(&format!(
        "E26. Shared-memory bake-off: {} ops/thread per cell on a {}-core host\n\
         (thread counts past the core count measure oversubscription)\n\n",
        rows.first().map_or(0, |r| r.ops_per_thread),
        cores
    ));
    let mut table = Table::new(vec![
        "backend",
        "threads",
        "incs/s",
        "p99 (us)",
        "fairness",
        "gap-free",
        "linearizable",
        "lin viols",
        "bottleneck",
    ]);
    for r in rows {
        let lin = if r.backend == BackendKind::Network.name() {
            format!("{} (QC only)", if r.linearizable { "yes" } else { "no" })
        } else {
            (if r.linearizable { "yes" } else { "NO" }).to_string()
        };
        table.row(vec![
            r.backend.to_string(),
            r.threads.to_string(),
            fmt_f64(r.incs_per_sec),
            format!("{:.1}", r.p99_us),
            format!("{:.2}", r.fairness),
            (if r.gap_free { "yes" } else { "NO" }).to_string(),
            lin,
            r.lin_violations.to_string(),
            r.bottleneck.to_string(),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nreading: the central cell wins outright until real parallelism shows up —\n\
         the paper's lower bound is about *distributed* traffic, and a single cache\n\
         line under coherence is this machine's root node. The counting network's\n\
         lin viols column is quiescent consistency measured in the wild; the tree's\n\
         bottleneck column is the same max per-processor message load every other\n\
         experiment reports, now on a shared arena.\n",
    );
    out
}

/// Serializes the grid as the checked-in `BENCH_shm.json` artifact
/// (hand-rolled JSON; the harness has no serde dependency).
#[must_use]
pub fn e26_json(rows: &[BakeoffRow]) -> String {
    let cores = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"shm-bakeoff\",\n");
    out.push_str(&format!("  \"host_cores\": {cores},\n"));
    out.push_str(
        "  \"verdicts\": \"gap_free gated for all backends; linearizable gated for all \
         but shm-network (quiescently consistent)\",\n",
    );
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"backend\": \"{}\", \"threads\": {}, \"ops\": {}, \
             \"incs_per_sec\": {:.1}, \"p99_us\": {:.1}, \"fairness\": {:.3}, \
             \"gap_free\": {}, \"linearizable\": {}, \"lin_violations\": {}, \
             \"bottleneck\": {} }}{}\n",
            r.backend,
            r.threads,
            r.ops,
            r.incs_per_sec,
            r.p99_us,
            r.fairness,
            r.gap_free,
            r.linearizable,
            r.lin_violations,
            r.bottleneck,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_sweeps_have_at_least_four_counts_everywhere() {
        assert_eq!(e26_threads(false, true), vec![1, 2, 4, 8]);
        assert_eq!(e26_threads(true, false), vec![1, 2, 4, 8, 16]);
        assert_eq!(e26_threads(false, false), vec![1, 2, 4, 8, 16, 32, 64]);
        assert!(e26_ops_per_thread(false, true) < e26_ops_per_thread(false, false));
    }

    #[test]
    fn e26_measures_renders_and_serializes_a_tiny_grid() {
        let rows = e26_measure(&[1, 2], 30);
        assert_eq!(rows.len(), 8, "4 backends x 2 thread counts");
        assert!(e26_gate_violations(&rows).is_empty(), "{:?}", e26_gate_violations(&rows));
        let report = e26_render(&rows);
        assert!(report.contains("shm-tree"), "{report}");
        assert!(report.contains("QC only"), "{report}");
        let json = e26_json(&rows);
        assert!(json.contains("\"experiment\": \"shm-bakeoff\""), "{json}");
        assert!(json.contains("\"backend\": \"shm-network\""), "{json}");
    }

    #[test]
    fn the_gate_flags_lost_exactness_and_broken_promises() {
        let mut rows = e26_measure(&[1], 10);
        rows[0].gap_free = false;
        rows[0].linearizable = false;
        let violations = e26_gate_violations(&rows);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations[0].contains("lost exactness"));
        // The network is exempt from the linearizability promise.
        let net = rows
            .iter_mut()
            .find(|r| r.backend == BackendKind::Network.name())
            .expect("network row");
        net.linearizable = false;
        net.gap_free = true;
        assert_eq!(e26_gate_violations(&rows).len(), 2, "no new violation for the network");
    }
}
