//! Regenerates every experiment of the reproduction as a text report.
//!
//! Usage:
//!
//! ```text
//! report               # all experiments at default sizes
//! report --quick       # smaller sizes (CI-friendly)
//! report e1 e3 f4      # selected experiments only
//! report --csv out/    # additionally export machine-readable CSV
//! report e22 --smoke   # batching regression gate, tiny sizes
//! report e23 --smoke   # chaos robustness gate, tiny sizes
//! report e24 --smoke   # keyspace placement gate, tiny sizes
//! report e25 --smoke   # arena scale gate, n <= 10k (seconds)
//! report e26 --smoke   # shared-memory bake-off gate, <= 8 threads
//! report e27 --smoke   # async serving gate, <= 256 connections
//! ```
//!
//! E22 additionally rewrites `BENCH_batching.json` in the working
//! directory and exits nonzero if the combining path is slower than the
//! sequential path at the highest measured concurrency. E23 rewrites
//! `BENCH_chaos.json` and exits nonzero if any chaos scenario loses
//! exactness or availability. E24 rewrites `BENCH_keyspace.json` and
//! exits nonzero if any placement policy loses per-key exactness or the
//! adaptive policy's goodput falls below the best static placement.
//! E25 rewrites `BENCH_scale.json` and exits nonzero if any size's
//! bottleneck exceeds twice the `20k` envelope (or, in the full sweep,
//! if no size reaches 1M processors). E26 rewrites `BENCH_shm.json`
//! and exits nonzero if any shared-memory backend loses the gap-free
//! `0..ops` value multiset, or a backend that promises linearizability
//! shows a real-time order violation. E27 rewrites `BENCH_async.json`
//! and exits nonzero if the readiness server loses an op, goes inexact,
//! misses its p99 SLO at any connection level, falls behind the
//! threaded server's goodput at the smallest level, or (outside smoke)
//! fails to sustain strictly more connections than thread-per-connection
//! serving. The full E27 sweep additionally spawns the server as a
//! child process (`report --e27-serve <style> <n>`, an internal mode)
//! so 10k client and 10k server sockets each get their own fd table.

use distctr_bench::{
    exp_ablation, exp_arrow, exp_async, exp_backend, exp_batching, exp_bottleneck, exp_bound,
    exp_chaos, exp_concurrent, exp_hotspot, exp_keyspace, exp_lemmas, exp_linearizable, exp_scale,
    exp_serve, exp_shm, figures,
};

struct Config {
    quick: bool,
    smoke: bool,
    csv_dir: Option<std::path::PathBuf>,
    selected: Vec<String>,
}

fn wants(cfg: &Config, id: &str) -> bool {
    cfg.selected.is_empty() || cfg.selected.iter().any(|s| s.eq_ignore_ascii_case(id))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--e27-serve") {
        // Internal child mode for the E27 full sweep: serve until the
        // parent closes our stdin, then drain and exit.
        let style = args.get(1).expect("--e27-serve <style> <n>").clone();
        let n: usize = args.get(2).and_then(|a| a.parse().ok()).expect("--e27-serve <style> <n>");
        exp_async::e27_child_serve(&style, n);
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let smoke = args.iter().any(|a| a == "--smoke");
    let csv_dir = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let mut skip_next = false;
    let selected: Vec<String> = args
        .into_iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if a == "--csv" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .collect();
    let cfg = Config { quick, smoke, csv_dir, selected };

    let sizes: &[usize] = if cfg.quick { &[8, 81] } else { &[8, 81, 1024] };
    let lemma_orders: &[u32] = if cfg.quick { &[2, 3] } else { &[2, 3, 4] };
    let adv_n = if cfg.quick { 8 } else { 81 };
    let conc_n = if cfg.quick { 32 } else { 64 };

    println!("distctr experiment report");
    println!("reproducing: Wattenhofer & Widmayer, 'An Inherent Bottleneck in Distributed Counting' (1997)");
    println!("mode: {}\n", if cfg.quick { "quick" } else { "full" });

    if wants(&cfg, "f1") || wants(&cfg, "f2") {
        println!("{}", figures::figure_1_and_2(81, 40));
    }
    if wants(&cfg, "f3") {
        println!("{}", figures::figure_3(8, 3));
    }
    if wants(&cfg, "f4") {
        println!("{}", figures::figure_4(3));
    }
    if wants(&cfg, "e1") {
        let sample = if adv_n > 16 { Some(8) } else { None };
        println!("{}", exp_bound::e1_adversarial_lower_bound(adv_n, sample));
    }
    if wants(&cfg, "e2") {
        println!("{}", exp_bottleneck::e2_bottleneck_vs_n(sizes));
        println!("{}", exp_bottleneck::e2_load_histograms(if cfg.quick { 81 } else { 1024 }));
    }
    if wants(&cfg, "e3") {
        println!("{}", exp_lemmas::e3_retirements_per_level(lemma_orders));
    }
    if wants(&cfg, "e4") {
        println!("{}", exp_lemmas::e4_per_op_lemmas(lemma_orders));
    }
    if wants(&cfg, "e5") {
        println!("{}", exp_lemmas::e5_work_lemmas(lemma_orders));
    }
    if wants(&cfg, "e6") {
        println!("{}", exp_hotspot::e6_hot_spot(if cfg.quick { 8 } else { 81 }));
    }
    if wants(&cfg, "e7") {
        println!("{}", exp_bound::e7_weight_audit(if cfg.quick { 8 } else { 81 }));
    }
    if wants(&cfg, "e8") {
        println!("{}", exp_bottleneck::e8_message_complexity(if cfg.quick { 81 } else { 1024 }));
    }
    if wants(&cfg, "e9") {
        println!("{}", exp_concurrent::e9_concurrency(conc_n, &[1, 8, conc_n]));
    }
    if wants(&cfg, "e10") {
        println!("{}", exp_hotspot::e10_quorums());
    }
    let ablation_k = if cfg.quick { 3 } else { 4 };
    if wants(&cfg, "e11") {
        println!("{}", exp_ablation::e11_threshold_ablation(ablation_k));
    }
    if wants(&cfg, "e12") {
        println!("{}", exp_ablation::e12_skewed_workloads(ablation_k));
    }
    if wants(&cfg, "e13") {
        println!("{}", exp_ablation::e13_generalized_structures(if cfg.quick { 3 } else { 4 }));
    }
    if wants(&cfg, "e14") {
        println!("{}", exp_linearizable::e14_linearizability());
    }
    if wants(&cfg, "e15") {
        println!("{}", exp_ablation::e15_multi_round(if cfg.quick { 3 } else { 4 }, 4));
    }
    if wants(&cfg, "e16") {
        println!("{}", exp_backend::e16_backend_agreement(if cfg.quick { 8 } else { 81 }));
    }
    if wants(&cfg, "e17") {
        println!("{}", exp_arrow::e17_arrow_topologies(if cfg.quick { 32 } else { 128 }));
    }
    if wants(&cfg, "e19") {
        let (n, ops) = if cfg.quick { (8, 400) } else { (81, 2000) };
        println!("{}", exp_serve::e19_service_loadgen(n, 16, ops));
    }
    if wants(&cfg, "e20") {
        let (n, rounds) = if cfg.quick { (8, 3) } else { (81, 7) };
        println!("{}", exp_backend::e20_engine_throughput(n, rounds));
    }
    if wants(&cfg, "e22") || wants(&cfg, "exp_batching") {
        // Smoke keeps the full concurrency grid (the regression gate is
        // defined at 32 connections) but shrinks the per-connection work
        // and trial count.
        let (ops_per_conn, trials) = if cfg.smoke {
            (10, 1)
        } else if cfg.quick {
            (25, 2)
        } else {
            (200, 5)
        };
        let (n, k) = (81, 3);
        let rows = exp_batching::e22_measure(n, &[1, 8, 32], ops_per_conn, trials);
        println!("{}", exp_batching::e22_render(n, k, &rows));
        let json_path = std::path::Path::new("BENCH_batching.json");
        std::fs::write(json_path, exp_batching::e22_json(n, ops_per_conn, &rows))
            .expect("write BENCH_batching.json");
        eprintln!("wrote {}", json_path.display());
        let gate = rows.iter().max_by_key(|r| r.conns).expect("at least one row");
        assert!(
            gate.speedup() >= 1.0,
            "regression: combining throughput ({:.1} incs/s) fell below the sequential \
             path ({:.1} incs/s) at {} connections",
            gate.combined_ops_per_sec,
            gate.sequential_ops_per_sec,
            gate.conns
        );
    }

    if wants(&cfg, "e23") || wants(&cfg, "exp_chaos") {
        // The chaos gate is a robustness check, not a perf one: every
        // scenario must stay exactly-once and fully available. Smoke
        // shrinks the per-connection work, not the toxic grid.
        let (conns, ops_per_conn) = if cfg.smoke {
            (2, 8)
        } else if cfg.quick {
            (4, 25)
        } else {
            (8, 100)
        };
        let n = 8;
        let rows = exp_chaos::e23_measure(n, conns, ops_per_conn, &exp_chaos::e23_scenarios());
        println!("{}", exp_chaos::e23_render(n, &rows));
        let json_path = std::path::Path::new("BENCH_chaos.json");
        std::fs::write(json_path, exp_chaos::e23_json(n, conns, ops_per_conn, &rows))
            .expect("write BENCH_chaos.json");
        eprintln!("wrote {}", json_path.display());
        for r in &rows {
            assert!(
                r.exact && (r.availability - 1.0).abs() < f64::EPSILON,
                "robustness regression: scenario '{}' lost exactness or availability \
                 ({} of {} ops failed, exact: {})",
                r.scenario,
                r.failed,
                r.ops,
                r.exact
            );
        }
    }

    if wants(&cfg, "e24") || wants(&cfg, "exp_keyspace") {
        // The keyspace gate is the adaptive-placement claim: under a
        // Zipf-skewed keyed load with a real per-message price, the
        // adaptive policy must not lose to either static extreme, and
        // every policy must keep every key exactly sequential. Smoke
        // shrinks the load, keeps the cost model, and allows a small
        // tolerance (short runs are noisy); the full run is strict.
        let (conns, ops_per_conn) = if cfg.smoke {
            (16, 25)
        } else if cfg.quick {
            (16, 40)
        } else {
            (32, 60)
        };
        let (n, keys, s) = (81, 12, 1.6);
        let per_message = exp_keyspace::e24_per_message();
        let rows = exp_keyspace::e24_measure(
            n,
            keys,
            s,
            conns,
            ops_per_conn,
            per_message,
            &exp_keyspace::e24_scenarios(),
        );
        println!("{}", exp_keyspace::e24_render(n, keys, s, per_message, &rows));
        let json_path = std::path::Path::new("BENCH_keyspace.json");
        std::fs::write(
            json_path,
            exp_keyspace::e24_json(n, keys, s, conns, ops_per_conn, per_message, &rows),
        )
        .expect("write BENCH_keyspace.json");
        eprintln!("wrote {}", json_path.display());
        for r in &rows {
            assert!(
                r.exact,
                "correctness regression: policy '{}' lost per-key exactness \
                 ({} of {} ops failed)",
                r.policy, r.failed, r.ops
            );
        }
        let adaptive = rows.iter().find(|r| r.policy == "adaptive").expect("adaptive row");
        let best_static =
            rows.iter().filter(|r| r.policy != "adaptive").map(|r| r.goodput).fold(0.0, f64::max);
        assert!(
            adaptive.promotions >= 1,
            "the adaptive policy never promoted a hot key: {adaptive:?}"
        );
        let tolerance = if cfg.smoke { 0.95 } else { 1.0 };
        assert!(
            adaptive.goodput >= best_static * tolerance,
            "regression: adaptive goodput ({:.1} incs/s) fell below the best static \
             placement ({:.1} incs/s, tolerance {tolerance})",
            adaptive.goodput,
            best_static
        );
    }

    if wants(&cfg, "e25") || wants(&cfg, "exp_scale") {
        // The scale gate is the paper's curve on the arena core: the
        // measured bottleneck must track the O(k) envelope at every
        // size. Smoke stops at n = 1024 (the seconds-scale regression
        // gate); the full sweep runs past a million processors and is
        // what the checked-in BENCH_scale.json records.
        let sizes = exp_scale::e25_sizes(cfg.quick, cfg.smoke);
        let rows = exp_scale::e25_measure(&sizes);
        println!("{}", exp_scale::e25_render(&rows));
        let json_path = std::path::Path::new("BENCH_scale.json");
        std::fs::write(json_path, exp_scale::e25_json(&rows)).expect("write BENCH_scale.json");
        eprintln!("wrote {}", json_path.display());
        for r in &rows {
            assert!(
                r.max_load <= 2 * r.predicted,
                "scale regression: n={} bottleneck {} exceeds twice the O(k) envelope {}",
                r.processors,
                r.max_load,
                r.predicted
            );
        }
        if !cfg.quick && !cfg.smoke {
            assert!(
                rows.iter().any(|r| r.processors >= 1_000_000),
                "the full sweep must include a size past 1M processors"
            );
        }
    }

    if wants(&cfg, "e26") || wants(&cfg, "exp_shm") {
        // The shared-memory bake-off: throughput is machine-relative,
        // but every cell's correctness verdict is absolute and gated.
        let threads = exp_shm::e26_threads(cfg.quick, cfg.smoke);
        let ops = exp_shm::e26_ops_per_thread(cfg.quick, cfg.smoke);
        let rows = exp_shm::e26_measure(&threads, ops);
        println!("{}", exp_shm::e26_render(&rows));
        let json_path = std::path::Path::new("BENCH_shm.json");
        std::fs::write(json_path, exp_shm::e26_json(&rows)).expect("write BENCH_shm.json");
        eprintln!("wrote {}", json_path.display());
        let violations = exp_shm::e26_gate_violations(&rows);
        assert!(
            violations.is_empty(),
            "shared-memory correctness regression:\n{}",
            violations.join("\n")
        );
    }

    if wants(&cfg, "e27") || wants(&cfg, "exp_async") {
        // The C10k gate: the readiness server must hold its SLO (no
        // loss, exact values, p99 under the bound) at every measured
        // fan-in, match the threaded server's goodput where both are
        // comfortable, and — beyond smoke sizes — sustain strictly more
        // connections than thread-per-connection serving does.
        let n = 8;
        let grid = exp_async::e27_grid(cfg.quick, cfg.smoke);
        let rows = exp_async::e27_measure(n, &grid);
        println!("{}", exp_async::e27_render(n, &rows));
        let json_path = std::path::Path::new("BENCH_async.json");
        std::fs::write(json_path, exp_async::e27_json(n, &rows)).expect("write BENCH_async.json");
        eprintln!("wrote {}", json_path.display());
        for r in rows.iter().filter(|r| r.style == "async") {
            assert!(
                r.sustainable(),
                "async serving regression: the readiness server missed its SLO at {} \
                 connections (failed {}, exact {}, p99 {} us)",
                r.conns,
                r.failed,
                r.exact,
                r.p99_us
            );
        }
        let base = grid.first().copied().expect("non-empty grid");
        let threaded_base = rows
            .iter()
            .find(|r| r.style == "threaded" && r.conns == base)
            .expect("threaded base row");
        let async_base =
            rows.iter().find(|r| r.style == "async" && r.conns == base).expect("async base row");
        assert!(
            async_base.goodput >= threaded_base.goodput * 0.9,
            "async serving regression: readiness goodput ({:.1} ops/s) fell below the \
             threaded path ({:.1} ops/s) at {} connections",
            async_base.goodput,
            threaded_base.goodput,
            base
        );
        if !cfg.smoke {
            let threaded_max = exp_async::e27_max_sustainable(&rows, "threaded");
            let async_max = exp_async::e27_max_sustainable(&rows, "async");
            assert!(
                async_max > threaded_max,
                "async serving regression: readiness serving sustained {async_max} \
                 connections, not strictly more than the threaded path's {threaded_max}"
            );
        }
    }

    if let Some(dir) = &cfg.csv_dir {
        std::fs::create_dir_all(dir).expect("create CSV output directory");
        let path = dir.join("e2_bottleneck.csv");
        std::fs::write(&path, exp_bottleneck::e2_csv(sizes)).expect("write CSV");
        eprintln!("wrote {}", path.display());
    }
}
