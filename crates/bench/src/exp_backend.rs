//! Experiment E16 — backend agreement: the simulator and the
//! real-threads backend run the same protocol; their observable behaviour
//! must coincide.

use distctr_analysis::Table;
use distctr_core::TreeCounter;
use distctr_net::ThreadedTreeCounter;
use distctr_sim::{Counter, ProcessorId, TraceMode};

/// E16 — identical workload on both backends; report values, bottleneck,
/// retirement counts and the shim-bounded load divergence.
#[must_use]
pub fn e16_backend_agreement(n: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "E16. Backend agreement: simulator vs {n} real OS threads (identity order)\n\n"
    ));
    let mut sim =
        TreeCounter::builder(n).expect("builder").trace(TraceMode::Off).build().expect("sim tree");
    let mut threads = ThreadedTreeCounter::new(n).expect("threaded tree");
    let mut value_mismatches = 0usize;
    for p in 0..sim.processors() {
        let a = sim.inc(ProcessorId::new(p)).expect("sim inc").value;
        let b = threads.inc(ProcessorId::new(p)).expect("threaded inc");
        if a != b {
            value_mismatches += 1;
        }
    }
    let sim_loads = sim.loads().to_vec();
    let thread_loads = threads.loads();
    let max_load_diff =
        sim_loads.iter().zip(&thread_loads).map(|(&a, &b)| a.abs_diff(b)).max().unwrap_or(0);
    let sim_retirements: u64 = sim.audit().retirements_by_level().iter().sum();

    let mut table = Table::new(vec!["quantity", "simulator", "threads", "agreement"]);
    table.row(vec![
        "values (mismatches)".into(),
        "0..n".into(),
        "0..n".into(),
        format!("{value_mismatches} mismatches"),
    ]);
    table.row(vec![
        "bottleneck".into(),
        sim.loads().max_load().to_string(),
        threads.bottleneck().to_string(),
        format!("|diff| = {}", sim.loads().max_load().abs_diff(threads.bottleneck())),
    ]);
    table.row(vec![
        "retirements".into(),
        sim_retirements.to_string(),
        threads.retirements().to_string(),
        if sim_retirements == threads.retirements() {
            "exact".into()
        } else {
            "DIFFERS".to_string()
        },
    ]);
    table.row(vec![
        "per-processor load".into(),
        "-".into(),
        "-".into(),
        format!("max |diff| = {max_load_diff} (shim slack)"),
    ]);
    out.push_str(&table.render());
    out.push('\n');
    threads.shutdown().expect("shutdown");
    assert_eq!(value_mismatches, 0, "backends must agree on every value");
    out
}

/// E20 — threaded-backend throughput: wall-clock cost of the canonical
/// workload (one inc per processor, identity order) on real OS threads.
///
/// Each round builds a fresh counter (one-shot pools are dimensioned for
/// exactly one op per processor), times the `n` incs, and shuts the
/// threads down outside the timed window. Reported alongside the engine
/// refactor (EXPERIMENTS.md E20) as the before/after regression check.
#[must_use]
pub fn e20_engine_throughput(n: usize, rounds: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "E20. Threaded-backend throughput: {n} incs (identity order) per round, {rounds} rounds\n\n"
    ));
    let mut table = Table::new(vec!["round", "elapsed (ms)", "throughput (ops/s)"]);
    let mut rates: Vec<f64> = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let mut threads = ThreadedTreeCounter::new(n).expect("threaded tree");
        let start = std::time::Instant::now();
        for p in 0..threads.processors() {
            let v = threads.inc(ProcessorId::new(p)).expect("threaded inc");
            assert_eq!(v, p as u64, "values stay sequential");
        }
        let elapsed = start.elapsed();
        threads.shutdown().expect("shutdown");
        let rate = n as f64 / elapsed.as_secs_f64();
        rates.push(rate);
        table.row(vec![
            round.to_string(),
            format!("{:.2}", elapsed.as_secs_f64() * 1e3),
            format!("{rate:.0}"),
        ]);
    }
    rates.sort_by(|a, b| a.total_cmp(b));
    let median = rates[rates.len() / 2];
    let best = rates.last().copied().unwrap_or(0.0);
    table.row(vec!["median".into(), "-".into(), format!("{median:.0}")]);
    table.row(vec!["best".into(), "-".into(), format!("{best:.0}")]);
    out.push_str(&table.render());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e16_backends_agree() {
        let report = e16_backend_agreement(81);
        assert!(report.contains("0 mismatches"), "{report}");
        assert!(report.contains("exact"), "{report}");
        assert!(!report.contains("DIFFERS"), "{report}");
    }

    #[test]
    fn e20_reports_a_throughput_per_round() {
        let report = e20_engine_throughput(8, 2);
        assert!(report.contains("throughput"), "{report}");
        assert!(report.contains("median"), "{report}");
    }
}
