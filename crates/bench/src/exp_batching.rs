//! Experiment E22 — batched increments and the flat-combining hot path.
//!
//! The paper's protocol pays one root traversal per inc; batching pays
//! one traversal per *batch* (`BatchInc(m)` reserves the contiguous
//! range `[v, v + m)` in a single climb), and the server's
//! flat-combining front-end turns concurrent unit incs into exactly
//! such batches without any client cooperation. This experiment drives
//! the same closed-loop TCP workload against the sequential ticketed
//! serving path and the combining path, over a concurrency grid, and
//! reports achieved incs/sec side by side — the amortization story
//! `kmath::amortized_msgs_per_inc` prices analytically, measured
//! end-to-end through real sockets.

use distctr_analysis::{fmt_f64, Table};
use distctr_core::kmath;
use distctr_net::ThreadedTreeCounter;
use distctr_server::{run_load, CounterServer, LoadConfig};

/// One concurrency level's measurement: the same workload through both
/// serving paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchingRow {
    /// Concurrent client connections.
    pub conns: usize,
    /// Total operations driven per path.
    pub ops: usize,
    /// Closed-loop throughput of the sequential ticketed path, incs/sec.
    pub sequential_ops_per_sec: f64,
    /// Closed-loop throughput of the flat-combining path, incs/sec.
    pub combined_ops_per_sec: f64,
    /// Batched traversals the combining path actually drove;
    /// `ops / combined_traversals` is the realized mean batch size.
    pub combined_traversals: u64,
}

impl BatchingRow {
    /// Combined over sequential throughput.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.sequential_ops_per_sec <= 0.0 {
            return 0.0;
        }
        self.combined_ops_per_sec / self.sequential_ops_per_sec
    }

    /// Realized mean batch size of the combining path.
    #[must_use]
    pub fn mean_batch(&self) -> f64 {
        if self.combined_traversals == 0 {
            return 0.0;
        }
        self.ops as f64 / self.combined_traversals as f64
    }
}

/// Measures both serving paths at every concurrency in `conns_grid`
/// (`ops_per_conn` closed-loop operations per connection), each against
/// a fresh threaded tree of `n` processors on loopback TCP. Each cell
/// is the median of `trials` runs — loopback throughput on a busy box
/// is noisy and a single run can swing either path by tens of percent.
///
/// # Panics
///
/// Panics if `trials` is zero, a server cannot bind loopback, a load
/// run fails, or either path hands out a non-sequential value set
/// (exactness is part of the claim being benchmarked).
#[must_use]
pub fn e22_measure(
    n: usize,
    conns_grid: &[usize],
    ops_per_conn: usize,
    trials: usize,
) -> Vec<BatchingRow> {
    assert!(trials > 0, "need at least one trial per cell");
    conns_grid
        .iter()
        .map(|&conns| {
            let ops = conns * ops_per_conn;
            let mut seq: Vec<(f64, u64)> =
                (0..trials).map(|_| closed_loop_throughput(false, n, conns, ops)).collect();
            let mut comb: Vec<(f64, u64)> =
                (0..trials).map(|_| closed_loop_throughput(true, n, conns, ops)).collect();
            let (sequential_ops_per_sec, _) = median_by_rate(&mut seq);
            let (combined_ops_per_sec, combined_traversals) = median_by_rate(&mut comb);
            BatchingRow {
                conns,
                ops,
                sequential_ops_per_sec,
                combined_ops_per_sec,
                combined_traversals,
            }
        })
        .collect()
}

/// The median trial, ordered by throughput (ties broken arbitrarily).
fn median_by_rate(trials: &mut [(f64, u64)]) -> (f64, u64) {
    trials.sort_by(|a, b| a.0.total_cmp(&b.0));
    trials[trials.len() / 2]
}

fn closed_loop_throughput(combining: bool, n: usize, conns: usize, ops: usize) -> (f64, u64) {
    let backend = ThreadedTreeCounter::new(n).expect("threaded tree");
    let mut server = if combining {
        CounterServer::serve_combining(backend).expect("serve (combining)")
    } else {
        CounterServer::serve(backend).expect("serve (sequential)")
    };
    let report = run_load(server.local_addr(), &LoadConfig::closed(conns, ops)).expect("load run");
    assert!(
        report.values_are_sequential_from(0),
        "serving path (combining: {combining}) must stay exact under load"
    );
    let traversals = server.stats().combined_traversals;
    server.shutdown().expect("shutdown");
    (report.throughput(), traversals)
}

/// Renders the E22 before/after table plus the analytic amortization
/// the measurement realizes.
#[must_use]
pub fn e22_render(n: usize, k: u32, rows: &[BatchingRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "E22. Batching and combining: closed-loop TCP incs/sec against {n} processors,\n\
         sequential ticketed serving vs flat combining\n\n"
    ));
    let mut table = Table::new(vec![
        "conns",
        "ops",
        "sequential (incs/s)",
        "combined (incs/s)",
        "speedup",
        "traversals",
        "mean batch",
    ]);
    for r in rows {
        table.row(vec![
            r.conns.to_string(),
            r.ops.to_string(),
            fmt_f64(r.sequential_ops_per_sec),
            fmt_f64(r.combined_ops_per_sec),
            format!("{:.2}x", r.speedup()),
            r.combined_traversals.to_string(),
            format!("{:.1}", r.mean_batch()),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\namortization (k = {k}): a unit inc costs {:.1} messages up the tree; a combined\n\
         batch of m shares that one climb, so per-inc load falls as (k+1)/m —\n\
         m = 8 gives {:.2} msgs/inc, m = 32 gives {:.2}. The counter stays exact:\n\
         every batch owns a contiguous range and the ranges partition [0, total).\n",
        kmath::amortized_msgs_per_inc(k, 1),
        kmath::amortized_msgs_per_inc(k, 8),
        kmath::amortized_msgs_per_inc(k, 32),
    ));
    out
}

/// Serializes the measurement as the checked-in `BENCH_batching.json`
/// artifact (hand-rolled JSON; the harness has no serde dependency).
#[must_use]
pub fn e22_json(n: usize, ops_per_conn: usize, rows: &[BatchingRow]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"batching\",\n");
    out.push_str("  \"backend\": \"threaded\",\n");
    out.push_str("  \"mode\": \"closed-loop TCP\",\n");
    out.push_str(&format!("  \"processors\": {n},\n"));
    out.push_str(&format!("  \"ops_per_conn\": {ops_per_conn},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"conns\": {}, \"ops\": {}, \"sequential_incs_per_sec\": {:.1}, \
             \"combined_incs_per_sec\": {:.1}, \"speedup\": {:.2}, \
             \"combined_traversals\": {}, \"mean_batch\": {:.1} }}{}\n",
            r.conns,
            r.ops,
            r.sequential_ops_per_sec,
            r.combined_ops_per_sec,
            r.speedup(),
            r.combined_traversals,
            r.mean_batch(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e22_measures_renders_and_serializes() {
        let rows = e22_measure(8, &[1, 4], 8, 1);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.sequential_ops_per_sec > 0.0));
        assert!(rows.iter().all(|r| r.combined_ops_per_sec > 0.0));
        let report = e22_render(8, 2, &rows);
        assert!(report.contains("speedup"), "{report}");
        assert!(report.contains("flat combining"), "{report}");
        let json = e22_json(8, 8, &rows);
        assert!(json.contains("\"conns\": 4"), "{json}");
        assert!(json.contains("\"combined_incs_per_sec\""), "{json}");
    }

    #[test]
    fn speedup_handles_degenerate_rates() {
        let r = BatchingRow {
            conns: 1,
            ops: 1,
            sequential_ops_per_sec: 0.0,
            combined_ops_per_sec: 10.0,
            combined_traversals: 0,
        };
        assert!((r.speedup() - 0.0).abs() < f64::EPSILON);
        assert!((r.mean_batch() - 0.0).abs() < f64::EPSILON);
    }
}
