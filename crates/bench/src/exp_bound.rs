//! Experiments E1 (adversarial lower bound) and E7 (weight-function
//! audit) — the Lower Bound Theorem run against real implementations.

use distctr_analysis::{fmt_f64, Table};
use distctr_baselines::{CentralCounter, CountingNetworkCounter};
use distctr_bound::{audit_weights, theory, Adversary};
use distctr_core::TreeCounter;
use distctr_sim::{Counter, DeliveryPolicy, ProcessorId, SimError, TraceMode};

/// E1 — the greedy longest-list adversary vs every cloneable
/// implementation: the measured bottleneck must dominate both the
/// theorem's `k` and the pigeonhole bound implied by the measured
/// traffic.
#[must_use]
pub fn e1_adversarial_lower_bound(n: usize, sample: Option<usize>) -> String {
    let mut out = String::new();
    let k = theory::lower_bound_k(n as u64);
    out.push_str(&format!(
        "E1. Greedy longest-list adversary (n = {n}, k = {k}, λ-threshold = {})\n\n",
        fmt_f64(theory::weight_threshold(n as f64))
    ));
    let mut table = Table::new(vec![
        "algorithm",
        "bottleneck",
        ">= k?",
        "pigeonhole",
        "avg list len",
        "consistent",
    ]);

    let adversary = match sample {
        Some(s) => Adversary::sampled(s, 23),
        None => Adversary::exhaustive(),
    };
    let mut run =
        |name: &str, outcome: Result<distctr_bound::AdversaryOutcome, SimError>| match outcome {
            Ok(o) => {
                table.row(vec![
                    name.to_string(),
                    o.bottleneck.1.to_string(),
                    if o.bottleneck.1 >= u64::from(o.lower_bound_k) { "yes" } else { "NO" }
                        .to_string(),
                    o.pigeonhole.to_string(),
                    fmt_f64(o.avg_list_len),
                    if o.consistent_with_theorem() { "yes" } else { "NO" }.to_string(),
                ]);
            }
            Err(e) => {
                table.row(vec![
                    name.to_string(),
                    format!("error: {e}"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        };

    {
        let mut c = TreeCounter::new(n).expect("tree builds");
        run("retirement-tree", adversary.run(&mut c));
    }
    {
        let mut c = distctr_baselines::StaticTreeCounter::new(n).expect("static tree builds");
        run("static-tree", adversary.run(&mut c));
    }
    {
        let mut c = CentralCounter::new(n).expect("central builds");
        run("central", adversary.run(&mut c));
    }
    {
        let mut c = distctr_baselines::CombiningTreeCounter::new(n).expect("combining builds");
        run("combining-tree", adversary.run(&mut c));
    }
    {
        let width = ((n as f64).sqrt() as usize).next_power_of_two().clamp(2, 64);
        let mut c = CountingNetworkCounter::new(n, width).expect("counting net builds");
        run(&format!("counting-net[w={width}]"), adversary.run(&mut c));
    }
    {
        let depth = ((n as f64).sqrt() as usize).next_power_of_two().trailing_zeros();
        let mut c =
            distctr_baselines::DiffractingTreeCounter::new(n, depth).expect("diffracting builds");
        run(&format!("diffracting[d={depth}]"), adversary.run(&mut c));
    }
    {
        let mut c = distctr_baselines::ArrowCounter::new(n).expect("arrow builds");
        run("arrow-token", adversary.run(&mut c));
    }
    out.push_str(&table.render());
    out.push('\n');
    out
}

/// E7 — weight-function audit on the retirement tree and the centralized
/// counter: the hot-spot premise at every step, the weight trajectory,
/// and the AM-GM quantities from the proof.
#[must_use]
pub fn e7_weight_audit(n: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!("E7. Weight-function audit (identity order, n = {n})\n\n"));
    let order: Vec<ProcessorId> = (0..n).map(ProcessorId::new).collect();
    let mut table = Table::new(vec![
        "algorithm",
        "hot-spot steps",
        "final weight",
        "Σ 2^-l_i",
        "AM-GM bound",
        "q load",
        "bottleneck",
        ">= k?",
    ]);
    let k = theory::lower_bound_k(n as u64);

    {
        let mut c = TreeCounter::builder(n)
            .expect("builder")
            .trace(TraceMode::Full)
            .build()
            .expect("tree builds");
        let full_order: Vec<ProcessorId> = (0..c.processors()).map(ProcessorId::new).collect();
        let a = audit_weights(&mut c, &full_order).expect("audit runs");
        table.row(vec![
            "retirement-tree".into(),
            format!("{}/{}", a.hot_spot_hits, a.steps),
            fmt_f64(*a.weights.last().unwrap_or(&0.0)),
            fmt_f64(a.inverse_exp_sum),
            fmt_f64(a.amgm_bound()),
            a.q_load.to_string(),
            a.bottleneck.to_string(),
            if a.bottleneck >= u64::from(k) { "yes" } else { "NO" }.into(),
        ]);
        assert!(a.hot_spot_premise_holds(), "hot-spot premise on the tree");
    }
    {
        let mut c = CentralCounter::with_policy(n, TraceMode::Full, DeliveryPolicy::Fifo)
            .expect("central builds");
        let a = audit_weights(&mut c, &order).expect("audit runs");
        table.row(vec![
            "central".into(),
            format!("{}/{}", a.hot_spot_hits, a.steps),
            fmt_f64(*a.weights.last().unwrap_or(&0.0)),
            fmt_f64(a.inverse_exp_sum),
            fmt_f64(a.amgm_bound()),
            a.q_load.to_string(),
            a.bottleneck.to_string(),
            if a.bottleneck >= u64::from(k) { "yes" } else { "NO" }.into(),
        ]);
        assert!(a.hot_spot_premise_holds(), "hot-spot premise on central");
    }
    out.push_str(&table.render());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_all_consistent_at_n8() {
        let report = e1_adversarial_lower_bound(8, None);
        assert!(!report.contains("NO"), "theorem holds everywhere:\n{report}");
        assert!(!report.contains("error"), "no errors:\n{report}");
        assert!(report.contains("retirement-tree"));
    }

    #[test]
    fn e7_premise_holds_at_n8() {
        let report = e7_weight_audit(8);
        assert!(report.contains("7/7"), "all hot-spot steps hit:\n{report}");
        assert!(!report.contains("NO"));
    }
}
