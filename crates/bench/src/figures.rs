//! Regenerating the paper's figures as text artifacts.
//!
//! * Figure 1 — the communication DAG of one inc operation;
//! * Figure 2 — the same process as a topologically sorted list;
//! * Figure 3 — the adversary's view: per-processor hypothetical list
//!   lengths before an operation;
//! * Figure 4 — the communication tree structure and its id scheme.

use distctr_bound::Adversary;
use distctr_core::TreeCounter;
use distctr_sim::{CommList, Counter, ProcessorId, TraceMode};

/// F1 + F2 — trace one inc operation on the retirement tree and render
/// its DAG and communication list.
#[must_use]
pub fn figure_1_and_2(n: usize, initiator: usize) -> String {
    let mut out = String::new();
    let mut counter = TreeCounter::builder(n)
        .expect("builder")
        .trace(TraceMode::Full)
        .build()
        .expect("tree builds");
    // Warm the tree up so the traced op is a generic one.
    for p in 0..counter.processors().min(4) {
        if p != initiator {
            counter.inc(ProcessorId::new(p)).expect("warmup inc");
        }
    }
    let result = counter.inc(ProcessorId::new(initiator)).expect("inc runs");
    let trace = result.trace.expect("full trace");
    let dag = trace.dag.expect("dag recorded");
    out.push_str(&format!(
        "Figure 1 — communication DAG of {} initiated by P{initiator} (value {}):\n",
        trace.op, result.value
    ));
    out.push_str(&dag.render_ascii());
    let list = CommList::from_dag(&dag);
    out.push_str(&format!(
        "\nFigure 2 — as a topologically sorted communication list ({} arcs):\n  {}\n",
        list.len_arcs(),
        list.render_ascii()
    ));
    out.push_str(&format!(
        "\n  modelling check (list in-arcs <= DAG in-arcs per label): {}\n",
        if list.models(&dag) { "holds" } else { "VIOLATED" }
    ));
    out
}

/// F3 — the adversary's situation before an operation: candidate
/// processors and their hypothetical communication-list lengths.
#[must_use]
pub fn figure_3(n: usize, after_ops: usize) -> String {
    let mut out = String::new();
    let mut counter = TreeCounter::new(n).expect("tree builds");
    // Execute a short adversarial prefix.
    let adversary = Adversary::exhaustive();
    let full = {
        let mut probe = counter.clone();
        adversary.run(&mut probe).expect("adversary runs")
    };
    let prefix = &full.order[..after_ops.min(full.order.len())];
    for &p in prefix {
        counter.inc(p).expect("prefix inc");
    }
    out.push_str(&format!(
        "Figure 3 — list lengths of pending initiators after {} adversarial ops (n = {}):\n",
        prefix.len(),
        counter.processors()
    ));
    let mut pending: Vec<ProcessorId> =
        (0..counter.processors()).map(ProcessorId::new).filter(|p| !prefix.contains(p)).collect();
    pending.truncate(12);
    for p in pending {
        let mut probe = counter.clone();
        let r = probe.inc(p).expect("probe inc");
        out.push_str(&format!("  {p}: list length {}\n", r.list_len()));
    }
    out.push_str("  (the adversary commits the longest list)\n");
    out
}

/// F4 — the communication tree structure with its identifier scheme.
#[must_use]
pub fn figure_4(k: u32) -> String {
    let counter = TreeCounter::with_order(k).expect("tree builds");
    format!("Figure 4 — communication tree structure:\n{}", counter.topology().render_ascii())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_render_without_violations() {
        let f12 = figure_1_and_2(8, 5);
        assert!(f12.contains("Figure 1"));
        assert!(f12.contains("Figure 2"));
        assert!(f12.contains("holds"));
        assert!(!f12.contains("VIOLATED"));

        let f3 = figure_3(8, 3);
        assert!(f3.contains("list length"));

        let f4 = figure_4(3);
        assert!(f4.contains("level 0"));
        assert!(f4.contains("81"));
    }
}
