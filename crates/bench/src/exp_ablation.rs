//! Experiments E11-E13: design-choice ablations and the paper's
//! generalizations.
//!
//! * **E11** — retirement-threshold sweep: the paper retires a node at
//!   age `4k`. Much lower thresholds churn workers (more handoff
//!   traffic, pools at risk of exhaustion); much higher thresholds leave
//!   hot workers in place longer. The sweep shows the bottleneck as a
//!   function of the threshold, with the paper's choice marked.
//! * **E12** — skewed workloads: "one can easily show that the amount of
//!   achievable distribution is limited if many operations are initiated
//!   by a single processor." The sweep concentrates all n operations on
//!   fewer and fewer initiators and watches the bottleneck climb.
//! * **E13** — generalized sequentially-dependent structures: the
//!   flip-bit and the priority queue ride the same tree and inherit the
//!   O(k) bottleneck, as the paper's Hot Spot remark promises.

use distctr_analysis::Table;
use distctr_core::{
    kmath, DistributedFlipBit, DistributedPriorityQueue, PoolPolicy, RetirementPolicy, TreeCounter,
};
use distctr_sim::{Counter, ProcessorId, SequentialDriver, TraceMode};

use crate::algos::REPORT_SEED;

/// E11 — bottleneck vs retirement threshold, at fixed k.
#[must_use]
pub fn e11_threshold_ablation(k: u32) -> String {
    let n = kmath::leaves_of_order(k) as usize;
    let mut out = String::new();
    out.push_str(&format!(
        "E11. Retirement-threshold ablation (k = {k}, n = {n}; paper threshold = 4k = {})\n\n",
        4 * k
    ));
    let mut table = Table::new(vec![
        "threshold",
        "bottleneck",
        "total msgs",
        "stints",
        "pool exhaustions",
        "retirement lemma",
    ]);
    let mut thresholds: Vec<u64> =
        vec![u64::from(k), 2 * u64::from(k), 4 * u64::from(k), 8 * u64::from(k), 32 * u64::from(k)];
    thresholds.dedup();
    for &t in &thresholds {
        let mut counter = TreeCounter::builder(n)
            .expect("builder")
            .trace(TraceMode::Off)
            .retirement(RetirementPolicy::AfterAge(t))
            .build()
            .expect("tree");
        let outcome = SequentialDriver::run_shuffled(&mut counter, REPORT_SEED).expect("runs");
        assert!(outcome.values_are_sequential(), "threshold {t} keeps the counter correct");
        let audit = counter.audit();
        let exhausted: u64 = audit.pool_exhausted_by_level().iter().sum();
        table.row(vec![
            format!("{t}{}", if t == 4 * u64::from(k) { " (paper)" } else { "" }),
            counter.loads().max_load().to_string(),
            outcome.total_messages.to_string(),
            audit.stints_completed().to_string(),
            exhausted.to_string(),
            if audit.retirement_lemma_holds() { "holds".into() } else { "VIOLATED".to_string() },
        ]);
    }
    // The static tree as the threshold -> infinity endpoint.
    let mut static_tree = TreeCounter::builder(n)
        .expect("builder")
        .trace(TraceMode::Off)
        .retirement(RetirementPolicy::Never)
        .build()
        .expect("static");
    let outcome = SequentialDriver::run_shuffled(&mut static_tree, REPORT_SEED).expect("runs");
    table.row(vec![
        "never".into(),
        static_tree.loads().max_load().to_string(),
        outcome.total_messages.to_string(),
        "0".into(),
        "0".into(),
        "holds".into(),
    ]);
    out.push_str(&table.render());
    out.push('\n');
    out
}

/// E12 — skew sweep: n operations over increasingly concentrated
/// initiator distributions (uniform permutation → Zipf → a single
/// initiator). With one initiator, its own send/receive traffic alone is
/// 2n — no algorithm can distribute that.
#[must_use]
pub fn e12_skewed_workloads(k: u32) -> String {
    use distctr_sim::Workload;
    let n = kmath::leaves_of_order(k) as usize;
    let mut out = String::new();
    out.push_str(&format!("E12. Skewed workloads (k = {k}, {n} ops total)\n\n"));
    let mut table = Table::new(vec![
        "workload",
        "distinct initiators",
        "busiest initiator ops",
        "bottleneck",
        "lemmas hold",
    ]);
    let workloads = [
        Workload::Canonical { seed: REPORT_SEED },
        Workload::Zipf { ops: n, s: 1.0, seed: REPORT_SEED },
        Workload::Zipf { ops: n, s: 2.0, seed: REPORT_SEED },
        Workload::SingleInitiator { initiator: 0, ops: n },
    ];
    for (idx, workload) in workloads.iter().enumerate() {
        let order = workload.generate(n);
        let mut per_initiator = vec![0u64; n];
        for p in &order {
            per_initiator[p.index()] += 1;
        }
        let distinct = per_initiator.iter().filter(|&&c| c > 0).count();
        let busiest = per_initiator.iter().copied().max().unwrap_or(0);
        let mut counter =
            TreeCounter::builder(n).expect("builder").trace(TraceMode::Off).build().expect("tree");
        let outcome = SequentialDriver::run_order(&mut counter, &order).expect("runs");
        assert!(outcome.values_are_sequential());
        let audit = counter.audit();
        let lemmas = audit.grow_old_lemma_holds() && audit.retirement_lemma_holds();
        let label = match workload {
            Workload::Zipf { s, .. } => format!("zipf(s={s})"),
            w => w.name().to_string(),
        };
        let _ = idx;
        table.row(vec![
            label,
            distinct.to_string(),
            busiest.to_string(),
            counter.loads().max_load().to_string(),
            lemmas.to_string(),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "(an initiator's own traffic is >= 2 * its ops — the floor behind the paper's\n remark that concentrated workloads limit achievable distribution)\n\n",
    );
    out
}

/// E13 — the flip-bit and priority queue inherit the O(k) bottleneck.
#[must_use]
pub fn e13_generalized_structures(k: u32) -> String {
    let n = kmath::leaves_of_order(k) as usize;
    let mut out = String::new();
    out.push_str(&format!(
        "E13. Generalized sequentially-dependent structures (k = {k}, n = {n})\n\n"
    ));
    let mut table = Table::new(vec!["structure", "ops", "bottleneck", "20k bound", "lemmas"]);

    {
        let mut counter = TreeCounter::new(n).expect("tree");
        SequentialDriver::run_shuffled(&mut counter, REPORT_SEED).expect("runs");
        let ok = counter.audit().grow_old_lemma_holds()
            && counter.audit().retirement_counts_within_pools(counter.topology());
        table.row(vec![
            "counter (inc)".into(),
            n.to_string(),
            counter.loads().max_load().to_string(),
            (20 * u64::from(k)).to_string(),
            ok.to_string(),
        ]);
    }
    {
        let mut bit = DistributedFlipBit::new(n).expect("bit");
        for i in 0..bit.processors() {
            bit.test_and_flip(ProcessorId::new(i)).expect("flip");
        }
        let ok = bit.audit().grow_old_lemma_holds()
            && bit.audit().retirement_counts_within_pools(bit.topology());
        assert!(bit.loads().max_load() <= 20 * u64::from(k));
        table.row(vec![
            "flip-bit (test&flip)".into(),
            n.to_string(),
            bit.loads().max_load().to_string(),
            (20 * u64::from(k)).to_string(),
            ok.to_string(),
        ]);
    }
    {
        let mut pq = DistributedPriorityQueue::new(n).expect("pq");
        let procs = pq.processors();
        for i in 0..procs / 2 {
            pq.insert(ProcessorId::new(i), (i as u64 * 7919) % 1000).expect("insert");
        }
        for i in procs / 2..procs {
            pq.extract_min(ProcessorId::new(i)).expect("extract");
        }
        let ok = pq.audit().grow_old_lemma_holds() && pq.audit().retirement_lemma_holds();
        table.row(vec![
            "priority queue (ins/ext)".into(),
            procs.to_string(),
            pq.loads().max_load().to_string(),
            (20 * u64::from(k)).to_string(),
            ok.to_string(),
        ]);
    }
    out.push_str(&table.render());
    out.push('\n');
    out
}

/// E15 — multi-round workloads: the paper's one-shot pools are
/// dimensioned for exactly one op per processor; recycling them keeps the
/// bottleneck at O(k) *per round* (extension beyond the paper).
#[must_use]
pub fn e15_multi_round(k: u32, rounds: u64) -> String {
    let n = kmath::leaves_of_order(k) as usize;
    let mut out = String::new();
    out.push_str(&format!(
        "E15. Multi-round workloads (k = {k}, n = {n}, {rounds} rounds of one op per processor)\n\n"
    ));
    let mut table = Table::new(vec![
        "pool policy",
        "round",
        "bottleneck so far",
        "per-round budget (20k*r)",
        "stints",
    ]);
    for pool in [PoolPolicy::OneShot, PoolPolicy::Recycling] {
        let mut counter = TreeCounter::builder(n)
            .expect("builder")
            .trace(TraceMode::Off)
            .pool(pool)
            .build()
            .expect("tree");
        for round in 1..=rounds {
            let outcome =
                SequentialDriver::run_shuffled(&mut counter, REPORT_SEED + round).expect("runs");
            assert_eq!(outcome.results.len(), n);
            table.row(vec![
                format!("{pool:?}"),
                round.to_string(),
                counter.loads().max_load().to_string(),
                (20 * u64::from(k) * round).to_string(),
                counter.audit().stints_completed().to_string(),
            ]);
        }
        assert_eq!(counter.value(), rounds * n as u64, "all rounds counted");
    }
    out.push_str(&table.render());
    out.push_str(
        "(one-shot pools drain after about one round — the paper's dimensioning is\n exactly for its canonical workload; recycling pools sustain O(k) per round)\n\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_paper_threshold_is_the_sweet_spot() {
        let report = e11_threshold_ablation(3);
        // The paper row holds every lemma with zero pool exhaustions...
        let paper_line = report.lines().find(|l| l.contains("(paper)")).expect("paper row");
        assert!(paper_line.ends_with("holds"), "{paper_line}");
        let cols: Vec<&str> = paper_line.split_whitespace().collect();
        assert_eq!(cols[cols.len() - 2], "0", "no exhaustion at 4k: {paper_line}");
        // ...while the aggressive threshold k demonstrates why 4k is
        // needed: double retirements within an op (Retirement Lemma
        // violation) and exhausted pools.
        assert!(
            report.contains("VIOLATED"),
            "threshold k should violate the Retirement Lemma:\n{report}"
        );
        // And 4k achieves the smallest bottleneck of the sweep.
        let first_number = |line: &str| -> u64 {
            line.split_whitespace().skip(1).find_map(|t| t.parse().ok()).expect("bottleneck column")
        };
        let bottlenecks: Vec<u64> = report
            .lines()
            .filter(|l| l.contains("holds") || l.contains("VIOLATED"))
            .map(first_number)
            .collect();
        let paper_bottleneck = first_number(paper_line);
        assert_eq!(
            bottlenecks.iter().copied().min(),
            Some(paper_bottleneck),
            "4k minimizes the bottleneck: {bottlenecks:?}"
        );
    }

    #[test]
    fn e12_skew_monotonically_raises_the_bottleneck() {
        let report = e12_skewed_workloads(2);
        let bottleneck_of = |label: &str| -> u64 {
            report
                .lines()
                .find(|l| l.starts_with(label))
                .and_then(|l| l.split_whitespace().nth_back(1))
                .and_then(|c| c.parse().ok())
                .unwrap_or_else(|| panic!("row '{label}' in:\n{report}"))
        };
        let canonical = bottleneck_of("canonical");
        let single = bottleneck_of("single-initiator");
        assert!(single >= 2 * 8, "single initiator floor 2n = 16: {single}");
        assert!(single > canonical, "skew hurts: {single} > {canonical}");
        assert!(report.contains("zipf(s=1)") || report.contains("zipf(s=1.0)"), "{report}");
    }

    #[test]
    fn e13_all_structures_within_bound() {
        let report = e13_generalized_structures(3);
        assert!(report.contains("flip-bit"));
        assert!(report.contains("priority queue"));
        assert!(!report.contains("false"), "{report}");
    }

    #[test]
    fn e15_recycling_beats_one_shot_over_rounds() {
        let report = e15_multi_round(3, 3);
        assert!(report.contains("OneShot"));
        assert!(report.contains("Recycling"));
        // Final-round bottlenecks: recycling must be the smaller.
        let last_of = |policy: &str| -> u64 {
            report
                .lines()
                .rev()
                .find(|l| l.starts_with(policy))
                .and_then(|l| l.split_whitespace().nth(2))
                .and_then(|c| c.parse().ok())
                .expect("bottleneck column")
        };
        assert!(last_of("Recycling") < last_of("OneShot"), "{report}");
    }
}
