//! Experiment E27 — C10k: thread-per-connection vs. the readiness loop.
//!
//! The paper's bottleneck is per-processor *message load*, but the
//! serving stack used to hit a dumber wall first: a thread per
//! connection caps realistic fan-in at a few thousand sessions before
//! scheduler thrash buries the latency tail. This experiment drives the
//! same open-loop keyless workload — a fixed per-connection rate, so
//! offered load grows with fan-in — against the threaded combining
//! server and the single-reactor readiness server, over a connection
//! grid that ends past 10,000, and records goodput and the latency
//! tail side by side. "Sustainable" is an SLO verdict: every op acked,
//! values exactly `0..ops`, p99 under [`E27_SLO_P99_MS`].
//!
//! Both sides of the socket stay on one thread each: the client is the
//! multiplexed mux driver (`distctr_server::run_mux`), so the
//! comparison isolates the *server's* connection-handling strategy.
//! Above [`E27_SUBPROCESS_CONNS`] connections the server runs in a
//! child process (`report --e27-serve <style> <n>`) so client and
//! server fd tables stay under a 20k `RLIMIT_NOFILE` each.

use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};
use std::time::Duration;

use distctr_analysis::{fmt_f64, Table};
use distctr_core::TreeCounter;
use distctr_server::{run_mux, CounterServer, LoadReport, MuxConfig};

/// The latency SLO: a connection level is sustainable only if p99 stays
/// under this many milliseconds.
pub const E27_SLO_P99_MS: f64 = 250.0;

/// Open-loop injection rate per connection, ops/second. Offered load is
/// `conns * E27_PER_CONN_RATE`; at the 10k level that is 30k ops/s,
/// inside what one core can carry for client and server together, so a
/// blown latency tail indicts the serving strategy, not raw CPU.
pub const E27_PER_CONN_RATE: f64 = 3.0;

/// Operations per connection per cell — at [`E27_PER_CONN_RATE`] this
/// is a ~4 s injection window per cell.
pub const E27_OPS_PER_CONN: usize = 12;

/// Above this many connections the server is spawned as a child
/// process: 10k client sockets plus 10k server sockets do not fit one
/// process's 20k fd limit.
pub const E27_SUBPROCESS_CONNS: usize = 5000;

/// One (style, connection level) cell of the C10k grid.
#[derive(Debug, Clone, PartialEq)]
pub struct AsyncRow {
    /// `"threaded"` (thread per connection) or `"async"` (one reactor).
    pub style: &'static str,
    /// Connection level attempted (the ramp target).
    pub conns: usize,
    /// Connections the ramp actually established; a saturated server
    /// that stops absorbing connects shows up as a shortfall here.
    pub established: usize,
    /// Operations acked within the run's grace window.
    pub ops: usize,
    /// Open-loop offered rate, ops/second.
    pub offered_rate: f64,
    /// Acked throughput over the injection wall clock, ops/second.
    pub goodput: f64,
    /// Median latency from scheduled injection time, microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile latency, microseconds.
    pub p999_us: u64,
    /// Operations that got `Busy`, died with a connection, or outlived
    /// the grace window.
    pub failed: usize,
    /// Whether the acked values were exactly `0..ops` (vacuously false
    /// whenever anything failed).
    pub exact: bool,
}

impl AsyncRow {
    /// The SLO verdict: every connection established, nothing lost,
    /// values exact, p99 under [`E27_SLO_P99_MS`].
    #[must_use]
    pub fn sustainable(&self) -> bool {
        self.established == self.conns
            && self.failed == 0
            && self.exact
            && self.p99_us as f64 <= E27_SLO_P99_MS * 1000.0
    }
}

/// The connection grid: smoke stays small and in-process (CI gate),
/// quick stops where the threaded path first buckles, the full sweep
/// ends past the C10k mark.
#[must_use]
pub fn e27_grid(quick: bool, smoke: bool) -> Vec<usize> {
    if smoke {
        vec![32, 256]
    } else if quick {
        vec![32, 1000, 4000]
    } else {
        vec![32, 1000, 4000, 10000]
    }
}

/// Measures both serving styles at every level of `conns_grid` against
/// a fresh tree of `n` processors. Each cell drives
/// `conns * E27_OPS_PER_CONN` operations open-loop at
/// `conns * E27_PER_CONN_RATE` ops/s through the mux driver. A cell
/// whose ramp or run collapses entirely (server dead, connects refused)
/// becomes a row with zero goodput and every op failed rather than a
/// panic — an unsustainable level is a result, not an error.
///
/// # Panics
///
/// Panics only on harness failures: a server that cannot bind or a
/// child process that cannot spawn.
#[must_use]
pub fn e27_measure(n: usize, conns_grid: &[usize]) -> Vec<AsyncRow> {
    let mut rows = Vec::with_capacity(conns_grid.len() * 2);
    for &conns in conns_grid {
        for style in ["threaded", "async"] {
            rows.push(e27_cell(style, n, conns));
        }
    }
    rows
}

/// Ramp window for a connection level: ~2000 connects/second, floor
/// 50 ms.
fn ramp_for(conns: usize) -> Duration {
    Duration::from_millis((conns as u64 / 2).max(50))
}

fn e27_cell(style: &'static str, n: usize, conns: usize) -> AsyncRow {
    let ops = conns * E27_OPS_PER_CONN;
    let rate = conns as f64 * E27_PER_CONN_RATE;
    eprintln!("e27: {style} at {conns} conns ({ops} ops @ {rate:.0}/s)...");
    let cfg = MuxConfig::open(conns, ops, rate).with_ramp(ramp_for(conns));
    let outcome = if conns > E27_SUBPROCESS_CONNS {
        run_against_child(style, n, &cfg)
    } else {
        run_in_process(style, n, &cfg)
    };
    match outcome {
        Ok(report) => row_from_report(style, conns, ops, rate, &report),
        Err(err) => {
            eprintln!("e27: {style} at {conns} conns collapsed: {err}");
            AsyncRow {
                style,
                conns,
                established: 0,
                ops: 0,
                offered_rate: rate,
                goodput: 0.0,
                p50_us: 0,
                p99_us: 0,
                p999_us: 0,
                failed: ops,
                exact: false,
            }
        }
    }
}

fn row_from_report(
    style: &'static str,
    conns: usize,
    ops: usize,
    rate: f64,
    report: &LoadReport,
) -> AsyncRow {
    AsyncRow {
        style,
        conns,
        established: report.per_conn.len(),
        ops: report.ops,
        offered_rate: rate,
        goodput: report.throughput(),
        p50_us: report.latency_percentile_us(50.0),
        p99_us: report.latency_percentile_us(99.0),
        p999_us: report.latency_percentile_us(99.9),
        failed: report.failed + ops.saturating_sub(report.ops + report.failed),
        exact: report.failed == 0 && report.values_are_sequential_from(0),
    }
}

fn run_in_process(style: &str, n: usize, cfg: &MuxConfig) -> Result<LoadReport, String> {
    let backend = TreeCounter::new(n).expect("tree backend");
    let mut server = match style {
        "threaded" => CounterServer::serve_combining(backend),
        _ => CounterServer::serve_async_combining(backend),
    }
    .expect("serve");
    let report = run_mux(server.local_addr(), cfg).map_err(|e| e.to_string());
    server.shutdown().expect("shutdown");
    report
}

/// Spawns the current executable in `--e27-serve` mode, reads the
/// child's `ADDR <ip:port>` banner, drives the load against it, then
/// closes the child's stdin (its shutdown signal) and reaps it.
fn run_against_child(style: &str, n: usize, cfg: &MuxConfig) -> Result<LoadReport, String> {
    let exe = std::env::current_exe().expect("current_exe");
    let mut child = Command::new(exe)
        .arg("--e27-serve")
        .arg(style)
        .arg(n.to_string())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn --e27-serve child");
    let stdout = child.stdout.take().expect("child stdout");
    let mut banner = String::new();
    BufReader::new(stdout).read_line(&mut banner).expect("read child banner");
    let addr: std::net::SocketAddr = banner
        .trim()
        .strip_prefix("ADDR ")
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| panic!("bad child banner: {banner:?}"));
    let report = run_mux(addr, cfg).map_err(|e| e.to_string());
    drop(child.stdin.take());
    let status = child.wait().expect("reap child");
    if !status.success() {
        return Err(format!("server child exited with {status}"));
    }
    report
}

/// The `--e27-serve <style> <n>` child body: serve on an ephemeral
/// loopback port, announce the address on stdout, and run until stdin
/// reaches EOF (the parent dropping the pipe). Called from the `report`
/// binary's entry point before normal argument parsing.
pub fn e27_child_serve(style: &str, n: usize) {
    use std::io::{Read, Write};
    let backend = TreeCounter::new(n).expect("tree backend");
    let mut server = match style {
        "threaded" => CounterServer::serve_combining(backend),
        "async" => CounterServer::serve_async_combining(backend),
        other => panic!("--e27-serve style must be 'threaded' or 'async', got {other:?}"),
    }
    .expect("serve");
    let mut out = std::io::stdout();
    writeln!(out, "ADDR {}", server.local_addr()).expect("announce addr");
    out.flush().expect("flush addr");
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    server.shutdown().expect("shutdown");
}

/// Largest connection level `style` sustained, 0 if none.
#[must_use]
pub fn e27_max_sustainable(rows: &[AsyncRow], style: &str) -> usize {
    rows.iter().filter(|r| r.style == style && r.sustainable()).map(|r| r.conns).max().unwrap_or(0)
}

/// Renders the E27 table plus the max-sustainable summary.
#[must_use]
pub fn e27_render(n: usize, rows: &[AsyncRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "E27. C10k: open-loop goodput and latency tail against {n} processors,\n\
         thread-per-connection vs single-reactor readiness serving\n\
         (offered rate {} ops/s per connection; SLO: failed == 0, exact, p99 <= {} ms)\n\n",
        E27_PER_CONN_RATE, E27_SLO_P99_MS
    ));
    let mut table = Table::new(vec![
        "conns",
        "server",
        "opened",
        "offered (ops/s)",
        "goodput (ops/s)",
        "p50 (us)",
        "p99 (us)",
        "p99.9 (us)",
        "failed",
        "sustainable",
    ]);
    for r in rows {
        table.row(vec![
            r.conns.to_string(),
            r.style.to_string(),
            r.established.to_string(),
            fmt_f64(r.offered_rate),
            fmt_f64(r.goodput),
            r.p50_us.to_string(),
            r.p99_us.to_string(),
            r.p999_us.to_string(),
            r.failed.to_string(),
            if r.sustainable() { "yes" } else { "NO" }.to_string(),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nmax sustainable connections: threaded {}, readiness {} — the reactor's\n\
         per-connection cost is a slab slot and two buffers, not a stack and a\n\
         scheduler entry, so the latency tail holds where thread wakeups thrash.\n",
        e27_max_sustainable(rows, "threaded"),
        e27_max_sustainable(rows, "async"),
    ));
    out
}

/// Serializes the measurement as the checked-in `BENCH_async.json`
/// artifact (hand-rolled JSON; the harness has no serde dependency).
#[must_use]
pub fn e27_json(n: usize, rows: &[AsyncRow]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"async-serving\",\n");
    out.push_str("  \"mode\": \"open-loop TCP, mux client driver\",\n");
    out.push_str(&format!("  \"processors\": {n},\n"));
    out.push_str(&format!("  \"per_conn_rate\": {E27_PER_CONN_RATE},\n"));
    out.push_str(&format!("  \"slo_p99_ms\": {E27_SLO_P99_MS},\n"));
    out.push_str(&format!(
        "  \"max_sustainable\": {{ \"threaded\": {}, \"async\": {} }},\n",
        e27_max_sustainable(rows, "threaded"),
        e27_max_sustainable(rows, "async"),
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"conns\": {}, \"server\": \"{}\", \"established\": {}, \
             \"offered_ops_per_sec\": {:.1}, \
             \"goodput_ops_per_sec\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \
             \"p999_us\": {}, \"failed\": {}, \"exact\": {}, \"sustainable\": {} }}{}\n",
            r.conns,
            r.style,
            r.established,
            r.offered_rate,
            r.goodput,
            r.p50_us,
            r.p99_us,
            r.p999_us,
            r.failed,
            r.exact,
            r.sustainable(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e27_measures_renders_and_serializes_in_process() {
        let rows = e27_measure(8, &[4]);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.failed, 0, "{} lost ops at 4 conns: {r:?}", r.style);
            assert!(r.exact, "{} went inexact at 4 conns: {r:?}", r.style);
            assert!(r.goodput > 0.0);
            assert!(r.sustainable(), "{r:?}");
        }
        let report = e27_render(8, &rows);
        assert!(report.contains("sustainable"), "{report}");
        assert!(report.contains("readiness"), "{report}");
        let json = e27_json(8, &rows);
        assert!(json.contains("\"server\": \"async\""), "{json}");
        assert!(json.contains("\"max_sustainable\""), "{json}");
    }

    #[test]
    fn the_slo_verdict_rejects_loss_inexactness_and_tail_blowups() {
        let good = AsyncRow {
            style: "async",
            conns: 32,
            established: 32,
            ops: 384,
            offered_rate: 128.0,
            goodput: 128.0,
            p50_us: 500,
            p99_us: 9_000,
            p999_us: 20_000,
            failed: 0,
            exact: true,
        };
        assert!(good.sustainable());
        assert!(!AsyncRow { established: 31, ..good.clone() }.sustainable());
        assert!(!AsyncRow { failed: 1, ..good.clone() }.sustainable());
        assert!(!AsyncRow { exact: false, ..good.clone() }.sustainable());
        assert!(!AsyncRow { p99_us: 600_000, ..good.clone() }.sustainable());
        assert_eq!(e27_max_sustainable(std::slice::from_ref(&good), "async"), 32);
        assert_eq!(e27_max_sustainable(&[good], "threaded"), 0);
    }

    #[test]
    fn the_grid_scales_with_mode_and_full_reaches_c10k() {
        assert_eq!(e27_grid(false, true), vec![32, 256]);
        assert!(e27_grid(true, false).iter().all(|&c| c <= E27_SUBPROCESS_CONNS));
        assert!(e27_grid(false, false).iter().any(|&c| c >= 10_000));
    }
}
