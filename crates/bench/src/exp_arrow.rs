//! Experiment E17 — spanning-tree topology study for the mobile-token
//! (Arrow) alternative: where does the hot spot go when the *object*
//! moves instead of the requests?

use distctr_analysis::{fmt_f64, Table};
use distctr_baselines::{ArrowCounter, SpanningTree};
use distctr_sim::{Counter, DeliveryPolicy, SequentialDriver, TraceMode};

use crate::algos::REPORT_SEED;

/// E17 — canonical workload on four spanning-tree shapes.
#[must_use]
pub fn e17_arrow_topologies(n: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "E17. Mobile-token (Arrow) counter across spanning trees (n = {n}, canonical workload)\n\n"
    ));
    let mut table =
        Table::new(vec!["tree", "total msgs", "msgs/op", "bottleneck", "gini", "longest find"]);
    for tree in [
        SpanningTree::Star,
        SpanningTree::Heap,
        SpanningTree::Random(REPORT_SEED),
        SpanningTree::Path,
    ] {
        let mut counter = ArrowCounter::with_tree(n, tree, TraceMode::Off, DeliveryPolicy::Fifo)
            .expect("arrow builds");
        let outcome = SequentialDriver::run_shuffled(&mut counter, REPORT_SEED).expect("runs");
        assert!(outcome.values_are_sequential());
        table.row(vec![
            tree.name().to_string(),
            outcome.total_messages.to_string(),
            fmt_f64(outcome.messages_per_op()),
            counter.loads().max_load().to_string(),
            fmt_f64(counter.loads().gini()),
            counter.longest_find_path().to_string(),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "(stars minimize messages but concentrate relaying on the center; paths\n spread load but pay Θ(diameter) per op — no shape escapes the theorem)\n\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e17_renders_all_topologies() {
        let report = e17_arrow_topologies(64);
        for name in ["star", "heap", "random", "path"] {
            assert!(report.contains(name), "{name} row present:\n{report}");
        }
        // Star's longest find is at most 2 hops.
        let star = report.lines().find(|l| l.starts_with("star")).expect("star row");
        let last: u64 = star
            .split_whitespace()
            .last()
            .and_then(|c| c.parse().ok())
            .expect("longest find column");
        assert!(last <= 2, "{star}");
    }
}
