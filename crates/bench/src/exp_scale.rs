//! Experiment E25 — the paper's bound at scale: the arena simulation
//! core driving a tree of ≥ 1M simulated processors.
//!
//! The Wattenhofer–Widmayer bound is asymptotic: some processor
//! exchanges Ω(log n / log log n) messages, and the retirement tree
//! matches it with a max per-processor load of O(k) where `n = k^(k+1)`.
//! Every other experiment probes small trees (k ≤ 4, n ≤ 1024) where
//! the constants dwarf the asymptotics. E25 exists to run the *curve*:
//! one increment per processor (the canonical workload) at every exact
//! tree size from `3^4 = 81` up to `7^8 = 5,764,801` processors — past
//! the 1M mark — with tracing off, and compares the measured bottleneck
//! against the `O(k)` envelope from `kmath`.
//!
//! This is the workload the arena refactor was built for: dense
//! `Vec`-indexed routing tables, tombstoned cancellation in the event
//! queue, slot-arena engine state and an allocation-free trace-off
//! inject path. The row also records events (delivered messages) per
//! second and the process peak RSS, so regressions in either time or
//! space at scale show up in the checked-in `BENCH_scale.json`.
//!
//! The envelope constant is the repo's own: the core test
//! `bottleneck_is_big_o_of_k_not_n` pins the canonical-workload
//! bottleneck under `20k` (a processor can serve the root once and one
//! other inner node once, each stint costing ~6k messages), so E25
//! predicts `20k` and the report gate allows 2× slack on top.

use std::time::Instant;

use distctr_analysis::{fmt_f64, loglog_fit, Plot, Scale, Table};
use distctr_core::kmath;
use distctr_core::TreeCounter;
use distctr_sim::{Counter, ProcessorId, TraceMode};

/// One tree size's measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleRow {
    /// Tree order `k`.
    pub k: u32,
    /// Simulated processors, `n = k^(k+1)`.
    pub processors: usize,
    /// Measured bottleneck: the max per-processor message load.
    pub max_load: u64,
    /// The `O(k)` envelope the measurement is held against (`20k`).
    pub predicted: u64,
    /// Total protocol messages the run delivered.
    pub total_messages: u64,
    /// Delivered messages per wall-clock second.
    pub events_per_sec: f64,
    /// Wall-clock seconds for the inc sweep (excludes tree build).
    pub elapsed_secs: f64,
    /// Process peak RSS after the run, in MiB (`VmHWM`; 0 where
    /// `/proc/self/status` is unavailable). The high-water mark is
    /// process-wide and monotone, so it is attributed to the largest
    /// size when rows run smallest-first.
    pub peak_rss_mib: u64,
}

/// The sweep sizes: exact tree sizes `k^(k+1)`, smallest first.
/// Smoke stops at `4^5 = 1024` (seconds on a laptop), quick adds
/// `5^6 = 15,625`, and the full sweep runs to `7^8 = 5,764,801` —
/// the paper's curve past a million processors.
#[must_use]
pub fn e25_sizes(quick: bool, smoke: bool) -> Vec<usize> {
    let orders: &[u32] = if smoke {
        &[3, 4]
    } else if quick {
        &[3, 4, 5]
    } else {
        &[3, 4, 5, 6, 7]
    };
    orders
        .iter()
        .map(|&k| usize::try_from(kmath::leaves_of_order(k)).expect("supported sizes fit usize"))
        .collect()
}

/// The `O(k)` envelope E25 plots and gates against: `20k`, the same
/// constant the core bottleneck test pins (see the module docs).
#[must_use]
pub fn e25_predicted(k: u32) -> u64 {
    20 * u64::from(k)
}

/// The process's peak resident set (`VmHWM`) in MiB, or 0 off-Linux.
#[must_use]
pub fn peak_rss_mib() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse::<u64>().ok())
        .map_or(0, |kb| kb / 1024)
}

/// Runs the canonical workload (one inc per processor, id order,
/// tracing off) at each size and measures the bottleneck, throughput
/// and memory high-water mark.
///
/// # Panics
///
/// Panics if a tree cannot be built or an increment fails (the
/// fault-free path never does).
#[must_use]
pub fn e25_measure(sizes: &[usize]) -> Vec<ScaleRow> {
    sizes
        .iter()
        .map(|&n| {
            let mut c = TreeCounter::builder(n)
                .expect("builder")
                .trace(TraceMode::Off)
                .build()
                .expect("counter");
            let k = c.order();
            let procs = c.processors();
            let start = Instant::now();
            for i in 0..procs {
                c.inc(ProcessorId::new(i)).expect("fault-free inc");
            }
            let elapsed = start.elapsed().as_secs_f64();
            let total_messages = c.loads().total_messages();
            ScaleRow {
                k,
                processors: procs,
                max_load: c.loads().max_load(),
                predicted: e25_predicted(k),
                total_messages,
                events_per_sec: if elapsed > 0.0 { total_messages as f64 / elapsed } else { 0.0 },
                elapsed_secs: elapsed,
                peak_rss_mib: peak_rss_mib(),
            }
        })
        .collect()
}

/// Renders the E25 table and the measured-vs-envelope log-log plot.
#[must_use]
pub fn e25_render(rows: &[ScaleRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "E25. Scale: canonical workload (one inc per processor, trace off) on the\n\
         arena simulation core, at every exact tree size k^(k+1)\n\n",
    );
    let mut table = Table::new(vec![
        "k",
        "processors",
        "max load",
        "O(k) envelope (20k)",
        "messages",
        "events/s",
        "elapsed (s)",
        "peak RSS (MiB)",
    ]);
    for r in rows {
        table.row(vec![
            r.k.to_string(),
            r.processors.to_string(),
            r.max_load.to_string(),
            r.predicted.to_string(),
            r.total_messages.to_string(),
            fmt_f64(r.events_per_sec),
            format!("{:.2}", r.elapsed_secs),
            r.peak_rss_mib.to_string(),
        ]);
    }
    out.push_str(&table.render());

    let measured: Vec<(f64, f64)> =
        rows.iter().map(|r| (r.processors as f64, r.max_load as f64)).collect();
    let envelope: Vec<(f64, f64)> =
        rows.iter().map(|r| (r.processors as f64, r.predicted as f64)).collect();
    if measured.len() >= 2 {
        let mut plot = Plot::new(48, 14, Scale::Log, Scale::Log);
        plot.series('+', "measured max load", &measured);
        plot.series('o', "20k envelope", &envelope);
        out.push('\n');
        out.push_str(&plot.render());
        if let Some(fit) = loglog_fit(&measured) {
            out.push_str(&format!(
                "\nlog-log slope of max load vs n: {:.3} (a polylog bound; any fixed\n\
                 power n^c would show slope c >= 1)\n",
                fit.slope
            ));
        }
    }
    out.push_str(
        "\nreading: the bottleneck tracks the O(k) envelope — k only steps 3, 4, 5, 6, 7\n\
         while n multiplies 81 -> 5,764,801. A centralized counter's bottleneck would be\n\
         2n; here a 71,000x growth in processors moves the max load by a factor within\n\
         the envelope's 20k/12 ~ 2.3x. events/s and peak RSS pin the arena core's\n\
         time and space at scale.\n",
    );
    out
}

/// Serializes the sweep as the checked-in `BENCH_scale.json` artifact
/// (hand-rolled JSON; the harness has no serde dependency).
#[must_use]
pub fn e25_json(rows: &[ScaleRow]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"scale\",\n");
    out.push_str("  \"backend\": \"arena sim core\",\n");
    out.push_str("  \"mode\": \"one inc per processor, id order, TraceMode::Off\",\n");
    out.push_str("  \"envelope\": \"20k (core bottleneck test constant)\",\n");
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"k\": {}, \"processors\": {}, \"max_load\": {}, \"predicted\": {}, \
             \"total_messages\": {}, \"events_per_sec\": {:.1}, \"elapsed_secs\": {:.3}, \
             \"peak_rss_mib\": {} }}{}\n",
            r.k,
            r.processors,
            r.max_load,
            r.predicted,
            r.total_messages,
            r.events_per_sec,
            r.elapsed_secs,
            r.peak_rss_mib,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e25_sizes_are_exact_tree_sizes_and_the_full_sweep_passes_a_million() {
        let smoke = e25_sizes(false, true);
        assert_eq!(smoke, vec![81, 1024]);
        let quick = e25_sizes(true, false);
        assert_eq!(quick, vec![81, 1024, 15_625]);
        let full = e25_sizes(false, false);
        assert_eq!(full, vec![81, 1024, 15_625, 279_936, 5_764_801]);
        assert!(full.iter().any(|&n| n >= 1_000_000), "the full sweep crosses 1M");
        for &n in &full {
            assert!(kmath::exact_order(n as u64).is_some(), "n={n} must be an exact k^(k+1)");
        }
    }

    #[test]
    fn e25_measures_renders_and_serializes_at_tiny_sizes() {
        // k=3 only: this pins the harness shape; the report gate runs
        // the real sizes.
        let rows = e25_measure(&[81]);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!((r.k, r.processors), (3, 81));
        assert!(r.max_load > 0, "the canonical workload moves messages");
        assert!(
            r.max_load <= 2 * r.predicted,
            "bottleneck {} above twice the envelope {}",
            r.max_load,
            r.predicted
        );
        assert!(r.total_messages > 81, "more than one message per inc");
        assert!(r.events_per_sec > 0.0);
        let report = e25_render(&rows);
        assert!(report.contains("max load"), "{report}");
        assert!(report.contains("O(k) envelope"), "{report}");
        let json = e25_json(&rows);
        assert!(json.contains("\"experiment\": \"scale\""), "{json}");
        assert!(json.contains("\"processors\": 81"), "{json}");
    }

    #[test]
    fn the_envelope_is_twenty_k() {
        assert_eq!(e25_predicted(3), 60);
        assert_eq!(e25_predicted(7), 140);
    }

    #[test]
    fn peak_rss_reads_the_high_water_mark_on_linux() {
        // On Linux this is the live process's VmHWM; elsewhere 0.
        let rss = peak_rss_mib();
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(rss > 0, "a running test process has a nonzero high-water mark");
        }
    }
}
