//! Experiments E6 (Hot Spot Lemma on traces) and E10 (quorum-system
//! substrate and the dynamic-quorum view).

use distctr_analysis::{fmt_f64, Table};
use distctr_quorum::{dynamic_view, Fpp, Grid, Majority, QuorumSystem, TreeQuorum, Wall};
use distctr_sim::{ContactSet, DeliveryPolicy, TraceMode};

use crate::algos::{run_shuffled_dyn, Algo, REPORT_SEED};

/// E6 — the Hot Spot Lemma checked on recorded traces of every
/// implementation under every delivery policy.
#[must_use]
pub fn e6_hot_spot(n: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!("E6. Hot Spot Lemma: consecutive contact sets intersect (n = {n})\n\n"));
    let mut table =
        Table::new(vec!["algorithm", "policy", "pairs checked", "violations", "verdict"]);
    for algo in Algo::comparison_set(n) {
        for policy in DeliveryPolicy::test_suite() {
            let pname = policy.name();
            let row = (|| -> Result<(usize, usize), String> {
                let mut counter = algo.build(n, TraceMode::Contacts, policy)?;
                let outcome =
                    run_shuffled_dyn(counter.as_mut(), REPORT_SEED).map_err(|e| e.to_string())?;
                let contacts: Vec<&ContactSet> = outcome
                    .results
                    .iter()
                    .map(|r| &r.trace.as_ref().expect("contacts recorded").contacts)
                    .collect();
                let pairs = contacts.len().saturating_sub(1);
                let violations =
                    contacts.windows(2).filter(|pair| !pair[0].intersects(pair[1])).count();
                Ok((pairs, violations))
            })();
            match row {
                Ok((pairs, violations)) => {
                    table.row(vec![
                        algo.name(),
                        pname.to_string(),
                        pairs.to_string(),
                        violations.to_string(),
                        if violations == 0 { "holds".into() } else { "VIOLATED".into() },
                    ]);
                }
                Err(e) => {
                    table.row(vec![
                        algo.name(),
                        pname.to_string(),
                        "-".into(),
                        "-".into(),
                        format!("error: {e}"),
                    ]);
                }
            }
        }
    }
    out.push_str(&table.render());
    out.push('\n');
    out
}

/// E10 — the quorum substrate: static constructions side by side, and
/// the execution of the retirement tree read as a *dynamic quorum
/// system* (the paper's own framing).
#[must_use]
pub fn e10_quorums() -> String {
    let mut out = String::new();
    out.push_str("E10. Quorum systems (static constructions)\n\n");
    let mut table =
        Table::new(vec!["system", "universe", "quorums", "min size", "uniform load", "intersects"]);
    let systems: Vec<Box<dyn QuorumSystem>> = vec![
        Box::new(Majority::new(16).expect("majority")),
        Box::new(Grid::new(4).expect("grid")),
        Box::new(Fpp::new(3).expect("projective plane")),
        Box::new(TreeQuorum::new(3).expect("tree quorum")),
        Box::new(Wall::triangular(5).expect("wall")),
    ];
    for s in &systems {
        table.row(vec![
            s.name().to_string(),
            s.universe().to_string(),
            s.quorum_count().to_string(),
            s.min_quorum_size(usize::MAX).to_string(),
            fmt_f64(s.uniform_load()),
            if s.verify_intersection(2000) { "yes".into() } else { "NO".to_string() },
        ]);
    }
    out.push_str(&table.render());
    out.push('\n');

    out.push_str("Dynamic-quorum view of counter executions (n = 81):\n\n");
    let mut dyn_table = Table::new(vec![
        "algorithm",
        "ops",
        "contact size (min/mean/max)",
        "busiest",
        "dyn load",
        "hot spot",
    ]);
    for algo in [Algo::Central, Algo::RetirementTree] {
        let mut counter =
            algo.build(81, TraceMode::Contacts, DeliveryPolicy::Fifo).expect("builds");
        let outcome = run_shuffled_dyn(counter.as_mut(), REPORT_SEED).expect("runs");
        let contacts: Vec<&ContactSet> = outcome
            .results
            .iter()
            .map(|r| &r.trace.as_ref().expect("contacts recorded").contacts)
            .collect();
        let view = dynamic_view(&contacts, counter.processors());
        dyn_table.row(vec![
            algo.name(),
            view.operations.to_string(),
            format!("{}/{}/{}", view.min_size, fmt_f64(view.mean_size), view.max_size),
            view.busiest.map_or("-".into(), |(p, c)| format!("{p} ({c} ops)")),
            fmt_f64(view.load),
            if view.verdict.holds() { "holds".into() } else { "VIOLATED".to_string() },
        ]);
    }
    out.push_str(&dyn_table.render());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_no_violations_at_n8() {
        let report = e6_hot_spot(8);
        assert!(!report.contains("VIOLATED"), "{report}");
        assert!(!report.contains("error"), "{report}");
        assert!(report.contains("lifo"));
    }

    #[test]
    fn e10_quorum_tables_render() {
        let report = e10_quorums();
        for name in ["majority", "grid", "fpp", "tree", "wall"] {
            assert!(report.contains(name), "{name} in report");
        }
        assert!(!report.contains("NO"));
        assert!(!report.contains("VIOLATED"));
        // The centralized counter's dynamic load is 1.0 (coordinator in
        // every contact set).
        assert!(report.contains("1.00") || report.contains("1.0"));
    }
}
