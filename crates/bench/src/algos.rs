//! A uniform registry of every counter implementation, so experiments can
//! sweep "all algorithms × all sizes × all policies" declaratively.

use distctr_baselines::{
    ArrowCounter, CentralCounter, CombiningTreeCounter, CountingNetworkCounter,
    DiffractingTreeCounter, StaticTreeCounter,
};
use distctr_core::TreeCounter;
use distctr_sim::{ConcurrentCounter, Counter, DeliveryPolicy, ProcessorId, SimError, TraceMode};

/// The algorithms under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// The paper's retirement tree (the contribution).
    RetirementTree,
    /// Ablation: same tree, no retirement.
    StaticTree,
    /// Single coordinator.
    Central,
    /// Software combining tree.
    Combining,
    /// Bitonic counting network with the given width.
    CountingNetwork {
        /// Network width (power of two).
        width: usize,
    },
    /// Diffracting tree with the given depth.
    Diffracting {
        /// Tree depth (2^depth exit counters).
        depth: u32,
    },
    /// Mobile token over a spanning tree (Arrow path reversal).
    Arrow,
}

impl Algo {
    /// The default comparison set for a network of `n` processors:
    /// widths/depths scaled to ~√n as the source papers recommend.
    #[must_use]
    pub fn comparison_set(n: usize) -> Vec<Algo> {
        let width = ((n as f64).sqrt() as usize).next_power_of_two().clamp(2, 64);
        let depth = width.trailing_zeros();
        vec![
            Algo::Central,
            Algo::StaticTree,
            Algo::Combining,
            Algo::CountingNetwork { width },
            Algo::Diffracting { depth },
            Algo::Arrow,
            Algo::RetirementTree,
        ]
    }

    /// Stable display name.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            Algo::RetirementTree => "retirement-tree".to_string(),
            Algo::StaticTree => "static-tree".to_string(),
            Algo::Central => "central".to_string(),
            Algo::Combining => "combining-tree".to_string(),
            Algo::CountingNetwork { width } => format!("counting-net[w={width}]"),
            Algo::Diffracting { depth } => format!("diffracting[d={depth}]"),
            Algo::Arrow => "arrow-token".to_string(),
        }
    }

    /// Builds the counter for `n` processors.
    ///
    /// # Errors
    ///
    /// Propagates the implementation's construction error as a string.
    pub fn build(
        &self,
        n: usize,
        trace: TraceMode,
        policy: DeliveryPolicy,
    ) -> Result<Box<dyn Counter>, String> {
        Ok(match self {
            Algo::RetirementTree => Box::new(
                TreeCounter::builder(n)
                    .map_err(|e| e.to_string())?
                    .trace(trace)
                    .delivery(policy)
                    .build()
                    .map_err(|e| e.to_string())?,
            ),
            Algo::StaticTree => Box::new(
                StaticTreeCounter::with_policy(n, trace, policy).map_err(|e| e.to_string())?,
            ),
            Algo::Central => {
                Box::new(CentralCounter::with_policy(n, trace, policy).map_err(|e| e.to_string())?)
            }
            Algo::Combining => Box::new(
                CombiningTreeCounter::with_policy(n, trace, policy).map_err(|e| e.to_string())?,
            ),
            Algo::CountingNetwork { width } => Box::new(
                CountingNetworkCounter::with_policy(n, *width, trace, policy)
                    .map_err(|e| e.to_string())?,
            ),
            Algo::Diffracting { depth } => Box::new(
                DiffractingTreeCounter::with_policy(n, *depth, trace, policy)
                    .map_err(|e| e.to_string())?,
            ),
            Algo::Arrow => {
                Box::new(ArrowCounter::with_policy(n, trace, policy).map_err(|e| e.to_string())?)
            }
        })
    }

    /// Builds a concurrent-capable counter, if this algorithm supports
    /// batching.
    ///
    /// # Errors
    ///
    /// Propagates construction errors; `Err` with a descriptive message
    /// for sequential-only algorithms.
    pub fn build_concurrent(
        &self,
        n: usize,
        trace: TraceMode,
        policy: DeliveryPolicy,
    ) -> Result<Box<dyn ConcurrentCounter>, String> {
        Ok(match self {
            Algo::Central => {
                Box::new(CentralCounter::with_policy(n, trace, policy).map_err(|e| e.to_string())?)
            }
            Algo::Combining => Box::new(
                CombiningTreeCounter::with_policy(n, trace, policy).map_err(|e| e.to_string())?,
            ),
            Algo::CountingNetwork { width } => Box::new(
                CountingNetworkCounter::with_policy(n, *width, trace, policy)
                    .map_err(|e| e.to_string())?,
            ),
            Algo::Diffracting { depth } => Box::new(
                DiffractingTreeCounter::with_policy(n, *depth, trace, policy)
                    .map_err(|e| e.to_string())?,
            ),
            Algo::RetirementTree | Algo::StaticTree | Algo::Arrow => {
                return Err(format!("{} follows the paper's sequential model only", self.name()))
            }
        })
    }
}

/// Result of one sequential canonical run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Algorithm name.
    pub algo: String,
    /// Network size actually used (trees round up).
    pub n: usize,
    /// Bottleneck load and processor.
    pub bottleneck: u64,
    /// Total messages over the sequence.
    pub total_messages: u64,
    /// Mean messages per operation.
    pub messages_per_op: f64,
    /// Whether op `i` observed value `i` throughout.
    pub correct: bool,
    /// Per-processor loads (for histograms).
    pub loads: Vec<u64>,
    /// Gini coefficient of the load distribution.
    pub gini: f64,
}

/// Runs the canonical workload (one op per processor, shuffled by `seed`)
/// on `algo` at size `n`.
///
/// # Errors
///
/// Propagates construction and execution errors as strings.
pub fn run_canonical(
    algo: Algo,
    n: usize,
    policy: DeliveryPolicy,
    seed: u64,
) -> Result<RunSummary, String> {
    let mut counter = algo.build(n, TraceMode::Off, policy)?;
    let outcome = run_shuffled_dyn(counter.as_mut(), seed).map_err(|e| e.to_string())?;
    Ok(RunSummary {
        algo: algo.name(),
        n: counter.processors(),
        bottleneck: counter.loads().max_load(),
        total_messages: outcome.total_messages,
        messages_per_op: outcome.messages_per_op(),
        correct: outcome.values_are_sequential(),
        loads: counter.loads().to_vec(),
        gini: counter.loads().gini(),
    })
}

/// `SequentialDriver::run_shuffled` for trait objects.
///
/// # Errors
///
/// Propagates errors from the counter's `inc`.
pub fn run_shuffled_dyn(
    counter: &mut dyn Counter,
    seed: u64,
) -> Result<distctr_sim::SequenceOutcome, SimError> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut order: Vec<ProcessorId> = (0..counter.processors()).map(ProcessorId::new).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    // SequentialDriver is generic over C: Counter (sized); drive the
    // boxed counter directly here.
    let before = counter.loads().total_messages();
    let mut results = Vec::with_capacity(order.len());
    for &p in &order {
        results.push(counter.inc(p)?);
    }
    Ok(distctr_sim::SequenceOutcome {
        results,
        bottleneck: counter.loads().max_load(),
        total_messages: counter.loads().total_messages() - before,
    })
}

/// Seeds used across the harness so reports are reproducible.
pub const REPORT_SEED: u64 = 0x5EED_2026;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_set_scales_width() {
        let set = Algo::comparison_set(81);
        assert_eq!(set.len(), 7);
        assert!(set.contains(&Algo::CountingNetwork { width: 16 }), "√81=9 -> 16");
        assert!(set.contains(&Algo::Arrow));
        let names: std::collections::HashSet<String> = set.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 7, "distinct names");
    }

    #[test]
    fn every_algo_builds_and_counts_at_n8() {
        for algo in Algo::comparison_set(8) {
            let summary = run_canonical(algo, 8, DeliveryPolicy::Fifo, 1)
                .unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
            assert!(summary.correct, "{} counts correctly", summary.algo);
            assert!(summary.bottleneck >= 2, "{}", summary.algo);
            assert_eq!(summary.loads.len(), summary.n);
        }
    }

    #[test]
    fn sequential_only_algos_refuse_concurrent_build() {
        assert!(Algo::RetirementTree
            .build_concurrent(8, TraceMode::Off, DeliveryPolicy::Fifo)
            .is_err());
        assert!(Algo::Central.build_concurrent(8, TraceMode::Off, DeliveryPolicy::Fifo).is_ok());
    }

    #[test]
    fn run_is_reproducible_for_same_seed() {
        let a = run_canonical(Algo::RetirementTree, 81, DeliveryPolicy::Fifo, 5).expect("runs");
        let b = run_canonical(Algo::RetirementTree, 81, DeliveryPolicy::Fifo, 5).expect("runs");
        assert_eq!(a.bottleneck, b.bottleneck);
        assert_eq!(a.total_messages, b.total_messages);
    }
}
