//! Experiment E23 — serving under chaos: goodput, tail latency and
//! availability through a fault-injecting proxy.
//!
//! The exactness experiments (E19, E22) measure the serving stack over
//! a clean loopback. E23 measures it over a *hostile* one: the same
//! closed-loop TCP workload runs through a `distctr-chaos` proxy, one
//! scenario per toxic — added latency, bandwidth throttling, byte-level
//! frame slicing, CRC-detectable corruption, abrupt connection resets
//! and silent blackhole partitions. Clients carry the hardened retry
//! policy (jittered exponential backoff, resume-and-replay on
//! reconnect), so the claim under test is the robustness one: **every
//! fault costs goodput and tail latency, never correctness or
//! availability** — acked values stay exactly `0..ops` and no operation
//! exhausts its budget.

use std::time::Duration;

use distctr_analysis::{fmt_f64, Table};
use distctr_chaos::{ChaosPlan, ChaosProxy};
use distctr_net::ThreadedTreeCounter;
use distctr_server::{run_load, ClientConfig, CounterServer, LoadConfig, RetryPolicy};

/// One chaos scenario's measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosRow {
    /// Scenario label (which toxic, at what dose).
    pub scenario: String,
    /// Operations attempted.
    pub ops: usize,
    /// Operations that exhausted their retry budget.
    pub failed: usize,
    /// Acked operations per second, end to end through the proxy.
    pub goodput: f64,
    /// 99th-percentile client-observed latency, microseconds.
    pub p99_us: u64,
    /// Acked fraction of attempted operations (1.0 = every op landed).
    pub availability: f64,
    /// Whether the acked values were exactly `0..ops` — exactly-once,
    /// observed over the wire.
    pub exact: bool,
    /// Connections the proxy saw (reconnect churn shows up here).
    pub proxy_conns: u64,
    /// Connections the proxy cut (reset toxic).
    pub resets: u64,
    /// Directions the proxy silently partitioned (blackhole toxic).
    pub blackholed: u64,
    /// Bytes the proxy flipped in flight (corrupt toxic).
    pub corrupted_bytes: u64,
}

/// The scenario grid: every toxic the proxy implements, at a dose that
/// reliably fires within a smoke-sized run, plus a no-toxic baseline
/// through the same proxy path.
#[must_use]
pub fn e23_scenarios() -> Vec<(String, ChaosPlan)> {
    vec![
        ("baseline (proxy, no toxics)".into(), ChaosPlan::new(0xE23)),
        (
            "latency 2ms + 0..3ms jitter".into(),
            ChaosPlan::new(0xE23).latency(Duration::from_millis(2), Duration::from_millis(3)),
        ),
        ("throttle 16 KiB/s".into(), ChaosPlan::new(0xE23).throttle(16 * 1024)),
        (
            "slice <=3 B / 100us gap".into(),
            ChaosPlan::new(0xE23).slice(3, Duration::from_micros(100)),
        ),
        ("corrupt 0.1% of bytes".into(), ChaosPlan::new(0xE23).corrupt(0.001)),
        // The byte budgets sit just past one handshake (~130 B down),
        // so a handful of ops trips them even at smoke sizes.
        ("reset every 256 B".into(), ChaosPlan::new(0xE23).reset_after(256)),
        ("blackhole after 256 B".into(), ChaosPlan::new(0xE23).blackhole_after(256)),
    ]
}

/// The hardened client every scenario uses: a snappy reply deadline
/// (blackholes cost milliseconds, not the 10 s default) and a deep
/// retry budget so transient faults never surface as failures.
#[must_use]
pub fn e23_client() -> ClientConfig {
    ClientConfig {
        reply_timeout: Duration::from_millis(400),
        retry: RetryPolicy {
            max_retries: 30,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
            seed: 0xE23,
        },
    }
}

/// Runs `conns * ops_per_conn` closed-loop operations through a chaos
/// proxy for each scenario, against a fresh threaded tree of `n`
/// processors each time.
///
/// # Panics
///
/// Panics if a server or proxy cannot bind loopback or a load run fails
/// outright (a run with failed *operations* still reports; only a run
/// that cannot start panics).
#[must_use]
pub fn e23_measure(
    n: usize,
    conns: usize,
    ops_per_conn: usize,
    scenarios: &[(String, ChaosPlan)],
) -> Vec<ChaosRow> {
    let ops = conns * ops_per_conn;
    scenarios
        .iter()
        .map(|(name, plan)| {
            let backend = ThreadedTreeCounter::new(n).expect("threaded tree");
            let mut server = CounterServer::serve_combining(backend).expect("serve");
            let proxy = ChaosProxy::start(server.local_addr(), plan.clone()).expect("proxy");
            let config = LoadConfig::closed(conns, ops).with_client(e23_client());
            let report = run_load(proxy.local_addr(), &config).expect("load run");
            server.shutdown().expect("shutdown");
            let stats = proxy.stats();
            ChaosRow {
                scenario: name.clone(),
                ops,
                failed: report.failed,
                goodput: report.throughput(),
                p99_us: report.latency_percentile_us(99.0),
                availability: report.availability(),
                exact: report.failed == 0 && report.values_are_sequential_from(0),
                proxy_conns: stats.connections,
                resets: stats.resets,
                blackholed: stats.blackholed,
                corrupted_bytes: stats.corrupted_bytes,
            }
        })
        .collect()
}

/// Renders the E23 table.
#[must_use]
pub fn e23_render(n: usize, rows: &[ChaosRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "E23. Chaos serving: closed-loop TCP incs against {n} processors through a\n\
         fault-injecting proxy; hardened clients (retry budget 30, 400 ms reply deadline)\n\n"
    ));
    let mut table = Table::new(vec![
        "scenario",
        "ops",
        "goodput (incs/s)",
        "p99 (us)",
        "avail",
        "exact",
        "conns",
        "faults fired",
    ]);
    for r in rows {
        let fired =
            format!("{} resets, {} holes, {} B flipped", r.resets, r.blackholed, r.corrupted_bytes);
        table.row(vec![
            r.scenario.clone(),
            r.ops.to_string(),
            fmt_f64(r.goodput),
            r.p99_us.to_string(),
            format!("{:.3}", r.availability),
            if r.exact { "yes".into() } else { "NO".into() },
            r.proxy_conns.to_string(),
            fired,
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nreading: every toxic costs goodput and tail latency but neither availability\n\
         nor exactness — CRC framing catches corruption, sessions resume across resets,\n\
         reply deadlines unstick blackholes, and replayed requests dedup server-side, so\n\
         the acked values stay exactly 0..ops under every fault.\n",
    );
    out
}

/// Serializes the measurement as the checked-in `BENCH_chaos.json`
/// artifact (hand-rolled JSON; the harness has no serde dependency).
#[must_use]
pub fn e23_json(n: usize, conns: usize, ops_per_conn: usize, rows: &[ChaosRow]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"chaos\",\n");
    out.push_str("  \"backend\": \"threaded\",\n");
    out.push_str("  \"mode\": \"closed-loop TCP through fault-injecting proxy\",\n");
    out.push_str(&format!("  \"processors\": {n},\n"));
    out.push_str(&format!("  \"conns\": {conns},\n"));
    out.push_str(&format!("  \"ops_per_conn\": {ops_per_conn},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"scenario\": \"{}\", \"ops\": {}, \"failed\": {}, \
             \"goodput_incs_per_sec\": {:.1}, \"p99_us\": {}, \"availability\": {:.4}, \
             \"exact\": {}, \"proxy_conns\": {}, \"resets\": {}, \"blackholed\": {}, \
             \"corrupted_bytes\": {} }}{}\n",
            r.scenario,
            r.ops,
            r.failed,
            r.goodput,
            r.p99_us,
            r.availability,
            r.exact,
            r.proxy_conns,
            r.resets,
            r.blackholed,
            r.corrupted_bytes,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e23_measures_renders_and_serializes() {
        // A fast subset: baseline plus the two cheap toxics.
        let scenarios: Vec<(String, ChaosPlan)> = e23_scenarios()
            .into_iter()
            .filter(|(name, _)| {
                name.starts_with("baseline")
                    || name.starts_with("slice")
                    || name.starts_with("corrupt")
            })
            .collect();
        assert_eq!(scenarios.len(), 3);
        let rows = e23_measure(8, 2, 6, &scenarios);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.exact), "a scenario lost exactness: {rows:?}");
        assert!(rows.iter().all(|r| (r.availability - 1.0).abs() < f64::EPSILON));
        assert!(rows.iter().all(|r| r.goodput > 0.0));
        let report = e23_render(8, &rows);
        assert!(report.contains("goodput"), "{report}");
        assert!(report.contains("baseline"), "{report}");
        let json = e23_json(8, 2, 6, &rows);
        assert!(json.contains("\"experiment\": \"chaos\""), "{json}");
        assert!(json.contains("\"availability\": 1.0000"), "{json}");
    }

    #[test]
    fn the_scenario_grid_covers_every_toxic() {
        let scenarios = e23_scenarios();
        assert_eq!(scenarios.len(), 7);
        let toxic_count: usize = scenarios.iter().map(|(_, p)| p.toxics.len()).sum();
        assert_eq!(toxic_count, 6, "one toxic per non-baseline scenario");
    }
}
